file(REMOVE_RECURSE
  "CMakeFiles/core_prefetch_test.dir/core/prefetch_test.cpp.o"
  "CMakeFiles/core_prefetch_test.dir/core/prefetch_test.cpp.o.d"
  "core_prefetch_test"
  "core_prefetch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_prefetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
