file(REMOVE_RECURSE
  "CMakeFiles/core_templates_test.dir/core/templates_test.cpp.o"
  "CMakeFiles/core_templates_test.dir/core/templates_test.cpp.o.d"
  "core_templates_test"
  "core_templates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_templates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
