file(REMOVE_RECURSE
  "CMakeFiles/common_hash_test.dir/common/hash_test.cpp.o"
  "CMakeFiles/common_hash_test.dir/common/hash_test.cpp.o.d"
  "common_hash_test"
  "common_hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
