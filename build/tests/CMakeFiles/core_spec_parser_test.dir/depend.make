# Empty dependencies file for core_spec_parser_test.
# This may be replaced when dependencies are built.
