file(REMOVE_RECURSE
  "CMakeFiles/store_cost_model_test.dir/store/cost_model_test.cpp.o"
  "CMakeFiles/store_cost_model_test.dir/store/cost_model_test.cpp.o.d"
  "store_cost_model_test"
  "store_cost_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
