file(REMOVE_RECURSE
  "CMakeFiles/store_tier_test.dir/store/tier_test.cpp.o"
  "CMakeFiles/store_tier_test.dir/store/tier_test.cpp.o.d"
  "store_tier_test"
  "store_tier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
