# Empty compiler generated dependencies file for store_tier_test.
# This may be replaced when dependencies are built.
