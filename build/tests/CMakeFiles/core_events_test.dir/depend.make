# Empty dependencies file for core_events_test.
# This may be replaced when dependencies are built.
