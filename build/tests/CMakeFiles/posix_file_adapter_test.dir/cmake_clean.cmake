file(REMOVE_RECURSE
  "CMakeFiles/posix_file_adapter_test.dir/posix/file_adapter_test.cpp.o"
  "CMakeFiles/posix_file_adapter_test.dir/posix/file_adapter_test.cpp.o.d"
  "posix_file_adapter_test"
  "posix_file_adapter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_file_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
