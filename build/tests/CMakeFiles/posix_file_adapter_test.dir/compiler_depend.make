# Empty compiler generated dependencies file for posix_file_adapter_test.
# This may be replaced when dependencies are built.
