# Empty dependencies file for core_responses_test.
# This may be replaced when dependencies are built.
