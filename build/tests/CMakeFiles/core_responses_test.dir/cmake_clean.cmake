file(REMOVE_RECURSE
  "CMakeFiles/core_responses_test.dir/core/responses_test.cpp.o"
  "CMakeFiles/core_responses_test.dir/core/responses_test.cpp.o.d"
  "core_responses_test"
  "core_responses_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_responses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
