file(REMOVE_RECURSE
  "CMakeFiles/core_metadata_store_test.dir/core/metadata_store_test.cpp.o"
  "CMakeFiles/core_metadata_store_test.dir/core/metadata_store_test.cpp.o.d"
  "core_metadata_store_test"
  "core_metadata_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_metadata_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
