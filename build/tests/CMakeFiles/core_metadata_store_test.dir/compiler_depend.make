# Empty compiler generated dependencies file for core_metadata_store_test.
# This may be replaced when dependencies are built.
