# Empty compiler generated dependencies file for core_instance_test.
# This may be replaced when dependencies are built.
