file(REMOVE_RECURSE
  "CMakeFiles/core_instance_test.dir/core/instance_test.cpp.o"
  "CMakeFiles/core_instance_test.dir/core/instance_test.cpp.o.d"
  "core_instance_test"
  "core_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
