file(REMOVE_RECURSE
  "CMakeFiles/apps_bookstore_test.dir/apps/bookstore_test.cpp.o"
  "CMakeFiles/apps_bookstore_test.dir/apps/bookstore_test.cpp.o.d"
  "apps_bookstore_test"
  "apps_bookstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_bookstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
