# Empty compiler generated dependencies file for apps_bookstore_test.
# This may be replaced when dependencies are built.
