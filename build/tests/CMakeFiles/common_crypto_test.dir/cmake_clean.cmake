file(REMOVE_RECURSE
  "CMakeFiles/common_crypto_test.dir/common/crypto_test.cpp.o"
  "CMakeFiles/common_crypto_test.dir/common/crypto_test.cpp.o.d"
  "common_crypto_test"
  "common_crypto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
