file(REMOVE_RECURSE
  "CMakeFiles/common_compress_test.dir/common/compress_test.cpp.o"
  "CMakeFiles/common_compress_test.dir/common/compress_test.cpp.o.d"
  "common_compress_test"
  "common_compress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
