# Empty compiler generated dependencies file for common_compress_test.
# This may be replaced when dependencies are built.
