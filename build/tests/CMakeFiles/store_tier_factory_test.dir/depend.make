# Empty dependencies file for store_tier_factory_test.
# This may be replaced when dependencies are built.
