file(REMOVE_RECURSE
  "CMakeFiles/core_spec_files_test.dir/core/spec_files_test.cpp.o"
  "CMakeFiles/core_spec_files_test.dir/core/spec_files_test.cpp.o.d"
  "core_spec_files_test"
  "core_spec_files_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_spec_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
