# Empty dependencies file for metadb_metadb_test.
# This may be replaced when dependencies are built.
