file(REMOVE_RECURSE
  "CMakeFiles/metadb_metadb_test.dir/metadb/metadb_test.cpp.o"
  "CMakeFiles/metadb_metadb_test.dir/metadb/metadb_test.cpp.o.d"
  "metadb_metadb_test"
  "metadb_metadb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadb_metadb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
