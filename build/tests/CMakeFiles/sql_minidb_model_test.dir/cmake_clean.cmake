file(REMOVE_RECURSE
  "CMakeFiles/sql_minidb_model_test.dir/sql/minidb_model_test.cpp.o"
  "CMakeFiles/sql_minidb_model_test.dir/sql/minidb_model_test.cpp.o.d"
  "sql_minidb_model_test"
  "sql_minidb_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_minidb_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
