# Empty dependencies file for sql_minidb_model_test.
# This may be replaced when dependencies are built.
