# Empty compiler generated dependencies file for fig16_grow.
# This may be replaced when dependencies are built.
