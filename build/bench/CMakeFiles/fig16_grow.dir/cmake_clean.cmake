file(REMOVE_RECURSE
  "CMakeFiles/fig16_grow.dir/fig16_grow.cpp.o"
  "CMakeFiles/fig16_grow.dir/fig16_grow.cpp.o.d"
  "fig16_grow"
  "fig16_grow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_grow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
