# Empty dependencies file for fig11_perf_cost.
# This may be replaced when dependencies are built.
