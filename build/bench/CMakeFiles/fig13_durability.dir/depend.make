# Empty dependencies file for fig13_durability.
# This may be replaced when dependencies are built.
