file(REMOVE_RECURSE
  "CMakeFiles/fig13_durability.dir/fig13_durability.cpp.o"
  "CMakeFiles/fig13_durability.dir/fig13_durability.cpp.o.d"
  "fig13_durability"
  "fig13_durability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
