# Empty dependencies file for fig07_mysql_readonly.
# This may be replaced when dependencies are built.
