
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_mysql_readonly.cpp" "bench/CMakeFiles/fig07_mysql_readonly.dir/fig07_mysql_readonly.cpp.o" "gcc" "bench/CMakeFiles/fig07_mysql_readonly.dir/fig07_mysql_readonly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tiera_core.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/tiera_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/tiera_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tiera_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tiera_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metadb/CMakeFiles/tiera_metadb.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/tiera_store.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tiera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
