file(REMOVE_RECURSE
  "CMakeFiles/fig07_mysql_readonly.dir/fig07_mysql_readonly.cpp.o"
  "CMakeFiles/fig07_mysql_readonly.dir/fig07_mysql_readonly.cpp.o.d"
  "fig07_mysql_readonly"
  "fig07_mysql_readonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_mysql_readonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
