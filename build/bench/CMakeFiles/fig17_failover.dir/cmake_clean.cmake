file(REMOVE_RECURSE
  "CMakeFiles/fig17_failover.dir/fig17_failover.cpp.o"
  "CMakeFiles/fig17_failover.dir/fig17_failover.cpp.o.d"
  "fig17_failover"
  "fig17_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
