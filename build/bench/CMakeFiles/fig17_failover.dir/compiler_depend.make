# Empty compiler generated dependencies file for fig17_failover.
# This may be replaced when dependencies are built.
