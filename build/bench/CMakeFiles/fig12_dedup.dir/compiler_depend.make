# Empty compiler generated dependencies file for fig12_dedup.
# This may be replaced when dependencies are built.
