file(REMOVE_RECURSE
  "CMakeFiles/fig15_writeback_interval.dir/fig15_writeback_interval.cpp.o"
  "CMakeFiles/fig15_writeback_interval.dir/fig15_writeback_interval.cpp.o.d"
  "fig15_writeback_interval"
  "fig15_writeback_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_writeback_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
