# Empty compiler generated dependencies file for fig15_writeback_interval.
# This may be replaced when dependencies are built.
