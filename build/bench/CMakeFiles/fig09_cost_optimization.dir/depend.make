# Empty dependencies file for fig09_cost_optimization.
# This may be replaced when dependencies are built.
