file(REMOVE_RECURSE
  "CMakeFiles/fig09_cost_optimization.dir/fig09_cost_optimization.cpp.o"
  "CMakeFiles/fig09_cost_optimization.dir/fig09_cost_optimization.cpp.o.d"
  "fig09_cost_optimization"
  "fig09_cost_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cost_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
