file(REMOVE_RECURSE
  "CMakeFiles/fig10_tpcw.dir/fig10_tpcw.cpp.o"
  "CMakeFiles/fig10_tpcw.dir/fig10_tpcw.cpp.o.d"
  "fig10_tpcw"
  "fig10_tpcw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tpcw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
