# Empty compiler generated dependencies file for fig10_tpcw.
# This may be replaced when dependencies are built.
