file(REMOVE_RECURSE
  "CMakeFiles/fig14_throttling.dir/fig14_throttling.cpp.o"
  "CMakeFiles/fig14_throttling.dir/fig14_throttling.cpp.o.d"
  "fig14_throttling"
  "fig14_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
