# Empty dependencies file for fig14_throttling.
# This may be replaced when dependencies are built.
