file(REMOVE_RECURSE
  "CMakeFiles/fig08_mysql_readwrite.dir/fig08_mysql_readwrite.cpp.o"
  "CMakeFiles/fig08_mysql_readwrite.dir/fig08_mysql_readwrite.cpp.o.d"
  "fig08_mysql_readwrite"
  "fig08_mysql_readwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_mysql_readwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
