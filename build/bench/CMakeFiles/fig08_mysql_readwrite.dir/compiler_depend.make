# Empty compiler generated dependencies file for fig08_mysql_readwrite.
# This may be replaced when dependencies are built.
