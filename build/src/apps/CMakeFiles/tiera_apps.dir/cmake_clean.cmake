file(REMOVE_RECURSE
  "CMakeFiles/tiera_apps.dir/bookstore.cpp.o"
  "CMakeFiles/tiera_apps.dir/bookstore.cpp.o.d"
  "libtiera_apps.a"
  "libtiera_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiera_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
