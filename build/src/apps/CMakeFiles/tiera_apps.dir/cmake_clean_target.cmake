file(REMOVE_RECURSE
  "libtiera_apps.a"
)
