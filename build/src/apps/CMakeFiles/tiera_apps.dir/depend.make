# Empty dependencies file for tiera_apps.
# This may be replaced when dependencies are built.
