# Empty dependencies file for tiera_posix.
# This may be replaced when dependencies are built.
