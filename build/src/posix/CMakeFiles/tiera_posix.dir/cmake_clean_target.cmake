file(REMOVE_RECURSE
  "libtiera_posix.a"
)
