file(REMOVE_RECURSE
  "CMakeFiles/tiera_posix.dir/file_adapter.cpp.o"
  "CMakeFiles/tiera_posix.dir/file_adapter.cpp.o.d"
  "libtiera_posix.a"
  "libtiera_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiera_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
