
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/rpc.cpp" "src/net/CMakeFiles/tiera_net.dir/rpc.cpp.o" "gcc" "src/net/CMakeFiles/tiera_net.dir/rpc.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/tiera_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/tiera_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/tiera_service.cpp" "src/net/CMakeFiles/tiera_net.dir/tiera_service.cpp.o" "gcc" "src/net/CMakeFiles/tiera_net.dir/tiera_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tiera_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tiera_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metadb/CMakeFiles/tiera_metadb.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/tiera_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
