file(REMOVE_RECURSE
  "libtiera_net.a"
)
