# Empty dependencies file for tiera_net.
# This may be replaced when dependencies are built.
