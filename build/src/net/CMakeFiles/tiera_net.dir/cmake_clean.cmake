file(REMOVE_RECURSE
  "CMakeFiles/tiera_net.dir/rpc.cpp.o"
  "CMakeFiles/tiera_net.dir/rpc.cpp.o.d"
  "CMakeFiles/tiera_net.dir/tcp.cpp.o"
  "CMakeFiles/tiera_net.dir/tcp.cpp.o.d"
  "CMakeFiles/tiera_net.dir/tiera_service.cpp.o"
  "CMakeFiles/tiera_net.dir/tiera_service.cpp.o.d"
  "libtiera_net.a"
  "libtiera_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiera_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
