# Empty compiler generated dependencies file for tiera_metadb.
# This may be replaced when dependencies are built.
