file(REMOVE_RECURSE
  "CMakeFiles/tiera_metadb.dir/metadb.cpp.o"
  "CMakeFiles/tiera_metadb.dir/metadb.cpp.o.d"
  "libtiera_metadb.a"
  "libtiera_metadb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiera_metadb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
