file(REMOVE_RECURSE
  "libtiera_metadb.a"
)
