
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/cost_model.cpp" "src/store/CMakeFiles/tiera_store.dir/cost_model.cpp.o" "gcc" "src/store/CMakeFiles/tiera_store.dir/cost_model.cpp.o.d"
  "/root/repo/src/store/file_tier.cpp" "src/store/CMakeFiles/tiera_store.dir/file_tier.cpp.o" "gcc" "src/store/CMakeFiles/tiera_store.dir/file_tier.cpp.o.d"
  "/root/repo/src/store/latency_model.cpp" "src/store/CMakeFiles/tiera_store.dir/latency_model.cpp.o" "gcc" "src/store/CMakeFiles/tiera_store.dir/latency_model.cpp.o.d"
  "/root/repo/src/store/mem_tier.cpp" "src/store/CMakeFiles/tiera_store.dir/mem_tier.cpp.o" "gcc" "src/store/CMakeFiles/tiera_store.dir/mem_tier.cpp.o.d"
  "/root/repo/src/store/tier.cpp" "src/store/CMakeFiles/tiera_store.dir/tier.cpp.o" "gcc" "src/store/CMakeFiles/tiera_store.dir/tier.cpp.o.d"
  "/root/repo/src/store/tier_factory.cpp" "src/store/CMakeFiles/tiera_store.dir/tier_factory.cpp.o" "gcc" "src/store/CMakeFiles/tiera_store.dir/tier_factory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tiera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
