# Empty dependencies file for tiera_store.
# This may be replaced when dependencies are built.
