file(REMOVE_RECURSE
  "CMakeFiles/tiera_store.dir/cost_model.cpp.o"
  "CMakeFiles/tiera_store.dir/cost_model.cpp.o.d"
  "CMakeFiles/tiera_store.dir/file_tier.cpp.o"
  "CMakeFiles/tiera_store.dir/file_tier.cpp.o.d"
  "CMakeFiles/tiera_store.dir/latency_model.cpp.o"
  "CMakeFiles/tiera_store.dir/latency_model.cpp.o.d"
  "CMakeFiles/tiera_store.dir/mem_tier.cpp.o"
  "CMakeFiles/tiera_store.dir/mem_tier.cpp.o.d"
  "CMakeFiles/tiera_store.dir/tier.cpp.o"
  "CMakeFiles/tiera_store.dir/tier.cpp.o.d"
  "CMakeFiles/tiera_store.dir/tier_factory.cpp.o"
  "CMakeFiles/tiera_store.dir/tier_factory.cpp.o.d"
  "libtiera_store.a"
  "libtiera_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiera_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
