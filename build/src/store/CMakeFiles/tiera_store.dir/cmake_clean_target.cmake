file(REMOVE_RECURSE
  "libtiera_store.a"
)
