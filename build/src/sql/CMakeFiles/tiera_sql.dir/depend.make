# Empty dependencies file for tiera_sql.
# This may be replaced when dependencies are built.
