file(REMOVE_RECURSE
  "libtiera_sql.a"
)
