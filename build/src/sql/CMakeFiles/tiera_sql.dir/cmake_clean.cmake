file(REMOVE_RECURSE
  "CMakeFiles/tiera_sql.dir/minidb.cpp.o"
  "CMakeFiles/tiera_sql.dir/minidb.cpp.o.d"
  "libtiera_sql.a"
  "libtiera_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiera_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
