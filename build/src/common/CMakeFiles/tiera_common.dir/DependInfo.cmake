
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bytes.cpp" "src/common/CMakeFiles/tiera_common.dir/bytes.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/bytes.cpp.o.d"
  "/root/repo/src/common/clock.cpp" "src/common/CMakeFiles/tiera_common.dir/clock.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/clock.cpp.o.d"
  "/root/repo/src/common/compress.cpp" "src/common/CMakeFiles/tiera_common.dir/compress.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/compress.cpp.o.d"
  "/root/repo/src/common/crypto.cpp" "src/common/CMakeFiles/tiera_common.dir/crypto.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/crypto.cpp.o.d"
  "/root/repo/src/common/hash.cpp" "src/common/CMakeFiles/tiera_common.dir/hash.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/hash.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/common/CMakeFiles/tiera_common.dir/histogram.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/histogram.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/tiera_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/common/CMakeFiles/tiera_common.dir/random.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/random.cpp.o.d"
  "/root/repo/src/common/rate_limiter.cpp" "src/common/CMakeFiles/tiera_common.dir/rate_limiter.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/rate_limiter.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/common/CMakeFiles/tiera_common.dir/status.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/status.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/tiera_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/tiera_common.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
