file(REMOVE_RECURSE
  "CMakeFiles/tiera_common.dir/bytes.cpp.o"
  "CMakeFiles/tiera_common.dir/bytes.cpp.o.d"
  "CMakeFiles/tiera_common.dir/clock.cpp.o"
  "CMakeFiles/tiera_common.dir/clock.cpp.o.d"
  "CMakeFiles/tiera_common.dir/compress.cpp.o"
  "CMakeFiles/tiera_common.dir/compress.cpp.o.d"
  "CMakeFiles/tiera_common.dir/crypto.cpp.o"
  "CMakeFiles/tiera_common.dir/crypto.cpp.o.d"
  "CMakeFiles/tiera_common.dir/hash.cpp.o"
  "CMakeFiles/tiera_common.dir/hash.cpp.o.d"
  "CMakeFiles/tiera_common.dir/histogram.cpp.o"
  "CMakeFiles/tiera_common.dir/histogram.cpp.o.d"
  "CMakeFiles/tiera_common.dir/logging.cpp.o"
  "CMakeFiles/tiera_common.dir/logging.cpp.o.d"
  "CMakeFiles/tiera_common.dir/random.cpp.o"
  "CMakeFiles/tiera_common.dir/random.cpp.o.d"
  "CMakeFiles/tiera_common.dir/rate_limiter.cpp.o"
  "CMakeFiles/tiera_common.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/tiera_common.dir/status.cpp.o"
  "CMakeFiles/tiera_common.dir/status.cpp.o.d"
  "CMakeFiles/tiera_common.dir/thread_pool.cpp.o"
  "CMakeFiles/tiera_common.dir/thread_pool.cpp.o.d"
  "libtiera_common.a"
  "libtiera_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiera_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
