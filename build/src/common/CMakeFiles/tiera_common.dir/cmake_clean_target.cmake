file(REMOVE_RECURSE
  "libtiera_common.a"
)
