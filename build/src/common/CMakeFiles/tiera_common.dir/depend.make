# Empty dependencies file for tiera_common.
# This may be replaced when dependencies are built.
