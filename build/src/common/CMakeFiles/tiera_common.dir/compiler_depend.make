# Empty compiler generated dependencies file for tiera_common.
# This may be replaced when dependencies are built.
