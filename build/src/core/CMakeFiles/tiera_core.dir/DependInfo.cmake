
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/tiera_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/tiera_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/control.cpp" "src/core/CMakeFiles/tiera_core.dir/control.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/control.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/tiera_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/metadata_store.cpp" "src/core/CMakeFiles/tiera_core.dir/metadata_store.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/metadata_store.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/tiera_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/object_meta.cpp" "src/core/CMakeFiles/tiera_core.dir/object_meta.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/object_meta.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/tiera_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/responses.cpp" "src/core/CMakeFiles/tiera_core.dir/responses.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/responses.cpp.o.d"
  "/root/repo/src/core/spec_parser.cpp" "src/core/CMakeFiles/tiera_core.dir/spec_parser.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/spec_parser.cpp.o.d"
  "/root/repo/src/core/templates.cpp" "src/core/CMakeFiles/tiera_core.dir/templates.cpp.o" "gcc" "src/core/CMakeFiles/tiera_core.dir/templates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tiera_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metadb/CMakeFiles/tiera_metadb.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/tiera_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
