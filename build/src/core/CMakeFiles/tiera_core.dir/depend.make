# Empty dependencies file for tiera_core.
# This may be replaced when dependencies are built.
