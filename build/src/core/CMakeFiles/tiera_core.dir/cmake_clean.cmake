file(REMOVE_RECURSE
  "CMakeFiles/tiera_core.dir/advisor.cpp.o"
  "CMakeFiles/tiera_core.dir/advisor.cpp.o.d"
  "CMakeFiles/tiera_core.dir/cluster.cpp.o"
  "CMakeFiles/tiera_core.dir/cluster.cpp.o.d"
  "CMakeFiles/tiera_core.dir/control.cpp.o"
  "CMakeFiles/tiera_core.dir/control.cpp.o.d"
  "CMakeFiles/tiera_core.dir/instance.cpp.o"
  "CMakeFiles/tiera_core.dir/instance.cpp.o.d"
  "CMakeFiles/tiera_core.dir/metadata_store.cpp.o"
  "CMakeFiles/tiera_core.dir/metadata_store.cpp.o.d"
  "CMakeFiles/tiera_core.dir/monitor.cpp.o"
  "CMakeFiles/tiera_core.dir/monitor.cpp.o.d"
  "CMakeFiles/tiera_core.dir/object_meta.cpp.o"
  "CMakeFiles/tiera_core.dir/object_meta.cpp.o.d"
  "CMakeFiles/tiera_core.dir/policy.cpp.o"
  "CMakeFiles/tiera_core.dir/policy.cpp.o.d"
  "CMakeFiles/tiera_core.dir/responses.cpp.o"
  "CMakeFiles/tiera_core.dir/responses.cpp.o.d"
  "CMakeFiles/tiera_core.dir/spec_parser.cpp.o"
  "CMakeFiles/tiera_core.dir/spec_parser.cpp.o.d"
  "CMakeFiles/tiera_core.dir/templates.cpp.o"
  "CMakeFiles/tiera_core.dir/templates.cpp.o.d"
  "libtiera_core.a"
  "libtiera_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiera_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
