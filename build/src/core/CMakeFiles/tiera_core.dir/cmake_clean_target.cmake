file(REMOVE_RECURSE
  "libtiera_core.a"
)
