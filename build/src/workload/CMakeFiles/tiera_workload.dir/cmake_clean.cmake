file(REMOVE_RECURSE
  "CMakeFiles/tiera_workload.dir/file_workload.cpp.o"
  "CMakeFiles/tiera_workload.dir/file_workload.cpp.o.d"
  "CMakeFiles/tiera_workload.dir/kv_workload.cpp.o"
  "CMakeFiles/tiera_workload.dir/kv_workload.cpp.o.d"
  "CMakeFiles/tiera_workload.dir/oltp_workload.cpp.o"
  "CMakeFiles/tiera_workload.dir/oltp_workload.cpp.o.d"
  "libtiera_workload.a"
  "libtiera_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiera_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
