file(REMOVE_RECURSE
  "libtiera_workload.a"
)
