# Empty compiler generated dependencies file for tiera_workload.
# This may be replaced when dependencies are built.
