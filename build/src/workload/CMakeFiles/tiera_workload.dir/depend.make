# Empty dependencies file for tiera_workload.
# This may be replaced when dependencies are built.
