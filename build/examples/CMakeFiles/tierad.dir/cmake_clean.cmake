file(REMOVE_RECURSE
  "CMakeFiles/tierad.dir/tierad.cpp.o"
  "CMakeFiles/tierad.dir/tierad.cpp.o.d"
  "tierad"
  "tierad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tierad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
