# Empty compiler generated dependencies file for tierad.
# This may be replaced when dependencies are built.
