# Empty dependencies file for tiered_database.
# This may be replaced when dependencies are built.
