file(REMOVE_RECURSE
  "CMakeFiles/tiered_database.dir/tiered_database.cpp.o"
  "CMakeFiles/tiered_database.dir/tiered_database.cpp.o.d"
  "tiered_database"
  "tiered_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
