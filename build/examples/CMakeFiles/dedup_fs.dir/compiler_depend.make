# Empty compiler generated dependencies file for dedup_fs.
# This may be replaced when dependencies are built.
