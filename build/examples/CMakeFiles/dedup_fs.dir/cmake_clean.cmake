file(REMOVE_RECURSE
  "CMakeFiles/dedup_fs.dir/dedup_fs.cpp.o"
  "CMakeFiles/dedup_fs.dir/dedup_fs.cpp.o.d"
  "dedup_fs"
  "dedup_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
