# Empty dependencies file for tiera_cli.
# This may be replaced when dependencies are built.
