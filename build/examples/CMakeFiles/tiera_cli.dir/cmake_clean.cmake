file(REMOVE_RECURSE
  "CMakeFiles/tiera_cli.dir/tiera_cli.cpp.o"
  "CMakeFiles/tiera_cli.dir/tiera_cli.cpp.o.d"
  "tiera_cli"
  "tiera_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiera_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
