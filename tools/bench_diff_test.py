#!/usr/bin/env python3
"""Regression test for tools/bench_diff.py (registered with ctest).

Locks in the contract the CI bench gate depends on:
  * benchmarks present only in the current run are "added" informational
    rows — they must never fail the diff (new benches land without a
    baseline refresh in the same commit);
  * benchmarks present only in the baseline are "gone" informational rows;
  * a real regression beyond the threshold still fails.
"""

import json
import os
import subprocess
import sys
import tempfile

BENCH_DIFF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "bench_diff.py")


def bench_json(entries):
    return {
        "benchmarks": [
            {"name": name, "run_type": "iteration", "cpu_time": value}
            for name, value in entries.items()
        ]
    }


def run_diff(baseline, current, extra_args=()):
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.json")
        cur_path = os.path.join(tmp, "current.json")
        with open(base_path, "w", encoding="utf-8") as fh:
            json.dump(bench_json(baseline), fh)
        with open(cur_path, "w", encoding="utf-8") as fh:
            json.dump(bench_json(current), fh)
        proc = subprocess.run(
            [sys.executable, BENCH_DIFF, base_path, cur_path, *extra_args],
            capture_output=True,
            text=True,
            check=False,
        )
        return proc.returncode, proc.stdout


def run_saturation(floors, report_text):
    with tempfile.TemporaryDirectory() as tmp:
        floors_path = os.path.join(tmp, "floors.json")
        report_path = os.path.join(tmp, "report.txt")
        with open(floors_path, "w", encoding="utf-8") as fh:
            json.dump(floors, fh)
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write(report_text)
        proc = subprocess.run(
            [sys.executable, BENCH_DIFF, "--saturation", floors_path,
             report_path],
            capture_output=True,
            text=True,
            check=False,
        )
        return proc.returncode, proc.stdout


def expect(condition, label, output):
    if condition:
        print(f"ok: {label}")
        return True
    print(f"FAIL: {label}\n--- bench_diff output ---\n{output}")
    return False


def main():
    ok = True

    # New-run-only benchmark (the stage-breakdown benches land this way):
    # reported as "(new)", exit 0.
    code, out = run_diff(
        {"BM_InstancePut4K": 100.0},
        {"BM_InstancePut4K": 101.0, "BM_InstancePut4KWithStages": 120.0},
    )
    ok &= expect(code == 0, "new-only benchmark does not fail", out)
    ok &= expect("(new)" in out, "new-only benchmark reported as (new)", out)

    # Baseline-only benchmark: reported as "(gone)", exit 0.
    code, out = run_diff(
        {"BM_InstancePut4K": 100.0, "BM_Retired": 50.0},
        {"BM_InstancePut4K": 99.0},
    )
    ok &= expect(code == 0, "baseline-only benchmark does not fail", out)
    ok &= expect("(gone)" in out, "missing benchmark reported as (gone)", out)

    # A genuine regression past the threshold still trips the gate, even
    # when an added benchmark is present in the same run.
    code, out = run_diff(
        {"BM_InstancePut4K": 100.0},
        {"BM_InstancePut4K": 140.0, "BM_InstancePut4KWithStages": 120.0},
        extra_args=("--threshold", "0.15"),
    )
    ok &= expect(code == 1, "regression beyond threshold fails", out)
    ok &= expect("REGRESSION" in out, "regression row flagged", out)

    # Within-threshold wobble passes.
    code, out = run_diff(
        {"BM_InstancePut4K": 100.0},
        {"BM_InstancePut4K": 110.0},
        extra_args=("--threshold", "0.15"),
    )
    ok &= expect(code == 0, "within-threshold delta passes", out)

    # "/threads:1" is the same series as the bare name: when a benchmark
    # grows ->Threads() variants, its single-threaded run must still be
    # compared against the old bare-name baseline (and regressions there
    # still fail).
    code, out = run_diff(
        {"BM_InstancePut4K": 100.0},
        {"BM_InstancePut4K/threads:1": 140.0,
         "BM_InstancePut4K/threads:4": 90.0},
        extra_args=("--threshold", "0.15"),
    )
    ok &= expect(code == 1, "threads:1 compared against bare-name baseline",
                 out)
    ok &= expect("BM_InstancePut4K/threads:4" in out and "(new)" in out,
                 "other threads:N series stay distinct (new)", out)

    # And the same fold works in the other direction once the baseline
    # itself carries /threads:1 names.
    code, out = run_diff(
        {"BM_InstancePut4K/threads:1": 100.0,
         "BM_InstancePut4K/threads:4": 90.0},
        {"BM_InstancePut4K/threads:1": 101.0,
         "BM_InstancePut4K/threads:4": 91.0},
        extra_args=("--threshold", "0.15"),
    )
    ok &= expect(code == 0, "threads:N baselines compare cleanly", out)

    # --saturation mode: throughput at or above every floor passes, and
    # the "_comment" key in the committed floors file is ignored.
    floors = {"_comment": "doc", "qps_threads_1": 300, "qps_threads_4": 1000}
    code, out = run_saturation(
        floors, "qps_threads_1: 900\nqps_threads_4: 3500\nextra: 1\n")
    ok &= expect(code == 0, "throughput above floors passes", out)

    # A collapse below a floor fails even though no microbenchmark ran.
    code, out = run_saturation(
        floors, "qps_threads_1: 900\nqps_threads_4: 120\n")
    ok &= expect(code == 1, "throughput below a floor fails", out)
    ok &= expect("REGRESSION" in out, "floor violation flagged", out)

    # A floor key missing from the report fails (a silently skipped
    # saturation run must not read as green).
    code, out = run_saturation(floors, "qps_threads_1: 900\n")
    ok &= expect(code == 1, "missing floor key fails", out)

    print("bench_diff_test:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
