#!/usr/bin/env bash
# The CI pipeline, runnable locally stage by stage. The GitHub workflow
# (.github/workflows/ci.yml) is a thin matrix over these stages, so "CI is
# red" always reproduces with one command:
#
#   $ tools/ci.sh release   # Release build + full ctest suite
#   $ tools/ci.sh asan      # Debug + ASan/UBSan build + full ctest suite
#   $ tools/ci.sh tsan      # tools/check.sh (TSan gate, concurrency tests)
#   $ tools/ci.sh bench     # smoke-run micro benches, diff vs baseline
#   $ tools/ci.sh soak      # compressed million-user soak + admission gates
#   $ tools/ci.sh format    # clang-format check (skips if not installed)
#   $ tools/ci.sh all       # everything above, in order
#
# Each stage uses its own build tree (build-ci-*/, gitignored via build-*/)
# so they never contaminate a developer's default build/.
#
# The soak stage honours TIERA_SOAK_SCALE (phase-duration multiplier; the
# nightly workflow runs 10x the PR soak) and the bench stage honours
# TIERA_SATURATION_STRICT=1 (arms the 4-thread >= 3x 1-thread scaling gate,
# which needs real cores).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc)"

# ccache makes the four compiled lanes mostly cache hits on warm runners
# (ci.yml persists the cache dir across runs). Purely opportunistic: absent
# ccache, the stages build exactly as before.
cmake_launcher=()
if command -v ccache >/dev/null 2>&1; then
  cmake_launcher=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

stage_release() {
  echo "=== ci: release build + tests ==="
  cmake -B "${repo_root}/build-ci-release" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release "${cmake_launcher[@]}"
  cmake --build "${repo_root}/build-ci-release" -j "${jobs}"
  # --timeout caps each test so one hung binary fails fast instead of
  # stalling the lane until the job-level timeout.
  ctest --test-dir "${repo_root}/build-ci-release" --output-on-failure \
    --timeout 120 -j "${jobs}"
}

stage_asan() {
  echo "=== ci: ASan+UBSan build + tests ==="
  cmake -B "${repo_root}/build-ci-asan" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Debug -DTIERA_SANITIZE=address,undefined \
    "${cmake_launcher[@]}"
  cmake --build "${repo_root}/build-ci-asan" -j "${jobs}"
  # halt_on_error surfaces UBSan findings as test failures, not just logs.
  # Sanitized binaries run slower; still cap each test (see stage_release).
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ASAN_OPTIONS="detect_leaks=0" \
  ctest --test-dir "${repo_root}/build-ci-asan" --output-on-failure \
    --timeout 180 -j "${jobs}"
}

stage_tsan() {
  echo "=== ci: TSan gate (tools/check.sh) ==="
  "${repo_root}/tools/check.sh"
}

stage_bench() {
  echo "=== ci: bench smoke + regression diff ==="
  cmake -B "${repo_root}/build-ci-release" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release "${cmake_launcher[@]}"
  cmake --build "${repo_root}/build-ci-release" -j "${jobs}" \
    --target micro_primitives stage_smoke heat_smoke saturation_smoke
  # Reduced scale: this is a regression tripwire, not a measurement run.
  "${repo_root}/build-ci-release/bench/micro_primitives" \
    --benchmark_min_time=0.05 \
    --benchmark_format=json \
    --benchmark_out="${repo_root}/build-ci-release/BENCH_micro.json"
  # Tee the diff so the workflow can upload it as an artifact even when the
  # gate passes; the report is the evidence for "within threshold".
  python3 "${repo_root}/tools/bench_diff.py" \
    "${repo_root}/bench/BENCH_micro.json" \
    "${repo_root}/build-ci-release/BENCH_micro.json" \
    --threshold 0.15 \
    | tee "${repo_root}/build-ci-release/bench_diff_report.txt"
  # Cost-attribution gate: drives RPC PUT/GET/DELETE load with unsampled
  # stage timers and the profiler running, then asserts per-op stage sums
  # reconcile with whole-op latency within 10% and the folded stacks name
  # the journal/policy/tier-I/O frames. The report and folded profile are
  # uploaded as workflow artifacts (evidence for where hot-path time goes
  # at this commit).
  "${repo_root}/build-ci-release/bench/stage_smoke" \
    "${repo_root}/build-ci-release/stage_report.txt" \
    "${repo_root}/build-ci-release/profile.folded"
  # Heat-telemetry gate: zipfian PUT load over 100k distinct keys; the
  # reported per-tier top-20 must contain >= 90% of the true top-20, the
  # tracker's memory must hold its fixed bound, and per-rule cost bytes must
  # reconcile with tiera_instance_policy_bytes_total. The rendered heat/cost
  # report is uploaded as a workflow artifact.
  "${repo_root}/build-ci-release/bench/heat_smoke" \
    "${repo_root}/build-ci-release/heat_report.txt"
  # Request-core saturation gate: end-to-end QPS through the epoll reactor
  # and per-core shards at 1/4/8 client threads with journal_sync on. Hard
  # gates: zero request errors, fsyncs*4 < records under saturation (group
  # commit really coalesces), no throughput collapse under concurrency. The
  # 4-thread >= 3x 1-thread scaling gate only arms when
  # TIERA_SATURATION_STRICT=1 (it needs real cores; CI containers often
  # pin us to one). The report is uploaded as a workflow artifact.
  "${repo_root}/build-ci-release/bench/saturation_smoke" \
    "${repo_root}/build-ci-release/saturation_report.txt"
  # Fold the end-to-end QPS numbers into the regression report: the report's
  # qps_threads_* lines are checked against the committed floors in
  # bench/BENCH_saturation.json, so a throughput collapse fails the lane
  # even when every microbenchmark is still green.
  python3 "${repo_root}/tools/bench_diff.py" \
    --saturation "${repo_root}/bench/BENCH_saturation.json" \
    "${repo_root}/build-ci-release/saturation_report.txt" \
    | tee -a "${repo_root}/build-ci-release/bench_diff_report.txt"
}

stage_soak() {
  echo "=== ci: soak (compressed million-user replay + admission gates) ==="
  cmake -B "${repo_root}/build-ci-release" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release "${cmake_launcher[@]}"
  cmake --build "${repo_root}/build-ci-release" -j "${jobs}" \
    --target soak_runner
  # ~65 s of wall clock at the default scale: zipfian million-user traffic
  # on a diurnal curve, one flash crowd past the fast tier's modelled
  # capacity, one failure storm on the durable tier. Gates: zero unexpected
  # client errors (sheds excluded), the shedder engaged during the crowd,
  # peak RSS under the ceiling, and the run ends with breakers closed, SLOs
  # green and the shed level back to none. The report is uploaded as a
  # workflow artifact. TIERA_SOAK_SCALE multiplies the phase durations
  # (nightly runs 10x).
  "${repo_root}/build-ci-release/bench/soak_runner" \
    "${repo_root}/build-ci-release/soak_report.txt"
}

stage_format() {
  echo "=== ci: clang-format check ==="
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "clang-format not installed; skipping format check"
    return 0
  fi
  local fail=0
  while IFS= read -r file; do
    if ! clang-format --style=file --dry-run --Werror "${file}"; then
      fail=1
    fi
  done < <(git -C "${repo_root}" ls-files '*.cpp' '*.h')
  if [[ ${fail} -ne 0 ]]; then
    echo "format check failed; run: git ls-files '*.cpp' '*.h' | xargs clang-format -i"
    return 1
  fi
  echo "format check passed"
}

usage() {
  sed -n '2,20p' "$0"
  exit 2
}

[[ $# -eq 1 ]] || usage
case "$1" in
  release) stage_release ;;
  asan) stage_asan ;;
  tsan) stage_tsan ;;
  bench) stage_bench ;;
  soak) stage_soak ;;
  format) stage_format ;;
  all)
    stage_format
    stage_release
    stage_asan
    stage_tsan
    stage_bench
    stage_soak
    ;;
  *) usage ;;
esac
