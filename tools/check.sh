#!/usr/bin/env bash
# ThreadSanitizer gate for the concurrency-sensitive subsystems.
#
# Configures a dedicated build tree (build-tsan/, gitignored via build-*/)
# with -DTIERA_SANITIZE=thread, builds it, and runs the observability, core
# and common test binaries — the ones exercising the trace ring, the
# context-carrying thread pool, and the control layer's response pool —
# under TSan. Any data race fails the script.
#
#   $ tools/check.sh            # default: obs/core/common tests
#   $ tools/check.sh -R regex   # pass an explicit ctest filter instead
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

# core_templates_test is wall-clock-sensitive (modelled-latency eviction
# deadlines; RUN_SERIAL even in normal runs) and flakes under TSan's ~10x
# slowdown, so the gate skips it rather than chase timing, not races.
filter=(-R '^(obs_|core_|common_)' -E '^core_templates_test$')
if [[ $# -gt 0 ]]; then
  filter=("$@")
fi

cmake -B "${build_dir}" -S "${repo_root}" -DTIERA_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error keeps CI logs short: the first unsuppressed race aborts the
# binary. tsan.supp is empty by design (the historical TCP shutdown races
# were fixed at the source); it stays wired up so a future suppression is a
# one-line, reviewed change.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1} \
suppressions=${repo_root}/tools/tsan.supp"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
  "${filter[@]}"
