#!/usr/bin/env bash
# ThreadSanitizer gate for the concurrency-sensitive subsystems.
#
# Configures a dedicated build tree (build-tsan/, gitignored via build-*/)
# with -DTIERA_SANITIZE=thread, builds it, and runs the observability, core
# and common test binaries — the ones exercising the trace ring, the
# context-carrying thread pool, and the control layer's response pool —
# plus the epoll-reactor, group-commit and segment-log suites (event loops,
# per-core shards and the coalesced journal are the most race-prone code in
# the tree) under TSan. Any data race fails the script.
#
#   $ tools/check.sh            # default: obs/core/common tests
#   $ tools/check.sh -R regex   # pass an explicit ctest filter instead
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

# core_templates_test and core_slo_integration_test are wall-clock-sensitive
# (modelled-latency eviction deadlines; a 1 s real-time SLO window) and fail
# under TSan's ~10x slowdown on small machines — timing, not races. The gate
# skips them; their concurrency surface stays covered by obs_slo_test and
# the core concurrency suites.
filter=(-R '^(obs_|core_|common_)|^(net_reactor_test|net_rpc_test|metadb_group_commit_test|store_segment_log_test)$' -E '^(core_templates_test|core_slo_integration_test)$')
if [[ $# -gt 0 ]]; then
  filter=("$@")
fi

# Opportunistic ccache (same wiring as tools/ci.sh): the TSan tree rebuilds
# from scratch on CI runners, and compiler launches dominate that time.
launcher=()
if command -v ccache >/dev/null 2>&1; then
  launcher=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "${build_dir}" -S "${repo_root}" -DTIERA_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo "${launcher[@]}"
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error keeps CI logs short: the first unsuppressed race aborts the
# binary. tsan.supp is empty by design (the historical TCP shutdown races
# were fixed at the source); it stays wired up so a future suppression is a
# one-line, reviewed change.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1} \
suppressions=${repo_root}/tools/tsan.supp"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
  "${filter[@]}"
