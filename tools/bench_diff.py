#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Usage:
    tools/bench_diff.py BASELINE CURRENT [--threshold 0.15] [--metric cpu_time]
    tools/bench_diff.py --saturation FLOORS REPORT

Exits non-zero when any benchmark present in both files regressed by more
than the threshold (relative slowdown of the chosen metric). Benchmarks that
appear in only one file are reported but never fail the check, so adding or
removing a benchmark does not require regenerating the baseline in the same
commit.

The baseline is committed at bench/BENCH_micro.json and regenerated with:
    build/bench/micro_primitives --benchmark_min_time=0.05 \
        --benchmark_format=json --benchmark_out=bench/BENCH_micro.json

Microbenchmark timings wobble across machines and runs; 15% default
threshold is deliberately loose — this is a tripwire for order-of-magnitude
mistakes (an accidental O(n^2), a lock on the data path), not a precision
instrument.

--saturation folds end-to-end throughput into the same gate: FLOORS is the
committed bench/BENCH_saturation.json ({"qps_threads_1": N, ...} absolute
QPS floors, set far below any healthy machine's numbers), REPORT is the
"key: value" report saturation_smoke wrote. Any matching qps_* line below
its floor fails the check — a throughput collapse is a regression even when
every microbenchmark is still green.
"""

import argparse
import json
import sys


def canonical_name(name):
    """Folds the single-threaded series onto the bare benchmark name.

    google-benchmark renames `BM_X` to `BM_X/threads:1` the moment the
    registration gains `->Threads(...)` variants; the measured work is
    identical, so treating them as the same series keeps history comparable
    when a benchmark grows threaded variants. Other `/threads:N` series stay
    distinct.
    """
    if name.endswith("/threads:1"):
        return name[: -len("/threads:1")]
    return name


def load_benchmarks(path, metric):
    """Returns {name: metric_value} for the aggregate-free benchmark entries."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        value = entry.get(metric)
        if name is None or value is None:
            continue
        out[canonical_name(name)] = float(value)
    return out


def parse_report(path):
    """Parses saturation_smoke's "key: value" report into {key: float}."""
    out = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if ":" not in line:
                continue
            key, _, value = line.partition(":")
            try:
                out[key.strip()] = float(value.strip())
            except ValueError:
                continue
    return out


def check_saturation(floors_path, report_path):
    with open(floors_path, "r", encoding="utf-8") as fh:
        floors = {
            k: v for k, v in json.load(fh).items() if not k.startswith("_")
        }
    report = parse_report(report_path)
    failures = []
    width = max(len(k) for k in floors) if floors else 10
    print(f"{'throughput':<{width}}  {'floor':>12}  {'current':>12}")
    for key in sorted(floors):
        floor = float(floors[key])
        current = report.get(key)
        if current is None:
            failures.append((key, "missing from report"))
            print(f"{key:<{width}}  {floor:>12.0f}  {'-':>12}  << MISSING")
            continue
        flag = ""
        if current < floor:
            flag = "  << REGRESSION"
            failures.append((key, f"{current:.0f} < floor {floor:.0f}"))
        print(f"{key:<{width}}  {floor:>12.0f}  {current:>12.0f}{flag}")
    if failures:
        print(f"\nbench_diff: {len(failures)} throughput floor(s) violated:")
        for key, why in failures:
            print(f"  {key}: {why}")
        return 1
    print(f"\nbench_diff: OK ({len(floors)} throughput floors held)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("current", nargs="?", help="freshly generated JSON")
    parser.add_argument(
        "--saturation",
        nargs=2,
        metavar=("FLOORS", "REPORT"),
        help="check saturation_smoke REPORT against the FLOORS JSON "
        "instead of (or in addition to) the microbenchmark diff",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max allowed relative slowdown (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--metric",
        default="cpu_time",
        help="benchmark field to compare (default cpu_time)",
    )
    args = parser.parse_args()

    if args.saturation:
        rc = check_saturation(args.saturation[0], args.saturation[1])
        if args.baseline is None:
            return rc
        if rc != 0:
            return rc
    if args.baseline is None or args.current is None:
        parser.error("BASELINE and CURRENT are required without --saturation")

    baseline = load_benchmarks(args.baseline, args.metric)
    current = load_benchmarks(args.current, args.metric)
    if not baseline:
        print(f"bench_diff: no benchmarks in baseline {args.baseline}")
        return 2
    if not current:
        print(f"bench_diff: no benchmarks in current run {args.current}")
        return 2

    regressions = []
    added = []
    removed = []
    width = max(len(n) for n in sorted(set(baseline) | set(current)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            added.append(name)
            print(f"{name:<{width}}  {'-':>12}  {current[name]:>12.1f}  (new)")
            continue
        if name not in current:
            removed.append(name)
            print(f"{name:<{width}}  {baseline[name]:>12.1f}  {'-':>12}  (gone)")
            continue
        base, cur = baseline[name], current[name]
        delta = (cur - base) / base if base > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, delta))
        print(
            f"{name:<{width}}  {base:>12.1f}  {cur:>12.1f}  "
            f"{delta:+7.1%}{flag}"
        )

    # Benchmarks present in only one file are informational: new benches land
    # without a baseline refresh in the same commit, and retired ones do not
    # block the check either.
    if added:
        print(f"\nbench_diff: {len(added)} benchmark(s) not in baseline "
              f"(informational, never fail the diff):")
        for name in added:
            print(f"  {name} (new)")
    if removed:
        print(f"\nbench_diff: {len(removed)} baseline benchmark(s) missing "
              f"from the current run (informational):")
        for name in removed:
            print(f"  {name} (gone)")

    if regressions:
        print(
            f"\nbench_diff: {len(regressions)} benchmark(s) regressed more "
            f"than {args.threshold:.0%}:"
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        return 1
    compared = len(set(baseline) & set(current))
    print(f"\nbench_diff: OK ({compared} benchmarks within "
          f"{args.threshold:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
