#include "common/hash.h"

#include <gtest/gtest.h>

namespace tiera {
namespace {

TEST(Fnv1aTest, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1aTest, DistinguishesInputs) {
  EXPECT_NE(fnv1a64("tier1"), fnv1a64("tier2"));
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  Bytes zeros(32, 0);
  EXPECT_EQ(crc32c(as_view(zeros)), 0x8a9136aau);
  // "123456789" -> 0xe3069283
  EXPECT_EQ(crc32c(as_view(std::string_view("123456789"))), 0xe3069283u);
}

TEST(Crc32cTest, SeedChainingEqualsConcatenation) {
  const Bytes a = to_bytes("hello ");
  const Bytes b = to_bytes("world");
  const Bytes ab = to_bytes("hello world");
  // Incremental CRC over two chunks must equal the CRC of the whole.
  EXPECT_EQ(crc32c(as_view(b), crc32c(as_view(a))), crc32c(as_view(ab)));
}

TEST(Sha256Test, KnownVectors) {
  EXPECT_EQ(Sha256::hex_digest(as_view(std::string_view(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::hex_digest(as_view(std::string_view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Sha256::hex_digest(as_view(std::string_view(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes payload = make_payload(10'000, 7);
  Sha256 h;
  // Feed in awkward chunk sizes spanning block boundaries.
  std::size_t off = 0;
  const std::size_t chunks[] = {1, 63, 64, 65, 127, 1000, 8680};
  for (std::size_t c : chunks) {
    h.update(ByteView(payload.data() + off, c));
    off += c;
  }
  ASSERT_EQ(off, payload.size());
  EXPECT_EQ(h.finish(), Sha256::digest(as_view(payload)));
}

TEST(Sha256Test, ExactBlockBoundaryInput) {
  const Bytes block(64, 0x41);
  const Bytes two_blocks(128, 0x41);
  EXPECT_NE(Sha256::digest(as_view(block)), Sha256::digest(as_view(two_blocks)));
  // 55/56 byte inputs straddle the padding split.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u}) {
    Bytes data(n, 0x42);
    Sha256 h;
    h.update(as_view(data));
    EXPECT_EQ(h.finish(), Sha256::digest(as_view(data))) << n;
  }
}

TEST(ToHexTest, Formats) {
  const Bytes data = {0x00, 0x0f, 0xab, 0xff};
  EXPECT_EQ(to_hex(as_view(data)), "000fabff");
}

}  // namespace
}  // namespace tiera
