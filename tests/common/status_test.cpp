#include "common/status.h"

#include <gtest/gtest.h>

namespace tiera {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").is_not_found());
  EXPECT_TRUE(Status::Unavailable().is_unavailable());
  EXPECT_TRUE(Status::TimedOut().is_timed_out());
  EXPECT_TRUE(Status::CapacityExceeded().is_capacity_exceeded());
  EXPECT_FALSE(Status::NotFound().ok());
  EXPECT_EQ(Status::Corruption("bad crc").message(), "bad crc");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::InvalidArgument("flag must be set");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: flag must be set");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Internal());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(to_string(StatusCode::kOk), "OK");
  EXPECT_EQ(to_string(StatusCode::kCapacityExceeded), "CAPACITY_EXCEEDED");
  EXPECT_EQ(to_string(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().is_not_found());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string value = std::move(r).value();
  EXPECT_EQ(value, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status helper_that_fails() { return Status::TimedOut("deadline"); }

Status propagates() {
  TIERA_RETURN_IF_ERROR(helper_that_fails());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(propagates().is_timed_out());
}

}  // namespace
}  // namespace tiera
