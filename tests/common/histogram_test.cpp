#include "common/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tiera {
namespace {

TEST(LatencyHistogramTest, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ms(), 0.0);
  EXPECT_EQ(h.percentile_ms(0.95), 0.0);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.record_ms(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.mean_ms(), 5.0, 1e-9);
  EXPECT_NEAR(h.percentile_ms(0.5), 5.0, 0.5);
  EXPECT_NEAR(h.min_ms(), 5.0, 1e-9);
  EXPECT_NEAR(h.max_ms(), 5.0, 1e-9);
}

TEST(LatencyHistogramTest, PercentilesOrdered) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record_ms(i * 0.1);
  const double p50 = h.percentile_ms(0.50);
  const double p95 = h.percentile_ms(0.95);
  const double p99 = h.percentile_ms(0.99);
  EXPECT_LT(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 50.0, 5.0);
  EXPECT_NEAR(p95, 95.0, 6.0);
}

TEST(LatencyHistogramTest, BucketsBoundRelativeError) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record_ms(123.0);
  // ~4.6% bucket width → p50 within 6% of the true value.
  EXPECT_NEAR(h.percentile_ms(0.5), 123.0, 123.0 * 0.06);
}

TEST(LatencyHistogramTest, MergeCombines) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record_ms(1.0);
  for (int i = 0; i < 100; ++i) b.record_ms(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(a.mean_ms(), 50.5, 1.0);
  EXPECT_NEAR(a.min_ms(), 1.0, 1e-9);
  EXPECT_NEAR(a.max_ms(), 100.0, 1e-9);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.record_ms(10);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ms(), 0.0);
}

TEST(LatencyHistogramTest, MergeOfEmptyHistogramsStaysEmpty) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.percentile_ms(0.99), 0.0);
  EXPECT_EQ(a.mean_ms(), 0.0);

  // Merging an empty histogram into a populated one must not disturb it —
  // in particular the empty side's +inf/-inf min/max sentinels must not
  // leak into the target.
  LatencyHistogram c;
  c.record_ms(4.0);
  c.merge(b);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_GT(c.min_ms(), 0.0);
  EXPECT_LT(c.max_ms(), 1e9);

  // And the reverse: empty absorbs populated wholesale.
  b.merge(c);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_NEAR(b.mean_ms(), 4.0, 0.25);
}

TEST(LatencyHistogramTest, SingleSampleQuantilesAllAgree) {
  LatencyHistogram h;
  h.record_ms(7.0);
  // With one sample every quantile is that sample; the histogram reports
  // min(bucket upper edge, max) so the answer is exact, not an edge.
  for (const double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile_ms(q), 7.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeNewSinceDoesNotDoubleCount) {
  LatencyHistogram live;
  LatencyHistogram sink;
  LatencyHistogram cursor;
  live.record_ms(1.0);
  sink.merge_new_since(live, cursor);
  EXPECT_EQ(sink.count(), 1u);
  // A second sync with no new samples must move nothing.
  sink.merge_new_since(live, cursor);
  EXPECT_EQ(sink.count(), 1u);
  live.record_ms(2.0);
  sink.merge_new_since(live, cursor);
  EXPECT_EQ(sink.count(), 2u);
}

TEST(LatencyHistogramTest, ConcurrentRecording) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10'000; ++i) h.record_ms(1.0 + (i % 10));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), 80'000u);
}

TEST(LatencyHistogramTest, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.record_ms(2.5);
  const std::string s = h.summary();
  EXPECT_NE(s.find("p95"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(LatencyHistogramTest, ExtremeValues) {
  LatencyHistogram h;
  h.record_ms(0.0);        // clamps at the smallest bucket
  h.record_ms(1e6);        // clamps at the largest bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.percentile_ms(1.0), h.percentile_ms(0.01));
}

TEST(ThroughputMeterTest, CountsOps) {
  ThroughputMeter m;
  m.add();
  m.add(9);
  EXPECT_EQ(m.total(), 10u);
  EXPECT_GT(m.ops_per_sec(), 0.0);
  m.reset();
  EXPECT_EQ(m.total(), 0u);
}

}  // namespace
}  // namespace tiera
