// Tests for clock/time-scale, thread pool, rate limiter, bytes helpers and
// logging plumbing.
#include <gtest/gtest.h>

#include <atomic>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/rate_limiter.h"
#include "common/thread_pool.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::ZeroLatencyScope;

TEST(ClockTest, TimeScaleDefaultsApplied) {
  ZeroLatencyScope scope(0.5);
  EXPECT_DOUBLE_EQ(time_scale(), 0.5);
}

TEST(ClockTest, ZeroScaleSkipsDelay) {
  ZeroLatencyScope scope(0.0);
  Stopwatch w;
  apply_model_delay(std::chrono::seconds(10));
  EXPECT_LT(w.elapsed_ms(), 50.0);
}

TEST(ClockTest, ScaledDelaySleepsProportionally) {
  ZeroLatencyScope scope(0.01);
  Stopwatch w;
  apply_model_delay(from_ms(500));  // 500ms modelled -> 5ms wall
  const double elapsed = w.elapsed_ms();
  EXPECT_GE(elapsed, 4.0);
  EXPECT_LT(elapsed, 200.0);  // generous: CI hosts stall
}

TEST(ClockTest, PreciseSleepShortDurations) {
  Stopwatch w;
  precise_sleep(std::chrono::microseconds(200));
  EXPECT_GE(w.elapsed(), std::chrono::microseconds(190));
}

TEST(ClockTest, ConversionHelpers) {
  EXPECT_DOUBLE_EQ(to_ms(from_ms(12.5)), 12.5);
  EXPECT_NEAR(to_seconds(from_ms(1500)), 1.5, 1e-9);
}

TEST(BytesTest, StringRoundTrip) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(to_string(as_view(b)), "hello");
}

TEST(BytesTest, AppendConcatenates) {
  Bytes out = to_bytes("ab");
  append(out, std::string_view("cd"));
  EXPECT_EQ(to_string(as_view(out)), "abcd");
}

TEST(BytesTest, MakePayloadDeterministicBySeed) {
  EXPECT_EQ(make_payload(1000, 1), make_payload(1000, 1));
  EXPECT_NE(make_payload(1000, 1), make_payload(1000, 2));
  EXPECT_EQ(make_payload(0, 1).size(), 0u);
  EXPECT_EQ(make_payload(13, 3).size(), 13u);  // non-multiple of 8
}

TEST(ThreadPoolTest, ExecutesSubmittedWork) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, FutureResults) {
  ThreadPool pool(2);
  auto f = pool.submit_with_result([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPoolTest, ShutdownIdempotentAndJoins) {
  auto pool = std::make_unique<ThreadPool>(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) pool->submit([&done] { done.fetch_add(1); });
  pool->shutdown();
  pool->shutdown();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, WaitIdleWaitsForInFlightWork) {
  ThreadPool pool(2);
  std::atomic<bool> finished{false};
  pool.submit([&finished] {
    precise_sleep(from_ms(20));
    finished.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(finished.load());
}

TEST(RateLimiterTest, UnlimitedNeverBlocks) {
  RateLimiter limiter(0);
  Stopwatch w;
  limiter.acquire(100'000'000);
  EXPECT_LT(w.elapsed_ms(), 10.0);
  EXPECT_TRUE(limiter.unlimited());
}

TEST(RateLimiterTest, ThrottlesToConfiguredRate) {
  ZeroLatencyScope scope(1.0);
  RateLimiter limiter(1'000'000, /*burst_seconds=*/0.01);  // 1 MB/s
  limiter.acquire(10'000);  // drain burst
  Stopwatch w;
  limiter.acquire(25'000);
  limiter.acquire(25'000);  // ~50ms total debt at 1 MB/s
  const double elapsed = w.elapsed_ms();
  EXPECT_GE(elapsed, 25.0);
  EXPECT_LT(elapsed, 1000.0);  // generous upper bound for loaded hosts
}

TEST(RateLimiterTest, AdmitsRequestsLargerThanBurst) {
  ZeroLatencyScope scope(1.0);
  RateLimiter limiter(10'000'000, /*burst_seconds=*/0.001);  // 10 KB bucket
  Stopwatch w;
  limiter.acquire(200'000);  // 20x the bucket: must not hang
  EXPECT_LT(w.elapsed_ms(), 500.0);
}

TEST(RateLimiterTest, TryAcquireRespectsTokens) {
  RateLimiter limiter(1000, /*burst_seconds=*/1.0);  // bucket of ~1000
  EXPECT_TRUE(limiter.try_acquire(500));
  EXPECT_FALSE(limiter.try_acquire(10'000'000));
}

TEST(LoggingTest, LevelGate) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  TIERA_LOG(kDebug, "test") << "suppressed";
  TIERA_LOG(kError, "test") << "visible in stderr";
  set_log_level(prev);
}

}  // namespace
}  // namespace tiera
