#include "common/compress.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tiera {
namespace {

TEST(CompressTest, EmptyRoundTrip) {
  const Bytes packed = lz_compress({});
  Result<Bytes> out = lz_decompress(as_view(packed));
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out->empty());
}

TEST(CompressTest, RedundantDataShrinks) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) append(data, std::string_view("tiera-tier "));
  const Bytes packed = lz_compress(as_view(data));
  EXPECT_LT(packed.size(), data.size() / 4);
  Result<Bytes> out = lz_decompress(as_view(packed));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
}

TEST(CompressTest, RandomDataRoundTripsWithBoundedExpansion) {
  const Bytes data = make_payload(100'000, 99);
  const Bytes packed = lz_compress(as_view(data));
  EXPECT_LE(packed.size(), data.size() + data.size() / 255 + 64);
  Result<Bytes> out = lz_decompress(as_view(packed));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
}

TEST(CompressTest, SingleByteRuns) {
  Bytes data(5000, 0x7A);
  const Bytes packed = lz_compress(as_view(data));
  EXPECT_LT(packed.size(), 200u);
  Result<Bytes> out = lz_decompress(as_view(packed));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
}

TEST(CompressTest, DetectsMagic) {
  const Bytes packed = lz_compress(as_view(std::string_view("hello")));
  EXPECT_TRUE(lz_is_compressed(as_view(packed)));
  EXPECT_FALSE(lz_is_compressed(as_view(std::string_view("hello"))));
}

TEST(CompressTest, RejectsGarbage) {
  const Bytes garbage = make_payload(100, 1);
  EXPECT_FALSE(lz_decompress(as_view(garbage)).ok());
}

TEST(CompressTest, RejectsTruncatedFrame) {
  Bytes data;
  for (int i = 0; i < 100; ++i) append(data, std::string_view("abcabcabc"));
  Bytes packed = lz_compress(as_view(data));
  packed.resize(packed.size() / 2);
  Result<Bytes> out = lz_decompress(as_view(packed));
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(CompressTest, RejectsCorruptedBody) {
  Bytes data;
  for (int i = 0; i < 200; ++i) append(data, std::string_view("xyzzyxyzzy"));
  Bytes packed = lz_compress(as_view(data));
  packed[packed.size() / 2] ^= 0xFF;
  EXPECT_FALSE(lz_decompress(as_view(packed)).ok());
}

// Property: round trip holds across sizes and content styles.
class CompressRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(CompressRoundTrip, Holds) {
  const auto [size, style] = GetParam();
  Bytes data;
  Rng rng(size * 31 + style);
  switch (style) {
    case 0:  // random
      data = make_payload(size, size);
      break;
    case 1:  // repeated phrase
      while (data.size() < size) append(data, std::string_view("repetition!"));
      data.resize(size);
      break;
    case 2:  // low-entropy random (many repeats)
      data.resize(size);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(4));
      break;
  }
  Result<Bytes> out = lz_decompress(as_view(lz_compress(as_view(data))));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndStyles, CompressRoundTrip,
    ::testing::Combine(::testing::Values(1, 3, 4, 5, 64, 1000, 4096, 70000),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace tiera
