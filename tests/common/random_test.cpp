#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace tiera {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(456);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_in(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformityRough) {
  Rng rng(4);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) counts[rng.next_below(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(UniformDistributionTest, CoversKeyspace) {
  Rng rng(5);
  UniformDistribution dist(100);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100'000; ++i) counts[dist.next(rng)]++;
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(ZipfianDistributionTest, SkewConcentratesMass) {
  Rng rng(6);
  ZipfianDistribution dist(10'000, 0.99, /*scrambled=*/false);
  std::map<std::uint64_t, int> counts;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) counts[dist.next(rng)]++;
  // Unscrambled zipfian: rank 0 is the hottest key; the top 10 ranks should
  // hold a large share of accesses.
  int top10 = 0;
  for (std::uint64_t r = 0; r < 10; ++r) top10 += counts[r];
  EXPECT_GT(static_cast<double>(top10) / n, 0.30);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(ZipfianDistributionTest, HigherThetaIsMoreSkewed) {
  Rng rng1(7), rng2(7);
  ZipfianDistribution mild(10'000, 0.8, false);
  ZipfianDistribution steep(10'000, 1.2, false);
  int mild_top = 0, steep_top = 0;
  for (int i = 0; i < 100'000; ++i) {
    if (mild.next(rng1) == 0) ++mild_top;
    if (steep.next(rng2) == 0) ++steep_top;
  }
  EXPECT_GT(steep_top, mild_top);
}

TEST(ZipfianDistributionTest, ScrambledStaysInRangeAndSpreads) {
  Rng rng(8);
  ZipfianDistribution dist(1000, 0.99, /*scrambled=*/true);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50'000; ++i) {
    const auto k = dist.next(rng);
    ASSERT_LT(k, 1000u);
    counts[k]++;
  }
  // The hottest scrambled key should not be key 0 systematically; just check
  // a healthy number of distinct keys get traffic.
  EXPECT_GT(counts.size(), 300u);
}

TEST(SpecialDistributionTest, HotFractionGetsConfiguredShare) {
  Rng rng(9);
  // 10% of keys get 80% of accesses — the paper's sysbench workload shape.
  SpecialDistribution dist(10'000, 0.10, 0.80);
  const std::uint64_t hot_n = dist.hot_count();
  EXPECT_EQ(hot_n, 1000u);
  int hot_hits = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    if (dist.next(rng) < hot_n) ++hot_hits;
  }
  // 80% targeted + ~10% of the uniform remainder also lands in the hot set.
  const double expected = 0.80 + 0.20 * 0.10;
  EXPECT_NEAR(static_cast<double>(hot_hits) / n, expected, 0.02);
}

TEST(SpecialDistributionTest, DegenerateFractions) {
  Rng rng(10);
  SpecialDistribution tiny(100, 0.0);  // clamps to one hot key
  EXPECT_EQ(tiny.hot_count(), 1u);
  SpecialDistribution all(100, 1.0);
  EXPECT_EQ(all.hot_count(), 100u);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(all.next(rng), 100u);
}

TEST(LatestDistributionTest, FavorsRecentKeys) {
  Rng rng(11);
  LatestDistribution dist(1000);
  int high_half = 0;
  for (int i = 0; i < 50'000; ++i) {
    if (dist.next(rng) >= 500) ++high_half;
  }
  EXPECT_GT(high_half, 35'000);
  dist.set_max(2000);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(dist.next(rng), 2000u);
}

TEST(Mix64Test, AvalancheAndDeterminism) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t d = mix64(42) ^ mix64(42 ^ 1);
  EXPECT_GT(__builtin_popcountll(d), 16);
  EXPECT_LT(__builtin_popcountll(d), 48);
}

}  // namespace
}  // namespace tiera
