#include "common/trace_context.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace tiera {
namespace {

TEST(TraceContextTest, DefaultIsInvalid) {
  EXPECT_FALSE(TraceContext{}.valid());
  // A fresh test thread has no ambient context.
  std::thread([] { EXPECT_FALSE(current_trace_context().valid()); }).join();
}

TEST(TraceContextTest, RootScopeMintsTraceAndInstallsAmbient) {
  std::thread([] {
    ASSERT_FALSE(current_trace_context().valid());
    {
      TraceScope root;
      EXPECT_NE(root.trace_id(), 0u);
      EXPECT_NE(root.span_id(), 0u);
      EXPECT_EQ(root.parent_span_id(), 0u);  // no parent: it's a root
      const TraceContext ambient = current_trace_context();
      EXPECT_EQ(ambient.trace_id, root.trace_id());
      EXPECT_EQ(ambient.span_id, root.span_id());
    }
    // Scope exit restores the previous (empty) context.
    EXPECT_FALSE(current_trace_context().valid());
  }).join();
}

TEST(TraceContextTest, NestedScopeBecomesChild) {
  std::thread([] {
    TraceScope root;
    {
      TraceScope child;
      EXPECT_EQ(child.trace_id(), root.trace_id());  // same trace
      EXPECT_EQ(child.parent_span_id(), root.span_id());
      EXPECT_NE(child.span_id(), root.span_id());
      EXPECT_EQ(current_trace_context().span_id, child.span_id());
    }
    // Popping the child re-exposes the root as ambient.
    EXPECT_EQ(current_trace_context().span_id, root.span_id());
  }).join();
}

TEST(TraceContextTest, ScopedTraceContextRestoresPrior) {
  std::thread([] {
    {
      ScopedTraceContext outer({7, 8});
      EXPECT_EQ(current_trace_context().trace_id, 7u);
      {
        ScopedTraceContext inner({9, 10});
        EXPECT_EQ(current_trace_context().trace_id, 9u);
        EXPECT_EQ(current_trace_context().span_id, 10u);
      }
      EXPECT_EQ(current_trace_context().trace_id, 7u);
      EXPECT_EQ(current_trace_context().span_id, 8u);
    }
    EXPECT_FALSE(current_trace_context().valid());
  }).join();
}

TEST(TraceContextTest, ThreadPoolCarriesSubmitterContext) {
  ThreadPool pool(2);

  // Task submitted under a live scope: the worker sees the submitter's
  // context, so a span opened in the task becomes the scope's child.
  TraceContext seen{};
  std::uint64_t child_trace = 0, child_parent = 0;
  std::uint64_t want_trace = 0, want_span = 0;
  {
    std::promise<void> done;
    auto wait = done.get_future();
    TraceScope request;
    want_trace = request.trace_id();
    want_span = request.span_id();
    pool.submit([&] {
      seen = current_trace_context();
      TraceScope response;
      child_trace = response.trace_id();
      child_parent = response.parent_span_id();
      done.set_value();
    });
    wait.wait();
  }
  EXPECT_EQ(seen.trace_id, want_trace);
  EXPECT_EQ(seen.span_id, want_span);
  EXPECT_EQ(child_trace, want_trace);
  EXPECT_EQ(child_parent, want_span);

  // Task submitted with no scope: the worker runs context-free (spans it
  // opens are fresh roots), even though the worker thread just executed a
  // context-carrying task.
  std::promise<TraceContext> bare;
  auto bare_ctx = bare.get_future();
  pool.submit([&] { bare.set_value(current_trace_context()); });
  EXPECT_FALSE(bare_ctx.get().valid());
}

TEST(TraceContextTest, IdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::uint64_t> ids(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ids[t * kPerThread + i] = next_span_id();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  for (const auto id : ids) EXPECT_NE(id, 0u);
}

}  // namespace
}  // namespace tiera
