#include "common/crypto.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tiera {
namespace {

TEST(CryptoTest, RoundTrip) {
  const ChaChaKey key = derive_key("hunter2");
  const Bytes plain = to_bytes("the quick brown fox");
  const Bytes framed = chacha_encrypt(as_view(plain), key, 1);
  EXPECT_TRUE(chacha_is_encrypted(as_view(framed)));
  Result<Bytes> out = chacha_decrypt(as_view(framed), key);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, plain);
}

TEST(CryptoTest, CiphertextDiffersFromPlaintext) {
  const ChaChaKey key = derive_key("k");
  const Bytes plain = make_payload(4096, 5);
  const Bytes framed = chacha_encrypt(as_view(plain), key, 2);
  ASSERT_GT(framed.size(), plain.size());
  // The ciphertext body must not contain the plaintext bytes verbatim.
  EXPECT_NE(Bytes(framed.begin() + 16, framed.begin() + 16 + 64),
            Bytes(plain.begin(), plain.begin() + 64));
}

TEST(CryptoTest, WrongKeyRejected) {
  const Bytes plain = to_bytes("secret");
  const Bytes framed = chacha_encrypt(as_view(plain), derive_key("right"), 3);
  Result<Bytes> out = chacha_decrypt(as_view(framed), derive_key("wrong"));
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(CryptoTest, TamperedCiphertextRejected) {
  const ChaChaKey key = derive_key("k2");
  Bytes framed = chacha_encrypt(as_view(make_payload(1000, 9)), key, 4);
  framed[200] ^= 0x01;
  EXPECT_FALSE(chacha_decrypt(as_view(framed), key).ok());
}

TEST(CryptoTest, GarbageRejected) {
  EXPECT_FALSE(
      chacha_decrypt(as_view(std::string_view("short")), derive_key("k")).ok());
  const Bytes garbage = make_payload(100, 3);
  EXPECT_FALSE(chacha_decrypt(as_view(garbage), derive_key("k")).ok());
}

TEST(CryptoTest, DistinctNonceSeedsGiveDistinctCiphertexts) {
  const ChaChaKey key = derive_key("k3");
  const Bytes plain = make_payload(256, 11);
  const Bytes a = chacha_encrypt(as_view(plain), key, 100);
  const Bytes b = chacha_encrypt(as_view(plain), key, 101);
  EXPECT_NE(a, b);
}

TEST(CryptoTest, KeyDerivationIsDeterministicAndSensitive) {
  EXPECT_EQ(derive_key("phrase"), derive_key("phrase"));
  EXPECT_NE(derive_key("phrase"), derive_key("Phrase"));
}

class CryptoRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CryptoRoundTrip, HoldsAcrossSizes) {
  const std::size_t size = GetParam();
  const ChaChaKey key = derive_key("param");
  const Bytes plain = make_payload(size, size * 7 + 1);
  Result<Bytes> out =
      chacha_decrypt(as_view(chacha_encrypt(as_view(plain), key, size)), key);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, plain);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CryptoRoundTrip,
                         ::testing::Values(0, 1, 63, 64, 65, 128, 4096,
                                           100'000));

}  // namespace
}  // namespace tiera
