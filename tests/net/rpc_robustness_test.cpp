// Robustness of the RPC layer against malformed, truncated, and hostile
// input: the server must survive and keep serving well-formed clients.
#include <gtest/gtest.h>

#include <thread>

#include "net/tiera_service.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class RpcRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceConfig config;
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 8 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    instance_ = std::move(instance).value();
    server_ = std::make_unique<TieraServer>(*instance_, 0);
    ASSERT_TRUE(server_->start().ok());
  }

  void TearDown() override { server_->stop(); }

  // A well-formed client still works after the hostile traffic.
  void expect_service_alive() {
    auto client = RemoteTieraClient::connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->put("alive", as_view(make_payload(32, 1))).ok());
    EXPECT_TRUE((*client)->get("alive").ok());
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
  InstancePtr instance_;
  std::unique_ptr<TieraServer> server_;
};

TEST_F(RpcRobustnessTest, RandomGarbageFrames) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    auto conn = TcpConnection::connect("127.0.0.1", server_->port());
    ASSERT_TRUE(conn.ok());
    const Bytes garbage = make_payload(1 + rng.next_below(512), rng.next());
    (void)(*conn)->send_frame(as_view(garbage));
    // Server may answer or drop; either way it must not die.
    (void)(*conn)->recv_frame();
  }
  expect_service_alive();
}

TEST_F(RpcRobustnessTest, TruncatedHeaderThenDisconnect) {
  for (int round = 0; round < 10; ++round) {
    auto conn = TcpConnection::connect("127.0.0.1", server_->port());
    ASSERT_TRUE(conn.ok());
    // A frame header promising more bytes than we ever send.
    const std::uint8_t header[4] = {0xFF, 0x00, 0x00, 0x00};
    // Raw partial write via a tiny frame is not possible through the API;
    // send a frame whose *body* is a truncated inner request instead.
    (void)(*conn)->send_frame(ByteView(header, 4));
    (*conn)->close();
  }
  expect_service_alive();
}

TEST_F(RpcRobustnessTest, UnknownMethodAndEmptyBody) {
  auto client = RpcClient::connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->call(0xEE, {});
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  // Valid method, empty body -> clean wire error, not a crash.
  auto put_reply =
      (*client)->call(static_cast<std::uint8_t>(TieraMethod::kPut), {});
  EXPECT_FALSE(put_reply.ok());
  expect_service_alive();
}

TEST_F(RpcRobustnessTest, OversizedFrameRejectedClientSide) {
  auto conn = TcpConnection::connect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  Bytes fake;  // claim > kMaxFrame without allocating it
  fake.resize(8, 0);
  // send_frame itself enforces the cap on outbound frames:
  Bytes big(TcpConnection::kMaxFrame + 1);
  EXPECT_EQ((*conn)->send_frame(as_view(big)).code(),
            StatusCode::kInvalidArgument);
  expect_service_alive();
}

TEST_F(RpcRobustnessTest, ManyAbruptDisconnects) {
  for (int i = 0; i < 30; ++i) {
    auto conn = TcpConnection::connect("127.0.0.1", server_->port());
    ASSERT_TRUE(conn.ok());
    (*conn)->close();  // connect/disconnect churn
  }
  expect_service_alive();
}

TEST_F(RpcRobustnessTest, FuzzedWellFormedEnvelopes) {
  // Correct envelope (id + method), random bodies: exercises every
  // handler's WireReader error paths.
  Rng rng(13);
  auto client = RpcClient::connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  for (int round = 0; round < 100; ++round) {
    const auto method = static_cast<std::uint8_t>(1 + rng.next_below(8));
    const Bytes body = make_payload(rng.next_below(64), rng.next());
    (void)(*client)->call(method, as_view(body));  // must not wedge
  }
  expect_service_alive();
}

}  // namespace
}  // namespace tiera
