// The epoll reactor under hostile timing: partial frames, slow readers,
// mid-request disconnects, backpressure, and shutdown with work in flight.
#include "net/reactor.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "net/rpc.h"
#include "net/wire.h"
#include "test_util.h"

namespace tiera {
namespace {

// A raw client socket, so tests control exactly which bytes hit the wire
// and when (RpcClient always writes whole frames).
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  void send_bytes(ByteView data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  // Reads one [u32 len][payload] frame.
  Bytes recv_frame() {
    std::uint8_t header[4];
    recv_exact(header, 4);
    std::uint32_t len;
    std::memcpy(&len, header, 4);
    Bytes payload(len);
    recv_exact(payload.data(), len);
    return payload;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  void recv_exact(std::uint8_t* out, std::size_t len) {
    std::size_t done = 0;
    while (done < len) {
      const ssize_t n = ::recv(fd_, out + done, len - done, 0);
      ASSERT_GT(n, 0);
      done += static_cast<std::size_t>(n);
    }
  }

  int fd_ = -1;
};

Bytes frame_request(std::uint64_t id, std::uint8_t method, ByteView body) {
  WireWriter w;
  w.u64(id);
  w.u8(method);
  Bytes payload = w.take();
  append(payload, body);
  Bytes frame;
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame.insert(frame.end(), reinterpret_cast<const std::uint8_t*>(&len),
               reinterpret_cast<const std::uint8_t*>(&len) + 4);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

struct DecodedResponse {
  std::uint64_t id;
  std::uint8_t status;
  Bytes body;
};

DecodedResponse decode_response(const Bytes& payload) {
  DecodedResponse out{};
  WireReader r(as_view(payload));
  std::string message;
  EXPECT_TRUE(r.u64(out.id).ok());
  EXPECT_TRUE(r.u8(out.status).ok());
  EXPECT_TRUE(r.str(message).ok());
  EXPECT_TRUE(r.bytes(out.body).ok());
  return out;
}

RpcHandler echo_handler() {
  return [](ByteView body) -> Result<Bytes> {
    return Bytes(body.begin(), body.end());
  };
}

TEST(ReactorTest, PartialFramesDecodeAcrossArbitrarySplits) {
  ReactorOptions options;
  options.loops = 1;
  options.shards = 2;
  ReactorServer server(0, options);
  server.register_handler(1, echo_handler());
  ASSERT_TRUE(server.start().ok());

  RawClient client(server.port());
  ASSERT_TRUE(client.ok());

  // Three pipelined requests, concatenated, then dribbled in 3-byte chunks
  // with pauses: the per-connection decode state machine must reassemble
  // every frame no matter where the splits land.
  Bytes stream;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const Bytes body = make_payload(100 + id * 17, id);
    const Bytes frame = frame_request(id, 1, as_view(body));
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  for (std::size_t off = 0; off < stream.size(); off += 3) {
    const std::size_t n = std::min<std::size_t>(3, stream.size() - off);
    client.send_bytes(ByteView(stream.data() + off, n));
    if (off % 30 == 0) std::this_thread::sleep_for(from_ms(1));
  }

  for (std::uint64_t id = 1; id <= 3; ++id) {
    const DecodedResponse resp = decode_response(client.recv_frame());
    EXPECT_EQ(resp.id, id);
    EXPECT_EQ(resp.status, static_cast<std::uint8_t>(StatusCode::kOk));
    EXPECT_EQ(resp.body, make_payload(100 + id * 17, id));
  }
  server.stop();
}

TEST(ReactorTest, SlowReaderDrainsViaEpollout) {
  ReactorOptions options;
  options.loops = 1;
  options.shards = 1;
  ReactorServer server(0, options);
  // 4 MB response: far beyond any socket buffer, so the loop's first write
  // hits EAGAIN and the rest must drain through EPOLLOUT retries while the
  // client reads at its leisure.
  const Bytes big = make_payload(4 << 20, 42);
  server.register_handler(1, [&big](ByteView) -> Result<Bytes> {
    return big;
  });
  ASSERT_TRUE(server.start().ok());

  RawClient client(server.port());
  ASSERT_TRUE(client.ok());
  client.send_bytes(as_view(frame_request(7, 1, {})));
  std::this_thread::sleep_for(from_ms(50));  // let the server wedge on write
  const DecodedResponse resp = decode_response(client.recv_frame());
  EXPECT_EQ(resp.id, 7u);
  EXPECT_EQ(resp.body, big);
  server.stop();
}

TEST(ReactorTest, MidRequestDisconnectIsSurvived) {
  ReactorOptions options;
  options.loops = 1;
  options.shards = 1;
  ReactorServer server(0, options);
  std::atomic<int> calls{0};
  server.register_handler(1, [&calls](ByteView) -> Result<Bytes> {
    calls.fetch_add(1);
    std::this_thread::sleep_for(from_ms(30));
    return Bytes{};
  });
  ASSERT_TRUE(server.start().ok());

  for (int round = 0; round < 5; ++round) {
    RawClient client(server.port());
    ASSERT_TRUE(client.ok());
    client.send_bytes(as_view(frame_request(1, 1, {})));
    client.close();  // gone before the handler finishes
  }

  // The dead connections' responses hit closed sockets; the server must
  // keep serving live clients afterwards.
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->call(1, {}).ok());
  EXPECT_GE(calls.load(), 1);

  // And every reaped connection is gone from the tracked set.
  std::size_t tracked = server.tracked_connections();
  for (int attempt = 0; attempt < 200 && tracked > 1; ++attempt) {
    std::this_thread::sleep_for(from_ms(5));
    tracked = server.tracked_connections();
  }
  EXPECT_LE(tracked, 1u);
  server.stop();
}

TEST(ReactorTest, StopWithRequestsInFlightCompletesThem) {
  ReactorOptions options;
  options.loops = 2;
  options.shards = 2;
  ReactorServer server(0, options);
  std::atomic<int> finished{0};
  server.register_handler(1, [&finished](ByteView) -> Result<Bytes> {
    std::this_thread::sleep_for(from_ms(50));
    finished.fetch_add(1);
    return Bytes{};
  });
  ASSERT_TRUE(server.start().ok());

  RawClient client(server.port());
  ASSERT_TRUE(client.ok());
  for (std::uint64_t id = 1; id <= 4; ++id) {
    client.send_bytes(as_view(frame_request(id, 1, {})));
  }
  std::this_thread::sleep_for(from_ms(10));  // let the loop dispatch them
  // stop() drains the shard pools before the loops die, so every dispatched
  // handler runs to completion — no half-executed requests.
  server.stop();
  EXPECT_EQ(finished.load(), 4);
}

TEST(ReactorTest, BackpressurePausesAndResumesReads) {
  ReactorOptions options;
  options.loops = 1;
  options.shards = 1;
  options.max_inflight_per_loop = 4;
  ReactorServer server(0, options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  server.register_handler(1, [&](ByteView) -> Result<Bytes> {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
    return Bytes{};
  });
  ASSERT_TRUE(server.start().ok());

  RawClient client(server.port());
  ASSERT_TRUE(client.ok());
  const int kRequests = 32;
  Bytes stream;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    const Bytes frame = frame_request(id, 1, {});
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  client.send_bytes(as_view(stream));

  // The loop decodes until the cap, pauses EPOLLIN, and stops decoding —
  // in-flight must level off at the cap instead of swallowing all 32.
  std::uint64_t pauses = 0;
  for (int attempt = 0; attempt < 500 && pauses == 0; ++attempt) {
    std::this_thread::sleep_for(from_ms(2));
    pauses = server.backpressure_pauses();
  }
  EXPECT_GE(pauses, 1u);
  EXPECT_LE(server.inflight(), options.max_inflight_per_loop);

  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();

  // Once the handlers drain, reads resume and every response arrives.
  for (int i = 0; i < kRequests; ++i) {
    const DecodedResponse resp = decode_response(client.recv_frame());
    EXPECT_EQ(resp.status, static_cast<std::uint8_t>(StatusCode::kOk));
  }
  EXPECT_EQ(server.inflight(), 0u);
  server.stop();
}

TEST(ReactorTest, RequestsShardByKey) {
  ReactorOptions options;
  options.loops = 1;
  options.shards = 4;
  ReactorServer server(0, options);
  // Shard key = first body byte; record which thread ran each key.
  server.set_shard_key([](std::uint8_t, ByteView body) -> std::uint64_t {
    return body.empty() ? 0 : body[0];
  });
  std::mutex mu;
  std::map<std::uint8_t, std::set<std::thread::id>> threads_by_key;
  server.register_handler(1, [&](ByteView body) -> Result<Bytes> {
    std::lock_guard lock(mu);
    threads_by_key[body.empty() ? 0 : body[0]].insert(
        std::this_thread::get_id());
    return Bytes{};
  });
  ASSERT_TRUE(server.start().ok());

  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (int round = 0; round < 10; ++round) {
    for (std::uint8_t key = 0; key < 8; ++key) {
      const Bytes body{key};
      ASSERT_TRUE((*client)->call(1, as_view(body)).ok());
    }
  }
  // Same key -> same single-threaded shard, every time.
  std::lock_guard lock(mu);
  for (const auto& [key, threads] : threads_by_key) {
    EXPECT_EQ(threads.size(), 1u) << "key " << int(key);
  }
  server.stop();
}

TEST(ReactorTest, OversizedFrameClosesConnection) {
  ReactorOptions options;
  options.loops = 1;
  options.shards = 1;
  ReactorServer server(0, options);
  server.register_handler(1, echo_handler());
  ASSERT_TRUE(server.start().ok());

  RawClient client(server.port());
  ASSERT_TRUE(client.ok());
  // A length prefix past kMaxFrame is a protocol violation: the server
  // drops the connection instead of buffering 4 GB.
  const std::uint32_t huge = TcpConnection::kMaxFrame + 1;
  std::uint8_t header[4];
  std::memcpy(header, &huge, 4);
  client.send_bytes(ByteView(header, 4));
  std::size_t tracked = server.tracked_connections();
  for (int attempt = 0; attempt < 200 && tracked != 0; ++attempt) {
    std::this_thread::sleep_for(from_ms(5));
    tracked = server.tracked_connections();
  }
  EXPECT_EQ(tracked, 0u);

  // And well-formed clients still get service.
  auto good = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE((*good)->call(1, {}).ok());
  server.stop();
}

}  // namespace
}  // namespace tiera
