// End-to-end admission control under a real flash crowd.
//
// One scenario, run twice against a live TieraServer: an open-loop PUT
// crowd offers more load than the fast tier's modelled capacity while a
// closed-loop prober measures GET latency.
//
//   * With admission enabled, the inflight signal trips the shed ladder to
//     level 2 (shed writes): crowd PUTs come back kOverloaded, the queue
//     stays short, and the prober's GET p99 stays inside the SLO target.
//   * With admission disabled, the same crowd fills the reactor's
//     in-flight cap, GETs queue behind a thousand modelled PUT services,
//     and the GET p99 SLO is demonstrably violated.
//
// This is the soak lane's core claim (bench/soak_runner) in ctest form.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/instance.h"
#include "core/spec_parser.h"
#include "net/async_client.h"
#include "net/rpc.h"
#include "net/tiera_service.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

// Wall seconds per modelled second. 0.5 keeps the modelled queueing real
// (sleeps actually happen) while the whole scenario fits in seconds.
constexpr double kTimeScale = 0.5;
constexpr double kSloTargetMs = 150.0;  // model ms, from the spec below
constexpr int kPreloadKeys = 200;
constexpr std::size_t kCrowdPayload = 128 * 1024;  // 1.4 model ms per PUT
constexpr auto kCrowdPace = std::chrono::microseconds(800);  // per thread
constexpr auto kCrowdWall = std::chrono::milliseconds(4000);
constexpr auto kSettleWall = std::chrono::milliseconds(2500);

constexpr char kSpec[] = R"(
  Tiera CrowdInstance() {
    tier1: { name: Memcached, size: 64M };
    slo get_p99 < 150ms window 5s burn 10s/60s;
    admission : {
      shed_inflight: 3%,
      resume_inflight: 2%,
      resume_burn: 1.0,
      resume_hold: 1s
    };
    event(insert.into) : response {
      store(what: insert.object, to: tier1);
    }
  }
)";

struct CrowdOutcome {
  double get_p99_model_ms = 0;
  std::size_t get_samples = 0;
  std::uint64_t crowd_ok = 0;
  std::uint64_t crowd_shed = 0;
  std::uint64_t crowd_errors = 0;
  bool slo_violated_during_crowd = false;
  bool slo_violated_after_settle = false;
};

Bytes put_body(const std::string& key, std::size_t payload_size) {
  WireWriter w;
  w.str(key);
  const Bytes payload(payload_size, std::uint8_t{0x5a});
  w.bytes(as_view(payload));
  w.u32(0);  // no tags
  return w.data();
}

Bytes get_body(const std::string& key) {
  WireWriter w;
  w.str(key);
  return w.data();
}

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(p * (values.size() - 1));
  return values[idx];
}

CrowdOutcome run_crowd(bool admission_on) {
  TempDir dir;
  auto spec = InstanceSpec::parse(kSpec);
  EXPECT_TRUE(spec.ok()) << spec.status().to_string();
  TemplateOptions opts{.data_dir = dir.path()};
  auto instance = spec->instantiate(opts, {});
  EXPECT_TRUE(instance.ok()) << instance.status().to_string();
  // One modelled service slot: capacity is ~714 modelled PUT/s against the
  // crowd's ~2.5k offered, so saturation is by model, not host CPU.
  (*instance)->tier("tier1")->set_io_slots(1);

  ReactorOptions reactor;
  reactor.loops = 1;
  reactor.shards = 2;
  TieraServer server(**instance, 0, reactor);
  if (admission_on) {
    auto admission = spec->admission_config();
    EXPECT_TRUE(admission.ok()) << admission.status().to_string();
    server.enable_admission(*admission);
  }
  EXPECT_TRUE(server.start().ok());

  CrowdOutcome outcome;

  // Preload the GET working set while the server is idle.
  {
    auto client = RpcClient::connect("127.0.0.1", server.port());
    if (!client.ok()) {
      ADD_FAILURE() << "connect: " << client.status().to_string();
      return outcome;
    }
    (*client)->set_tenant("probe");
    for (int i = 0; i < kPreloadKeys; ++i) {
      auto put = (*client)->call(static_cast<std::uint8_t>(TieraMethod::kPut),
                                 as_view(put_body("g" + std::to_string(i),
                                                  100)));
      if (!put.ok()) {
        ADD_FAILURE() << "preload: " << put.status().to_string();
        return outcome;
      }
    }
  }

  // The crowd: two open-loop senders flooding 128K PUTs.
  std::atomic<bool> stop_crowd{false};
  std::atomic<std::uint64_t> crowd_ok{0}, crowd_shed{0}, crowd_errors{0};
  std::vector<std::unique_ptr<AsyncRpcClient>> crowd_clients;
  for (int c = 0; c < 2; ++c) {
    auto client = AsyncRpcClient::connect("127.0.0.1", server.port());
    if (!client.ok()) {
      ADD_FAILURE() << "connect: " << client.status().to_string();
      return outcome;
    }
    (*client)->set_tenant("crowd");
    crowd_clients.push_back(std::move(*client));
  }
  std::vector<std::thread> senders;
  for (auto& client : crowd_clients) {
    senders.emplace_back([&client, &stop_crowd, &crowd_ok, &crowd_shed,
                          &crowd_errors] {
      std::uint64_t seq = 0;
      while (!stop_crowd.load(std::memory_order_acquire)) {
        const Bytes body =
            put_body("f" + std::to_string(seq++ % 64), kCrowdPayload);
        const Status sent = client->call_async(
            static_cast<std::uint8_t>(TieraMethod::kPut), as_view(body),
            [&crowd_ok, &crowd_shed, &crowd_errors](Status status,
                                                    ByteView /*body*/) {
              if (status.ok()) {
                crowd_ok.fetch_add(1, std::memory_order_relaxed);
              } else if (status.is_overloaded()) {
                crowd_shed.fetch_add(1, std::memory_order_relaxed);
              } else {
                crowd_errors.fetch_add(1, std::memory_order_relaxed);
              }
            });
        if (!sent.ok()) break;
        std::this_thread::sleep_for(kCrowdPace);
      }
    });
  }

  // The prober: closed-loop GETs over the preloaded set, latency in
  // modelled ms (wall / time-scale).
  std::vector<double> get_latency_ms;
  std::uint64_t get_shed = 0, get_ok = 0;
  {
    auto prober = RpcClient::connect("127.0.0.1", server.port());
    if (!prober.ok()) {
      ADD_FAILURE() << "connect: " << prober.status().to_string();
      stop_crowd.store(true, std::memory_order_release);
      for (auto& t : senders) t.join();
      return outcome;
    }
    (*prober)->set_tenant("probe");
    const auto crowd_end = std::chrono::steady_clock::now() + kCrowdWall;
    std::uint64_t seq = 0;
    while (std::chrono::steady_clock::now() < crowd_end) {
      const std::string key = "g" + std::to_string(seq++ % kPreloadKeys);
      const auto t0 = std::chrono::steady_clock::now();
      auto got = (*prober)->call(static_cast<std::uint8_t>(TieraMethod::kGet),
                                 as_view(get_body(key)));
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      if (got.ok()) {
        get_ok++;
        get_latency_ms.push_back(wall_ms / kTimeScale);
      } else if (got.status().is_overloaded()) {
        get_shed++;
      } else {
        ADD_FAILURE() << "prober GET failed: " << got.status().to_string();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  for (const SloStatus& row : (*instance)->slo().status()) {
    if (row.violated || row.violations > 0) {
      outcome.slo_violated_during_crowd = true;
    }
  }

  stop_crowd.store(true, std::memory_order_release);
  for (auto& t : senders) t.join();
  // Let the server answer (or shed) everything still in flight before the
  // clients — and their callbacks — go away, then let the SLO window flush.
  const auto drain_deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(20);
  for (auto& client : crowd_clients) {
    while (client->outstanding() > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(client->outstanding(), 0u) << "crowd backlog failed to drain";
  }
  std::this_thread::sleep_for(kSettleWall);

  for (const SloStatus& row : (*instance)->slo().status()) {
    if (row.violated) outcome.slo_violated_after_settle = true;
  }

  outcome.get_p99_model_ms = percentile(get_latency_ms, 0.99);
  outcome.get_samples = get_latency_ms.size();
  outcome.crowd_ok = crowd_ok.load();
  outcome.crowd_shed = crowd_shed.load();
  outcome.crowd_errors = crowd_errors.load();
  EXPECT_GT(get_ok, 0u);
  (void)get_shed;  // brief level-1 excursions may shed a few probes
  return outcome;
}

TEST(AdmissionIntegrationTest, CrowdShedsPutsWhileGetSloStaysGreen) {
  ZeroLatencyScope scale(kTimeScale);
  const CrowdOutcome with = run_crowd(/*admission_on=*/true);
  ASSERT_GT(with.get_samples, 50u);
  EXPECT_EQ(with.crowd_errors, 0u);
  // The ladder reached level 2: write traffic was refused with kOverloaded.
  EXPECT_GT(with.crowd_shed, 0u);
  // ... but not everything died: the server did real work under pressure.
  EXPECT_GT(with.crowd_ok, 0u);
  // The point of shedding: reads stayed inside the SLO target throughout.
  EXPECT_LT(with.get_p99_model_ms, kSloTargetMs)
      << "GET p99 (model ms) with admission on";
  // And the instance ends the episode with its SLO green.
  EXPECT_FALSE(with.slo_violated_after_settle);

  const CrowdOutcome without = run_crowd(/*admission_on=*/false);
  ASSERT_GT(without.get_samples, 0u);
  // No admission, no shedding — every crowd PUT was accepted and queued.
  EXPECT_EQ(without.crowd_shed, 0u);
  // The same crowd without the controller blows straight through the SLO:
  // GETs queue behind the flood's modelled service times. The violation is
  // client-observed — the in-op SLO probe cannot see shard-queue wait,
  // which is exactly where overload latency accumulates (and why the
  // controller's inflight signal exists alongside the burn signal).
  EXPECT_GT(without.get_p99_model_ms, kSloTargetMs);
  EXPECT_GT(without.get_p99_model_ms, 3 * with.get_p99_model_ms);
}

}  // namespace
}  // namespace tiera
