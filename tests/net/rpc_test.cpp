// Wire format, framing, RPC dispatch, and the remote Tiera service.
#include "net/rpc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/tiera_service.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

TEST(WireTest, RoundTripAllTypes) {
  WireWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.str("hello");
  w.bytes(as_view(std::string_view("raw\0data", 8)));

  WireReader r(as_view(w.data()));
  std::uint8_t a;
  std::uint32_t b;
  std::uint64_t c;
  std::string s;
  Bytes raw;
  ASSERT_TRUE(r.u8(a).ok());
  ASSERT_TRUE(r.u32(b).ok());
  ASSERT_TRUE(r.u64(c).ok());
  ASSERT_TRUE(r.str(s).ok());
  ASSERT_TRUE(r.bytes(raw).ok());
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(raw.size(), 8u);
  EXPECT_TRUE(r.at_end());
}

TEST(WireTest, TruncationDetected) {
  WireWriter w;
  w.str("truncate me");
  const Bytes& data = w.data();
  for (std::size_t cut = 0; cut < data.size(); ++cut) {
    WireReader r(ByteView(data.data(), cut));
    std::string s;
    EXPECT_FALSE(r.str(s).ok()) << cut;
  }
}

TEST(TcpTest, FramedEcho) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = (*listener)->port();
  ASSERT_GT(port, 0);

  std::thread server([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.ok());
    for (;;) {
      auto frame = (*conn)->recv_frame();
      if (!frame.ok()) return;
      ASSERT_TRUE((*conn)->send_frame(as_view(*frame)).ok());
    }
  });

  auto client = TcpConnection::connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  for (std::size_t size : {0u, 1u, 100u, 100'000u}) {
    const Bytes payload = make_payload(size, size);
    ASSERT_TRUE((*client)->send_frame(as_view(payload)).ok());
    auto echo = (*client)->recv_frame();
    ASSERT_TRUE(echo.ok());
    EXPECT_EQ(*echo, payload);
  }
  (*client)->close();
  server.join();
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port then release it: connecting should fail fast.
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.ok());
    dead_port = (*listener)->port();
  }
  auto client = TcpConnection::connect("127.0.0.1", dead_port);
  EXPECT_FALSE(client.ok());
  EXPECT_TRUE(client.status().is_unavailable());
}

TEST(RpcTest, DispatchAndErrors) {
  RpcServer server(0, 4);
  server.register_handler(1, [](ByteView body) -> Result<Bytes> {
    Bytes out(body.begin(), body.end());
    std::reverse(out.begin(), out.end());
    return out;
  });
  server.register_handler(2, [](ByteView) -> Result<Bytes> {
    return Status::NotFound("nothing here");
  });
  ASSERT_TRUE(server.start().ok());

  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  auto reversed = (*client)->call(1, as_view(std::string_view("abc")));
  ASSERT_TRUE(reversed.ok());
  EXPECT_EQ(to_string(as_view(*reversed)), "cba");

  auto missing = (*client)->call(2, {});
  EXPECT_TRUE(missing.status().is_not_found());
  EXPECT_EQ(missing.status().message(), "nothing here");

  auto unknown = (*client)->call(99, {});
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  EXPECT_GE(server.requests_served(), 3u);
  server.stop();
}

TEST(RpcTest, ConcurrentClients) {
  RpcServer server(0, 8);
  server.register_handler(1, [](ByteView body) -> Result<Bytes> {
    return Bytes(body.begin(), body.end());
  });
  ASSERT_TRUE(server.start().ok());

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      auto client = RpcClient::connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 50; ++i) {
        const Bytes payload = make_payload(512, c * 100 + i);
        auto reply = (*client)->call(1, as_view(payload));
        if (!reply.ok() || *reply != payload) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 400u);
  server.stop();
}

TEST(RpcTest, DisconnectsAreReapedWithoutNewConnects) {
  RpcServer server(0, 2);
  server.register_handler(1, [](ByteView body) -> Result<Bytes> {
    return Bytes(body.begin(), body.end());
  });
  ASSERT_TRUE(server.start().ok());

  {
    std::vector<std::unique_ptr<RpcClient>> clients;
    for (int i = 0; i < 16; ++i) {
      auto client = RpcClient::connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok());
      // A completed round trip proves the loop adopted the connection.
      ASSERT_TRUE((*client)->call(1, {}).ok());
      clients.push_back(std::move(*client));
    }
    EXPECT_EQ(server.tracked_connections(), 16u);
  }
  // Every client is gone. EOF reaps each connection directly on its event
  // loop — the count must reach zero with NO further connections arriving
  // (the old accept-thread design only reaped on the next accept()).
  std::size_t tracked = server.tracked_connections();
  for (int attempt = 0; attempt < 500 && tracked != 0; ++attempt) {
    std::this_thread::sleep_for(from_ms(5));
    tracked = server.tracked_connections();
  }
  EXPECT_EQ(tracked, 0u);
  server.stop();
}

class TieraServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceConfig config;
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 8 << 20},
                    {"EBS", "tier2", 8 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    instance_ = std::move(instance).value();
    server_ = std::make_unique<TieraServer>(*instance_, 0);
    ASSERT_TRUE(server_->start().ok());
    auto client = RemoteTieraClient::connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).value();
  }

  void TearDown() override { server_->stop(); }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
  InstancePtr instance_;
  std::unique_ptr<TieraServer> server_;
  std::unique_ptr<RemoteTieraClient> client_;
};

TEST_F(TieraServiceTest, PutGetRemoveOverRpc) {
  const Bytes payload = make_payload(4096, 3);
  ASSERT_TRUE(client_->put("remote-obj", as_view(payload), {"tag1"}).ok());
  auto got = client_->get("remote-obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  ASSERT_TRUE(client_->remove("remote-obj").ok());
  EXPECT_TRUE(client_->get("remote-obj").status().is_not_found());
}

TEST_F(TieraServiceTest, StatReflectsServerState) {
  ASSERT_TRUE(client_->put("obj", as_view(make_payload(100, 1)), {"x"}).ok());
  ASSERT_TRUE(client_->add_tags("obj", {"y"}).ok());
  auto info = client_->stat("obj");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->id, "obj");
  EXPECT_EQ(info->size, 100u);
  ASSERT_EQ(info->locations.size(), 1u);
  EXPECT_EQ(info->locations[0], "tier1");
  EXPECT_EQ(info->tags.size(), 2u);
  EXPECT_TRUE(client_->stat("missing").status().is_not_found());
}

TEST_F(TieraServiceTest, ListTiersAndGrow) {
  auto tiers = client_->list_tiers();
  ASSERT_TRUE(tiers.ok());
  EXPECT_EQ(tiers->size(), 2u);
  ASSERT_TRUE(client_->grow_tier("tier1", 50.0).ok());
  EXPECT_EQ(instance_->tier("tier1")->capacity(), 12u << 20);
  EXPECT_FALSE(client_->grow_tier("tier9", 10.0).ok());
}

TEST_F(TieraServiceTest, SloTableRoundTripsOverRpc) {
  // No objectives declared: the verb answers an empty table, not an error.
  auto empty = client_->slo();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  SloSpec spec;
  spec.name = "tier1.get_p99";
  spec.tier = "tier1";
  spec.target_ms = 2.5;
  spec.window = std::chrono::seconds(30);
  ASSERT_TRUE(instance_->add_slo(spec).ok());

  // Generate some traffic so current/samples are non-trivial, then force an
  // evaluation so violated/violations reflect the window.
  ASSERT_TRUE(client_->put("slo-obj", as_view(make_payload(256, 1))).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(client_->get("slo-obj").ok());
  instance_->slo().evaluate();

  auto rows = client_->slo();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  const RemoteSloRow& row = (*rows)[0];
  EXPECT_EQ(row.name, "tier1.get_p99");
  EXPECT_EQ(row.tier, "tier1");
  EXPECT_EQ(row.signal, "get_p99");
  EXPECT_TRUE(row.is_latency);
  // Doubles cross the wire as micro-units; 2.5 survives exactly.
  EXPECT_DOUBLE_EQ(row.target, 2.5);
  EXPECT_DOUBLE_EQ(row.window_s, 30.0);
  EXPECT_EQ(row.samples, 10u);
  // Under ZeroLatencyScope every GET is far below 2.5 ms.
  EXPECT_FALSE(row.violated);
  EXPECT_EQ(row.violations, 0u);
  EXPECT_LT(row.current, 2.5);

  const auto server_rows = instance_->slo().status();
  ASSERT_EQ(server_rows.size(), 1u);
  EXPECT_NEAR(row.current, server_rows[0].current, 1e-3);
  EXPECT_NEAR(row.burn_short, server_rows[0].burn_short, 1e-3);
}

TEST_F(TieraServiceTest, ErrorsPropagateThroughRpc) {
  instance_->tier("tier1")->inject_failure(FailureMode::kFailStop);
  const Status s = client_->put("x", as_view(make_payload(10, 1)));
  EXPECT_FALSE(s.ok());
  instance_->tier("tier1")->heal();
}

TEST_F(TieraServiceTest, ProfileRoundTripNamesServerFrames) {
  // Drive traffic from a second thread while the kProfile capture blocks the
  // calling client connection, so the sampler has live op frames to see.
  std::atomic<bool> stop{false};
  std::thread load([&] {
    auto client = RemoteTieraClient::connect("127.0.0.1", server_->port());
    if (!client.ok()) return;
    const Bytes payload = make_payload(1024, 9);
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string key = "prof" + std::to_string(i++ % 32);
      (void)(*client)->put(key, as_view(payload));
      (void)(*client)->get(key);
    }
  });

  auto folded = client_->profile(/*duration_ms=*/300, /*interval_us=*/200);
  stop.store(true, std::memory_order_relaxed);
  load.join();

  ASSERT_TRUE(folded.ok());
  EXPECT_FALSE(folded->empty());
  // The shard worker threads carry the op frames pushed by the handlers.
  EXPECT_NE(folded->find("rpc-shard"), std::string::npos) << *folded;
  EXPECT_NE(folded->find("put"), std::string::npos) << *folded;
  // Every line is "stack count".
  EXPECT_NE(folded->find(' '), std::string::npos);

  // Invalid durations are rejected server-side, not crashed on.
  EXPECT_FALSE(client_->profile(/*duration_ms=*/0).ok());
}

TEST_F(TieraServiceTest, HeatReportRoundTripsOverRpc) {
  // Traffic: one hot key, a handful of cold ones, all served from tier1.
  const Bytes payload = make_payload(2048, 7);
  ASSERT_TRUE(client_->put("hot-obj", as_view(payload)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        client_->put("cold-" + std::to_string(i), as_view(payload)).ok());
  }
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(client_->get("hot-obj").ok());
  // Advance modelled time so the cost meter has accrued something — half a
  // half-life, so heat estimates are not decayed mid-assertion.
  instance_->tick_observability(std::chrono::seconds(30));

  auto report = client_->heat(/*top_n=*/5);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report->enabled);
  EXPECT_DOUBLE_EQ(report->half_life_s, 60.0);  // config default
  EXPECT_GT(report->memory_bytes, 0u);

  ASSERT_EQ(report->tiers.size(), 1u);  // only tier1 saw traffic
  const RemoteTierHeat& tier = report->tiers[0];
  EXPECT_EQ(tier.tier, "tier1");
  ASSERT_FALSE(tier.top.empty());
  EXPECT_LE(tier.top.size(), 5u);  // top_n honored
  EXPECT_EQ(tier.top[0].key, "hot-obj");
  EXPECT_GE(tier.top[0].estimate, 41u);  // 40 GETs + 1 PUT, never undercounts
  EXPECT_GT(tier.top[0].rate_per_s, 0.0);
  EXPECT_EQ(tier.histogram.size(),
            static_cast<std::size_t>(CountMinSketch::kHistogramBuckets));
  EXPECT_GE(tier.records, 46u);
  EXPECT_GT(tier.bytes, 0u);

  // Cost section mirrors the server-side snapshot. Byte totals compare
  // against the server's own view, not absolute values — the per-tier byte
  // counters are global registry series shared across the tests in this
  // binary.
  const auto server_cost = instance_->cost_meter()->snapshot();
  EXPECT_NEAR(report->total_dollars, server_cost.total_dollars, 1e-6);
  EXPECT_GE(report->modelled_seconds, 30.0);
  ASSERT_EQ(report->tier_costs.size(), 2u);
  std::uint64_t read_bytes = 0;
  std::uint64_t server_read_bytes = 0;
  for (const auto& cost : report->tier_costs) read_bytes += cost.read_bytes;
  for (const auto& tier : server_cost.tiers) {
    server_read_bytes += tier.client_read_bytes;
  }
  EXPECT_EQ(read_bytes, server_read_bytes);
  EXPECT_GE(read_bytes, 40u * 2048u);
  // Default placement runs with no rule context: everything lands on the
  // "unattributed" rule-0 account.
  ASSERT_FALSE(report->rule_costs.empty());
  EXPECT_EQ(report->rule_costs[0].rule_id, 0u);
  EXPECT_EQ(report->rule_costs[0].name, "unattributed");
  EXPECT_EQ(report->rule_costs[0].bytes, 6u * 2048u);
}

TEST_F(TieraServiceTest, StatsTopSectionsFilter) {
  ASSERT_TRUE(client_->put("obj", as_view(make_payload(128, 1))).ok());
  // Full top view includes every table.
  auto full = client_->stats("top");
  ASSERT_TRUE(full.ok());
  EXPECT_NE(full->find("TIER"), std::string::npos);
  EXPECT_NE(full->find("HEAT"), std::string::npos);
  EXPECT_NE(full->find("COST"), std::string::npos);
  // A sections filter renders only the named tables.
  auto filtered = client_->stats("top:heat,cost");
  ASSERT_TRUE(filtered.ok());
  EXPECT_NE(filtered->find("HEAT"), std::string::npos);
  EXPECT_NE(filtered->find("COST"), std::string::npos);
  EXPECT_EQ(filtered->find("instance "), std::string::npos);  // header gone
  auto slo_only = client_->stats("top:slo");
  ASSERT_TRUE(slo_only.ok());
  EXPECT_EQ(slo_only->find("HEAT"), std::string::npos);
}

}  // namespace
}  // namespace tiera
