#include "sql/minidb.h"

#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class MiniDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceConfig config;
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 256 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    instance_ = std::move(instance).value();
    files_ = std::make_unique<FileAdapter>(*instance_, 4096);
  }

  std::unique_ptr<MiniDb> make_db(MiniDbOptions options = {}) {
    auto db = std::make_unique<MiniDb>(*files_, options);
    EXPECT_TRUE(db->open().ok());
    return db;
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
  InstancePtr instance_;
  std::unique_ptr<FileAdapter> files_;
};

TEST_F(MiniDbTest, CreateTableAndRowRoundTrip) {
  auto db = make_db();
  ASSERT_TRUE(db->create_table("t", 100).ok());
  EXPECT_TRUE(db->has_table("t"));
  EXPECT_TRUE(db->create_table("t", 100).code() ==
              StatusCode::kAlreadyExists);
  const Bytes row = make_payload(100, 1);
  ASSERT_TRUE(db->write_row("t", 5, as_view(row)).ok());
  auto got = db->read_row("t", 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, row);
  EXPECT_TRUE(db->read_row("t", 6).status().is_not_found());
  EXPECT_EQ(*db->row_count("t"), 6u);
}

TEST_F(MiniDbTest, BadRecordSizesRejected) {
  auto db = make_db();
  EXPECT_FALSE(db->create_table("zero", 0).ok());
  EXPECT_FALSE(db->create_table("huge", 5000).ok());
  ASSERT_TRUE(db->create_table("t", 100).ok());
  EXPECT_FALSE(db->write_row("t", 0, as_view(make_payload(99, 1))).ok());
}

TEST_F(MiniDbTest, TransactionAtomicityAndReadYourWrites) {
  auto db = make_db();
  ASSERT_TRUE(db->create_table("t", 64).ok());
  const Bytes v1 = make_payload(64, 1);
  const Bytes v2 = make_payload(64, 2);
  MiniDb::Transaction txn = db->begin();
  ASSERT_TRUE(txn.write("t", 0, as_view(v1)).ok());
  ASSERT_TRUE(txn.write("t", 1, as_view(v2)).ok());
  // Uncommitted writes visible inside, invisible outside.
  EXPECT_EQ(*txn.read("t", 0), v1);
  EXPECT_TRUE(db->read_row("t", 0).status().is_not_found());
  ASSERT_TRUE(db->commit(txn).ok());
  EXPECT_EQ(*db->read_row("t", 0), v1);
  EXPECT_EQ(*db->read_row("t", 1), v2);
}

TEST_F(MiniDbTest, AbortDiscardsWrites) {
  auto db = make_db();
  ASSERT_TRUE(db->create_table("t", 64).ok());
  MiniDb::Transaction txn = db->begin();
  ASSERT_TRUE(txn.write("t", 0, as_view(make_payload(64, 1))).ok());
  db->abort(txn);
  EXPECT_TRUE(db->read_row("t", 0).status().is_not_found());
}

TEST_F(MiniDbTest, DeleteAndReinsert) {
  auto db = make_db();
  ASSERT_TRUE(db->create_table("t", 64).ok());
  ASSERT_TRUE(db->write_row("t", 3, as_view(make_payload(64, 1))).ok());
  MiniDb::Transaction txn = db->begin();
  ASSERT_TRUE(txn.remove("t", 3).ok());
  EXPECT_TRUE(txn.read("t", 3).status().is_not_found());
  ASSERT_TRUE(db->commit(txn).ok());
  EXPECT_TRUE(db->read_row("t", 3).status().is_not_found());
  ASSERT_TRUE(db->write_row("t", 3, as_view(make_payload(64, 2))).ok());
  EXPECT_TRUE(db->read_row("t", 3).ok());
}

TEST_F(MiniDbTest, RangeReadSkipsHoles) {
  auto db = make_db();
  ASSERT_TRUE(db->create_table("t", 64).ok());
  for (std::uint64_t row : {0ull, 2ull, 4ull}) {
    ASSERT_TRUE(db->write_row("t", row, as_view(make_payload(64, row))).ok());
  }
  MiniDb::Transaction txn = db->begin();
  auto rows = txn.range_read("t", 0, 5);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(MiniDbTest, JournalCommitCountsAndCheckpoint) {
  auto db = make_db();
  ASSERT_TRUE(db->create_table("t", 64).ok());
  ASSERT_TRUE(db->write_row("t", 0, as_view(make_payload(64, 1))).ok());
  ASSERT_TRUE(db->write_row("t", 1, as_view(make_payload(64, 2))).ok());
  EXPECT_EQ(db->journal_commits(), 2u);
  ASSERT_TRUE(db->checkpoint().ok());
}

TEST_F(MiniDbTest, CrashRecoveryFromJournal) {
  // Writes committed to the journal but never flushed from the buffer pool
  // must survive a "crash" (new MiniDb over the same files).
  const Bytes row0 = make_payload(64, 10);
  const Bytes row7 = make_payload(64, 11);
  {
    MiniDbOptions options;
    options.buffer_pool_pages = 64;
    MiniDb db(*files_, options);
    ASSERT_TRUE(db.open().ok());
    ASSERT_TRUE(db.create_table("t", 64).ok());
    ASSERT_TRUE(db.write_row("t", 0, as_view(row0)).ok());
    ASSERT_TRUE(db.write_row("t", 7, as_view(row7)).ok());
    // No checkpoint, no flush: the dirty pages die with this instance.
  }
  MiniDb recovered(*files_);
  ASSERT_TRUE(recovered.open().ok());
  auto got0 = recovered.read_row("t", 0);
  ASSERT_TRUE(got0.ok()) << got0.status().to_string();
  EXPECT_EQ(*got0, row0);
  EXPECT_EQ(*recovered.read_row("t", 7), row7);
}

TEST_F(MiniDbTest, BufferPoolBoundsResidency) {
  MiniDbOptions options;
  options.buffer_pool_pages = 8;
  auto db = make_db(options);
  ASSERT_TRUE(db->create_table("t", 64).ok());
  // 64-byte records + presence byte -> 63 records/page; write 50 pages.
  for (std::uint64_t row = 0; row < 63 * 50; row += 63) {
    ASSERT_TRUE(db->write_row("t", row, as_view(make_payload(64, row))).ok());
  }
  EXPECT_LE(db->buffer_stats().evictions.load() + 8, 8u + 50u);
  EXPECT_GT(db->buffer_stats().evictions.load(), 0u);
  // Everything still readable after evictions (flushed correctly).
  for (std::uint64_t row = 0; row < 63 * 50; row += 63) {
    EXPECT_TRUE(db->read_row("t", row).ok()) << row;
  }
}

TEST_F(MiniDbTest, BufferPoolHitRateImprovesOnRereads) {
  MiniDbOptions options;
  options.buffer_pool_pages = 128;
  auto db = make_db(options);
  ASSERT_TRUE(db->create_table("t", 64).ok());
  for (std::uint64_t row = 0; row < 100; ++row) {
    ASSERT_TRUE(db->write_row("t", row, as_view(make_payload(64, row))).ok());
  }
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t row = 0; row < 100; ++row) {
      ASSERT_TRUE(db->read_row("t", row).ok());
    }
  }
  EXPECT_GT(db->buffer_stats().hit_rate(), 0.9);
}

TEST_F(MiniDbTest, ConcurrentCommitsKeepIntegrity) {
  auto db = make_db();
  ASSERT_TRUE(db->create_table("t", 64).ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        MiniDb::Transaction txn = db->begin();
        const std::uint64_t row = t * 1000 + i;
        if (!txn.write("t", row, as_view(make_payload(64, row))).ok() ||
            !db->commit(txn).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < 8; ++t) {
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t row = t * 1000 + i;
      auto got = db->read_row("t", row);
      ASSERT_TRUE(got.ok()) << row;
      EXPECT_EQ(*got, make_payload(64, row));
    }
  }
}

TEST_F(MiniDbTest, CatalogPersistsTables) {
  {
    MiniDb db(*files_);
    ASSERT_TRUE(db.open().ok());
    ASSERT_TRUE(db.create_table("users", 128).ok());
    ASSERT_TRUE(db.create_table("orders", 64).ok());
    ASSERT_TRUE(db.write_row("users", 0, as_view(make_payload(128, 1))).ok());
    ASSERT_TRUE(db.checkpoint().ok());
  }
  MiniDb db(*files_);
  ASSERT_TRUE(db.open().ok());
  EXPECT_TRUE(db.has_table("users"));
  EXPECT_TRUE(db.has_table("orders"));
  EXPECT_TRUE(db.read_row("users", 0).ok());
}

TEST_F(MiniDbTest, MemoryEngineSerializesWriters) {
  testing::ZeroLatencyScope scale(1.0);
  MiniDbOptions options;
  options.memory_engine = true;
  options.memory_engine_write_penalty = from_ms(30);
  auto db = make_db(options);
  ASSERT_TRUE(db->create_table("t", 64).ok());
  // 4 concurrent single-write transactions serialize on the table lock:
  // total wall time >= 4 * penalty.
  Stopwatch watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      MiniDb::Transaction txn = db->begin();
      ASSERT_TRUE(txn.write("t", t, as_view(make_payload(64, t))).ok());
      ASSERT_TRUE(db->commit(txn).ok());
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GE(watch.elapsed_ms(), 4 * 30.0 * 0.9);
  EXPECT_EQ(db->journal_commits(), 0u);  // no WAL in memory engine
}

TEST_F(MiniDbTest, JournalWritesGoThroughStorage) {
  // The property behind the paper's MemcachedEBS result: read-write commits
  // produce writes through the storage stack even when reads all hit cache.
  auto db = make_db();
  ASSERT_TRUE(db->create_table("t", 64).ok());
  ASSERT_TRUE(db->write_row("t", 0, as_view(make_payload(64, 1))).ok());
  const auto puts_before = instance_->stats().puts.load();
  ASSERT_TRUE(db->write_row("t", 0, as_view(make_payload(64, 2))).ok());
  EXPECT_GT(instance_->stats().puts.load(), puts_before);
}

}  // namespace
}  // namespace tiera
