// Model-based test: minidb against a std::map reference under randomized
// transactions (reads, writes, deletes, aborts), including periodic
// "crashes" (drop the engine without checkpointing, reopen, and verify the
// journal recovered every committed transaction and nothing else).
#include <gtest/gtest.h>

#include <map>

#include "sql/minidb.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

using Model = std::map<std::pair<std::string, std::uint64_t>, Bytes>;

class MiniDbModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MiniDbModelTest, RandomTransactionsMatchModel) {
  ZeroLatencyScope zero;
  TempDir dir;
  InstanceConfig config;
  config.data_dir = dir.sub("inst");
  config.tiers = {{"EBS", "tier1", 512 << 20}};
  auto instance = TieraInstance::create(std::move(config));
  ASSERT_TRUE(instance.ok());
  FileAdapter files(**instance, 4096);

  Rng rng(GetParam());
  Model model;
  const std::vector<std::string> tables = {"alpha", "beta"};
  constexpr std::uint32_t kRecordSize = 96;
  constexpr std::uint64_t kRows = 300;

  auto db = std::make_unique<MiniDb>(files);
  ASSERT_TRUE(db->open().ok());
  for (const auto& table : tables) {
    ASSERT_TRUE(db->create_table(table, kRecordSize).ok());
  }

  for (int round = 0; round < 60; ++round) {
    // One transaction of 1..6 operations.
    MiniDb::Transaction txn = db->begin();
    std::vector<std::pair<std::pair<std::string, std::uint64_t>, Bytes>>
        staged;  // empty Bytes = delete
    const int ops = 1 + static_cast<int>(rng.next_below(6));
    for (int i = 0; i < ops; ++i) {
      const std::string& table = tables[rng.next_below(tables.size())];
      const std::uint64_t row = rng.next_below(kRows);
      const int kind = static_cast<int>(rng.next_below(3));
      if (kind == 0) {  // read (verified against committed model only when
                        // this txn hasn't touched the row)
        bool touched = false;
        for (const auto& [key, data] : staged) {
          if (key == std::make_pair(table, row)) touched = true;
        }
        auto got = txn.read(table, row);
        if (!touched) {
          auto it = model.find({table, row});
          if (it == model.end()) {
            EXPECT_TRUE(got.status().is_not_found())
                << table << "/" << row << " round " << round;
          } else {
            ASSERT_TRUE(got.ok()) << table << "/" << row;
            EXPECT_EQ(*got, it->second);
          }
        }
      } else if (kind == 1) {  // write
        const Bytes data = make_payload(kRecordSize, rng.next());
        ASSERT_TRUE(txn.write(table, row, as_view(data)).ok());
        staged.push_back({{table, row}, data});
      } else {  // delete
        ASSERT_TRUE(txn.remove(table, row).ok());
        staged.push_back({{table, row}, {}});
      }
    }
    // Commit or abort.
    if (rng.next_below(4) == 0) {
      db->abort(txn);
    } else {
      ASSERT_TRUE(db->commit(txn).ok());
      for (const auto& [key, data] : staged) {
        if (data.empty()) {
          model.erase(key);
        } else {
          model[key] = data;
        }
      }
    }

    // Occasionally crash (no checkpoint) and recover from the journal.
    if (rng.next_below(10) == 0) {
      db.reset();  // dirty pages die unflushed
      db = std::make_unique<MiniDb>(files);
      ASSERT_TRUE(db->open().ok()) << "recovery round " << round;
    }
  }

  // Full table sweep against the model.
  for (const auto& table : tables) {
    for (std::uint64_t row = 0; row < kRows; ++row) {
      auto got = db->read_row(table, row);
      auto it = model.find({table, row});
      if (it == model.end()) {
        EXPECT_TRUE(got.status().is_not_found()) << table << "/" << row;
      } else {
        ASSERT_TRUE(got.ok()) << table << "/" << row;
        EXPECT_EQ(*got, it->second) << table << "/" << row;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniDbModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace tiera
