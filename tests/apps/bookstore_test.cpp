#include "apps/bookstore.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class BookstoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceConfig config;
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 256 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    instance_ = std::move(instance).value();
    files_ = std::make_unique<FileAdapter>(*instance_, 4096);
    db_ = std::make_unique<MiniDb>(*files_);
    ASSERT_TRUE(db_->open().ok());

    BookstoreOptions options;
    options.items = 50;
    options.customers = 200;
    options.html_bytes = 2048;
    options.image_bytes = 4096;
    store_ = std::make_unique<Bookstore>(*db_, *files_, options);
    ASSERT_TRUE(store_->initialize().ok());
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
  InstancePtr instance_;
  std::unique_ptr<FileAdapter> files_;
  std::unique_ptr<MiniDb> db_;
  std::unique_ptr<Bookstore> store_;
};

TEST_F(BookstoreTest, InitializePopulatesTablesAndStaticContent) {
  EXPECT_TRUE(db_->has_table("bs_items"));
  EXPECT_TRUE(db_->has_table("bs_customers"));
  EXPECT_TRUE(db_->has_table("bs_carts"));
  EXPECT_TRUE(db_->has_table("bs_orders"));
  EXPECT_EQ(*db_->row_count("bs_items"), 50u);
  EXPECT_EQ(*db_->row_count("bs_customers"), 200u);
  EXPECT_TRUE(files_->exists("static/item0.html"));
  EXPECT_TRUE(files_->exists("img/item49.jpg"));
  EXPECT_EQ(files_->list("static/").size(), 50u);
}

TEST_F(BookstoreTest, EveryInteractionSucceeds) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(store_->home(rng).ok());
    EXPECT_TRUE(store_->product_detail(rng).ok());
    EXPECT_TRUE(store_->search(rng).ok());
    EXPECT_TRUE(store_->best_sellers(rng).ok());
    EXPECT_TRUE(store_->add_to_cart(rng).ok());
    EXPECT_TRUE(store_->buy_confirm(rng).ok());
  }
}

TEST_F(BookstoreTest, OrderingInteractionsWriteRows) {
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store_->buy_confirm(rng).ok());
  }
  EXPECT_GE(*db_->row_count("bs_orders"), 10u);
  EXPECT_GT(db_->journal_commits(), 0u);
}

TEST_F(BookstoreTest, ShoppingMixIsReadDominant) {
  // The shopping mix must drive more reads than writes through storage.
  Rng rng(3);
  const auto journal_before = db_->journal_commits();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store_->interaction(rng).ok());
  }
  const auto write_txns = db_->journal_commits() - journal_before;
  EXPECT_GT(write_txns, 10u);   // ordering component present
  EXPECT_LT(write_txns, 100u);  // ...but the mix is read-dominant
}

TEST_F(BookstoreTest, EmulatedBrowsersReportWips) {
  const BrowserRunResult result = run_emulated_browsers(
      *store_, /*browsers=*/4, /*duration=*/from_ms(300),
      /*think_time=*/from_ms(10));
  EXPECT_GT(result.interactions, 0u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.wips, 0.0);
  EXPECT_GT(result.interaction_latency.count(), 0u);
}

TEST_F(BookstoreTest, MoreBrowsersMoreInteractions) {
  // Needs real think time: at scale 1.0 each browser is gated by its think
  // time, so browser count drives concurrency (the Fig. 10 x-axis).
  testing::ZeroLatencyScope scale(1.0);
  const BrowserRunResult few = run_emulated_browsers(
      *store_, 1, from_ms(300), from_ms(20), /*seed=*/100);
  const BrowserRunResult many = run_emulated_browsers(
      *store_, 8, from_ms(300), from_ms(20), /*seed=*/200);
  EXPECT_GT(many.interactions, few.interactions * 3);
}

}  // namespace
}  // namespace tiera
