#include "metadb/metadb.h"

#include <gtest/gtest.h>

#include <fstream>

#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;

TEST(MetaDbTest, PutGetErase) {
  TempDir dir;
  auto db = MetaDb::open(dir.sub("db"));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->put("key", "value").ok());
  auto got = (*db)->get("key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(to_string(as_view(*got)), "value");
  EXPECT_TRUE((*db)->contains("key"));
  ASSERT_TRUE((*db)->erase("key").ok());
  EXPECT_FALSE((*db)->contains("key"));
  EXPECT_TRUE((*db)->get("key").status().is_not_found());
}

TEST(MetaDbTest, OverwriteKeepsLatest) {
  TempDir dir;
  auto db = MetaDb::open(dir.sub("db"));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->put("k", "v1").ok());
  ASSERT_TRUE((*db)->put("k", "v2").ok());
  EXPECT_EQ(to_string(as_view(*(*db)->get("k"))), "v2");
  EXPECT_EQ((*db)->size(), 1u);
}

TEST(MetaDbTest, EraseMissingIsNotFound) {
  TempDir dir;
  auto db = MetaDb::open(dir.sub("db"));
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->erase("ghost").is_not_found());
}

TEST(MetaDbTest, PersistsAcrossReopen) {
  TempDir dir;
  const std::string path = dir.sub("db");
  {
    auto db = MetaDb::open(path);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*db)->put("key" + std::to_string(i),
                             "value" + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE((*db)->erase("key50").ok());
  }
  auto db = MetaDb::open(path);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->size(), 99u);
  EXPECT_FALSE((*db)->contains("key50"));
  EXPECT_EQ(to_string(as_view(*(*db)->get("key7"))), "value7");
}

TEST(MetaDbTest, RecoversFromTornTail) {
  TempDir dir;
  const std::string path = dir.sub("db");
  {
    auto db = MetaDb::open(path);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->put("a", "1").ok());
    ASSERT_TRUE((*db)->put("b", "2").ok());
  }
  // Simulate a crash mid-append: chop a few bytes off the tail.
  {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    ASSERT_FALSE(ec);
    std::filesystem::resize_file(path, size - 3, ec);
    ASSERT_FALSE(ec);
  }
  auto db = MetaDb::open(path);
  ASSERT_TRUE(db.ok()) << db.status().to_string();
  EXPECT_TRUE((*db)->contains("a"));
  EXPECT_FALSE((*db)->contains("b"));  // torn record discarded
  // And the db stays writable after truncation.
  EXPECT_TRUE((*db)->put("c", "3").ok());
}

TEST(MetaDbTest, RecoversFromCorruptTail) {
  TempDir dir;
  const std::string path = dir.sub("db");
  {
    auto db = MetaDb::open(path);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->put("a", "1").ok());
    ASSERT_TRUE((*db)->put("b", "2").ok());
  }
  {
    // Flip a byte inside the second record's payload.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('X');
  }
  auto db = MetaDb::open(path);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->contains("a"));
  EXPECT_FALSE((*db)->contains("b"));
}

TEST(MetaDbTest, ScanVisitsAllLiveRecords) {
  TempDir dir;
  auto db = MetaDb::open(dir.sub("db"));
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*db)->put("k" + std::to_string(i), "v").ok());
  }
  int seen = 0;
  (*db)->scan([&](std::string_view, ByteView) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 10);
  // Early stop.
  seen = 0;
  (*db)->scan([&](std::string_view, ByteView) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3);
}

TEST(MetaDbTest, ScanPrefixFilters) {
  TempDir dir;
  auto db = MetaDb::open(dir.sub("db"));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->put("obj/1", "a").ok());
  ASSERT_TRUE((*db)->put("obj/2", "b").ok());
  ASSERT_TRUE((*db)->put("cfg/1", "c").ok());
  int seen = 0;
  (*db)->scan_prefix("obj/", [&](std::string_view key, ByteView) {
    EXPECT_EQ(key.substr(0, 4), "obj/");
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 2);
}

TEST(MetaDbTest, CompactShrinksLogAndPreservesData) {
  TempDir dir;
  auto db = MetaDb::open(dir.sub("db"));
  ASSERT_TRUE(db.ok());
  const Bytes big(1000, 0x55);
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE((*db)->put("hot", as_view(big)).ok());
  }
  const auto before = (*db)->log_bytes();
  EXPECT_GT((*db)->dead_bytes(), 0u);
  ASSERT_TRUE((*db)->compact().ok());
  EXPECT_LT((*db)->log_bytes(), before);
  EXPECT_EQ((*db)->dead_bytes(), 0u);
  EXPECT_EQ(to_string(as_view(*(*db)->get("hot"))).size(), big.size());
  // Still writable and still durable after compaction.
  ASSERT_TRUE((*db)->put("post", "compact").ok());
}

TEST(MetaDbTest, AutoCompactionTriggers) {
  TempDir dir;
  MetaDbOptions options;
  options.auto_compact_min_bytes = 10'000;
  options.auto_compact_ratio = 0.5;
  auto db = MetaDb::open(dir.sub("db"), options);
  ASSERT_TRUE(db.ok());
  const Bytes big(1000, 0x66);
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE((*db)->put("hot", as_view(big)).ok());
  }
  // Log must have been rewritten at least once: far smaller than 200 KB.
  EXPECT_LT((*db)->log_bytes(), 100'000u);
  EXPECT_EQ((*db)->size(), 1u);
}

TEST(MetaDbTest, CompactedLogReopens) {
  TempDir dir;
  const std::string path = dir.sub("db");
  {
    auto db = MetaDb::open(path);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*db)->put("k" + std::to_string(i % 5), "v").ok());
    }
    ASSERT_TRUE((*db)->compact().ok());
  }
  auto db = MetaDb::open(path);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->size(), 5u);
}

TEST(MetaDbTest, SyncEveryWriteMode) {
  TempDir dir;
  MetaDbOptions options;
  options.sync_every_write = true;
  auto db = MetaDb::open(dir.sub("db"), options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->put("k", "v").ok());
  ASSERT_TRUE((*db)->sync().ok());
}

TEST(MetaDbTest, BinaryKeysAndValues) {
  TempDir dir;
  auto db = MetaDb::open(dir.sub("db"));
  ASSERT_TRUE(db.ok());
  Bytes value = {0x00, 0xFF, 0x01, 0x00, 0x7F};
  const std::string key("\x00\x01weird", 7);
  ASSERT_TRUE((*db)->put(key, as_view(value)).ok());
  auto got = (*db)->get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
}

TEST(MetaDbTest, EmptyValueAllowed) {
  TempDir dir;
  auto db = MetaDb::open(dir.sub("db"));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->put("empty", ByteView{}).ok());
  auto got = (*db)->get("empty");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

}  // namespace
}  // namespace tiera
