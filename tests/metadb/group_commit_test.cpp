// Group commit on the metadata journal: fsync coalescing under concurrent
// writers, batch accounting, and crash safety (no acknowledged record lost,
// no torn record survives replay).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/group_commit.h"
#include "metadb/metadb.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;

TEST(GroupCommitterTest, SingleWriterFlushesEveryCommit) {
  std::uint64_t flushes = 0;
  Bytes flushed;
  GroupCommitter gc(
      [&](ByteView batch, std::uint64_t) {
        ++flushes;
        flushed.insert(flushed.end(), batch.begin(), batch.end());
        return Status::Ok();
      },
      {});
  for (int i = 0; i < 5; ++i) {
    const std::string rec = "r" + std::to_string(i);
    const std::uint64_t seq = gc.stage(as_view(rec));
    ASSERT_TRUE(gc.commit(seq).ok());
  }
  EXPECT_EQ(flushes, 5u);  // nothing to coalesce with: one flush per commit
  EXPECT_EQ(to_string(as_view(flushed)), "r0r1r2r3r4");
  EXPECT_EQ(gc.stats().records, 5u);
}

TEST(GroupCommitterTest, ConcurrentWritersShareFlushes) {
  std::atomic<std::uint64_t> flushes{0};
  GroupCommitter::Options options;
  options.max_wait = std::chrono::milliseconds(2);  // generous linger
  GroupCommitter gc(
      [&](ByteView, std::uint64_t) {
        flushes.fetch_add(1);
        // A slow device: followers pile up behind the leader.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return Status::Ok();
      },
      options);

  constexpr int kThreads = 8;
  constexpr int kRecords = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRecords; ++i) {
        const std::uint64_t seq = gc.stage(as_view(std::string("x")));
        if (!gc.commit(seq).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = gc.stats();
  EXPECT_EQ(stats.records, kThreads * std::uint64_t(kRecords));
  // The whole point: far fewer flushes than records.
  EXPECT_LT(flushes.load(), stats.records / 4);
  EXPECT_GT(stats.max_batch_records, 1u);
}

TEST(GroupCommitterTest, FlushErrorIsStickyForTheBatch) {
  GroupCommitter gc(
      [&](ByteView, std::uint64_t) {
        return Status::Internal("disk on fire");
      },
      {});
  const std::uint64_t seq = gc.stage(as_view(std::string("rec")));
  EXPECT_FALSE(gc.commit(seq).ok());
}

TEST(MetaDbGroupCommitTest, ConcurrentSyncedWritersCoalesceFsyncs) {
  TempDir dir;
  MetaDbOptions options;
  options.sync_every_write = true;
  options.journal_batch_wait = std::chrono::milliseconds(1);
  auto db = MetaDb::open(dir.sub("db"), options);
  ASSERT_TRUE(db.ok());

  constexpr int kThreads = 8;
  constexpr int kWrites = 40;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kWrites; ++i) {
        const std::string key = "t" + std::to_string(t) + "-" +
                                std::to_string(i);
        if (!(*db)->put(key, "v").ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = (*db)->journal_stats();
  EXPECT_EQ(stats.records, kThreads * std::uint64_t(kWrites));
  // Every write was acknowledged durable, yet fsyncs stayed well below one
  // per record (the ISSUE gate asserts < records/4 under saturation).
  EXPECT_GT(stats.fsyncs, 0u);
  EXPECT_LT(stats.fsyncs, stats.records / 4);
  EXPECT_EQ(stats.batches, stats.fsyncs);

  // Each acknowledged record is really in the log.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kWrites; ++i) {
      EXPECT_TRUE((*db)->contains("t" + std::to_string(t) + "-" +
                                  std::to_string(i)));
    }
  }
}

TEST(MetaDbGroupCommitTest, UnsyncedModeSkipsFsyncEntirely) {
  TempDir dir;
  auto db = MetaDb::open(dir.sub("db"));  // sync_every_write = false
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*db)->put("k" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ((*db)->journal_stats().fsyncs, 0u);
  EXPECT_EQ((*db)->journal_stats().records, 100u);
}

// Crash test: a child process writes with sync_every_write on, reporting
// each key through a pipe ONLY after its put() returned (i.e. after the
// group-commit batch it joined was fsynced). The parent SIGKILLs the child
// mid-stream, replays the log, and every acknowledged key must be present —
// group commit must not acknowledge ahead of the shared fsync. Torn records
// past the last fsynced batch are truncated by replay, never surfaced.
TEST(MetaDbGroupCommitTest, KilledMidBatchLosesNoAcknowledgedRecord) {
  TempDir dir;
  const std::string path = dir.sub("db");

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: hammer the journal from several threads until killed.
    ::close(fds[0]);
    MetaDbOptions options;
    options.sync_every_write = true;
    auto db = MetaDb::open(path, options);
    if (!db.ok()) _exit(1);
    std::vector<std::thread> writers;
    std::mutex pipe_mu;
    for (int t = 0; t < 4; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < 100000; ++i) {
          const std::string key = "c" + std::to_string(t) + "-" +
                                  std::to_string(i);
          if (!(*db)->put(key, std::string(48, 'v')).ok()) _exit(2);
          const std::string line = key + "\n";
          std::lock_guard lock(pipe_mu);
          if (::write(fds[1], line.data(), line.size()) < 0) _exit(3);
        }
      });
    }
    for (auto& w : writers) w.join();
    _exit(0);
  }

  // Parent: collect acknowledged keys for a moment, then pull the plug.
  ::close(fds[1]);
  std::string acked;
  char buf[4096];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(300);
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n <= 0) break;
    acked.append(buf, static_cast<std::size_t>(n));
  }
  ::kill(pid, SIGKILL);
  // Drain what the child managed to write before dying.
  for (;;) {
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n <= 0) break;
    acked.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Only complete lines count: a key truncated mid-pipe-write was not
  // observably acknowledged.
  std::vector<std::string> keys;
  std::size_t start = 0;
  for (std::size_t nl = acked.find('\n'); nl != std::string::npos;
       nl = acked.find('\n', start)) {
    keys.push_back(acked.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_FALSE(keys.empty()) << "child died before acknowledging anything";

  // Clean replay — torn tail (if the kill landed mid-write) truncates away.
  auto db = MetaDb::open(path);
  ASSERT_TRUE(db.ok()) << db.status().to_string();
  for (const auto& key : keys) {
    EXPECT_TRUE((*db)->contains(key)) << "acknowledged key lost: " << key;
  }
  // And the reopened db still accepts writes.
  EXPECT_TRUE((*db)->put("after-crash", "ok").ok());
}

}  // namespace
}  // namespace tiera
