// TrafficSchedule: the open-loop arrival model behind bench/soak_runner.
// Checks the load-curve math, the Poisson arrival counts against the
// curve's integral, mix/skew/tenant attribution, and seed determinism.
#include "workload/traffic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace tiera {
namespace {

std::vector<TrafficOp> drain(const TrafficOptions& options) {
  TrafficSchedule schedule(options);
  std::vector<TrafficOp> ops;
  TrafficOp op;
  while (schedule.next(&op)) ops.push_back(op);
  return ops;
}

TEST(OpMixTest, ParsesYcsbLettersAndFractions) {
  EXPECT_DOUBLE_EQ(OpMix::parse("a")->read_fraction, 0.5);
  EXPECT_DOUBLE_EQ(OpMix::parse("b")->read_fraction, 0.95);
  EXPECT_DOUBLE_EQ(OpMix::parse("c")->read_fraction, 1.0);
  EXPECT_DOUBLE_EQ(OpMix::parse("0.8")->read_fraction, 0.8);
  EXPECT_FALSE(OpMix::parse("1.5").ok());
  EXPECT_FALSE(OpMix::parse("-0.1").ok());
  EXPECT_FALSE(OpMix::parse("ycsb").ok());
}

TEST(LoadCurveTest, FlatCurveIsBaseEverywhere) {
  LoadCurve curve;
  curve.base_qps = 500;
  EXPECT_DOUBLE_EQ(curve.qps_at(0), 500);
  EXPECT_DOUBLE_EQ(curve.qps_at(1234.5), 500);
  EXPECT_DOUBLE_EQ(curve.peak_qps(), 500);
}

TEST(LoadCurveTest, DiurnalSineSwingsAroundBase) {
  LoadCurve curve;
  curve.base_qps = 1000;
  curve.diurnal_amplitude = 0.3;
  curve.diurnal_period_s = 100;
  // Peak of the sine is a quarter period in; trough three quarters in.
  EXPECT_NEAR(curve.qps_at(25), 1300, 1e-6);
  EXPECT_NEAR(curve.qps_at(75), 700, 1e-6);
  EXPECT_NEAR(curve.qps_at(0), 1000, 1e-6);
  EXPECT_NEAR(curve.peak_qps(), 1300, 1e-6);
}

TEST(LoadCurveTest, FlashCrowdsMultiplyInsideTheirWindow) {
  LoadCurve curve;
  curve.base_qps = 100;
  curve.crowds.push_back({10.0, 5.0, 8.0});
  curve.crowds.push_back({12.0, 2.0, 2.0});  // overlapping crowds stack
  EXPECT_DOUBLE_EQ(curve.qps_at(9.9), 100);
  EXPECT_DOUBLE_EQ(curve.qps_at(10.0), 800);
  EXPECT_DOUBLE_EQ(curve.qps_at(13.0), 1600);
  EXPECT_DOUBLE_EQ(curve.qps_at(14.5), 800);
  EXPECT_DOUBLE_EQ(curve.qps_at(15.0), 100);
  EXPECT_DOUBLE_EQ(curve.peak_qps(), 1600);
}

TEST(LoadCurveTest, PeakIsAnEnvelopeOverTheWholeSchedule) {
  LoadCurve curve;
  curve.base_qps = 200;
  curve.diurnal_amplitude = 0.5;
  curve.diurnal_period_s = 60;
  curve.crowds.push_back({30.0, 10.0, 4.0});
  const double peak = curve.peak_qps();
  for (double t = 0; t < 120; t += 0.25) {
    ASSERT_LE(curve.qps_at(t), peak + 1e-9) << "t=" << t;
  }
}

TEST(FailureStormTest, WindowIsHalfOpen) {
  FailureStorm storm;
  storm.start_s = 5;
  storm.duration_s = 3;
  EXPECT_FALSE(storm.active_at(4.999));
  EXPECT_TRUE(storm.active_at(5.0));
  EXPECT_TRUE(storm.active_at(7.999));
  EXPECT_FALSE(storm.active_at(8.0));
}

TEST(TrafficScheduleTest, SameSeedSameSchedule) {
  TrafficOptions options;
  options.users = 10'000;
  options.curve.base_qps = 500;
  options.duration_s = 10;
  options.tenants = 4;
  options.seed = 7;
  const auto a = drain(options);
  const auto b = drain(options);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 1000u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i].at_s, b[i].at_s);
    ASSERT_EQ(a[i].kind, b[i].kind);
    ASSERT_EQ(a[i].user, b[i].user);
    ASSERT_EQ(a[i].tenant, b[i].tenant);
  }
  options.seed = 8;
  const auto c = drain(options);
  // A different seed must actually change the draw, not just reshuffle.
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at_s != c[i].at_s || a[i].user != c[i].user;
  }
  EXPECT_TRUE(differs);
}

TEST(TrafficScheduleTest, ArrivalCountTracksTheCurveIntegral) {
  TrafficOptions options;
  options.users = 1000;
  options.duration_s = 40;
  options.curve.base_qps = 250;
  options.curve.crowds.push_back({20.0, 10.0, 4.0});
  const auto ops = drain(options);
  // Integral: 250*40 base + 250*3*10 extra during the crowd = 17500.
  const double expected = 250 * 40 + 250 * 3 * 10;
  EXPECT_NEAR(ops.size(), expected, 6 * std::sqrt(expected));

  // The crowd window must hold ~10x the arrivals of a calm window of the
  // same length (4x rate * 10s vs 250qps * 10s would be 4x; compare
  // half-windows to keep the bands clearly separated).
  std::size_t calm = 0, crowd = 0;
  for (const auto& op : ops) {
    ASSERT_GE(op.at_s, 0.0);
    ASSERT_LT(op.at_s, options.duration_s);
    if (op.at_s >= 5 && op.at_s < 15) calm++;
    if (op.at_s >= 20 && op.at_s < 30) crowd++;
  }
  EXPECT_GT(crowd, 3 * calm);
}

TEST(TrafficScheduleTest, MixAndTenantsAttributedAsConfigured) {
  TrafficOptions options;
  options.users = 1000;
  options.duration_s = 20;
  options.curve.base_qps = 500;
  options.mix = OpMix::ycsb_a();  // 50/50
  options.tenants = 3;
  const auto ops = drain(options);
  ASSERT_GT(ops.size(), 5000u);
  std::size_t reads = 0;
  std::map<std::uint32_t, std::size_t> per_tenant;
  for (const auto& op : ops) {
    if (op.kind == TrafficOpKind::kGet) reads++;
    per_tenant[op.tenant]++;
  }
  const double read_fraction = static_cast<double>(reads) / ops.size();
  EXPECT_NEAR(read_fraction, 0.5, 0.05);
  // Round-robin tenants: all three present, within one op of each other.
  ASSERT_EQ(per_tenant.size(), 3u);
  EXPECT_LE(per_tenant[0] - per_tenant[2], 1u);

  options.mix = OpMix::ycsb_c();
  for (const auto& op : drain(options)) {
    ASSERT_EQ(op.kind, TrafficOpKind::kGet);
  }
}

TEST(TrafficScheduleTest, ZipfianSkewConcentratesOnAHotSet) {
  TrafficOptions options;
  options.users = 100'000;
  options.duration_s = 20;
  options.curve.base_qps = 1000;
  options.zipf_theta = 0.99;
  const auto ops = drain(options);
  std::map<std::uint64_t, std::size_t> hits;
  for (const auto& op : ops) {
    ASSERT_LT(op.user, options.users);
    hits[op.user]++;
  }
  // Zipfian theta .99: the touched set is a small fraction of the
  // population and the hottest key is far above the uniform expectation.
  EXPECT_LT(hits.size(), ops.size() / 2);
  std::size_t hottest = 0;
  for (const auto& [user, count] : hits) hottest = std::max(hottest, count);
  const double uniform = static_cast<double>(ops.size()) / options.users;
  EXPECT_GT(hottest, 50 * uniform);
}

TEST(TrafficScheduleTest, KeyNamesAreStablePrefixedIndices) {
  TrafficOptions options;
  options.key_prefix = "soak";
  TrafficSchedule schedule(options);
  EXPECT_EQ(schedule.key_name(0), "soak0");
  EXPECT_EQ(schedule.key_name(12345), "soak12345");
}

}  // namespace
}  // namespace tiera
