#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/file_workload.h"
#include "workload/kv_workload.h"
#include "workload/oltp_workload.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceConfig config;
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 256 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    instance_ = std::move(instance).value();
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
  InstancePtr instance_;
};

TEST_F(WorkloadTest, KvMixedWorkloadRuns) {
  KvWorkloadOptions options;
  options.record_count = 50;
  options.value_size = 512;
  options.read_fraction = 0.5;
  options.threads = 4;
  options.duration = from_ms(100);
  auto backend = KvBackend::for_instance(*instance_);
  const KvWorkloadResult result = run_kv_workload(backend, options);
  EXPECT_GT(result.reads, 0u);
  EXPECT_GT(result.writes, 0u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.ops_per_sec(), 0.0);
  EXPECT_GT(result.read_latency.count(), 0u);
  // Roughly balanced mix.
  const double read_share =
      static_cast<double>(result.reads) /
      static_cast<double>(result.reads + result.writes);
  EXPECT_NEAR(read_share, 0.5, 0.15);
}

TEST_F(WorkloadTest, KvReadOnlyAndWriteOnly) {
  auto backend = KvBackend::for_instance(*instance_);
  KvWorkloadOptions options;
  options.record_count = 20;
  options.value_size = 128;
  options.duration = from_ms(50);
  options.read_fraction = 1.0;
  KvWorkloadResult ro = run_kv_workload(backend, options);
  EXPECT_EQ(ro.writes, 0u);
  EXPECT_GT(ro.reads, 0u);
  options.read_fraction = 0.0;
  options.preload = false;
  KvWorkloadResult wo = run_kv_workload(backend, options);
  EXPECT_EQ(wo.reads, 0u);
  EXPECT_GT(wo.writes, 0u);
}

TEST_F(WorkloadTest, KvErrorsCountedDuringOutage) {
  instance_->tier("tier1")->inject_failure(FailureMode::kFailStop);
  KvWorkloadOptions options;
  options.record_count = 10;
  options.duration = from_ms(30);
  options.read_fraction = 0.0;
  options.preload = false;
  auto backend = KvBackend::for_instance(*instance_);
  const KvWorkloadResult result = run_kv_workload(backend, options);
  EXPECT_EQ(result.writes, 0u);
  EXPECT_GT(result.errors, 0u);
  instance_->tier("tier1")->heal();
}

TEST_F(WorkloadTest, KvTimelineRecordsOps) {
  ThroughputTimeline timeline(std::chrono::seconds(1), 10);
  KvWorkloadOptions options;
  options.record_count = 20;
  options.value_size = 64;
  options.duration = from_ms(200);
  options.timeline = &timeline;
  auto backend = KvBackend::for_instance(*instance_);
  timeline.start();
  const KvWorkloadResult result = run_kv_workload(backend, options);
  EXPECT_GT(result.reads + result.writes, 0u);
  EXPECT_GT(timeline.rate(0), 0.0);
}

TEST_F(WorkloadTest, RawTierBackendBypassesControlLayer) {
  auto backend = KvBackend::for_tiers(instance_->tiers());
  const Bytes payload = make_payload(100, 1);
  ASSERT_TRUE(backend.put("raw", as_view(payload)).ok());
  auto got = backend.get("raw");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  // No instance metadata for raw puts: the control layer never saw it.
  EXPECT_FALSE(instance_->contains("raw"));
}

class OltpWorkloadTest : public WorkloadTest {
 protected:
  void SetUp() override {
    WorkloadTest::SetUp();
    files_ = std::make_unique<FileAdapter>(*instance_, 4096);
    db_ = std::make_unique<MiniDb>(*files_);
    ASSERT_TRUE(db_->open().ok());
  }

  std::unique_ptr<FileAdapter> files_;
  std::unique_ptr<MiniDb> db_;
};

TEST_F(OltpWorkloadTest, LoadPopulatesTable) {
  OltpOptions options;
  options.table_rows = 200;
  ASSERT_TRUE(load_oltp_table(*db_, options).ok());
  EXPECT_EQ(*db_->row_count(options.table), 200u);
  EXPECT_TRUE(db_->read_row(options.table, 0).ok());
  EXPECT_TRUE(db_->read_row(options.table, 199).ok());
}

TEST_F(OltpWorkloadTest, ReadOnlyMixCommitsNoJournal) {
  OltpOptions options;
  options.table_rows = 200;
  options.read_only = true;
  options.threads = 4;
  options.duration = from_ms(100);
  ASSERT_TRUE(load_oltp_table(*db_, options).ok());
  const auto journal_before = db_->journal_commits();
  const OltpResult result = run_oltp(*db_, options);
  EXPECT_GT(result.transactions, 0u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.tps(), 0.0);
  // Read-only transactions skip the journal entirely.
  EXPECT_EQ(db_->journal_commits(), journal_before);
}

TEST_F(OltpWorkloadTest, ReadWriteMixJournals) {
  OltpOptions options;
  options.table_rows = 200;
  options.read_only = false;
  options.threads = 4;
  options.duration = from_ms(100);
  ASSERT_TRUE(load_oltp_table(*db_, options).ok());
  const OltpResult result = run_oltp(*db_, options);
  EXPECT_GT(result.transactions, 0u);
  EXPECT_GT(db_->journal_commits(), 0u);
  EXPECT_GT(result.p95_ms(), 0.0);
}

TEST_F(OltpWorkloadTest, HotFractionShiftsBufferPoolHitRate) {
  // With a buffer pool smaller than the table, a 1% hot set should hit the
  // pool far more often than a 30% hot set — the mechanism behind the
  // paper's Figs. 7/8 x-axis.
  OltpOptions options;
  options.table_rows = 20'000;
  options.read_only = true;
  options.threads = 2;
  options.duration = from_ms(150);

  auto run_with_hot = [&](double hot) {
    InstanceConfig config;
    config.data_dir = dir_.sub("hot" + std::to_string(hot));
    config.tiers = {{"Memcached", "t1", 256 << 20}};
    auto inst = TieraInstance::create(std::move(config));
    EXPECT_TRUE(inst.ok());
    FileAdapter files(**inst, 4096);
    MiniDbOptions db_options;
    db_options.buffer_pool_pages = 64;  // far smaller than the table
    MiniDb db(files, db_options);
    EXPECT_TRUE(db.open().ok());
    options.hot_fraction = hot;
    EXPECT_TRUE(load_oltp_table(db, options).ok());
    (void)run_oltp(db, options);
    return db.buffer_stats().hit_rate();
  };

  const double hot1 = run_with_hot(0.01);
  const double hot30 = run_with_hot(0.30);
  EXPECT_GT(hot1, hot30);
}

TEST_F(OltpWorkloadTest, FileReadsFollowZipf) {
  ASSERT_TRUE(files_->create("blob").ok());
  ASSERT_TRUE(
      files_->write("blob", 0, as_view(make_payload(64 << 10, 9))).ok());
  FileWorkloadOptions options;
  options.paths = {"blob"};
  options.threads = 2;
  options.duration = from_ms(80);
  const FileWorkloadResult result = run_file_reads(*files_, options);
  EXPECT_GT(result.reads, 0u);
  EXPECT_EQ(result.errors, 0u);
}

}  // namespace
}  // namespace tiera
