// Shared test helpers.
#pragma once

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/clock.h"

namespace tiera::testing {

// RAII temporary directory for file-backed tiers and metadb files.
class TempDir {
 public:
  TempDir() {
    std::string pattern = "/tmp/tiera-test-XXXXXX";
    path_ = ::mkdtemp(pattern.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

// Most logic tests disable modelled latency entirely so they run instantly;
// timing-sensitive tests pick a small positive scale.
class ZeroLatencyScope {
 public:
  ZeroLatencyScope() : previous_(time_scale()) { set_time_scale(0.0); }
  explicit ZeroLatencyScope(double scale) : previous_(time_scale()) {
    set_time_scale(scale);
  }
  ~ZeroLatencyScope() { set_time_scale(previous_); }

 private:
  double previous_;
};

}  // namespace tiera::testing
