// Model-based test: the FileAdapter against a plain in-memory byte-vector
// model, under randomized sequences of create/write/append/read/truncate/
// remove across several files. Any divergence in contents, sizes, or
// existence is a bug in the chunking layer.
#include <gtest/gtest.h>

#include <map>

#include "posix/file_adapter.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class FileModel {
 public:
  bool exists(const std::string& path) const { return files_.count(path); }
  bool create(const std::string& path) {
    if (exists(path)) return false;
    files_[path] = {};
    return true;
  }
  void write(const std::string& path, std::uint64_t offset, ByteView data) {
    Bytes& file = files_[path];
    if (file.size() < offset + data.size()) {
      file.resize(offset + data.size(), 0);
    }
    std::copy(data.begin(), data.end(), file.begin() + offset);
  }
  Bytes read(const std::string& path, std::uint64_t offset,
             std::size_t length) const {
    const Bytes& file = files_.at(path);
    if (offset >= file.size()) return {};
    const std::size_t end = std::min<std::size_t>(file.size(), offset + length);
    return Bytes(file.begin() + offset, file.begin() + end);
  }
  void truncate(const std::string& path, std::uint64_t size) {
    files_[path].resize(size, 0);
  }
  void remove(const std::string& path) { files_.erase(path); }
  std::uint64_t size(const std::string& path) const {
    return files_.at(path).size();
  }
  const std::map<std::string, Bytes>& files() const { return files_; }

 private:
  std::map<std::string, Bytes> files_;
};

class FileAdapterModelTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(FileAdapterModelTest, RandomOpsMatchModel) {
  const auto [seed, chunk_size] = GetParam();
  ZeroLatencyScope zero;
  TempDir dir;
  InstanceConfig config;
  config.data_dir = dir.sub("inst");
  config.tiers = {{"Memcached", "tier1", 512 << 20}};
  auto instance = TieraInstance::create(std::move(config));
  ASSERT_TRUE(instance.ok());
  FileAdapter fs(**instance, chunk_size);
  FileModel model;
  Rng rng(seed);

  const std::vector<std::string> paths = {"a", "dir/b", "dir/c", "d"};
  for (int step = 0; step < 400; ++step) {
    const std::string& path = paths[rng.next_below(paths.size())];
    const int op = static_cast<int>(rng.next_below(6));
    switch (op) {
      case 0: {  // create
        const bool model_ok = model.create(path);
        const Status s = fs.create(path);
        EXPECT_EQ(s.ok(), model_ok) << "create " << path << " step " << step;
        break;
      }
      case 1: {  // write at random offset
        if (!model.exists(path)) {
          EXPECT_TRUE(fs.write(path, 0, as_view(std::string_view("x")))
                          .is_not_found());
          break;
        }
        const std::uint64_t offset = rng.next_below(3 * chunk_size);
        const Bytes data =
            make_payload(1 + rng.next_below(2 * chunk_size), rng.next());
        ASSERT_TRUE(fs.write(path, offset, as_view(data)).ok());
        model.write(path, offset, as_view(data));
        break;
      }
      case 2: {  // append
        if (!model.exists(path)) break;
        const Bytes data =
            make_payload(1 + rng.next_below(chunk_size / 2 + 1), rng.next());
        auto at = fs.append(path, as_view(data));
        ASSERT_TRUE(at.ok());
        EXPECT_EQ(*at, model.size(path));
        model.write(path, model.size(path), as_view(data));
        break;
      }
      case 3: {  // read at random offset
        if (!model.exists(path)) break;
        const std::uint64_t offset = rng.next_below(4 * chunk_size);
        const std::size_t length = 1 + rng.next_below(2 * chunk_size);
        auto got = fs.read(path, offset, length);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, model.read(path, offset, length))
            << "read " << path << "@" << offset << " step " << step;
        break;
      }
      case 4: {  // truncate
        if (!model.exists(path)) break;
        const std::uint64_t new_size = rng.next_below(3 * chunk_size);
        ASSERT_TRUE(fs.truncate(path, new_size).ok());
        model.truncate(path, new_size);
        break;
      }
      case 5: {  // remove (rarely)
        if (rng.next_below(8) != 0) break;
        if (!model.exists(path)) break;
        ASSERT_TRUE(fs.remove(path).ok());
        model.remove(path);
        break;
      }
    }
    // Size always agrees.
    if (model.exists(path)) {
      auto size = fs.size(path);
      ASSERT_TRUE(size.ok());
      EXPECT_EQ(*size, model.size(path)) << path << " step " << step;
    } else {
      EXPECT_FALSE(fs.exists(path)) << path << " step " << step;
    }
  }

  // Final deep verification of every surviving file.
  for (const auto& [path, content] : model.files()) {
    auto all = fs.read_all(path);
    ASSERT_TRUE(all.ok()) << path;
    EXPECT_EQ(*all, content) << path;
  }
  EXPECT_EQ(fs.list().size(), model.files().size());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndChunks, FileAdapterModelTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(512, 4096)));

}  // namespace
}  // namespace tiera
