#include "posix/file_adapter.h"

#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class FileAdapterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceConfig config;
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 64 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    instance_ = std::move(instance).value();
    files_ = std::make_unique<FileAdapter>(*instance_, 4096);
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
  InstancePtr instance_;
  std::unique_ptr<FileAdapter> files_;
};

TEST_F(FileAdapterTest, CreateWriteRead) {
  ASSERT_TRUE(files_->create("db/data").ok());
  EXPECT_TRUE(files_->exists("db/data"));
  const Bytes payload = make_payload(10'000, 1);
  ASSERT_TRUE(files_->write("db/data", 0, as_view(payload)).ok());
  EXPECT_EQ(*files_->size("db/data"), 10'000u);
  auto all = files_->read_all("db/data");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, payload);
}

TEST_F(FileAdapterTest, DuplicateCreateRejected) {
  ASSERT_TRUE(files_->create("f").ok());
  EXPECT_EQ(files_->create("f").code(), StatusCode::kAlreadyExists);
}

TEST_F(FileAdapterTest, PathValidation) {
  EXPECT_FALSE(files_->create("").ok());
  EXPECT_FALSE(files_->create("bad#name").ok());
}

TEST_F(FileAdapterTest, MissingFileOperationsFail) {
  EXPECT_TRUE(files_->size("ghost").status().is_not_found());
  EXPECT_TRUE(files_->write("ghost", 0, as_view(std::string_view("x")))
                  .is_not_found());
  EXPECT_TRUE(files_->read("ghost", 0, 10).status().is_not_found());
  EXPECT_TRUE(files_->remove("ghost").is_not_found());
}

TEST_F(FileAdapterTest, UnalignedWritesReadModifyWrite) {
  ASSERT_TRUE(files_->create("f").ok());
  // Lay down a full base then patch a span crossing a chunk boundary.
  const Bytes base = make_payload(12'288, 2);  // 3 chunks
  ASSERT_TRUE(files_->write("f", 0, as_view(base)).ok());
  const Bytes patch = make_payload(1000, 3);
  ASSERT_TRUE(files_->write("f", 3800, as_view(patch)).ok());

  Bytes expected = base;
  std::copy(patch.begin(), patch.end(), expected.begin() + 3800);
  auto all = files_->read_all("f");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, expected);
}

TEST_F(FileAdapterTest, WritePastEndExtendsWithZeros) {
  ASSERT_TRUE(files_->create("f").ok());
  ASSERT_TRUE(files_->write("f", 10'000, as_view(std::string_view("end"))).ok());
  EXPECT_EQ(*files_->size("f"), 10'003u);
  auto hole = files_->read("f", 5000, 10);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(*hole, Bytes(10, 0));
  auto tail = files_->read("f", 10'000, 3);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(to_string(as_view(*tail)), "end");
}

TEST_F(FileAdapterTest, ShortReadAtEof) {
  ASSERT_TRUE(files_->create("f").ok());
  ASSERT_TRUE(files_->write("f", 0, as_view(std::string_view("abcdef"))).ok());
  auto read = files_->read("f", 4, 100);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(as_view(*read)), "ef");
  auto beyond = files_->read("f", 100, 10);
  ASSERT_TRUE(beyond.ok());
  EXPECT_TRUE(beyond->empty());
}

TEST_F(FileAdapterTest, AppendReturnsOffsets) {
  ASSERT_TRUE(files_->create("log").ok());
  auto first = files_->append("log", as_view(std::string_view("aaaa")));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);
  auto second = files_->append("log", as_view(std::string_view("bb")));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 4u);
  EXPECT_EQ(*files_->size("log"), 6u);
}

TEST_F(FileAdapterTest, TruncateShrinksAndDeletesChunks) {
  ASSERT_TRUE(files_->create("f").ok());
  ASSERT_TRUE(files_->write("f", 0, as_view(make_payload(20'000, 4))).ok());
  const auto objects_before = instance_->object_count();
  ASSERT_TRUE(files_->truncate("f", 5000).ok());
  EXPECT_EQ(*files_->size("f"), 5000u);
  EXPECT_LT(instance_->object_count(), objects_before);
  // Content up to the cut is preserved.
  auto data = files_->read_all("f");
  ASSERT_TRUE(data.ok());
  const Bytes original = make_payload(20'000, 4);
  EXPECT_TRUE(std::equal(data->begin(), data->end(), original.begin()));
  // Extending truncate just grows the logical size.
  ASSERT_TRUE(files_->truncate("f", 8000).ok());
  EXPECT_EQ(*files_->size("f"), 8000u);
}

TEST_F(FileAdapterTest, RemoveDeletesChunks) {
  ASSERT_TRUE(files_->create("f").ok());
  ASSERT_TRUE(files_->write("f", 0, as_view(make_payload(16'384, 5))).ok());
  ASSERT_TRUE(files_->remove("f").ok());
  EXPECT_FALSE(files_->exists("f"));
  // Only residual non-chunk objects may remain (none for this instance).
  EXPECT_EQ(instance_->object_count(), 0u);
}

TEST_F(FileAdapterTest, ListFiltersByPrefix) {
  ASSERT_TRUE(files_->create("a/1").ok());
  ASSERT_TRUE(files_->create("a/2").ok());
  ASSERT_TRUE(files_->create("b/1").ok());
  const auto all = files_->list();
  EXPECT_EQ(all.size(), 3u);
  const auto a_only = files_->list("a/");
  ASSERT_EQ(a_only.size(), 2u);
  EXPECT_EQ(a_only[0], "a/1");
}

TEST_F(FileAdapterTest, ChunkObjectsCarryFileTags) {
  ASSERT_TRUE(files_->create("tagged", {"static"}).ok());
  ASSERT_TRUE(files_->write("tagged", 0, as_view(make_payload(5000, 6))).ok());
  const auto ids = instance_->metadata().select(
      [](const ObjectMeta& m) { return m.has_tag("static"); });
  EXPECT_GE(ids.size(), 2u);  // chunks + meta
}

TEST_F(FileAdapterTest, AdapterStateSurvivesReconstruction) {
  ASSERT_TRUE(files_->create("persist").ok());
  ASSERT_TRUE(
      files_->write("persist", 0, as_view(make_payload(9000, 7))).ok());
  // A fresh adapter over the same instance discovers the file.
  FileAdapter fresh(*instance_, 4096);
  EXPECT_TRUE(fresh.exists("persist"));
  EXPECT_EQ(*fresh.size("persist"), 9000u);
  auto data = fresh.read_all("persist");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, make_payload(9000, 7));
}

TEST_F(FileAdapterTest, ConcurrentWritersDistinctFiles) {
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const std::string path = "conc/" + std::to_string(t);
      if (!files_->create(path).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 20; ++i) {
        if (!files_->append(path, as_view(make_payload(1000, t * 100 + i)))
                 .ok()) {
          failures.fetch_add(1);
        }
      }
      auto size = files_->size(path);
      if (!size.ok() || *size != 20'000u) failures.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tiera
