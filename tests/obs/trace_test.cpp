#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace tiera {
namespace {

TEST(RequestTracerTest, RecordsSpansInOrder) {
  RequestTracer tracer(16);
  tracer.record(TraceOp::kPut, "obj1", "m1", from_ms(1.5), true);
  tracer.record(TraceOp::kGet, "obj1", "m1", from_ms(0.5), true);
  tracer.record(TraceOp::kGet, "ghost", "", from_ms(0.1), false);

  const auto spans = tracer.snapshot(10);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].op, TraceOp::kPut);
  EXPECT_STREQ(spans[0].object_id, "obj1");
  EXPECT_STREQ(spans[0].tier, "m1");
  EXPECT_TRUE(spans[0].ok);
  EXPECT_NEAR(spans[0].duration_ms, 1.5, 1e-9);
  EXPECT_EQ(spans[2].op, TraceOp::kGet);
  EXPECT_FALSE(spans[2].ok);
  EXPECT_LT(spans[0].seq, spans[1].seq);
  EXPECT_LT(spans[1].seq, spans[2].seq);
}

TEST(RequestTracerTest, RingBufferWrapsKeepingNewest) {
  RequestTracer tracer(8);
  for (int i = 0; i < 20; ++i) {
    tracer.record(TraceOp::kPut, "obj" + std::to_string(i), "m1",
                  from_ms(1.0), true);
  }
  EXPECT_EQ(tracer.total_recorded(), 20u);
  EXPECT_EQ(tracer.capacity(), 8u);

  const auto spans = tracer.snapshot(100);
  ASSERT_EQ(spans.size(), 8u);
  // The ring keeps exactly the last 8 spans (seq 12..19), oldest first.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, 12 + i);
    EXPECT_STREQ(spans[i].object_id,
                 ("obj" + std::to_string(12 + i)).c_str());
  }
  // snapshot(last_n) trims from the old end.
  const auto tail = tracer.snapshot(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 17u);
  EXPECT_EQ(tail[2].seq, 19u);
}

TEST(RequestTracerTest, LongIdsTruncatedSafely) {
  RequestTracer tracer(4);
  const std::string long_id(200, 'x');
  tracer.record(TraceOp::kGet, long_id, "a-tier-name-that-is-way-too-long",
                from_ms(1.0), true);
  const auto spans = tracer.snapshot(1);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].object_id).size(), 47u);  // 48 - NUL
  EXPECT_EQ(std::string(spans[0].tier).size(), 23u);       // 24 - NUL
}

TEST(RequestTracerTest, DisabledRecordsNothing) {
  RequestTracer tracer(8);
  tracer.set_enabled(false);
  tracer.record(TraceOp::kPut, "obj", "m1", from_ms(1.0), true);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot(10).empty());
  tracer.set_enabled(true);
  tracer.record(TraceOp::kPut, "obj", "m1", from_ms(1.0), true);
  EXPECT_EQ(tracer.snapshot(10).size(), 1u);
}

TEST(RequestTracerTest, DumpRendersSpans) {
  RequestTracer tracer(8);
  EXPECT_NE(tracer.dump().find("no requests traced"), std::string::npos);
  tracer.record(TraceOp::kPut, "obj1", "m1", from_ms(1.0), true);
  tracer.record(TraceOp::kGet, "ghost", "", from_ms(0.2), false);
  const std::string out = tracer.dump(10);
  EXPECT_NE(out.find("PUT"), std::string::npos);
  EXPECT_NE(out.find("obj1"), std::string::npos);
  EXPECT_NE(out.find("tier=m1"), std::string::npos);
  EXPECT_NE(out.find("FAILED"), std::string::npos);
}

TEST(RequestTracerTest, OverflowCountsDroppedSpans) {
  Counter& global =
      MetricsRegistry::global().counter("tiera_trace_dropped_total");
  const std::uint64_t before = global.value();

  RequestTracer tracer(8);
  for (int i = 0; i < 20; ++i) {
    tracer.record(TraceOp::kPut, "obj" + std::to_string(i), "m1",
                  from_ms(1.0), true);
  }
  // The ring held 8 of 20 spans; the 12 overwritten ones are "dropped".
  EXPECT_EQ(tracer.dropped(), 12u);
  EXPECT_EQ(global.value() - before, 12u);

  RequestTracer roomy(64);
  for (int i = 0; i < 20; ++i) {
    roomy.record(TraceOp::kPut, "obj", "m1", from_ms(1.0), true);
  }
  EXPECT_EQ(roomy.dropped(), 0u);
}

TEST(RequestTracerTest, CapacityFromEnvOverridesFallback) {
  ::unsetenv("TIERA_TRACE_CAPACITY");
  EXPECT_EQ(RequestTracer::capacity_from_env(512), 512u);

  ::setenv("TIERA_TRACE_CAPACITY", "33", 1);
  EXPECT_EQ(RequestTracer::capacity_from_env(512), 33u);
  RequestTracer tracer(RequestTracer::capacity_from_env(512));
  EXPECT_EQ(tracer.capacity(), 33u);

  ::setenv("TIERA_TRACE_CAPACITY", "not-a-number", 1);
  EXPECT_EQ(RequestTracer::capacity_from_env(512), 512u);
  ::setenv("TIERA_TRACE_CAPACITY", "-4", 1);
  EXPECT_EQ(RequestTracer::capacity_from_env(512), 512u);
  ::unsetenv("TIERA_TRACE_CAPACITY");
}

TEST(RequestTracerTest, ConcurrentRecordersKeepCapacityInvariant) {
  RequestTracer tracer(32);
  constexpr int kThreads = 8;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kOps; ++i) {
        tracer.record(TraceOp::kGet, "t" + std::to_string(t), "m1",
                      from_ms(0.1), true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracer.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  const auto spans = tracer.snapshot(1000);
  EXPECT_EQ(spans.size(), 32u);
  for (const auto& span : spans) EXPECT_TRUE(span.ok);
}

}  // namespace
}  // namespace tiera
