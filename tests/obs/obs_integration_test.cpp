// End-to-end observability test: a PUT/GET sequence against a real instance
// must produce the expected counter deltas in the process-wide registry, a
// parseable Prometheus dump over the kStats RPC verb, and a request trace.
#include <gtest/gtest.h>

#include <regex>

#include "core/instance.h"
#include "net/tiera_service.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class ObsIntegrationTest : public ::testing::Test {
 protected:
  InstancePtr make_instance() {
    InstanceConfig config;
    config.name = "obs-test";
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "obs_m1", 1 << 20},
                    {"EBS", "obs_b1", 1 << 20}};
    config.trace_requests = true;
    // No rules: default placement stores into the first tier (obs_m1).
    auto instance = TieraInstance::create(std::move(config));
    EXPECT_TRUE(instance.ok()) << instance.status().to_string();
    return std::move(instance).value();
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
};

TEST_F(ObsIntegrationTest, PutGetSequenceProducesCounterDeltas) {
  MetricsRegistry& reg = MetricsRegistry::global();
  // The registry is process-wide and other tests/instances share it, so
  // assert on deltas.
  Counter& inst_puts = reg.counter("tiera_instance_puts_total");
  Counter& inst_gets = reg.counter("tiera_instance_gets_total");
  Counter& misses = reg.counter("tiera_instance_get_misses_total");
  Counter& tier_puts = reg.counter("tiera_tier_puts_total", {{"tier", "obs_m1"}});
  Counter& tier_hits =
      reg.counter("tiera_instance_tier_hits_total", {{"tier", "obs_m1"}});
  LatencyHistogram& put_hist = reg.histogram("tiera_instance_put_latency_ms");
  LatencyHistogram& tier_get_hist =
      reg.histogram("tiera_tier_get_latency_ms", {{"tier", "obs_m1"}});

  reg.collect();  // counters sync from instance/tier stats at collect time
  const std::uint64_t puts0 = inst_puts.value();
  const std::uint64_t gets0 = inst_gets.value();
  const std::uint64_t misses0 = misses.value();
  const std::uint64_t tier_puts0 = tier_puts.value();
  const std::uint64_t hits0 = tier_hits.value();
  const std::uint64_t put_hist0 = put_hist.count();
  const std::uint64_t tier_get0 = tier_get_hist.count();

  auto instance = make_instance();
  const Bytes payload = make_payload(1024, 7);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        instance->put("obs-obj" + std::to_string(i), as_view(payload)).ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(instance->get("obs-obj" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(instance->get("obs-ghost").status().is_not_found());

  reg.collect();
  EXPECT_EQ(inst_puts.value() - puts0, 5u);
  EXPECT_EQ(inst_gets.value() - gets0, 5u);
  EXPECT_EQ(misses.value() - misses0, 1u);
  EXPECT_EQ(tier_puts.value() - tier_puts0, 5u);
  EXPECT_EQ(tier_hits.value() - hits0, 5u);
  EXPECT_EQ(put_hist.count() - put_hist0, 5u);
  // Tier-level latency samples 1 op in kLatencySampleEvery (counters above
  // stay exact); a fresh tier always samples its first op.
  EXPECT_GE(tier_get_hist.count() - tier_get0, 1u);
  EXPECT_LE(tier_get_hist.count() - tier_get0, 5u);

  // The tracer saw all 11 application requests, newest last.
  const auto spans = instance->tracer().snapshot(100);
  ASSERT_EQ(spans.size(), 11u);
  EXPECT_EQ(spans.back().op, TraceOp::kGet);
  EXPECT_FALSE(spans.back().ok);
  EXPECT_STREQ(spans[5].tier, "obs_m1");  // first GET served from memory
}

TEST_F(ObsIntegrationTest, StatsRpcRendersPrometheusAndTrace) {
  auto instance = make_instance();
  TieraServer server(*instance, 0, 2);
  ASSERT_TRUE(server.start().ok());
  auto client = RemoteTieraClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  const Bytes payload = make_payload(512, 3);
  ASSERT_TRUE((*client)->put("remote-obj", as_view(payload)).ok());
  ASSERT_TRUE((*client)->get("remote-obj").ok());

  auto prom = (*client)->stats("prom");
  ASSERT_TRUE(prom.ok()) << prom.status().to_string();
  // The acceptance series: per-tier counters and latency quantiles,
  // control-layer queue depth, end-to-end histograms.
  EXPECT_NE(prom->find("tiera_tier_puts_total{tier=\"obs_m1\"}"),
            std::string::npos);
  EXPECT_NE(
      prom->find("tiera_tier_get_latency_ms{tier=\"obs_m1\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(prom->find("# TYPE tiera_control_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(prom->find("# TYPE tiera_instance_put_latency_ms summary"),
            std::string::npos);
  EXPECT_NE(prom->find("# TYPE tiera_instance_get_latency_ms summary"),
            std::string::npos);
  EXPECT_NE(prom->find("tiera_rpc_requests_total"), std::string::npos);

  // Parseable: every non-comment line is `name[{labels}] value`.
  const std::regex line_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9][0-9eE+.\-]*$)");
  std::size_t pos = 0, lines = 0;
  while (pos < prom->size()) {
    const std::size_t end = prom->find('\n', pos);
    const std::string line = prom->substr(pos, end - pos);
    pos = end == std::string::npos ? prom->size() : end + 1;
    if (line.empty() || line[0] == '#') continue;
    ++lines;
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad line: " << line;
  }
  EXPECT_GT(lines, 20u);

  auto text = (*client)->stats("text");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("tiera_instance_puts_total"), std::string::npos);

  EXPECT_FALSE((*client)->stats("xml").ok());

  // Legacy binary summary still works.
  auto summary = (*client)->stats_summary();
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->puts, 1u);
  EXPECT_EQ(summary->gets, 1u);
  EXPECT_EQ(summary->objects, 1u);

  auto trace = (*client)->trace(16);
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace->find("remote-obj"), std::string::npos);
  EXPECT_NE(trace->find("GET"), std::string::npos);

  server.stop();
}

TEST_F(ObsIntegrationTest, FailedTierOpsSurfaceInRegistry) {
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& failed =
      reg.counter("tiera_tier_failed_ops_total", {{"tier", "obs_m1"}});
  reg.collect();
  const std::uint64_t failed0 = failed.value();

  auto instance = make_instance();
  instance->tier("obs_m1")->inject_failure(FailureMode::kFailStop);
  EXPECT_FALSE(instance->put("doomed", as_view(make_payload(64, 1))).ok());
  reg.collect();
  EXPECT_GT(failed.value(), failed0);
  instance->tier("obs_m1")->heal();
}

TEST_F(ObsIntegrationTest, TracingCanBeDisabledPerInstance) {
  InstanceConfig config;
  config.name = "obs-quiet";
  config.data_dir = dir_.sub("quiet");
  config.tiers = {{"Memcached", "obs_q1", 1 << 20}};
  config.trace_requests = false;
  auto instance = TieraInstance::create(std::move(config));
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->put("q", as_view(make_payload(16, 1))).ok());
  EXPECT_EQ((*instance)->tracer().total_recorded(), 0u);
}

}  // namespace
}  // namespace tiera
