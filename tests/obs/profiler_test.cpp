// Sampling profiler: capture lifecycle, folded-stack content, ProfScope
// balance under enable/disable races, and the flamegraph renderer.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/profile_stack.h"

namespace tiera {
namespace {

TEST(ProfilerTest, CaptureProducesNamedFoldedStacks) {
  Profiler& prof = Profiler::global();
  prof.reset();

  std::atomic<bool> stop{false};
  std::thread worker([&] {
    profile_set_thread_name("prof-test-worker");
    while (!stop.load(std::memory_order_relaxed)) {
      ProfScope frame("busy.loop");
      // Keep the frame live long enough for the 200us sampler to see it.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  ASSERT_TRUE(prof.start(/*interval_us=*/200).ok());
  EXPECT_TRUE(prof.running());
  // A second capture cannot start while one runs.
  EXPECT_FALSE(prof.start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::string folded = prof.stop();
  EXPECT_FALSE(prof.running());
  stop.store(true, std::memory_order_relaxed);
  worker.join();

  ASSERT_FALSE(folded.empty());
  EXPECT_NE(folded.find("prof-test-worker;busy.loop"), std::string::npos)
      << folded;
  // stop() keeps the result: folded() re-reads the same capture.
  EXPECT_EQ(prof.folded(), folded);
}

TEST(ProfilerTest, CaptureValidatesDuration) {
  Profiler& prof = Profiler::global();
  EXPECT_FALSE(prof.capture(/*duration_ms=*/0).ok());
  EXPECT_FALSE(prof.capture(/*duration_ms=*/10 * 60 * 1000).ok());
  auto folded = prof.capture(/*duration_ms=*/20, /*interval_us=*/200);
  ASSERT_TRUE(folded.ok());
}

TEST(ProfilerTest, ProfScopeStaysBalancedAcrossToggles) {
  ProfileStack& stack = this_thread_profile_stack();
  const char* frames[ProfileStack::kMaxDepth];

  // Scope opened while disabled pushes nothing, even if profiling turns on
  // before it closes.
  set_profile_frames_enabled(false);
  {
    ProfScope scope("toggle.a");
    set_profile_frames_enabled(true);
    EXPECT_EQ(stack.snapshot(frames, ProfileStack::kMaxDepth), 0);
  }
  EXPECT_EQ(stack.snapshot(frames, ProfileStack::kMaxDepth), 0);

  // Scope opened while enabled pops on exit even if profiling turned off
  // mid-scope.
  {
    ProfScope scope("toggle.b");
    ASSERT_EQ(stack.snapshot(frames, ProfileStack::kMaxDepth), 1);
    EXPECT_STREQ(frames[0], "toggle.b");
    set_profile_frames_enabled(false);
  }
  EXPECT_EQ(stack.snapshot(frames, ProfileStack::kMaxDepth), 0);
}

TEST(ProfilerTest, StackOverflowKeepsPopsBalanced) {
  set_profile_frames_enabled(true);
  ProfileStack& stack = this_thread_profile_stack();
  const char* frames[ProfileStack::kMaxDepth + 8];
  {
    // Deeper than kMaxDepth: pushes past the cap are dropped but their pops
    // must not eat real frames.
    std::vector<std::unique_ptr<ProfScope>> scopes;
    for (int i = 0; i < ProfileStack::kMaxDepth + 5; ++i) {
      scopes.push_back(std::make_unique<ProfScope>("deep"));
    }
    EXPECT_EQ(stack.snapshot(frames, ProfileStack::kMaxDepth + 8),
              ProfileStack::kMaxDepth);
    while (!scopes.empty()) scopes.pop_back();
  }
  EXPECT_EQ(stack.snapshot(frames, ProfileStack::kMaxDepth + 8), 0);
  set_profile_frames_enabled(false);
}

TEST(ProfilerTest, FlamegraphHtmlIsSelfContained) {
  const std::string folded =
      "rpc-requests;put;journal.append 412\n"
      "rpc-requests;put;tier.io 187\n"
      "tiera-responses;background;policy.eval 44\n";
  const std::string html = render_flamegraph_html(folded, "unit test graph");
  EXPECT_NE(html.find("<html"), std::string::npos);
  EXPECT_NE(html.find("unit test graph"), std::string::npos);
  EXPECT_NE(html.find("journal.append"), std::string::npos);
  EXPECT_NE(html.find("tier.io"), std::string::npos);
  // Self-contained: no external scripts or stylesheets.
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);
}

}  // namespace
}  // namespace tiera
