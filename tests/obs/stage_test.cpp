// Stage-timer accounting: sampling, self-time attribution under nesting,
// inert nested op scopes, and the Σ(named + other) == total invariant.
//
// The stage histograms live in the global registry, so each test uses a
// different StageOp (or diffs counts before/after) to stay independent of
// the others in this binary.
#include "obs/stage.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace tiera {
namespace {

void spin_for(std::chrono::microseconds d) {
  // Busy-wait: sleep_for overshoots by scheduler quanta, which would swamp
  // the ratios the nesting test asserts on.
  const auto deadline = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

double stage_sum_ms(const char* op, const char* stage) {
  for (const StageRow& row : stage_breakdown()) {
    if (row.op == op && row.stage == stage) return row.sum_ms;
  }
  return 0;
}

std::uint64_t stage_count(const char* op, const char* stage) {
  for (const StageRow& row : stage_breakdown()) {
    if (row.op == op && row.stage == stage) return row.count;
  }
  return 0;
}

TEST(StageTest, SamplingRecordsOneInN) {
  set_stage_sample_every(4);
  const std::uint64_t before = stage_count("get", "total");
  for (int i = 0; i < 8; ++i) {
    OpStageScope scope(StageOp::kGet);
    StageTimer stage(Stage::kMetadataLookup);
  }
  // The per-thread op counter's phase is unknown (other tests may have
  // advanced it), but 8 ops at 1-in-4 always record exactly 2.
  EXPECT_EQ(stage_count("get", "total") - before, 2u);
  set_stage_sample_every(1);
}

TEST(StageTest, ZeroDisablesRecording) {
  set_stage_sample_every(0);
  const std::uint64_t before = stage_count("background", "total");
  {
    OpStageScope scope(StageOp::kBackground);
    StageTimer stage(Stage::kPolicyEval);
    spin_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(stage_count("background", "total"), before);
  set_stage_sample_every(1);
}

TEST(StageTest, NestedStagesChargeSelfTimeOnly) {
  set_stage_sample_every(1);
  {
    OpStageScope scope(StageOp::kDelete);
    ASSERT_TRUE(scope.recording());
    StageTimer outer(Stage::kPolicyEval);
    spin_for(std::chrono::microseconds(2000));
    {
      StageTimer inner(Stage::kTierIo);
      spin_for(std::chrono::microseconds(4000));
    }
    spin_for(std::chrono::microseconds(2000));
  }
  const double policy_ms = stage_sum_ms("delete", "policy.eval");
  const double tier_ms = stage_sum_ms("delete", "tier.io");
  const double total_ms = stage_sum_ms("delete", "total");
  // policy.eval is charged its ~4ms of self time, not the ~8ms wall span
  // that includes the nested tier.io stage.
  EXPECT_GT(tier_ms, 3.0);
  EXPECT_GT(policy_ms, 3.0);
  EXPECT_LT(policy_ms, 0.8 * total_ms);
  EXPECT_GT(total_ms, 7.0);
  // Σ(named + other) == total by construction.
  const double named_other =
      policy_ms + tier_ms + stage_sum_ms("delete", "other");
  EXPECT_NEAR(named_other, total_ms, 0.01 * total_ms + 0.001);
}

TEST(StageTest, NestedOpScopeIsInert) {
  set_stage_sample_every(1);
  const std::uint64_t puts_before = stage_count("put", "total");
  const std::uint64_t gets_before = stage_count("get", "total");
  {
    OpStageScope outer(StageOp::kPut);
    ASSERT_TRUE(outer.recording());
    StageTimer stage(Stage::kPolicyEval);
    // An instance-level op issued while serving another op (RPC handler
    // calling put(), a background response reading an object) folds into
    // the enclosing breakdown instead of starting its own.
    OpStageScope inner(StageOp::kGet);
    EXPECT_FALSE(inner.recording());
  }
  EXPECT_EQ(stage_count("put", "total") - puts_before, 1u);
  EXPECT_EQ(stage_count("get", "total"), gets_before);
}

TEST(StageTest, StageTimerWithoutOpScopeIsNoOp) {
  set_stage_sample_every(1);
  const std::uint64_t before = stage_count("put", "tier.io");
  {
    StageTimer orphan(Stage::kTierIo);
    spin_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(stage_count("put", "tier.io"), before);
}

TEST(StageTest, ReconciliationHoldsAcrossEverythingRecorded) {
  // Whatever the other tests in this binary recorded, the books balance.
  EXPECT_LT(stage_reconciliation_error(), 0.01);
  EXPECT_LE(stage_attribution_gap(), 1.0);
}

TEST(StageTest, SampleRateExportedAsGauge) {
  set_stage_sample_every(16);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::global().gauge("tiera_stage_sample_every").value(),
      16.0);
  set_stage_sample_every(8);
}

}  // namespace
}  // namespace tiera
