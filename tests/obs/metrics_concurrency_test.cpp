// Concurrency coverage for the metrics plumbing the cost-attribution layer
// leans on: LatencyHistogram record+merge under contention (the
// merge_new_since cursor protocol PoolMetrics uses) and collector
// registration racing a scrape. Run under TSan these must be clean; the
// assertions on totals are deterministic either way.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "obs/metrics.h"

namespace tiera {
namespace {

TEST(MetricsConcurrencyTest, ConcurrentRecordAndMergeLosesNothing) {
  // Writers hammer a live histogram while a collector thread periodically
  // delta-syncs it into an accumulator via merge_new_since — the exact
  // shape of PoolMetrics mirroring ThreadPool::sojourn() during scrapes.
  LatencyHistogram live;
  LatencyHistogram accumulated;
  LatencyHistogram cursor;

  constexpr int kWriters = 4;
  constexpr int kRecordsPerWriter = 50000;
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&live] {
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        live.record_ms(1.0);
      }
    });
  }
  std::thread collector([&] {
    while (!writers_done.load(std::memory_order_acquire)) {
      accumulated.merge_new_since(live, cursor);
      std::this_thread::yield();
    }
  });

  for (auto& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  collector.join();
  // Final sync picks up whatever the last mid-race merge missed.
  accumulated.merge_new_since(live, cursor);

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kWriters) * kRecordsPerWriter;
  EXPECT_EQ(live.count(), kTotal);
  EXPECT_EQ(accumulated.count(), kTotal);
  // Every record was exactly 1ms, so the sum pins the merge arithmetic too.
  EXPECT_NEAR(accumulated.sum_ms(), static_cast<double>(kTotal),
              1e-6 * static_cast<double>(kTotal));
  EXPECT_DOUBLE_EQ(accumulated.mean_ms(), 1.0);
}

TEST(MetricsConcurrencyTest, ConcurrentMergeOfDisjointSourcesSums) {
  // Parallel merge() calls into one target (the pattern stats aggregation
  // uses): counts and sums from disjoint sources must all land.
  constexpr int kSources = 8;
  constexpr int kRecords = 20000;
  std::vector<LatencyHistogram> sources(kSources);
  for (int s = 0; s < kSources; ++s) {
    for (int i = 0; i < kRecords; ++i) sources[s].record_ms(0.5);
  }
  LatencyHistogram target;
  std::vector<std::thread> mergers;
  mergers.reserve(kSources);
  for (int s = 0; s < kSources; ++s) {
    mergers.emplace_back([&target, &sources, s] { target.merge(sources[s]); });
  }
  for (auto& t : mergers) t.join();
  EXPECT_EQ(target.count(),
            static_cast<std::uint64_t>(kSources) * kRecords);
  EXPECT_NEAR(target.sum_ms(), 0.5 * kSources * kRecords,
              1e-6 * kSources * kRecords);
}

TEST(MetricsConcurrencyTest, CollectorRegistrationRacesScrape) {
  // Threads register/unregister collectors while a scraper renders: no
  // deadlock, no torn state, and every collector that ran incremented its
  // counter exactly as many times as collect() invoked it.
  MetricsRegistry reg;
  Counter& stable = reg.counter("tiera_test_stable_collector_runs_total");
  const MetricsRegistry::CollectorId stable_id =
      reg.add_collector([&stable] { stable.inc(); });

  constexpr int kChurners = 4;
  constexpr int kCyclesPerChurner = 500;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};

  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string text = reg.render_prometheus();
      EXPECT_NE(text.find("tiera_test_stable_collector_runs_total"),
                std::string::npos);
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> churners;
  churners.reserve(kChurners);
  for (int c = 0; c < kChurners; ++c) {
    churners.emplace_back([&reg, c] {
      Counter& mine = reg.counter("tiera_test_churn_collector_runs_total",
                                  {{"churner", std::to_string(c)}});
      for (int i = 0; i < kCyclesPerChurner; ++i) {
        const MetricsRegistry::CollectorId id =
            reg.add_collector([&mine] { mine.inc(); });
        reg.remove_collector(id);
      }
    });
  }
  for (auto& t : churners) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GT(scrapes.load(), 0u);
  // The stable collector ran on every scrape-triggered collect() — and
  // possibly a final one below — never more, never fewer.
  const std::uint64_t runs_before = stable.value();
  reg.collect();
  EXPECT_EQ(stable.value(), runs_before + 1);
  EXPECT_GE(runs_before, scrapes.load());
  reg.remove_collector(stable_id);
  reg.collect();
  EXPECT_EQ(stable.value(), runs_before + 1);
}

}  // namespace
}  // namespace tiera
