// CostMeter unit tests: storage accrual integration (used vs capacity
// billing), request deltas billed exactly once, egress from client reads and
// rule moves, per-rule attribution, and the ledger-vs-view invariant (tier
// accounts sum to the total; rule accounts do not add to it).
//
// Tier labels are unique per test: the per-tier byte counters are global
// registry series, so a reused label would leak bytes across tests.
#include "obs/cost_meter.h"

#include <gtest/gtest.h>

#include <chrono>

namespace tiera {
namespace {

constexpr std::uint64_t kGiB = 1024ull * 1024 * 1024;

// One tenth of the billing month, as a modelled-time duration.
Duration tenth_month() {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(
      kCostMeterSecondsPerMonth / 10.0));
}

TEST(CostMeterTest, StorageIntegratesOverOccupiedTime) {
  CostMeter meter("cm-storage");
  meter.add_tier("st-m1", {.dollars_per_gb_month = 0.10});
  std::vector<TierUsage> usage = {
      {.label = "st-m1", .used_bytes = 10 * kGiB, .capacity_bytes = 100 * kGiB}};
  // 10 GB at $0.10/GB-month for a tenth of a month: $0.10.
  meter.accrue(usage, tenth_month());
  auto snap = meter.snapshot();
  ASSERT_EQ(snap.tiers.size(), 1u);
  EXPECT_NEAR(snap.tiers[0].storage_dollars, 0.10, 1e-9);
  EXPECT_NEAR(snap.total_dollars, 0.10, 1e-9);
  // Another tenth doubles it — integration, not a point charge.
  meter.accrue(usage, tenth_month());
  EXPECT_NEAR(meter.snapshot().tiers[0].storage_dollars, 0.20, 1e-9);
  // Burn extrapolates current occupancy: $1.00/month.
  EXPECT_NEAR(meter.snapshot().tiers[0].monthly_burn_dollars, 1.0, 1e-6);
}

TEST(CostMeterTest, ProvisionedTiersBillCapacity) {
  CostMeter meter("cm-capacity");
  meter.add_tier("cap-b1",
                 {.dollars_per_gb_month = 0.10, .bill_by_capacity = true});
  std::vector<TierUsage> usage = {
      {.label = "cap-b1", .used_bytes = kGiB, .capacity_bytes = 50 * kGiB}};
  meter.accrue(usage, tenth_month());
  // 50 GB provisioned at $0.10/GB-month for a tenth of a month: $0.50 —
  // the EBS-style bill ignores the single GB actually used.
  EXPECT_NEAR(meter.snapshot().tiers[0].storage_dollars, 0.50, 1e-9);
}

TEST(CostMeterTest, RequestDeltasAreBilledExactlyOnce) {
  CostMeter meter("cm-request");
  meter.add_tier("req-t1", {.dollars_per_put = 1e-5, .dollars_per_get = 1e-6,
                            .dollars_per_io = 1e-7});
  std::vector<TierUsage> usage = {
      {.label = "req-t1", .puts = 1000, .gets = 10000, .removes = 100}};
  meter.accrue(usage, tenth_month());
  // 1000 puts + 10000 gets + 11100 total ops.
  const double first = 1000 * 1e-5 + 10000 * 1e-6 + 11100 * 1e-7;
  EXPECT_NEAR(meter.snapshot().tiers[0].request_dollars, first, 1e-12);
  // Accruing again with unchanged cumulative counts bills nothing new.
  meter.accrue(usage, tenth_month());
  EXPECT_NEAR(meter.snapshot().tiers[0].request_dollars, first, 1e-12);
  // Only the delta (500 more gets) is billed on the next pass.
  usage[0].gets = 10500;
  meter.accrue(usage, tenth_month());
  EXPECT_NEAR(meter.snapshot().tiers[0].request_dollars,
              first + 500 * 1e-6 + 500 * 1e-7, 1e-12);
}

TEST(CostMeterTest, ClientReadsBillEgress) {
  CostMeter meter("cm-egress");
  meter.add_tier("eg-t2", {.dollars_per_gb_egress = 0.12});
  std::vector<TierUsage> usage = {{.label = "eg-t2"}};
  meter.record_client_read("eg-t2", 2 * kGiB);
  meter.record_client_write("eg-t2", 5 * kGiB);  // ingress: free
  meter.accrue(usage, tenth_month());
  auto snap = meter.snapshot();
  EXPECT_NEAR(snap.tiers[0].egress_dollars, 0.24, 1e-9);
  EXPECT_EQ(snap.tiers[0].client_read_bytes, 2 * kGiB);
  EXPECT_EQ(snap.tiers[0].client_write_bytes, 5 * kGiB);
  // No new reads: no new egress.
  meter.accrue(usage, tenth_month());
  EXPECT_NEAR(meter.snapshot().tiers[0].egress_dollars, 0.24, 1e-9);
}

TEST(CostMeterTest, RuleMovesChargeTheRuleAndStageSourceEgress) {
  CostMeter meter("cm-rule");
  meter.add_tier("rm-m1", {.dollars_per_get = 1e-6});
  meter.add_tier("rm-t2",
                 {.dollars_per_put = 1e-5, .dollars_per_gb_egress = 0.0});
  // A demotion rule moves 1 GiB (one object) from m1 to t2, where m1 charges
  // $0.05/GB egress.
  CostRates m1_rates{.dollars_per_get = 1e-6, .dollars_per_gb_egress = 0.05};
  meter.add_tier("rm-m1", m1_rates);  // refresh rates on the existing account
  meter.record_rule_move(7, "demote-cold", "rm-m1", "rm-t2", kGiB);
  auto snap = meter.snapshot();
  ASSERT_EQ(snap.rules.size(), 1u);
  EXPECT_EQ(snap.rules[0].rule_id, 7u);
  EXPECT_EQ(snap.rules[0].rule_name, "demote-cold");
  EXPECT_EQ(snap.rules[0].bytes_moved, kGiB);
  EXPECT_EQ(snap.rules[0].objects_moved, 1u);
  // dest put ($1e-5) + src get ($1e-6) + src egress ($0.05).
  EXPECT_NEAR(snap.rules[0].dollars, 1e-5 + 1e-6 + 0.05, 1e-12);
  // The rule table is a view: the ledger total is still zero until the next
  // accrue() bills the staged source egress into m1's account.
  EXPECT_NEAR(snap.total_dollars, 0.0, 1e-12);
  std::vector<TierUsage> usage = {{.label = "rm-m1"}, {.label = "rm-t2"}};
  meter.accrue(usage, tenth_month());
  snap = meter.snapshot();
  double ledger = 0;
  for (const auto& tier : snap.tiers) {
    if (tier.tier == "rm-m1") EXPECT_NEAR(tier.egress_dollars, 0.05, 1e-9);
    ledger += tier.total();
  }
  EXPECT_NEAR(snap.total_dollars, ledger, 1e-12);
}

TEST(CostMeterTest, UnattributedMovesLandOnRuleZero) {
  CostMeter meter("cm-unattributed");
  meter.add_tier("ua-t1", {.dollars_per_put = 1e-5});
  meter.record_rule_move(0, {}, /*src_tier=*/"", "ua-t1", 4096);
  auto snap = meter.snapshot();
  ASSERT_EQ(snap.rules.size(), 1u);
  EXPECT_EQ(snap.rules[0].rule_id, 0u);
  EXPECT_EQ(snap.rules[0].rule_name, "unattributed");
  EXPECT_NEAR(snap.rules[0].dollars, 1e-5, 1e-12);  // put only, no source
}

TEST(CostMeterTest, UnknownTiersAreDropped) {
  CostMeter meter("cm-unknown");
  meter.record_client_read("nope", 1024);   // no account: dropped, no crash
  meter.record_client_write("nope", 1024);
  meter.record_rule_move(1, "r", "nope", "nope", 1024);
  auto snap = meter.snapshot();
  EXPECT_TRUE(snap.tiers.empty());
  ASSERT_EQ(snap.rules.size(), 1u);  // the rule is tracked, just at $0
  EXPECT_NEAR(snap.rules[0].dollars, 0.0, 1e-12);
}

TEST(CostMeterTest, SnapshotSortsRulesBySpend) {
  CostMeter meter("cm-sort");
  meter.add_tier("so-t1", {.dollars_per_put = 1e-5});
  meter.record_rule_move(1, "small", "", "so-t1", 100, /*objects=*/1);
  meter.record_rule_move(2, "big", "", "so-t1", 100, /*objects=*/50);
  auto snap = meter.snapshot();
  ASSERT_EQ(snap.rules.size(), 2u);
  EXPECT_EQ(snap.rules[0].rule_name, "big");
  EXPECT_EQ(snap.rules[1].rule_name, "small");
}

TEST(CostMeterTest, ModelledTimeAccumulates) {
  CostMeter meter("cm-time");
  meter.add_tier("ti-t1", {});
  std::vector<TierUsage> usage = {{.label = "ti-t1"}};
  meter.accrue(usage, std::chrono::seconds(30));
  meter.accrue(usage, std::chrono::seconds(12));
  meter.accrue(usage, Duration{0});  // no-op, not a divide-by-zero
  EXPECT_NEAR(meter.snapshot().modelled_seconds, 42.0, 1e-9);
}

}  // namespace
}  // namespace tiera
