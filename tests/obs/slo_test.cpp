// SLO engine unit tests: slice-ring rotation (including simulated clock
// jumps in both directions), quantile/bad-fraction math, objective
// registration and edge-accurate violation flips.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tiera {
namespace {

using testing::ZeroLatencyScope;

TimePoint at(std::int64_t seconds) {
  return TimePoint{std::chrono::duration_cast<Duration>(
      std::chrono::seconds(seconds))};
}

TEST(SloWindowRingTest, QuantileTracksRecordedLatencies) {
  SloWindowRing ring(60, std::chrono::seconds(1));
  const TimePoint t = at(1000);
  for (int i = 0; i < 99; ++i) ring.record(t, 1.0, false);
  ring.record(t, 100.0, false);

  EXPECT_EQ(ring.total(t), 100u);
  // Log buckets: the reported quantile is the bucket's upper edge, within
  // ~7.5% of the true value.
  const double p50 = ring.percentile_ms(t, 0.50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 1.1);
  const double p100 = ring.percentile_ms(t, 1.0);
  EXPECT_GE(p100, 100.0);
  EXPECT_LE(p100, 110.0);
}

TEST(SloWindowRingTest, EmptyRingReadsZero) {
  SloWindowRing ring(60, std::chrono::seconds(1));
  const TimePoint t = at(42);
  EXPECT_EQ(ring.total(t), 0u);
  EXPECT_EQ(ring.bad(t), 0u);
  EXPECT_EQ(ring.percentile_ms(t, 0.99), 0.0);
  EXPECT_EQ(ring.bad_fraction(t), 0.0);
}

TEST(SloWindowRingTest, SamplesExpireWithTheWindow) {
  SloWindowRing ring(60, std::chrono::seconds(1));
  ring.record(at(1000), 5.0, true);
  EXPECT_EQ(ring.total(at(1000)), 1u);
  // Still visible while the slice is within the last 60 epochs.
  EXPECT_EQ(ring.total(at(1059)), 1u);
  // One past the window: gone, even though the slot was never overwritten.
  EXPECT_EQ(ring.total(at(1060)), 0u);
  EXPECT_EQ(ring.percentile_ms(at(1060), 0.99), 0.0);
}

TEST(SloWindowRingTest, RotationReclaimsSlots) {
  SloWindowRing ring(60, std::chrono::seconds(1));
  ring.record(at(1000), 5.0, false);
  ring.record(at(1000), 5.0, false);
  // 60 s later the same slot is claimed for the new epoch; the old samples
  // must not leak into the new window.
  ring.record(at(1060), 7.0, true);
  EXPECT_EQ(ring.total(at(1060)), 1u);
  EXPECT_EQ(ring.bad(at(1060)), 1u);
}

TEST(SloWindowRingTest, ForwardClockJumpSelfHeals) {
  SloWindowRing ring(60, std::chrono::seconds(1));
  for (int i = 0; i < 10; ++i) ring.record(at(1000 + i), 3.0, false);
  EXPECT_EQ(ring.total(at(1009)), 10u);

  // Simulated clock leaps an hour ahead: every live slice is stale and must
  // be skipped, not misread as fresh data.
  const TimePoint jumped = at(1000 + 3600);
  EXPECT_EQ(ring.total(jumped), 0u);
  ring.record(jumped, 9.0, true);
  EXPECT_EQ(ring.total(jumped), 1u);
  EXPECT_EQ(ring.bad(jumped), 1u);
}

TEST(SloWindowRingTest, BackwardClockJumpSelfHeals) {
  SloWindowRing ring(60, std::chrono::seconds(1));
  ring.record(at(5000), 3.0, false);
  // Reader at an earlier time: the recorded slice's epoch is in the future
  // relative to the reader and must be ignored.
  const TimePoint past = at(5000 - 3600);
  EXPECT_EQ(ring.total(past), 0u);
  // Recording at the earlier time reclaims a slot and works normally.
  ring.record(past, 4.0, false);
  EXPECT_EQ(ring.total(past), 1u);
}

TEST(SloWindowRingTest, BadFraction) {
  SloWindowRing ring(60, std::chrono::seconds(1));
  const TimePoint t = at(77);
  for (int i = 0; i < 8; ++i) ring.record(t, 1.0, false);
  ring.record(t, 1.0, true);
  ring.record(t, 1.0, true);
  EXPECT_DOUBLE_EQ(ring.bad_fraction(t), 0.2);
}

TEST(SloEngineTest, AddValidatesSpecs) {
  ZeroLatencyScope zero;
  SloEngine engine("validate-instance");

  SloSpec unnamed;
  unnamed.target_ms = 2;
  EXPECT_FALSE(engine.add(unnamed).ok());

  SloSpec no_target;
  no_target.name = "get_p99";
  EXPECT_FALSE(engine.add(no_target).ok());

  SloSpec bad_fraction;
  bad_fraction.name = "error_rate";
  bad_fraction.signal = SloSignal::kErrorRate;
  bad_fraction.target_fraction = 1.5;
  EXPECT_FALSE(engine.add(bad_fraction).ok());

  SloSpec ok;
  ok.name = "get_p99";
  ok.target_ms = 2;
  EXPECT_TRUE(engine.add(ok).ok());
  EXPECT_EQ(engine.size(), 1u);

  // Duplicate names are rejected; the engine keeps the original.
  EXPECT_FALSE(engine.add(ok).ok());
  EXPECT_EQ(engine.size(), 1u);
}

TEST(SloEngineTest, RejectedDuplicateLeavesPublishedGaugesAlone) {
  ZeroLatencyScope zero;
  SloEngine engine("dupgauge-instance");
  SloSpec spec;
  spec.name = "get_p99";
  spec.target_ms = 2.0;
  ASSERT_TRUE(engine.add(spec).ok());

  // Drive the live objective into violation so both gauges are non-default.
  for (int i = 0; i < 20; ++i) engine.record_get(from_ms(10), "t", true);
  ASSERT_TRUE(engine.evaluate(now()));

  Gauge& target = MetricsRegistry::global().gauge(
      "tiera_slo_target",
      {{"slo", "get_p99"}, {"instance", "dupgauge-instance"}, {"tier", ""}});
  Gauge& violated = MetricsRegistry::global().gauge(
      "tiera_slo_violated",
      {{"slo", "get_p99"}, {"instance", "dupgauge-instance"}, {"tier", ""}});
  ASSERT_EQ(target.value(), 2.0);
  ASSERT_EQ(violated.value(), 1.0);

  // A rejected duplicate with a different target must not clobber the live
  // objective's published series, even transiently.
  SloSpec dup = spec;
  dup.target_ms = 99.0;
  EXPECT_FALSE(engine.add(dup).ok());
  EXPECT_EQ(target.value(), 2.0);
  EXPECT_EQ(violated.value(), 1.0);
}

TEST(SloEngineTest, TargetsAreModelledTimeUnderScale) {
  // At scale 0.1 a modelled 10 ms op costs 1 ms of wall time. The engine
  // must scale recorded wall latencies back to modelled ms so the declared
  // 5 ms modelled target classifies that op as bad — and a genuinely fast
  // op (0.1 ms wall = 1 ms modelled) as good.
  ZeroLatencyScope scale(0.1);
  SloEngine engine("scaled-instance");
  SloSpec spec;
  spec.name = "get_p99";
  spec.target_ms = 5.0;
  ASSERT_TRUE(engine.add(spec).ok());

  for (int i = 0; i < 20; ++i) {
    engine.record_get(from_ms(1.0), "t", true);  // 10 ms modelled: bad
  }
  const TimePoint t = now();
  EXPECT_TRUE(engine.evaluate(t));
  EXPECT_EQ(engine.violated_value("get_p99"), 1.0);
  auto rows = engine.status(t);
  ASSERT_EQ(rows.size(), 1u);
  // The published quantile is modelled ms too (log buckets: ~7.5% width).
  EXPECT_GE(rows[0].current, 10.0);
  EXPECT_LE(rows[0].current, 11.0);
  // Every sample was bad, so the burn windows saw bad_fraction 1.0.
  EXPECT_NEAR(rows[0].burn_short, 100.0, 1.0);

  SloEngine fast_engine("scaled-fast-instance");
  spec.name = "fast.get_p99";
  ASSERT_TRUE(fast_engine.add(spec).ok());
  for (int i = 0; i < 20; ++i) {
    fast_engine.record_get(from_ms(0.1), "t", true);  // 1 ms modelled: good
  }
  EXPECT_FALSE(fast_engine.evaluate(now()));
  EXPECT_EQ(fast_engine.violated_value("fast.get_p99"), 0.0);
}

TEST(SloEngineTest, ViolationFlipsOnEdgeAndRecovers) {
  ZeroLatencyScope zero;
  SloEngine engine("edge-instance");
  SloSpec spec;
  spec.name = "get_p99";
  spec.target_ms = 2.0;
  ASSERT_TRUE(engine.add(spec).ok());

  // Slow GETs push p99 over the 2 ms target.
  for (int i = 0; i < 50; ++i) {
    engine.record_get(from_ms(10), "tier1", /*ok=*/true);
  }
  const TimePoint t = now();
  EXPECT_TRUE(engine.evaluate(t));  // compliant -> violated: a flip
  EXPECT_EQ(engine.violated_value("get_p99"), 1.0);
  EXPECT_FALSE(engine.evaluate(t));  // still violated: no flip

  auto rows = engine.status(t);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "get_p99");
  EXPECT_EQ(rows[0].signal, "get_p99");
  EXPECT_TRUE(rows[0].is_latency);
  EXPECT_TRUE(rows[0].violated);
  EXPECT_EQ(rows[0].violations, 1u);
  EXPECT_EQ(rows[0].samples, 50u);
  EXPECT_GT(rows[0].current, 2.0);
  // Every sample was over target, so the short burn window burns the whole
  // 1% budget at 100x.
  EXPECT_NEAR(rows[0].burn_short, 100.0, 1.0);

  // Two windows later the samples expired: the objective recovers.
  const TimePoint later = t + 3 * spec.window;
  EXPECT_TRUE(engine.evaluate(later));  // violated -> compliant: a flip
  EXPECT_EQ(engine.violated_value("get_p99"), 0.0);
  rows = engine.status(later);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].violated);
  EXPECT_EQ(rows[0].violations, 1u);  // edges counted, not ticks
}

TEST(SloEngineTest, LatencySignalsFilterByOpKind) {
  ZeroLatencyScope zero;
  SloEngine engine("opkind-instance");
  SloSpec spec;
  spec.name = "put_p99";
  spec.signal = SloSignal::kPutP99;
  spec.target_ms = 2.0;
  ASSERT_TRUE(engine.add(spec).ok());

  // GET samples must not count toward a PUT objective.
  for (int i = 0; i < 20; ++i) {
    engine.record_get(from_ms(50), "tier1", true);
  }
  EXPECT_FALSE(engine.evaluate(now()));
  EXPECT_EQ(engine.violated_value("put_p99"), 0.0);

  for (int i = 0; i < 20; ++i) {
    engine.record_put(from_ms(50), "tier1", true);
  }
  EXPECT_TRUE(engine.evaluate(now()));
  EXPECT_EQ(engine.violated_value("put_p99"), 1.0);
}

TEST(SloEngineTest, PerTierObjectiveIgnoresOtherTiers) {
  ZeroLatencyScope zero;
  SloEngine engine("pertier-instance");
  SloSpec spec;
  spec.name = "tier2.get_p99";
  spec.tier = "tier2";
  spec.target_ms = 2.0;
  ASSERT_TRUE(engine.add(spec).ok());

  for (int i = 0; i < 20; ++i) {
    engine.record_get(from_ms(50), "tier1", true);
  }
  EXPECT_FALSE(engine.evaluate(now()));

  for (int i = 0; i < 20; ++i) {
    engine.record_get(from_ms(50), "tier2", true);
  }
  EXPECT_TRUE(engine.evaluate(now()));
  EXPECT_EQ(engine.violated_value("tier2.get_p99"), 1.0);
}

TEST(SloEngineTest, ErrorRateObjective) {
  ZeroLatencyScope zero;
  SloEngine engine("errrate-instance");
  SloSpec spec;
  spec.name = "error_rate";
  spec.signal = SloSignal::kErrorRate;
  spec.target_fraction = 0.10;
  ASSERT_TRUE(engine.add(spec).ok());

  // 2 failures in 10 ops = 20% > 10% target. Error-rate objectives count
  // PUTs and GETs alike.
  for (int i = 0; i < 8; ++i) engine.record_get(from_ms(1), "t", true);
  engine.record_put(from_ms(1), "t", false);
  engine.record_get(from_ms(1), "t", false);

  const TimePoint t = now();
  EXPECT_TRUE(engine.evaluate(t));
  auto rows = engine.status(t);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].is_latency);
  EXPECT_NEAR(rows[0].current, 0.2, 1e-9);
  // burn = bad_fraction / budget = 0.2 / 0.1
  EXPECT_NEAR(rows[0].burn_short, 2.0, 1e-9);
}

TEST(SloEngineTest, UnknownNameReadsZero) {
  SloEngine engine("unknown-instance");
  EXPECT_EQ(engine.violated_value("nope"), 0.0);
  EXPECT_TRUE(engine.status().empty());
  EXPECT_FALSE(engine.evaluate());
}

}  // namespace
}  // namespace tiera
