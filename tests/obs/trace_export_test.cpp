// Golden tests for the Chrome trace-event exporter: the JSON shape is a
// contract with chrome://tracing / Perfetto, so the rendering of a fixed
// span set is asserted byte-for-byte, plus structural checks (monotonic
// timestamps, balanced/valid JSON, escaping).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace tiera {
namespace {

RequestTracer::Span make_span(std::uint64_t seq, std::uint64_t trace,
                              std::uint64_t span, std::uint64_t parent,
                              TraceOp op, const char* name,
                              const char* object, const char* tier,
                              std::int64_t start_us, double duration_ms,
                              bool ok, std::uint64_t rule = 0) {
  RequestTracer::Span s;
  s.seq = seq;
  s.trace_id = trace;
  s.span_id = span;
  s.parent_span_id = parent;
  s.rule_id = rule;
  s.op = op;
  std::snprintf(s.name, sizeof(s.name), "%s", name);
  std::snprintf(s.object_id, sizeof(s.object_id), "%s", object);
  std::snprintf(s.tier, sizeof(s.tier), "%s", tier);
  s.start_us = start_us;
  s.duration_ms = duration_ms;
  s.ok = ok;
  return s;
}

TEST(ChromeTraceExportTest, GoldenRendering) {
  const std::vector<RequestTracer::Span> spans = {
      make_span(0, 5, 7, 0, TraceOp::kPut, "PUT", "obj1", "m1", 1000, 1.5,
                true),
      make_span(1, 5, 8, 7, TraceOp::kEvent, "rule:spill", "obj1", "", 2000,
                0.25, true, /*rule=*/3),
      make_span(2, 5, 9, 8, TraceOp::kResponse, "move -> b1", "obj1", "b1",
                2100, 0.125, false, /*rule=*/3),
  };

  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"PUT\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":1000,"
      "\"dur\":1500.000,\"pid\":1,\"tid\":5,\"args\":{\"trace\":5,\"span\":7,"
      "\"parent\":0,\"rule\":0,\"object\":\"obj1\",\"tier\":\"m1\","
      "\"ok\":true}},\n"
      "{\"name\":\"rule:spill\",\"cat\":\"policy\",\"ph\":\"X\",\"ts\":2000,"
      "\"dur\":250.000,\"pid\":1,\"tid\":5,\"args\":{\"trace\":5,\"span\":8,"
      "\"parent\":7,\"rule\":3,\"object\":\"obj1\",\"tier\":\"\","
      "\"ok\":true}},\n"
      "{\"name\":\"move -> b1\",\"cat\":\"response\",\"ph\":\"X\",\"ts\":2100,"
      "\"dur\":125.000,\"pid\":1,\"tid\":5,\"args\":{\"trace\":5,\"span\":9,"
      "\"parent\":8,\"rule\":3,\"object\":\"obj1\",\"tier\":\"b1\","
      "\"ok\":false}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";

  EXPECT_EQ(render_chrome_trace(spans), expected);
}

TEST(ChromeTraceExportTest, EmptyInputIsStillValidJson) {
  EXPECT_EQ(render_chrome_trace({}),
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ChromeTraceExportTest, SortsByTimestampThenSeq) {
  // Input deliberately out of order; ts ties broken by seq.
  const std::vector<RequestTracer::Span> spans = {
      make_span(9, 1, 4, 0, TraceOp::kGet, "GET", "c", "m1", 3000, 0.1, true),
      make_span(2, 1, 2, 0, TraceOp::kGet, "GET", "a", "m1", 1000, 0.1, true),
      make_span(3, 1, 3, 0, TraceOp::kGet, "GET", "b", "m1", 1000, 0.1, true),
  };
  const std::string out = render_chrome_trace(spans);

  // Extract the "ts": values in rendered order and check monotonicity.
  std::vector<long long> ts;
  for (std::size_t pos = out.find("\"ts\":"); pos != std::string::npos;
       pos = out.find("\"ts\":", pos + 1)) {
    ts.push_back(std::atoll(out.c_str() + pos + 5));
  }
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  // Tie at ts=1000: seq 2 ("a") renders before seq 3 ("b").
  EXPECT_LT(out.find("\"object\":\"a\""), out.find("\"object\":\"b\""));
  EXPECT_LT(out.find("\"object\":\"b\""), out.find("\"object\":\"c\""));
}

TEST(ChromeTraceExportTest, EscapesJsonSpecials) {
  const std::vector<RequestTracer::Span> spans = {
      make_span(0, 1, 1, 0, TraceOp::kPut, "na\"me\\x", "ob\tj", "t\ni", 0,
                1.0, true),
  };
  const std::string out = render_chrome_trace(spans);
  EXPECT_NE(out.find("\"na\\\"me\\\\x\""), std::string::npos);
  EXPECT_NE(out.find("\"ob\\tj\""), std::string::npos);
  EXPECT_NE(out.find("\"t\\ni\""), std::string::npos);
}

// Minimal structural JSON validator: tracks brace/bracket nesting outside
// strings and rejects control characters inside strings. Enough to catch a
// malformed exporter without a JSON library in the tree.
bool structurally_valid_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control char inside a string literal
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(ChromeTraceExportTest, RendersStructurallyValidJson) {
  std::vector<RequestTracer::Span> spans;
  for (int i = 0; i < 50; ++i) {
    spans.push_back(make_span(
        static_cast<std::uint64_t>(i), 1, static_cast<std::uint64_t>(i + 1),
        static_cast<std::uint64_t>(i), i % 2 ? TraceOp::kGet : TraceOp::kPut,
        "op \"quoted\"", ("obj" + std::to_string(i)).c_str(), "m\\1",
        i * 100, 0.5, i % 3 != 0));
  }
  const std::string out = render_chrome_trace(spans);
  EXPECT_TRUE(structurally_valid_json(out)) << out.substr(0, 500);

  // The tracer's dump_chrome goes through the same renderer.
  RequestTracer tracer(16);
  tracer.record(TraceOp::kPut, "obj", "m1", from_ms(1.0), true);
  EXPECT_TRUE(structurally_valid_json(tracer.dump_chrome()));
}

}  // namespace
}  // namespace tiera
