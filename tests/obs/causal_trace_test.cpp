// Causal tracing end-to-end: a background threshold rule fired by a PUT must
// record its event span (and the response spans under it) with the PUT's
// trace id and the PUT's span as parent — the propagation path is
// PUT thread -> ThreadPool task context -> TraceScope in the worker.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/responses.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class CausalTraceTest : public ::testing::Test {
 protected:
  InstancePtr make_instance() {
    InstanceConfig config;
    config.name = "causal-test";
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "cau_m1", 1 << 20},
                    {"EBS", "cau_b1", 1 << 20}};
    config.trace_requests = true;
    auto instance = TieraInstance::create(std::move(config));
    EXPECT_TRUE(instance.ok()) << instance.status().to_string();
    return std::move(instance).value();
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
};

TEST_F(CausalTraceTest, BackgroundThresholdResponseLinksToTriggeringPut) {
  auto instance = make_instance();

  // Spill rule: once cau_m1 holds >= 4 KiB, move its oldest object to
  // cau_b1 — in the background, off the response pool.
  Rule rule;
  rule.name = "spill";
  rule.event = EventDef::on_threshold("cau_m1", TierAttribute::kUsedBytes,
                                      4096)
                   .in_background();
  rule.responses.push_back(make_move(Selector::oldest_in("cau_m1"),
                                     {"cau_b1"}));
  const std::uint64_t rule_id = instance->add_rule(std::move(rule));

  const Bytes payload = make_payload(2048, 3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        instance->put("cau-obj" + std::to_string(i), as_view(payload)).ok());
  }
  instance->control().drain();
  ASSERT_GE(instance->control().events_fired(), 1u);

  const auto spans = instance->tracer().snapshot(1024);

  // The rule firing recorded an event span attributed to our rule.
  const RequestTracer::Span* event = nullptr;
  for (const auto& span : spans) {
    if (span.op == TraceOp::kEvent && span.rule_id == rule_id) event = &span;
  }
  ASSERT_NE(event, nullptr) << instance->tracer().dump(64);
  EXPECT_NE(std::string(event->name).find("spill"), std::string::npos);

  // Its parent is the PUT that pushed the tier over the threshold: same
  // trace id, parent span id = that PUT's span id.
  const RequestTracer::Span* put = nullptr;
  for (const auto& span : spans) {
    if (span.op == TraceOp::kPut && span.span_id == event->parent_span_id) {
      put = &span;
    }
  }
  ASSERT_NE(put, nullptr) << instance->tracer().dump(64);
  EXPECT_EQ(put->trace_id, event->trace_id);
  EXPECT_NE(event->parent_span_id, 0u);

  // The move response recorded as a child of the event span.
  const RequestTracer::Span* response = nullptr;
  for (const auto& span : spans) {
    if (span.op == TraceOp::kResponse &&
        span.parent_span_id == event->span_id) {
      response = &span;
    }
  }
  ASSERT_NE(response, nullptr) << instance->tracer().dump(64);
  EXPECT_EQ(response->trace_id, put->trace_id);
  EXPECT_EQ(response->rule_id, rule_id);
  EXPECT_NE(std::string(response->name).find("move"), std::string::npos);
  EXPECT_TRUE(response->ok);

  // dump_tree renders the whole causal chain under the PUT root.
  const std::string tree = instance->tracer().dump_tree(put->trace_id);
  EXPECT_NE(tree.find("PUT"), std::string::npos);
  EXPECT_NE(tree.find("spill"), std::string::npos);
  EXPECT_NE(tree.find("move"), std::string::npos);
}

TEST_F(CausalTraceTest, RuleAttributionSeriesAppearInRegistry) {
  auto instance = make_instance();

  // Tier-filtered insert event: fires in PUT's second matching pass, after
  // placement stored the object — so the background copy never races the
  // object's first write.
  Rule rule;
  rule.name = "writeback";
  rule.event = EventDef::on_insert("cau_m1").in_background();
  rule.responses.push_back(
      make_copy(Selector::action_object(), {"cau_b1"}));
  const std::uint64_t rule_id = instance->add_rule(std::move(rule));

  const Bytes payload = make_payload(1024, 5);
  ASSERT_TRUE(instance->put("cau-wb", as_view(payload)).ok());
  instance->control().drain();

  MetricsRegistry& reg = MetricsRegistry::global();
  EXPECT_GE(
      reg.counter("tiera_rule_fires_total",
                  {{"rule", std::to_string(rule_id)}, {"name", "writeback"}})
          .value(),
      1u);
  EXPECT_GE(
      reg.counter("tiera_rule_bytes_moved_total",
                  {{"rule", std::to_string(rule_id)}, {"name", "writeback"}})
          .value(),
      1024u);

  const std::string prom = reg.render_prometheus();
  EXPECT_NE(prom.find("tiera_rule_fires_total"), std::string::npos);
  EXPECT_NE(prom.find("rule=\"" + std::to_string(rule_id) + "\""),
            std::string::npos) << prom.substr(0, 2000);

  // Satellite: background copies feed the instance-level policy counters,
  // so `tiera_instance_policy_bytes_total` reconciles with tier activity.
  EXPECT_GE(instance->stats().policy_bytes.load(), 1024u);
  EXPECT_GE(instance->stats().policy_objects.load(), 1u);

  // And rule_activity() (the `top` table source) reports the firing.
  bool found = false;
  for (const auto& activity : instance->control().rule_activity()) {
    if (activity.id != rule_id) continue;
    found = true;
    EXPECT_EQ(activity.name, "writeback");
    EXPECT_GE(activity.fires, 1u);
    EXPECT_GE(activity.bytes_moved, 1024u);
    EXPECT_GE(activity.objects_touched, 1u);
    EXPECT_TRUE(activity.last_error.empty());
  }
  EXPECT_TRUE(found);

  const std::string top = instance->render_top();
  EXPECT_NE(top.find("writeback"), std::string::npos);
  EXPECT_NE(top.find("cau_m1"), std::string::npos);
}

}  // namespace
}  // namespace tiera
