// Golden tests for the text exposition formats: label values containing
// quotes, backslashes and newlines must render escaped exactly as the
// Prometheus text format (0.0.4) prescribes, stay one-line-per-series, and
// never collide two distinct values onto one series key.
#include <gtest/gtest.h>

#include <regex>

#include "obs/metrics.h"

namespace tiera {
namespace {

TEST(ExpositionGoldenTest, PrometheusEscapesNastyLabelValues) {
  MetricsRegistry registry;
  // Raw value: ebs"fail<newline>over\rule
  registry.counter("tiera_rule_fires_total", {{"rule", "ebs\"fail\nover\\rule"}})
      .inc(3);
  registry.gauge("tiera_tier_used_bytes", {{"tier", "a\\b"}}).set(42);

  const std::string expected =
      "# TYPE tiera_rule_fires_total counter\n"
      "tiera_rule_fires_total{rule=\"ebs\\\"fail\\nover\\\\rule\"} 3\n"
      "# TYPE tiera_tier_used_bytes gauge\n"
      "tiera_tier_used_bytes{tier=\"a\\\\b\"} 42\n";
  EXPECT_EQ(registry.render_prometheus(), expected);
}

TEST(ExpositionGoldenTest, TextRenderingEscapesTheSameWay) {
  MetricsRegistry registry;
  registry.counter("tiera_rule_fires_total", {{"rule", "ebs\"fail\nover\\rule"}})
      .inc(3);

  const std::string expected =
      "tiera_rule_fires_total{rule=\"ebs\\\"fail\\nover\\\\rule\"} = 3\n";
  EXPECT_EQ(registry.render_text(), expected);
}

TEST(ExpositionGoldenTest, EscapingIsInjective) {
  // Values crafted so that naive (non-)escaping would merge them into one
  // series key: the raw characters differ but contain each other's escape
  // sequences.
  MetricsRegistry registry;
  registry.counter("tiera_x_total", {{"l", "a\"b"}}).inc(1);
  registry.counter("tiera_x_total", {{"l", "a\\\"b"}}).inc(2);
  registry.counter("tiera_x_total", {{"l", "x\ny"}}).inc(3);
  registry.counter("tiera_x_total", {{"l", "x\\ny"}}).inc(4);
  EXPECT_EQ(registry.series_count(), 4u);

  // Re-requesting an existing value must find the same series, not mint a
  // fifth one.
  registry.counter("tiera_x_total", {{"l", "a\"b"}}).inc(10);
  EXPECT_EQ(registry.series_count(), 4u);
}

TEST(ExpositionGoldenTest, EveryLineStaysMachineParseable) {
  MetricsRegistry registry;
  registry.counter("tiera_rule_fires_total", {{"rule", "nasty\n\"r\\1\""}})
      .inc(7);
  registry.gauge("tiera_slo_current",
                 {{"slo", "get_p99"}, {"instance", "a\nb"}, {"tier", ""}})
      .set(1.25);

  // One series per line; a raw newline inside a label value would break the
  // line-oriented exposition contract.
  const std::regex line_re(
      R"(^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary))$)"
      R"(|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^\n]*\})? -?[0-9][^\n]*$)");
  const std::string out = registry.render_prometheus();
  std::size_t start = 0;
  int lines = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "output must end with a newline";
    const std::string line = out.substr(start, end - start);
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad line: " << line;
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 4);  // 2 TYPE headers + 2 series
}

}  // namespace
}  // namespace tiera
