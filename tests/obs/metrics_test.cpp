#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <regex>
#include <thread>
#include <vector>

namespace tiera {
namespace {

TEST(MetricsRegistryTest, CounterFindOrCreateReturnsSameSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("tiera_test_ops_total");
  Counter& b = reg.counter("tiera_test_ops_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  // Different labels are a different series of the same family.
  Counter& c = reg.counter("tiera_test_ops_total", {{"tier", "m1"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("x_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumCorrectly) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Look the series up every iteration: registration must be
      // race-free too, not just the hot-path increment.
      for (int i = 0; i < kIncsPerThread; ++i) {
        reg.counter("tiera_test_concurrent_total", {{"tier", "m1"}}).inc();
        reg.gauge("tiera_test_inflight").add(1);
        reg.gauge("tiera_test_inflight").add(-1);
        reg.histogram("tiera_test_latency_ms").record_ms(0.5);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(reg.counter("tiera_test_concurrent_total", {{"tier", "m1"}}).value(),
            static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
  EXPECT_DOUBLE_EQ(reg.gauge("tiera_test_inflight").value(), 0.0);
  EXPECT_EQ(reg.histogram("tiera_test_latency_ms").count(),
            static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
}

TEST(MetricsRegistryTest, HistogramPercentilesSane) {
  MetricsRegistry reg;
  LatencyHistogram& hist = reg.histogram("tiera_test_hist_ms");
  // 1..100 ms uniformly: p50 ~ 50ms, p99 ~ 99ms (log buckets have ~4.6%
  // relative width, allow 10%).
  for (int i = 1; i <= 100; ++i) hist.record_ms(i);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_NEAR(hist.percentile_ms(0.50), 50.0, 5.0);
  EXPECT_NEAR(hist.percentile_ms(0.99), 99.0, 10.0);
  EXPECT_GE(hist.percentile_ms(0.99), hist.percentile_ms(0.50));
  EXPECT_NEAR(hist.sum_ms(), 5050.0, 1.0);
}

TEST(MetricsRegistryTest, PrometheusRenderIsParseable) {
  MetricsRegistry reg;
  reg.counter("tiera_test_puts_total", {{"tier", "m1"}}).inc(7);
  reg.gauge("tiera_test_fill").set(0.25);
  reg.histogram("tiera_test_get_latency_ms", {{"tier", "m1"}}).record_ms(2.0);
  const std::string out = reg.render_prometheus();

  EXPECT_NE(out.find("# TYPE tiera_test_puts_total counter"), std::string::npos);
  EXPECT_NE(out.find("tiera_test_puts_total{tier=\"m1\"} 7"), std::string::npos);
  EXPECT_NE(out.find("# TYPE tiera_test_fill gauge"), std::string::npos);
  EXPECT_NE(out.find("# TYPE tiera_test_get_latency_ms summary"),
            std::string::npos);
  EXPECT_NE(out.find("tiera_test_get_latency_ms{tier=\"m1\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(out.find("tiera_test_get_latency_ms_count{tier=\"m1\"} 1"),
            std::string::npos);

  // Every non-comment line must match the exposition grammar:
  //   name{labels} value  |  name value
  const std::regex line_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9][0-9eE+.\-]*$)");
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t end = out.find('\n', pos);
    const std::string line = out.substr(pos, end - pos);
    pos = end == std::string::npos ? out.size() : end + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad line: " << line;
  }
}

TEST(MetricsRegistryTest, LabelValuesEscaped) {
  MetricsRegistry reg;
  reg.counter("tiera_test_esc_total", {{"id", "a\"b\\c\nd"}}).inc();
  const std::string out = reg.render_prometheus();
  EXPECT_NE(out.find(R"(id="a\"b\\c\nd")"), std::string::npos);
}

TEST(MetricsRegistryTest, KindConflictReturnsDetachedMetric) {
  MetricsRegistry reg;
  reg.counter("tiera_test_kind").inc(5);
  // Same family requested as a gauge: must not crash, and must not corrupt
  // the existing counter.
  Gauge& detached = reg.gauge("tiera_test_kind");
  detached.set(1.0);
  EXPECT_EQ(reg.counter("tiera_test_kind").value(), 5u);
}

TEST(MetricsRegistryTest, TextRenderListsSeries) {
  MetricsRegistry reg;
  reg.counter("tiera_test_a_total").inc(2);
  reg.gauge("tiera_test_b").set(3.5);
  const std::string out = reg.render_text();
  EXPECT_NE(out.find("tiera_test_a_total = 2"), std::string::npos);
  EXPECT_NE(out.find("tiera_test_b = 3.5"), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace tiera
