// HeatTracker unit tests: count-min sketch bounds (never undercounts,
// bounded overestimate), halving decay (ordering preserved, rate math),
// top-K admission/eviction under churn, fixed memory, and a TSan-checked
// record-vs-decay-vs-snapshot race.
#include "obs/heat.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"

namespace tiera {
namespace {

std::string key_of(int i) { return "obj-" + std::to_string(i); }

TEST(CountMinSketchTest, NeverUndercountsAndOverestimateIsBounded) {
  // Single shard so the classic bound applies directly.
  CountMinSketch sketch(/*shards=*/1, /*depth=*/4, /*width=*/2048);
  // 200 keys, key i added (i+1) times: 20100 adds total.
  constexpr int kKeys = 200;
  std::uint64_t total = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::uint64_t hash = fnv1a64(key_of(i));
    for (int n = 0; n <= i; ++n) sketch.add(hash);
    total += static_cast<std::uint64_t>(i) + 1;
  }
  // eps = e / width; with width 2048 and N ~ 2e4 the slack is ~27 counts.
  const double eps_slack = 2.718281828 / 2048.0 * static_cast<double>(total);
  for (int i = 0; i < kKeys; ++i) {
    const std::uint64_t truth = static_cast<std::uint64_t>(i) + 1;
    const std::uint64_t est = sketch.estimate(fnv1a64(key_of(i)));
    EXPECT_GE(est, truth) << key_of(i);
    EXPECT_LE(est, truth + static_cast<std::uint64_t>(eps_slack) + 1)
        << key_of(i);
  }
  // A key never added estimates within the same collision slack of zero.
  EXPECT_LE(sketch.estimate(fnv1a64("never-added")),
            static_cast<std::uint64_t>(eps_slack) + 1);
}

TEST(CountMinSketchTest, WidthRoundsUpAndMemoryIsFixed) {
  CountMinSketch sketch(/*shards=*/2, /*depth=*/3, /*width=*/1000);
  EXPECT_EQ(sketch.width(), 1024u);  // next power of two
  EXPECT_EQ(sketch.depth(), 3);
  EXPECT_EQ(sketch.shards(), 2);
  const std::size_t before = sketch.memory_bytes();
  EXPECT_EQ(before, 2u * 3u * 1024u * sizeof(std::uint32_t));
  // 100k distinct keys later, the footprint has not moved.
  for (int i = 0; i < 100000; ++i) sketch.add(fnv1a64(key_of(i)));
  EXPECT_EQ(sketch.memory_bytes(), before);
}

TEST(CountMinSketchTest, HalvingPreservesOrderingAndHalvesEstimates) {
  CountMinSketch sketch(/*shards=*/1, /*depth=*/4, /*width=*/2048);
  const std::uint64_t hot = fnv1a64("hot");
  const std::uint64_t warm = fnv1a64("warm");
  const std::uint64_t cool = fnv1a64("cool");
  for (int i = 0; i < 1000; ++i) sketch.add(hot);
  for (int i = 0; i < 100; ++i) sketch.add(warm);
  for (int i = 0; i < 10; ++i) sketch.add(cool);

  const std::uint64_t hot_before = sketch.estimate(hot);
  sketch.halve();
  const std::uint64_t hot_after = sketch.estimate(hot);
  // Integer halving: exactly v >> 1 per counter.
  EXPECT_EQ(hot_after, hot_before / 2);
  // Relative order survives any number of epochs.
  sketch.halve();
  sketch.halve();
  EXPECT_GT(sketch.estimate(hot), sketch.estimate(warm));
  EXPECT_GT(sketch.estimate(warm), sketch.estimate(cool));
}

TEST(CountMinSketchTest, HistogramCountsOccupiedColumns) {
  CountMinSketch sketch(/*shards=*/1, /*depth=*/1, /*width=*/64);
  EXPECT_EQ(sketch.histogram(), std::vector<std::uint64_t>(
                                    CountMinSketch::kHistogramBuckets, 0));
  for (int i = 0; i < 8; ++i) sketch.add(fnv1a64("k"));  // one column at 8
  const auto buckets = sketch.histogram();
  EXPECT_EQ(buckets[3], 1u);  // 8 lies in [2^3, 2^4)
  std::uint64_t occupied = 0;
  for (const auto b : buckets) occupied += b;
  EXPECT_EQ(occupied, 1u);
}

TEST(HeatTopKTest, KeepsHottestKeysUnderChurn) {
  CountMinSketch sketch(/*shards=*/1, /*depth=*/4, /*width=*/4096);
  HeatTopK topk(/*capacity=*/8, &sketch);
  // 8 genuinely hot keys (100 accesses each)...
  for (int i = 0; i < 8; ++i) {
    const std::string key = "hot-" + std::to_string(i);
    const std::uint64_t hash = fnv1a64(key);
    for (int n = 0; n < 100; ++n) topk.offer(key, hash, sketch.add(hash));
  }
  // ...then heavy churn: 2000 one-shot keys try to displace them.
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "cold-" + std::to_string(i);
    const std::uint64_t hash = fnv1a64(key);
    topk.offer(key, hash, sketch.add(hash));
  }
  const auto top = topk.snapshot(8);
  ASSERT_EQ(top.size(), 8u);
  for (const auto& entry : top) {
    EXPECT_EQ(entry.key.rfind("hot-", 0), 0u) << entry.key;
    EXPECT_GE(entry.estimate, 100u);
  }
}

TEST(HeatTopKTest, EvictsCooledKeysForRisingOnes) {
  CountMinSketch sketch(/*shards=*/1, /*depth=*/4, /*width=*/4096);
  HeatTopK topk(/*capacity=*/4, &sketch);
  auto pump = [&](const std::string& key, int n) {
    const std::uint64_t hash = fnv1a64(key);
    for (int i = 0; i < n; ++i) topk.offer(key, hash, sketch.add(hash));
  };
  pump("old-0", 50);
  pump("old-1", 50);
  pump("old-2", 50);
  pump("old-3", 50);
  // The old generation cools by two epochs (50 -> 12)...
  sketch.halve();
  topk.on_decay();
  sketch.halve();
  topk.on_decay();
  // ...and a new generation overtakes it. Eviction must re-query the sketch
  // (the cached estimates still say 50) and let the risers in.
  pump("new-0", 30);
  pump("new-1", 30);
  const auto top = topk.snapshot(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key.rfind("new-", 0), 0u) << top[0].key;
  EXPECT_EQ(top[1].key.rfind("new-", 0), 0u) << top[1].key;
  EXPECT_GE(topk.evictions(), 2u);
}

TEST(HeatTrackerTest, SnapshotReportsDecayedRates) {
  HeatOptions options;
  options.half_life = std::chrono::seconds(10);
  HeatTracker tracker("heat-rate-test", options);
  for (int i = 0; i < 200; ++i) tracker.record("m1", "hotkey", 4096);
  // Rate is estimate / (2 * half_life): the steady-state upper bound.
  auto snap = tracker.snapshot(5);
  ASSERT_EQ(snap.tiers.size(), 1u);
  ASSERT_FALSE(snap.tiers[0].top.empty());
  EXPECT_EQ(snap.tiers[0].top[0].key, "hotkey");
  const auto& hot = snap.tiers[0].top[0];
  EXPECT_DOUBLE_EQ(hot.rate_per_s,
                   static_cast<double>(hot.estimate) / (2.0 * 10.0));
  EXPECT_EQ(snap.tiers[0].records, 200u);
  EXPECT_EQ(snap.tiers[0].bytes, 200u * 4096u);

  // One full half-life halves the estimate; two more epochs keep halving.
  tracker.on_tick(std::chrono::seconds(10));
  EXPECT_EQ(tracker.decay_epochs(), 1u);
  auto decayed = tracker.snapshot(5);
  ASSERT_FALSE(decayed.tiers[0].top.empty());
  EXPECT_EQ(decayed.tiers[0].top[0].estimate, hot.estimate / 2);
  tracker.on_tick(std::chrono::seconds(25));  // 2 epochs + 5s remainder
  EXPECT_EQ(tracker.decay_epochs(), 3u);
}

TEST(HeatTrackerTest, MemoryBoundIndependentOfKeyCount) {
  HeatOptions options;
  options.sketch_shards = 2;
  options.sketch_depth = 4;
  options.sketch_width = 1024;
  options.top_k = 16;
  HeatTracker tracker("heat-mem-test", options);
  tracker.record("m1", "seed", 1);
  const std::uint64_t bound = tracker.memory_bytes();
  EXPECT_GT(bound, 0u);
  for (int i = 0; i < 50000; ++i) tracker.record("m1", key_of(i), 1);
  EXPECT_EQ(tracker.memory_bytes(), bound);
  // A second tier doubles the bound, nothing else does.
  tracker.record("t2", "seed", 1);
  EXPECT_EQ(tracker.memory_bytes(), 2 * bound);
}

TEST(HeatTrackerTest, ZipfishLoadSurfacesTrueHotSet) {
  HeatOptions options;
  options.top_k = 32;
  HeatTracker tracker("heat-zipf-test", options);
  // Deterministic zipf-ish workload: key i gets 2000/(i+1) accesses, plus a
  // long tail of singletons — the top 10 must all surface.
  for (int i = 0; i < 100; ++i) {
    const std::string key = key_of(i);
    for (int n = 0; n < 2000 / (i + 1); ++n) tracker.record("m1", key, 100);
  }
  for (int i = 1000; i < 3000; ++i) tracker.record("m1", key_of(i), 100);
  const auto snap = tracker.snapshot(10);
  ASSERT_EQ(snap.tiers.size(), 1u);
  ASSERT_EQ(snap.tiers[0].top.size(), 10u);
  int found = 0;
  for (const auto& entry : snap.tiers[0].top) {
    for (int i = 0; i < 10; ++i) {
      if (entry.key == key_of(i)) ++found;
    }
  }
  EXPECT_GE(found, 9);  // sketch noise may displace at most one
}

// TSan target: writers record() while the control tick decays and a reader
// snapshots. No synchronization beyond the tracker's own.
TEST(HeatTrackerTest, ConcurrentRecordDecaySnapshot) {
  HeatOptions options;
  options.half_life = std::chrono::milliseconds(1);
  options.top_k = 16;
  HeatTracker tracker("heat-race-test", options);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracker, &stop, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        tracker.record(t % 2 == 0 ? "m1" : "t2", key_of(i++ % 64), 512);
      }
    });
  }
  threads.emplace_back([&tracker, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      tracker.on_tick(std::chrono::milliseconds(1));
    }
  });
  threads.emplace_back([&tracker, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = tracker.snapshot(8);
      for (const auto& tier : snap.tiers) {
        // Touch the data so the compiler cannot drop the reads.
        ASSERT_LE(tier.top.size(), 8u);
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& thread : threads) thread.join();
  const auto snap = tracker.snapshot(8);
  EXPECT_EQ(snap.tiers.size(), 2u);
}

}  // namespace
}  // namespace tiera
