#include "core/instance.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/responses.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class InstanceTest : public ::testing::Test {
 protected:
  InstancePtr make_two_tier(bool with_placement_rule = true) {
    InstanceConfig config;
    config.name = "test";
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 1 << 20},
                    {"EBS", "tier2", 1 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    EXPECT_TRUE(instance.ok()) << instance.status().to_string();
    if (with_placement_rule) {
      Rule rule;
      rule.event = EventDef::on_insert();
      rule.responses.push_back(
          make_store(Selector::action_object(), {"tier1"}));
      (*instance)->add_rule(std::move(rule));
    }
    return std::move(instance).value();
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
};


TEST_F(InstanceTest, PutGetRoundTrip) {
  auto instance = make_two_tier();
  const Bytes payload = make_payload(4096, 1);
  ASSERT_TRUE(instance->put("obj", as_view(payload)).ok());
  auto got = instance->get("obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  EXPECT_TRUE(instance->contains("obj"));
  EXPECT_EQ(instance->object_count(), 1u);
}

TEST_F(InstanceTest, GetMissingIsNotFound) {
  auto instance = make_two_tier();
  EXPECT_TRUE(instance->get("ghost").status().is_not_found());
  EXPECT_EQ(instance->stats().get_misses.load(), 1u);
}

TEST_F(InstanceTest, PlacementRuleStoresInConfiguredTier) {
  auto instance = make_two_tier();
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(100, 1))).ok());
  const auto meta = instance->stat("obj");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->in_tier("tier1"));
  EXPECT_FALSE(meta->in_tier("tier2"));
  EXPECT_EQ(instance->tier("tier1")->object_count(), 1u);
  EXPECT_EQ(instance->tier("tier2")->object_count(), 0u);
}

TEST_F(InstanceTest, DefaultPlacementWithoutRules) {
  auto instance = make_two_tier(/*with_placement_rule=*/false);
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(100, 1))).ok());
  const auto meta = instance->stat("obj");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->in_tier("tier1"));  // first tier fallback
}

TEST_F(InstanceTest, OverwriteReplacesContent) {
  auto instance = make_two_tier();
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(100, 1))).ok());
  const Bytes v2 = make_payload(200, 2);
  ASSERT_TRUE(instance->put("obj", as_view(v2)).ok());
  auto got = instance->get("obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v2);
  EXPECT_EQ(instance->object_count(), 1u);
  EXPECT_EQ(instance->tier("tier1")->used(), 200u);
}

TEST_F(InstanceTest, RemoveDeletesEverywhere) {
  auto instance = make_two_tier();
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(100, 1))).ok());
  ASSERT_TRUE(
      instance->engine_copy({"obj"}, {"tier2"}, nullptr, nullptr).ok());
  ASSERT_TRUE(instance->remove("obj").ok());
  EXPECT_FALSE(instance->contains("obj"));
  EXPECT_EQ(instance->tier("tier1")->object_count(), 0u);
  EXPECT_EQ(instance->tier("tier2")->object_count(), 0u);
  EXPECT_TRUE(instance->remove("obj").is_not_found());
}

TEST_F(InstanceTest, TagsStoredAndQueryable) {
  auto instance = make_two_tier();
  ASSERT_TRUE(
      instance->put("tmp1", as_view(make_payload(10, 1)), {"tmp"}).ok());
  ASSERT_TRUE(instance->put("keep", as_view(make_payload(10, 2))).ok());
  ASSERT_TRUE(instance->add_tags("keep", {"gold", "db"}).ok());
  const auto meta = instance->stat("keep");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->has_tag("gold"));
  EXPECT_TRUE(meta->has_tag("db"));
  EXPECT_FALSE(meta->has_tag("tmp"));
  const auto tagged = instance->metadata().select(
      [](const ObjectMeta& m) { return m.has_tag("tmp"); });
  ASSERT_EQ(tagged.size(), 1u);
  EXPECT_EQ(tagged[0], "tmp1");
}

TEST_F(InstanceTest, AccessMetadataUpdatedOnGet) {
  auto instance = make_two_tier();
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(10, 1))).ok());
  const auto before = instance->stat("obj");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->access_count, 0u);
  ASSERT_TRUE(instance->get("obj").ok());
  ASSERT_TRUE(instance->get("obj").ok());
  const auto after = instance->stat("obj");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->access_count, 2u);
  EXPECT_GE(after->last_access, before->last_access);
}

TEST_F(InstanceTest, DirtyClearedByDurableCopy) {
  auto instance = make_two_tier();
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(10, 1))).ok());
  EXPECT_TRUE(instance->stat("obj")->dirty);  // only in volatile Memcached
  ASSERT_TRUE(
      instance->engine_copy({"obj"}, {"tier2"}, nullptr, nullptr).ok());
  EXPECT_FALSE(instance->stat("obj")->dirty);
}

TEST_F(InstanceTest, ReadsFallThroughOnTierFailure) {
  auto instance = make_two_tier();
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(64, 1))).ok());
  ASSERT_TRUE(
      instance->engine_copy({"obj"}, {"tier2"}, nullptr, nullptr).ok());
  instance->tier("tier1")->inject_failure(FailureMode::kFailStop);
  auto got = instance->get("obj");
  ASSERT_TRUE(got.ok()) << got.status().to_string();  // served from tier2
  instance->tier("tier1")->heal();
}

TEST_F(InstanceTest, GetFailsWhenAllLocationsDown) {
  auto instance = make_two_tier();
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(64, 1))).ok());
  instance->tier("tier1")->inject_failure(FailureMode::kFailStop);
  EXPECT_TRUE(instance->get("obj").status().is_unavailable());
  EXPECT_GT(instance->stats().failures.load(), 0u);
}

TEST_F(InstanceTest, PutFailsWhenPlacementTierDown) {
  auto instance = make_two_tier();
  instance->tier("tier1")->inject_failure(FailureMode::kFailStop);
  const Status s = instance->put("obj", as_view(make_payload(64, 1)));
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(instance->contains("obj"));  // no dangling metadata
}

TEST_F(InstanceTest, AddAndRemoveTierAtRuntime) {
  auto instance = make_two_tier();
  ASSERT_TRUE(instance->add_tier({"S3", "tier3", 1 << 20}).ok());
  EXPECT_EQ(instance->tiers().size(), 3u);
  EXPECT_TRUE(instance->add_tier({"S3", "tier3", 1}).ok() == false);
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(10, 1))).ok());
  ASSERT_TRUE(
      instance->engine_copy({"obj"}, {"tier3"}, nullptr, nullptr).ok());
  ASSERT_TRUE(instance->remove_tier("tier3").ok());
  EXPECT_EQ(instance->tier("tier3"), nullptr);
  const auto meta = instance->stat("obj");
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->in_tier("tier3"));
  EXPECT_TRUE(instance->remove_tier("tier9").is_not_found());
}

TEST_F(InstanceTest, StatsTrackOps) {
  auto instance = make_two_tier();
  ASSERT_TRUE(instance->put("a", as_view(make_payload(10, 1))).ok());
  ASSERT_TRUE(instance->get("a").ok());
  ASSERT_TRUE(instance->remove("a").ok());
  EXPECT_EQ(instance->stats().puts.load(), 1u);
  EXPECT_EQ(instance->stats().gets.load(), 1u);
  EXPECT_EQ(instance->stats().removes.load(), 1u);
  EXPECT_EQ(instance->stats().put_latency.count(), 1u);
}

TEST_F(InstanceTest, MonthlyCostReflectsTiers) {
  auto instance = make_two_tier();
  const double cost = instance->monthly_cost();
  // 1 MB Memcached at $19/GB + 1 MB EBS at $0.10/GB.
  EXPECT_NEAR(cost, (19.0 + 0.10) / 1024.0, 0.001);
  EXPECT_EQ(instance->cost_breakdown().size(), 2u);
}

TEST_F(InstanceTest, PersistedMetadataRecoversAfterRestart) {
  const Bytes payload = make_payload(128, 5);
  {
    InstanceConfig config;
    config.data_dir = dir_.sub("persist");
    config.persist_metadata = true;
    config.tiers = {{"EBS", "tier1", 1 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    ASSERT_TRUE(
        (*instance)->put("obj", as_view(payload), {"important"}).ok());
  }
  InstanceConfig config;
  config.data_dir = dir_.sub("persist");
  config.persist_metadata = true;
  config.tiers = {{"EBS", "tier1", 1 << 20}};
  auto instance = TieraInstance::create(std::move(config));
  ASSERT_TRUE(instance.ok());
  const auto meta = (*instance)->stat("obj");
  ASSERT_TRUE(meta.ok()) << meta.status().to_string();
  EXPECT_TRUE(meta->in_tier("tier1"));
  EXPECT_TRUE(meta->has_tag("important"));
  auto got = (*instance)->get("obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
}

TEST_F(InstanceTest, ConcurrentClientsKeepConsistency) {
  auto instance = make_two_tier();
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        const std::string id = "o" + std::to_string(t) + "-" +
                               std::to_string(i);
        const Bytes payload = make_payload(128, t * 1000 + i);
        if (!instance->put(id, as_view(payload)).ok()) errors.fetch_add(1);
        auto got = instance->get(id);
        if (!got.ok() || *got != payload) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(instance->object_count(), 800u);
}

TEST_F(InstanceTest, RemapInvalidateDropsReplicatedObjectsOnly) {
  auto instance = make_two_tier();
  for (int i = 0; i < 50; ++i) {
    const std::string id = "r" + std::to_string(i);
    ASSERT_TRUE(instance->put(id, as_view(make_payload(64, i))).ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(
          instance->engine_copy({id}, {"tier2"}, nullptr, nullptr).ok());
    }
  }
  const std::size_t invalidated =
      instance->remap_invalidate("tier1", 1.0, /*seed=*/1);
  EXPECT_EQ(invalidated, 25u);  // only the replicated half is droppable
  // Every object is still readable (singletons from tier1, rest from tier2).
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(instance->get("r" + std::to_string(i)).ok()) << i;
  }
}

}  // namespace
}  // namespace tiera
