// Horizontal scaling of the control layer (the paper's §6 future work):
// consistent-hash routing, balance, and live node addition/removal with
// object migration.
#include "core/cluster.h"

#include <gtest/gtest.h>

#include "core/responses.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class ClusterTest : public ::testing::Test {
 protected:
  InstancePtr make_node(const std::string& name) {
    InstanceConfig config;
    config.name = name;
    config.data_dir = dir_.sub(name);
    config.tiers = {{"Memcached", "tier1", 64 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    EXPECT_TRUE(instance.ok());
    return std::move(instance).value();
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
};

TEST_F(ClusterTest, EmptyClusterRejectsOps) {
  TieraCluster cluster;
  EXPECT_TRUE(cluster.put("x", as_view(make_payload(8, 1))).is_unavailable());
  EXPECT_TRUE(cluster.get("x").status().is_unavailable());
  EXPECT_EQ(cluster.node_count(), 0u);
}

TEST_F(ClusterTest, RoutesAndRoundTrips) {
  TieraCluster cluster;
  ASSERT_TRUE(cluster.add_node("n1", make_node("n1")).ok());
  ASSERT_TRUE(cluster.add_node("n2", make_node("n2")).ok());
  ASSERT_TRUE(cluster.add_node("n3", make_node("n3")).ok());
  EXPECT_EQ(cluster.node_count(), 3u);

  for (int i = 0; i < 200; ++i) {
    const std::string id = "obj" + std::to_string(i);
    ASSERT_TRUE(cluster.put(id, as_view(make_payload(128, i)), {"t"}).ok());
  }
  EXPECT_EQ(cluster.object_count(), 200u);
  for (int i = 0; i < 200; ++i) {
    const std::string id = "obj" + std::to_string(i);
    auto got = cluster.get(id);
    ASSERT_TRUE(got.ok()) << id;
    EXPECT_EQ(*got, make_payload(128, i));
    EXPECT_TRUE(cluster.contains(id));
    auto meta = cluster.stat(id);
    ASSERT_TRUE(meta.ok());
    EXPECT_TRUE(meta->has_tag("t"));
  }
}

TEST_F(ClusterTest, RoutingIsDeterministic) {
  TieraCluster cluster;
  ASSERT_TRUE(cluster.add_node("n1", make_node("n1")).ok());
  ASSERT_TRUE(cluster.add_node("n2", make_node("n2")).ok());
  const auto owner1 = cluster.owner_of("some-object");
  const auto owner2 = cluster.owner_of("some-object");
  ASSERT_TRUE(owner1.ok());
  EXPECT_EQ(*owner1, *owner2);
}

TEST_F(ClusterTest, LoadSpreadsAcrossNodes) {
  TieraCluster cluster(/*vnodes_per_node=*/128);
  ASSERT_TRUE(cluster.add_node("n1", make_node("n1")).ok());
  ASSERT_TRUE(cluster.add_node("n2", make_node("n2")).ok());
  ASSERT_TRUE(cluster.add_node("n3", make_node("n3")).ok());
  std::map<std::string, int> counts;
  for (int i = 0; i < 3000; ++i) {
    counts[*cluster.owner_of("key" + std::to_string(i))]++;
  }
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [name, count] : counts) {
    EXPECT_GT(count, 3000 / 3 / 2) << name;   // within 2x of fair share
    EXPECT_LT(count, 3000 / 3 * 2) << name;
  }
}

TEST_F(ClusterTest, DuplicateNodeNameRejected) {
  TieraCluster cluster;
  ASSERT_TRUE(cluster.add_node("n1", make_node("n1")).ok());
  EXPECT_EQ(cluster.add_node("n1", make_node("n1b")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ClusterTest, AddNodeMigratesOwnershipChanges) {
  TieraCluster cluster;
  ASSERT_TRUE(cluster.add_node("n1", make_node("n1")).ok());
  ASSERT_TRUE(cluster.add_node("n2", make_node("n2")).ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(cluster
                    .put("m" + std::to_string(i),
                         as_view(make_payload(64, i)))
                    .ok());
  }
  ASSERT_TRUE(cluster.add_node("n3", make_node("n3")).ok());
  // Roughly a third of the keys should have moved to the new node.
  EXPECT_GT(cluster.last_migration_count(), 30u);
  EXPECT_LT(cluster.last_migration_count(), 250u);
  // No object lost or duplicated, and every read routes correctly.
  EXPECT_EQ(cluster.object_count(), 300u);
  for (int i = 0; i < 300; ++i) {
    auto got = cluster.get("m" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, make_payload(64, i));
  }
}

TEST_F(ClusterTest, RemoveNodeDrainsIt) {
  TieraCluster cluster;
  ASSERT_TRUE(cluster.add_node("n1", make_node("n1")).ok());
  ASSERT_TRUE(cluster.add_node("n2", make_node("n2")).ok());
  ASSERT_TRUE(cluster.add_node("n3", make_node("n3")).ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(cluster
                    .put("d" + std::to_string(i),
                         as_view(make_payload(64, i)))
                    .ok());
  }
  ASSERT_TRUE(cluster.remove_node("n2").ok());
  EXPECT_EQ(cluster.node_count(), 2u);
  EXPECT_EQ(cluster.object_count(), 300u);
  for (int i = 0; i < 300; ++i) {
    auto got = cluster.get("d" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, make_payload(64, i));
    const auto owner = cluster.owner_of("d" + std::to_string(i));
    ASSERT_TRUE(owner.ok());
    EXPECT_NE(*owner, "n2");
  }
  EXPECT_TRUE(cluster.remove_node("ghost").is_not_found());
}

TEST_F(ClusterTest, CannotRemoveLastNode) {
  TieraCluster cluster;
  ASSERT_TRUE(cluster.add_node("n1", make_node("n1")).ok());
  EXPECT_EQ(cluster.remove_node("n1").code(), StatusCode::kInvalidArgument);
}

TEST_F(ClusterTest, CostAggregates) {
  TieraCluster cluster;
  ASSERT_TRUE(cluster.add_node("n1", make_node("n1")).ok());
  ASSERT_TRUE(cluster.add_node("n2", make_node("n2")).ok());
  // Two 64 MB memcached tiers at $19/GB-month.
  EXPECT_NEAR(cluster.monthly_cost(), 2 * 64.0 / 1024.0 * 19.0, 1e-6);
}

}  // namespace
}  // namespace tiera
