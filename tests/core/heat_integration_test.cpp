// Heat & cost telemetry wired through the instance: GET/PUT paths feed the
// heat tracker and client byte counters, a zipfian load surfaces the true
// hot set (the acceptance bar for the sketch geometry), per-rule cost
// attribution reconciles with the engine's policy-bytes accounting, and the
// control tick drives decay + accrual in modelled time.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/instance.h"
#include "core/responses.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class HeatIntegrationTest : public ::testing::Test {
 protected:
  InstancePtr make_instance(InstanceConfig config) {
    config.data_dir = dir_.sub("inst");
    auto instance = TieraInstance::create(std::move(config));
    EXPECT_TRUE(instance.ok()) << instance.status().to_string();
    return std::move(instance).value();
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
};

TEST_F(HeatIntegrationTest, GetAndPutPathsFeedHeatAndClientBytes) {
  InstanceConfig config;
  config.name = "heat-wire";
  config.tiers = {{"Memcached", "hw1", 1 << 20}, {"EBS", "hw2", 1 << 20}};
  auto instance = make_instance(std::move(config));
  ASSERT_NE(instance->heat(), nullptr);
  ASSERT_NE(instance->cost_meter(), nullptr);

  const Bytes payload = make_payload(1024, 1);
  ASSERT_TRUE(instance->put("hot", as_view(payload)).ok());
  ASSERT_TRUE(instance->put("cold", as_view(payload)).ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(instance->get("hot").ok());
  ASSERT_TRUE(instance->get("cold").ok());

  // Heat: both keys recorded against the serving tier, "hot" on top.
  const auto heat = instance->heat()->snapshot(10);
  ASSERT_EQ(heat.tiers.size(), 1u);  // default placement: first tier only
  EXPECT_EQ(heat.tiers[0].tier, "hw1");
  ASSERT_GE(heat.tiers[0].top.size(), 2u);
  EXPECT_EQ(heat.tiers[0].top[0].key, "hot");
  // 50 GETs + 1 PUT for "hot"; the sketch never undercounts.
  EXPECT_GE(heat.tiers[0].top[0].estimate, 51u);

  // Cost: client bytes attributed to the serving/storing tier.
  const auto cost = instance->cost_meter()->snapshot();
  ASSERT_EQ(cost.tiers.size(), 2u);
  for (const auto& tier : cost.tiers) {
    if (tier.tier == "hw1") {
      EXPECT_EQ(tier.client_write_bytes, 2u * 1024u);  // both PUTs
      EXPECT_EQ(tier.client_read_bytes, 51u * 1024u);  // 50 + 1 GETs
    } else {
      EXPECT_EQ(tier.client_write_bytes, 0u);
      EXPECT_EQ(tier.client_read_bytes, 0u);
    }
  }
}

TEST_F(HeatIntegrationTest, TrackHeatOffDisablesTelemetry) {
  InstanceConfig config;
  config.name = "heat-off";
  config.track_heat = false;
  config.tiers = {{"Memcached", "ho1", 1 << 20}};
  auto instance = make_instance(std::move(config));
  EXPECT_EQ(instance->heat(), nullptr);
  EXPECT_EQ(instance->cost_meter(), nullptr);
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(64, 1))).ok());
  ASSERT_TRUE(instance->get("obj").ok());  // paths tolerate the null trackers
  instance->tick_observability(std::chrono::seconds(60));
}

// The acceptance bar: a zipfian hot set over >= 100k distinct keys, the
// reported top-20 contains >= 90% of the true top-20. Theta is 0.99, the
// YCSB standard — the Gray et al. formula this generator uses is singular
// at exactly 1.0 (alpha = 1/(1-theta)). Drives the instance's own tracker
// directly — storing 100k objects first would test the data path, not the
// sketch geometry the default options promise.
TEST_F(HeatIntegrationTest, ZipfianHotSetSurvivesSketchCompression) {
  InstanceConfig config;
  config.name = "heat-zipf";
  config.tiers = {{"Memcached", "hz1", 1 << 20}};
  auto instance = make_instance(std::move(config));
  HeatTracker* tracker = instance->heat();
  ASSERT_NE(tracker, nullptr);

  constexpr std::uint64_t kKeySpace = 100000;
  constexpr int kAccesses = 400000;
  Rng rng(1234);
  ZipfianDistribution zipf(kKeySpace, /*theta=*/0.99, /*scrambled=*/true);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  truth.reserve(kKeySpace / 4);
  for (int i = 0; i < kAccesses; ++i) {
    const std::uint64_t key = zipf.next(rng);
    ++truth[key];
    tracker->record("hz1", "obj-" + std::to_string(key), 4096);
  }

  // True top-20 by exact count.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked(truth.begin(),
                                                              truth.end());
  ASSERT_GE(ranked.size(), 20u);  // the workload really was zipfian
  std::partial_sort(ranked.begin(), ranked.begin() + 20, ranked.end(),
                    [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });

  const auto snap = tracker->snapshot(20);
  ASSERT_EQ(snap.tiers.size(), 1u);
  ASSERT_EQ(snap.tiers[0].top.size(), 20u);
  int overlap = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string key = "obj-" + std::to_string(ranked[i].first);
    for (const auto& entry : snap.tiers[0].top) {
      if (entry.key == key) {
        ++overlap;
        break;
      }
    }
  }
  EXPECT_GE(overlap, 18) << "top-20 recall below 90%";
  // Bounded memory held through 100k distinct keys.
  const HeatOptions& options = tracker->options();
  const std::uint64_t sketch_bytes = static_cast<std::uint64_t>(
      options.sketch_shards * options.sketch_depth);
  EXPECT_GT(tracker->memory_bytes(), 0u);
  EXPECT_LE(tracker->memory_bytes(),
            sketch_bytes * options.sketch_width * sizeof(std::uint32_t) +
                options.top_k * 256 + 4096);
}

// Per-rule cost attribution reconciles with the engine's policy-bytes
// accounting: every byte a response writes shows up both in
// stats().policy_bytes and in exactly one rule's cost account.
TEST_F(HeatIntegrationTest, RuleBytesReconcileWithPolicyBytes) {
  InstanceConfig config;
  config.name = "heat-rules";
  config.tiers = {{"Memcached", "hr1", 1 << 20}, {"EBS", "hr2", 1 << 20}};
  auto instance = make_instance(std::move(config));

  // Placement rule stores to hr1; a second insert rule copies to hr2 —
  // every PUT moves bytes under two distinct rule attributions.
  Rule place;
  place.name = "place-hr1";
  place.event = EventDef::on_insert();
  place.responses.push_back(make_store(Selector::action_object(), {"hr1"}));
  const std::uint64_t place_id = instance->add_rule(std::move(place));
  Rule mirror;
  mirror.name = "mirror-hr2";
  mirror.event = EventDef::on_insert();
  mirror.responses.push_back(
      make_copy(Selector::action_object(), {"hr2"}));
  const std::uint64_t mirror_id = instance->add_rule(std::move(mirror));

  constexpr int kObjects = 16;
  constexpr std::uint64_t kSize = 1000;
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(instance
                    ->put("obj-" + std::to_string(i),
                          as_view(make_payload(kSize, i)))
                    .ok());
  }

  const std::uint64_t policy_bytes = instance->stats().policy_bytes.load();
  EXPECT_EQ(policy_bytes, 2u * kObjects * kSize);  // store + copy per object

  const auto cost = instance->cost_meter()->snapshot();
  std::uint64_t rule_bytes = 0;
  std::uint64_t place_bytes = 0;
  std::uint64_t mirror_bytes = 0;
  for (const auto& rule : cost.rules) {
    rule_bytes += rule.bytes_moved;
    if (rule.rule_id == place_id) place_bytes = rule.bytes_moved;
    if (rule.rule_id == mirror_id) mirror_bytes = rule.bytes_moved;
  }
  EXPECT_EQ(rule_bytes, policy_bytes);
  EXPECT_EQ(place_bytes, kObjects * kSize);
  EXPECT_EQ(mirror_bytes, kObjects * kSize);
}

// The control tick advances heat decay and cost accrual in modelled time.
TEST_F(HeatIntegrationTest, ObservabilityTickDecaysAndAccrues) {
  InstanceConfig config;
  config.name = "heat-tick";
  config.heat_half_life = std::chrono::seconds(30);
  config.tiers = {{"Memcached", "ht1", 1 << 20}};
  auto instance = make_instance(std::move(config));
  ASSERT_TRUE(instance->put("obj", as_view(make_payload(2048, 1))).ok());
  for (int i = 0; i < 63; ++i) ASSERT_TRUE(instance->get("obj").ok());

  const auto before = instance->heat()->snapshot(1);
  ASSERT_FALSE(before.tiers[0].top.empty());
  const std::uint64_t est_before = before.tiers[0].top[0].estimate;
  EXPECT_GE(est_before, 64u);

  instance->tick_observability(std::chrono::seconds(60));  // two half-lives
  EXPECT_EQ(instance->heat()->decay_epochs(), 2u);
  const auto after = instance->heat()->snapshot(1);
  ASSERT_FALSE(after.tiers[0].top.empty());
  EXPECT_EQ(after.tiers[0].top[0].estimate, est_before / 4);

  // Accrual advanced modelled time and billed occupied storage. The control
  // layer's own timer also ticks in the background, so modelled time is at
  // least the explicit 60s, not exactly it.
  const auto cost = instance->cost_meter()->snapshot();
  EXPECT_GE(cost.modelled_seconds, 60.0);
  EXPECT_LT(cost.modelled_seconds, 90.0);
  ASSERT_EQ(cost.tiers.size(), 1u);
  EXPECT_GE(cost.tiers[0].storage_dollars, 0.0);
}

}  // namespace
}  // namespace tiera
