// The §6 future-work advisor: abstract requirements -> instance plan.
#include "core/advisor.h"

#include <gtest/gtest.h>

#include "workload/kv_workload.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

TEST(AdvisorHitModelTest, UniformIsLinear) {
  EXPECT_DOUBLE_EQ(
      predicted_hit_fraction(Requirements::Distribution::kUniform, 0.99, 0.3),
      0.3);
  EXPECT_DOUBLE_EQ(
      predicted_hit_fraction(Requirements::Distribution::kUniform, 0.99, 0.0),
      0.0);
  EXPECT_DOUBLE_EQ(
      predicted_hit_fraction(Requirements::Distribution::kUniform, 0.99, 1.0),
      1.0);
}

TEST(AdvisorHitModelTest, ZipfianConcentrates) {
  // A small cache captures disproportionate zipfian mass.
  const double small = predicted_hit_fraction(
      Requirements::Distribution::kZipfian, 0.99, 0.10);
  EXPECT_GT(small, 0.5);
  EXPECT_LT(small, 1.0);
  // Monotone in capacity.
  EXPECT_LT(small, predicted_hit_fraction(
                       Requirements::Distribution::kZipfian, 0.99, 0.5));
  // More skew -> more mass captured.
  EXPECT_GT(predicted_hit_fraction(Requirements::Distribution::kZipfian,
                                   1.2, 0.10),
            predicted_hit_fraction(Requirements::Distribution::kZipfian,
                                   0.8, 0.10));
}

TEST(AdvisorTest, TightLatencyDemandsMemcached) {
  Requirements req;
  req.read_latency_ms = 1.0;  // sub-EBS p99: everything must hit Memcached
  req.percentile = 0.99;
  req.distribution = Requirements::Distribution::kUniform;
  auto plan = advise(req);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  ASSERT_EQ(plan->tiers.size(), 3u);
  EXPECT_GE(plan->tiers[0].fraction, 0.95);  // Memcached dominates
  EXPECT_LE(plan->predicted_latency_ms, 1.0);
}

TEST(AdvisorTest, RelaxedLatencyBuysCheaperTiers) {
  Requirements tight, loose;
  tight.read_latency_ms = 1.0;
  loose.read_latency_ms = 15.0;  // EBS-class p99 is fine
  auto tight_plan = advise(tight);
  auto loose_plan = advise(loose);
  ASSERT_TRUE(tight_plan.ok());
  ASSERT_TRUE(loose_plan.ok());
  EXPECT_LT(loose_plan->monthly_cost, tight_plan->monthly_cost);
  EXPECT_LT(loose_plan->tiers[0].fraction, tight_plan->tiers[0].fraction);
}

TEST(AdvisorTest, ZipfianNeedsLessMemcachedThanUniform) {
  Requirements uniform, zipf;
  uniform.read_latency_ms = zipf.read_latency_ms = 12.0;
  uniform.percentile = zipf.percentile = 0.95;
  uniform.distribution = Requirements::Distribution::kUniform;
  zipf.distribution = Requirements::Distribution::kZipfian;
  auto uniform_plan = advise(uniform);
  auto zipf_plan = advise(zipf);
  ASSERT_TRUE(uniform_plan.ok());
  ASSERT_TRUE(zipf_plan.ok());
  EXPECT_LE(zipf_plan->monthly_cost, uniform_plan->monthly_cost);
}

TEST(AdvisorTest, ImpossibleRequirementsRejected) {
  Requirements req;
  req.read_latency_ms = 1.0;          // needs nearly all-Memcached...
  req.budget_dollars = 0.01;          // ...which this budget cannot buy
  req.working_set_bytes = 10ull << 30;
  EXPECT_FALSE(advise(req).ok());
  Requirements bad;
  bad.read_latency_ms = -1;
  EXPECT_FALSE(advise(bad).ok());
}

TEST(AdvisorTest, BudgetActsAsCeiling) {
  Requirements req;
  req.read_latency_ms = 30.0;
  req.working_set_bytes = 1ull << 30;
  auto unconstrained = advise(req);
  ASSERT_TRUE(unconstrained.ok());
  req.budget_dollars = unconstrained->monthly_cost * 1.5;
  auto constrained = advise(req);
  ASSERT_TRUE(constrained.ok());
  EXPECT_LE(constrained->monthly_cost, *req.budget_dollars);
}

TEST(AdvisorTest, PlanInstantiatesAndMeetsPredictionRoughly) {
  ZeroLatencyScope scale(0.15);
  TempDir dir;
  Requirements req;
  req.read_latency_ms = 12.0;  // EBS-class p95
  req.percentile = 0.95;
  req.working_set_bytes = 1200ull * 4096;
  req.distribution = Requirements::Distribution::kZipfian;
  auto plan = advise(req);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  auto instance =
      plan->instantiate({.data_dir = dir.sub("plan")}, req.working_set_bytes);
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();

  KvWorkloadOptions options;
  options.record_count = 1200;
  options.value_size = 4096;
  options.read_fraction = 1.0;
  options.distribution = KeyDist::kZipfian;
  options.threads = 4;
  options.duration = std::chrono::seconds(8);
  auto backend = KvBackend::for_instance(**instance);
  const KvWorkloadResult result = run_kv_workload(backend, options);
  (*instance)->control().drain();
  ASSERT_GT(result.reads, 0u);
  // The analytic model is coarse; require the measured percentile to be
  // within 3x of the requirement (warmup, promotion churn, jitter).
  EXPECT_LT(result.read_latency.percentile_ms(req.percentile),
            req.read_latency_ms * 3)
      << plan->summary();
}

}  // namespace
}  // namespace tiera
