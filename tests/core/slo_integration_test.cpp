// End-to-end SLO loop: modelled tier latency drives an objective into
// violation, the `slo.get_p99 == violated` threshold event fires a
// remediation rule that promotes the working set into the fast tier, and
// the objective recovers once the slow samples age out of the window.
// Asserted through the published tiera_slo_violated gauge and the rule
// attribution counters, per the control layer's own bookkeeping.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/instance.h"
#include "core/responses.h"
#include "core/templates.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

bool wait_until(const std::function<bool()>& pred, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

TEST(SloIntegrationTest, LatencyViolationFiresRuleAndRecovers) {
  // Small positive scale: targets stay in modelled time (the engine scales
  // recorded wall latencies back up), so EBS reads register as ~6.75-11.25 ms
  // (9 ms modelled, 25% jitter) and Memcached reads well under 1 ms. A 4 ms
  // modelled target separates the two cleanly at any scale.
  ZeroLatencyScope scale(0.05);
  TempDir dir;

  InstanceConfig config;
  config.name = "SloIntegration";
  config.data_dir = dir.sub("inst");
  config.tiers = {{"Memcached", "tier1", 4u << 20}, {"EBS", "tier2", 4u << 20}};
  auto created = TieraInstance::create(std::move(config));
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  TieraInstance& instance = **created;

  SloSpec slo;
  slo.name = "get_p99";
  slo.signal = SloSignal::kGetP99;
  slo.target_ms = 4.0;
  slo.window = std::chrono::seconds(20);  // 1 s of real time at this scale
  ASSERT_TRUE(instance.add_slo(slo).ok());

  // Cold placement: everything lands in the slow EBS tier, so GETs breach
  // the objective until the remediation rule promotes the working set.
  Rule place;
  place.name = "place-cold";
  place.event = EventDef::on_insert();
  place.responses.push_back(make_store(Selector::action_object(), {"tier2"}));
  instance.add_rule(std::move(place));

  Rule remediate;
  remediate.name = "slo-remediate";
  remediate.event = EventDef::on_slo("get_p99").in_background();
  remediate.responses.push_back(make_copy(Selector::in_tier("tier2"),
                                          {"tier1"}));
  instance.add_rule(std::move(remediate));

  constexpr int kObjects = 20;
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(instance
                    .put("o" + std::to_string(i),
                         as_view(make_payload(512, i)))
                    .ok());
  }

  const auto sweep_gets = [&] {
    for (int i = 0; i < kObjects; ++i) {
      auto got = instance.get("o" + std::to_string(i));
      ASSERT_TRUE(got.ok());
    }
  };
  const auto slo_row = [&] {
    auto rows = instance.slo().status();
    EXPECT_EQ(rows.size(), 1u);
    return rows.empty() ? SloStatus{} : rows[0];
  };
  Gauge& violated_gauge = MetricsRegistry::global().gauge(
      "tiera_slo_violated",
      {{"slo", "get_p99"}, {"instance", "SloIntegration"}, {"tier", ""}});
  const auto remediation_fires = [&]() -> std::uint64_t {
    for (const auto& activity : instance.control().rule_activity()) {
      if (activity.name == "slo-remediate") return activity.fires;
    }
    return 0;
  };

  // Phase 1: slow GETs drive the objective into violation on a control tick.
  ASSERT_TRUE(wait_until(
      [&] {
        sweep_gets();
        return slo_row().violated;
      },
      /*timeout_s=*/20.0))
      << "SLO never became violated";
  EXPECT_EQ(violated_gauge.value(), 1.0);
  EXPECT_GT(slo_row().current, slo.target_ms);

  // Phase 2: the violation edge fires the remediation rule exactly through
  // the threshold-event machinery (attribution counter, not a side channel).
  ASSERT_TRUE(wait_until([&] { return remediation_fires() >= 1; },
                         /*timeout_s=*/20.0))
      << "slo-remediate rule never fired";
  instance.control().drain();  // let the promotion copy finish
  EXPECT_TRUE(instance.stat("o0")->in_tier("tier1"));

  // Phase 3: GETs now come from Memcached; once the slow samples age out of
  // the 1 s (real-time) window the objective recovers and the gauge drops.
  ASSERT_TRUE(wait_until(
      [&] {
        sweep_gets();
        return !slo_row().violated;
      },
      /*timeout_s=*/20.0))
      << "SLO never recovered";
  EXPECT_EQ(violated_gauge.value(), 0.0);
  const SloStatus final_row = slo_row();
  EXPECT_GE(final_row.violations, 1u);
  // The violations counter crossed the registry too.
  EXPECT_GE(MetricsRegistry::global()
                .counter("tiera_slo_violations_total",
                         {{"slo", "get_p99"},
                          {"instance", "SloIntegration"},
                          {"tier", ""}})
                .value(),
            1u);
}

}  // namespace
}  // namespace tiera
