// Predictive prefetching (the paper's §6 "predictive data and
// migration/prefetching"), wired to the FileAdapter's chunk naming.
#include <gtest/gtest.h>

#include "core/responses.h"
#include "core/spec_parser.h"
#include "posix/file_adapter.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class PrefetchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceConfig config;
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 64 << 20},
                    {"EBS", "tier2", 256 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    instance_ = std::move(instance).value();

    // Placement: everything lands in EBS (a cold store), and reads served
    // from EBS prefetch the next three chunks into Memcached.
    Rule place;
    place.event = EventDef::on_insert();
    place.responses.push_back(
        make_store(Selector::action_object(), {"tier2"}));
    instance_->add_rule(std::move(place));

    Rule prefetch;
    prefetch.event =
        EventDef::on_action(ActionType::kGet, "tier2").in_background();
    prefetch.responses.push_back(std::make_unique<PrefetchResponse>(
        3, std::vector<std::string>{"tier1"}));
    instance_->add_rule(std::move(prefetch));
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
  InstancePtr instance_;
};

TEST_F(PrefetchTest, SequentialChunksWarmTheFastTier) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(instance_
                    ->put("log#" + std::to_string(i),
                          as_view(make_payload(1024, i)))
                    .ok());
  }
  ASSERT_TRUE(instance_->get("log#0").ok());
  instance_->control().drain();
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(instance_->stat("log#" + std::to_string(i))
                    ->in_tier("tier1"))
        << i;
  }
  EXPECT_FALSE(instance_->stat("log#4")->in_tier("tier1"));
}

TEST_F(PrefetchTest, StopsAtEndOfFile) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(instance_
                    ->put("f#" + std::to_string(i),
                          as_view(make_payload(256, i)))
                    .ok());
  }
  ASSERT_TRUE(instance_->get("f#2").ok());  // last chunk: nothing ahead
  instance_->control().drain();
  EXPECT_EQ(instance_->tier("tier1")->object_count(), 0u);
}

TEST_F(PrefetchTest, IgnoresNonChunkObjects) {
  ASSERT_TRUE(instance_->put("plain", as_view(make_payload(64, 1))).ok());
  ASSERT_TRUE(instance_->put("odd#name", as_view(make_payload(64, 2))).ok());
  ASSERT_TRUE(instance_->get("plain").ok());
  ASSERT_TRUE(instance_->get("odd#name").ok());
  instance_->control().drain();
  EXPECT_EQ(instance_->tier("tier1")->object_count(), 0u);
}

TEST_F(PrefetchTest, AcceleratesFileAdapterScans) {
  FileAdapter fs(*instance_, 1024);
  ASSERT_TRUE(fs.create("data/scan").ok());
  ASSERT_TRUE(fs.write("data/scan", 0, as_view(make_payload(16 << 10, 7)))
                  .ok());
  // Read the file front to back; after a short warmup the prefetcher keeps
  // chunks in Memcached ahead of the reader.
  std::size_t served_after_warmup = 0;
  for (std::uint64_t off = 0; off < (16 << 10); off += 1024) {
    auto chunk = fs.read("data/scan", off, 1024);
    ASSERT_TRUE(chunk.ok());
    instance_->control().drain();  // let the prefetch catch up
    if (off >= 2048) {
      const auto next = instance_->stat("data/scan#" +
                                        std::to_string(off / 1024 + 1));
      if (next.ok() && next->in_tier("tier1")) ++served_after_warmup;
    }
  }
  EXPECT_GE(served_after_warmup, 8u);
}

TEST_F(PrefetchTest, PrefetchVerbInSpecLanguage) {
  constexpr std::string_view kSpec = R"(
Tiera PrefetchingInstance() {
  tier1: { name: Memcached, size: 64M };
  tier2: { name: EBS, size: 256M };
  event(insert.into) : response {
    store(what: insert.object, to: tier2);
  }
  background event(get.from == tier2) : response {
    prefetch(what: get.object, lookahead: 2, to: tier1);
  }
}
)";
  auto spec = InstanceSpec::parse(kSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto instance = spec->instantiate({.data_dir = dir_.sub("spec")});
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*instance)
                    ->put("s#" + std::to_string(i),
                          as_view(make_payload(128, i)))
                    .ok());
  }
  ASSERT_TRUE((*instance)->get("s#1").ok());
  (*instance)->control().drain();
  EXPECT_TRUE((*instance)->stat("s#2")->in_tier("tier1"));
  EXPECT_TRUE((*instance)->stat("s#3")->in_tier("tier1"));
  EXPECT_FALSE((*instance)->stat("s#4")->in_tier("tier1"));
}

}  // namespace
}  // namespace tiera
