// Property tests over the policy engine: randomized operation sequences
// against the paper's canonical policies, asserting the invariants each
// policy promises.
#include <gtest/gtest.h>

#include "core/responses.h"
#include "core/templates.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class PolicyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ZeroLatencyScope zero_latency_;
  TempDir dir_;
};

// Exclusive tiered LRU (Table 2 instances): after any mix of puts, gets,
// overwrites and deletes —
//   * every live object is readable and byte-correct,
//   * no tier exceeds its capacity,
//   * each object occupies exactly one tier (exclusive placement).
TEST_P(PolicyPropertyTest, ExclusiveLruInvariants) {
  auto instance = make_tiered_lru_instance(
      {.data_dir = dir_.sub("lru")}, /*dataset=*/256ull * 1024, 0.4, 0.3,
      0.4);
  ASSERT_TRUE(instance.ok());
  Rng rng(GetParam());
  std::map<std::string, std::uint64_t> live;  // id -> payload seed

  for (int step = 0; step < 400; ++step) {
    const std::string id = "o" + std::to_string(rng.next_below(120));
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // put / overwrite
        const std::uint64_t seed = rng.next();
        const Status put = (*instance)->put(id, as_view(make_payload(2048, seed)));
        ASSERT_TRUE(put.ok()) << "step " << step << ": " << put.to_string();
        live[id] = seed;
        break;
      }
      case 2: {  // get
        auto it = live.find(id);
        auto got = (*instance)->get(id);
        if (it == live.end()) {
          EXPECT_FALSE(got.ok());
        } else {
          ASSERT_TRUE(got.ok()) << id << " step " << step;
          EXPECT_EQ(*got, make_payload(2048, it->second));
        }
        break;
      }
      case 3: {  // delete (sometimes)
        if (live.count(id)) {
          ASSERT_TRUE((*instance)->remove(id).ok());
          live.erase(id);
        }
        break;
      }
    }
  }
  (*instance)->control().drain();

  // Invariants. Byte-correctness first: these GETs themselves fire the
  // background promote rules (moves), so placement is only checkable after
  // a second drain — stat() during a move transiently sees two locations.
  for (const auto& [id, seed] : live) {
    auto got = (*instance)->get(id);
    ASSERT_TRUE(got.ok()) << id;
    EXPECT_EQ(*got, make_payload(2048, seed)) << id;
  }
  (*instance)->control().drain();
  for (const auto& tier : (*instance)->tiers()) {
    EXPECT_LE(tier->used(), tier->capacity()) << tier->name();
  }
  for (const auto& [id, seed] : live) {
    const auto meta = (*instance)->stat(id);
    ASSERT_TRUE(meta.ok()) << id;
    EXPECT_EQ(meta->locations.size(), 1u) << id << " (exclusive placement)";
  }
  EXPECT_EQ((*instance)->object_count(), live.size());
}

// Write-through (MemcachedEBS): after every acknowledged PUT the object is
// clean and both tiers hold identical bytes.
TEST_P(PolicyPropertyTest, WriteThroughInvariants) {
  auto instance = make_memcached_ebs_instance({.data_dir = dir_.sub("wt")},
                                              64 << 20, 64 << 20);
  ASSERT_TRUE(instance.ok());
  Rng rng(GetParam() * 31);
  for (int step = 0; step < 150; ++step) {
    const std::string id = "w" + std::to_string(rng.next_below(40));
    const Bytes payload = make_payload(1 + rng.next_below(8192), rng.next());
    ASSERT_TRUE((*instance)->put(id, as_view(payload)).ok());
    const auto meta = (*instance)->stat(id);
    ASSERT_TRUE(meta.ok());
    EXPECT_FALSE(meta->dirty) << id;
    EXPECT_TRUE(meta->in_tier("tier1"));
    EXPECT_TRUE(meta->in_tier("tier2"));
    auto in_mem = (*instance)->tier("tier1")->get(id);
    auto in_ebs = (*instance)->tier("tier2")->get(id);
    ASSERT_TRUE(in_mem.ok());
    ASSERT_TRUE(in_ebs.ok());
    EXPECT_EQ(*in_mem, *in_ebs);
    EXPECT_EQ(*in_mem, payload);
  }
}

// At-rest transforms: randomly compress and/or encrypt objects; GET always
// returns the original bytes and flags round-trip through un-transforms.
TEST_P(PolicyPropertyTest, TransformRoundTrips) {
  InstanceConfig config;
  config.data_dir = dir_.sub("transforms");
  config.tiers = {{"EBS", "tier1", 256 << 20}};
  auto instance = TieraInstance::create(std::move(config));
  ASSERT_TRUE(instance.ok());
  const ChaChaKey key = derive_key("property");
  Rng rng(GetParam() * 97);

  std::map<std::string, Bytes> expected;
  for (int i = 0; i < 40; ++i) {
    const std::string id = "t" + std::to_string(i);
    // Mix compressible and random payloads.
    Bytes payload;
    if (rng.next_below(2) == 0) {
      while (payload.size() < 4096) {
        append(payload, std::string_view("compressible content "));
      }
    } else {
      payload = make_payload(4096, rng.next());
    }
    ASSERT_TRUE((*instance)->put(id, as_view(payload)).ok());
    expected[id] = payload;
    const int transform = static_cast<int>(rng.next_below(4));
    if (transform == 1 || transform == 3) {
      ASSERT_TRUE((*instance)->engine_compress({id}).ok());
    }
    if (transform == 2 || transform == 3) {
      ASSERT_TRUE((*instance)->engine_encrypt({id}, key).ok());
    }
  }
  for (const auto& [id, payload] : expected) {
    auto got = (*instance)->get(id);
    ASSERT_TRUE(got.ok()) << id;
    EXPECT_EQ(*got, payload) << id;
  }
  // Undo everything; bytes at rest return to the originals.
  for (const auto& [id, payload] : expected) {
    const auto meta = (*instance)->stat(id);
    ASSERT_TRUE(meta.ok());
    if (meta->encrypted) {
      ASSERT_TRUE((*instance)->engine_decrypt({id}, key).ok()) << id;
    }
    if (meta->compressed) {
      ASSERT_TRUE((*instance)->engine_uncompress({id}).ok()) << id;
    }
    auto raw = (*instance)->tier("tier1")->get(id);
    ASSERT_TRUE(raw.ok()) << id;
    EXPECT_EQ(*raw, payload) << id;
  }
}

// storeOnce under churn: duplicate-heavy inserts and deletes never lose
// data, and physical blobs never outnumber distinct contents.
TEST_P(PolicyPropertyTest, DedupChurnInvariants) {
  auto instance = make_memcached_s3_instance(
      {.data_dir = dir_.sub("dedup")}, 1 << 20, 256 << 20, /*dedup=*/true);
  ASSERT_TRUE(instance.ok());
  Rng rng(GetParam() * 131);
  std::map<std::string, std::uint64_t> live;
  for (int step = 0; step < 250; ++step) {
    const std::string id = "d" + std::to_string(rng.next_below(60));
    if (rng.next_below(3) == 0 && live.count(id)) {
      ASSERT_TRUE((*instance)->remove(id).ok());
      live.erase(id);
    } else {
      const std::uint64_t seed = rng.next_below(12);  // heavy duplication
      ASSERT_TRUE(
          (*instance)->put(id, as_view(make_payload(2048, seed))).ok());
      live[id] = seed;
    }
  }
  (*instance)->control().drain();
  std::set<std::uint64_t> distinct;
  for (const auto& [id, seed] : live) {
    distinct.insert(seed);
    auto got = (*instance)->get(id);
    ASSERT_TRUE(got.ok()) << id;
    EXPECT_EQ(*got, make_payload(2048, seed)) << id;
  }
  // S3 holds at most one blob per distinct content (plus none orphaned
  // beyond the distinct count).
  EXPECT_LE((*instance)->tier("tier2")->object_count(), 12u);
  EXPECT_GE((*instance)->tier("tier2")->object_count(), distinct.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace tiera
