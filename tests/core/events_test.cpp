// EventDef construction, describe() rendering, and selector/condition
// descriptions — the introspection surface operators see in logs.
#include "core/events.h"

#include <gtest/gtest.h>

#include "core/policy.h"

namespace tiera {
namespace {

TEST(EventDefTest, ActionFactories) {
  const EventDef insert = EventDef::on_insert("tier1", "tmp");
  EXPECT_EQ(insert.kind, EventKind::kAction);
  EXPECT_EQ(insert.action.action, ActionType::kInsert);
  EXPECT_EQ(insert.action.tier_filter, "tier1");
  EXPECT_EQ(insert.action.tag_filter, "tmp");
  EXPECT_FALSE(insert.background);

  const EventDef get = EventDef::on_action(ActionType::kGet, "tier2");
  EXPECT_EQ(get.action.action, ActionType::kGet);
}

TEST(EventDefTest, TimerIsImplicitlyBackground) {
  const EventDef timer = EventDef::on_timer(std::chrono::seconds(30));
  EXPECT_EQ(timer.kind, EventKind::kTimer);
  EXPECT_TRUE(timer.background);
  EXPECT_EQ(timer.timer.period, std::chrono::seconds(30));
}

TEST(EventDefTest, ThresholdFactory) {
  const EventDef t = EventDef::on_threshold("tier1",
                                            TierAttribute::kFillFraction,
                                            0.75, /*sliding=*/true);
  EXPECT_EQ(t.kind, EventKind::kThreshold);
  EXPECT_EQ(t.threshold.tier, "tier1");
  EXPECT_DOUBLE_EQ(t.threshold.threshold, 0.75);
  EXPECT_TRUE(t.threshold.sliding);
}

TEST(EventDefTest, InBackgroundChains) {
  const EventDef e = EventDef::on_insert().in_background();
  EXPECT_TRUE(e.background);
}

TEST(EventDefTest, DescribeRendersEachKind) {
  EXPECT_EQ(EventDef::on_insert().describe(), "event(insert)");
  EXPECT_EQ(EventDef::on_insert("tier1").describe(),
            "event(insert.into == tier1)");
  EXPECT_NE(EventDef::on_insert("", "tmp").describe().find("tag == tmp"),
            std::string::npos);
  EXPECT_NE(EventDef::on_timer(std::chrono::seconds(2)).describe().find(
                "time=2"),
            std::string::npos);
  const std::string threshold =
      EventDef::on_threshold("t1", TierAttribute::kFillFraction, 0.5)
          .describe();
  EXPECT_NE(threshold.find("t1.filled == 50%"), std::string::npos);
  EXPECT_NE(EventDef::on_threshold("t1", TierAttribute::kUsedBytes, 100)
                .describe()
                .find(".used"),
            std::string::npos);
  EXPECT_NE(EventDef::on_threshold("t1", TierAttribute::kObjectCount, 10)
                .describe()
                .find(".objects"),
            std::string::npos);
  const std::string bg = EventDef::on_insert().in_background().describe();
  EXPECT_EQ(bg.rfind("background ", 0), 0u);
}

TEST(ActionTypeTest, Names) {
  EXPECT_EQ(to_string(ActionType::kInsert), "insert");
  EXPECT_EQ(to_string(ActionType::kGet), "get");
  EXPECT_EQ(to_string(ActionType::kDelete), "delete");
}

TEST(SelectorDescribeTest, AllForms) {
  EXPECT_EQ(Selector::action_object().describe(), "insert.object");
  EXPECT_EQ(Selector::by_id("x").describe(), "\"x\"");
  EXPECT_EQ(Selector::oldest_in("t1").describe(), "t1.oldest");
  EXPECT_EQ(Selector::newest_in("t1").describe(), "t1.newest");
  EXPECT_EQ(Selector::all().describe(), "all objects");
  EXPECT_EQ(Selector::in_tier("t1", true).describe(),
            "object.location == t1 && object.dirty == true");
  EXPECT_EQ(Selector::with_tag("tmp").describe(), "object.tag == \"tmp\"");
}

TEST(ConditionDescribeTest, AllForms) {
  EXPECT_EQ(Condition::always().describe(), "always");
  EXPECT_EQ(Condition::tier_cannot_fit("t1").describe(), "t1.filled");
  EXPECT_NE(Condition::tier_fill_at_least("t1", 0.75).describe().find("75"),
            std::string::npos);
  EXPECT_NE(Condition::tier_used_at_least("t1", 1024).describe().find("1024"),
            std::string::npos);
}

TEST(RuleTest, FreshRuleState) {
  Rule rule;
  EXPECT_EQ(rule.id, 0u);
  EXPECT_TRUE(rule.armed->load());
  EXPECT_EQ(rule.next_deadline_ns->load(), 0);
}

}  // namespace
}  // namespace tiera
