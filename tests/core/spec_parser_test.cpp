// The specification-language compiler, fed the paper's own figures.
#include "core/spec_parser.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

// Figure 3 of the paper, verbatim (modulo whitespace).
constexpr std::string_view kLowLatencySpec = R"(
Tiera LowLatencyInstance(time t) {
  % two tiers specified with initial sizes
  tier1: { name: Memcached, size: 5M };
  tier2: { name: EBS, size: 5M };
  % action event defined to always store data into Memcached
  event(insert.into) : response {
    insert.object.dirty = true;
    store(what: insert.object, to: tier1);
  }
  % write back policy: copying data to persistent store on a timer event
  event(time=t) : response {
    copy(what: object.location == tier1 && object.dirty == true,
         to: tier2);
  }
}
)";

// Figure 4.
constexpr std::string_view kPersistentSpec = R"(
Tiera PersistentInstance() {
  tier1: { name: Memcached, size: 1M };
  tier2: { name: EBS, size: 1M };
  tier3: { name: S3, size: 10M };
  % write-through policy using action event and copy response
  event(insert.into == tier1) : response {
    copy(what: insert.object, to: tier2);
  }
  % simple backup policy
  background event(tier2.filled == 50%) : response {
    copy(what: object.location == tier2, to: tier3, bandwidth: 40KB/s);
  }
}
)";

// Figure 5's LRU policy.
constexpr std::string_view kLruSpec = R"(
Tiera LruInstance() {
  tier1: { name: Memcached, size: 1200 };
  tier2: { name: EBS, size: 1M };
  event(insert.into) : response {
    if (tier1.filled) {
      % Evict the oldest item to another tier
      move(what: tier1.oldest, to: tier2);
    }
    store(what: insert.object, to: tier1);
  }
}
)";

// Figure 6.
constexpr std::string_view kGrowingSpec = R"(
Tiera GrowingInstance(time t) {
  tier1: { name: Memcached, size: 200K };
  tier2: { name: EBS, size: 2M };
  event(insert.into) : response {
    store(what: insert.object, to: tier1);
  }
  event(time=t) : response {
    move(what: object.location == tier1, to: tier2);
  }
  background event(tier1.filled == 75%) : response {
    grow(what: tier1, increment: 100%);
  }
}
)";

class SpecParserTest : public ::testing::Test {
 protected:
  TemplateOptions opts(const std::string& name) {
    TemplateOptions o;
    o.data_dir = dir_.sub(name);
    return o;
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
};

TEST_F(SpecParserTest, ParsesFigure3) {
  auto spec = InstanceSpec::parse(kLowLatencySpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec->instance_name(), "LowLatencyInstance");
  ASSERT_EQ(spec->parameters().size(), 1u);
  EXPECT_EQ(spec->parameters()[0], "t");
  EXPECT_EQ(spec->tier_count(), 2u);
  EXPECT_EQ(spec->rule_count(), 2u);
}

TEST_F(SpecParserTest, Figure3InstanceImplementsWriteBack) {
  ZeroLatencyScope scale(1.0);
  auto spec = InstanceSpec::parse(kLowLatencySpec);
  ASSERT_TRUE(spec.ok());
  auto instance = spec->instantiate(opts("fig3"), {{"t", "50ms"}});
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  ASSERT_TRUE((*instance)->put("k", as_view(make_payload(64, 1))).ok());
  EXPECT_TRUE((*instance)->stat("k")->in_tier("tier1"));
  EXPECT_FALSE((*instance)->stat("k")->in_tier("tier2"));
  precise_sleep(from_ms(170));
  (*instance)->control().drain();
  EXPECT_TRUE((*instance)->stat("k")->in_tier("tier2"));
}

TEST_F(SpecParserTest, MissingParameterRejected) {
  auto spec = InstanceSpec::parse(kLowLatencySpec);
  ASSERT_TRUE(spec.ok());
  auto instance = spec->instantiate(opts("missing"), {});
  EXPECT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SpecParserTest, Figure4WriteThroughAndThresholdBackup) {
  auto spec = InstanceSpec::parse(kPersistentSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec->tier_count(), 3u);
  auto instance = spec->instantiate(opts("fig4"));
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  // Placement is by default first-tier; the tier1-filtered rule then copies
  // through to EBS.
  ASSERT_TRUE((*instance)->put("k", as_view(make_payload(64, 1))).ok());
  EXPECT_TRUE((*instance)->stat("k")->in_tier("tier1"));
  EXPECT_TRUE((*instance)->stat("k")->in_tier("tier2"));
  // Fill tier2 past 50% -> throttled backup to tier3 fires.
  for (int i = 0; i < 36; ++i) {
    ASSERT_TRUE((*instance)
                    ->put("f" + std::to_string(i),
                          as_view(make_payload(16 << 10, i)))
                    .ok())
        << i;
  }
  (*instance)->control().drain();
  EXPECT_GT((*instance)->tier("tier3")->object_count(), 0u);
}

TEST_F(SpecParserTest, Figure5LruEvictionFromSpec) {
  auto spec = InstanceSpec::parse(kLruSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto instance = spec->instantiate(opts("fig5"));
  ASSERT_TRUE(instance.ok());
  // tier1 holds 1200 bytes; insert four 400-byte objects.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*instance)
                    ->put("o" + std::to_string(i),
                          as_view(make_payload(400, i)))
                    .ok())
        << i;
  }
  // Oldest object was demoted to tier2; newest stayed in tier1.
  EXPECT_TRUE((*instance)->stat("o0")->in_tier("tier2"));
  EXPECT_TRUE((*instance)->stat("o3")->in_tier("tier1"));
  EXPECT_LE((*instance)->tier("tier1")->used(), 1200u);
}

TEST_F(SpecParserTest, Figure6GrowFiresAtThreshold) {
  auto spec = InstanceSpec::parse(kGrowingSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto instance = spec->instantiate(opts("fig6"), {{"t", "10s"}});
  ASSERT_TRUE(instance.ok());
  const auto cap = (*instance)->tier("tier1")->capacity();
  for (int i = 0; i < 39; ++i) {  // 156 KB of 200 KB = 78%
    ASSERT_TRUE((*instance)
                    ->put("g" + std::to_string(i),
                          as_view(make_payload(4 << 10, i)))
                    .ok());
  }
  (*instance)->control().drain();
  EXPECT_EQ((*instance)->tier("tier1")->capacity(), cap * 2);
}

TEST_F(SpecParserTest, TagFilteredEventAndStoreOnce) {
  constexpr std::string_view kTagSpec = R"(
Tiera TagInstance() {
  tier1: { name: Ephemeral, size: 1M };
  tier2: { name: S3, size: 8M };
  event(insert.into && insert.object.tag == "tmp") : response {
    store(what: insert.object, to: tier1);
  }
  event(insert.into && insert.object.tag == "gold") : response {
    storeOnce(what: insert.object, to: tier2);
  }
}
)";
  // The `&& insert.object.tag == "x"` form is an extension of the paper's
  // grammar for tag-filtered action events (it motivates them with the
  // "tmp"-tag example in §2.1).
  auto spec = InstanceSpec::parse(kTagSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto instance = spec->instantiate(opts("tags"));
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  ASSERT_TRUE(
      (*instance)->put("scratch", as_view(make_payload(64, 1)), {"tmp"}).ok());
  ASSERT_TRUE(
      (*instance)->put("asset", as_view(make_payload(64, 2)), {"gold"}).ok());
  EXPECT_TRUE((*instance)->stat("scratch")->in_tier("tier1"));
  EXPECT_FALSE((*instance)->stat("scratch")->in_tier("tier2"));
  EXPECT_TRUE((*instance)->stat("asset")->in_tier("tier2"));
  // storeOnce assigned a content hash to the tagged class.
  EXPECT_FALSE((*instance)->stat("asset")->content_hash.empty());
}

TEST_F(SpecParserTest, RejectsMalformedSpecs) {
  const std::string_view bad_specs[] = {
      "NotTiera X() {}",
      "Tiera X( {",
      "Tiera X() { tier1: { name: Memcached }; }",        // missing size
      "Tiera X() { tier1: { name: Memcached, size: 5X }; }",
      "Tiera X() { event(bogus.event) : response { } }",
      "Tiera X() { event(insert.into) : response { explode(what: all); } }",
      "Tiera X() { event(insert.into) : response { store(to: tier1); } }",
      "Tiera X() { event(time=1s) : response { store(what: insert.object, "
      "to: tier1); }",  // unbalanced brace
  };
  for (const auto& text : bad_specs) {
    auto spec = InstanceSpec::parse(text);
    if (spec.ok()) {
      TemplateOptions o;
      o.data_dir = dir_.sub("bad");
      EXPECT_FALSE(spec->instantiate(o).ok()) << text;
    } else {
      SUCCEED();
    }
  }
}

TEST_F(SpecParserTest, ResilienceFieldsRejectTrailingGarbage) {
  auto ok = parse_resilience_fields("5", "", "3", "");
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  EXPECT_EQ(ok->retry.max_retries, 5);
  EXPECT_EQ(ok->breaker.failure_threshold, 3);
  EXPECT_TRUE(ok->breaker.enabled);
  // A numeric prefix followed by garbage is malformed, not "the prefix".
  EXPECT_FALSE(parse_resilience_fields("5x", "", "", "").ok());
  EXPECT_FALSE(parse_resilience_fields("", "", "3s", "").ok());
  EXPECT_FALSE(parse_resilience_fields("x5", "", "", "").ok());
}

TEST_F(SpecParserTest, ErrorsCarryLineNumbers) {
  auto spec = InstanceSpec::parse("Tiera X() {\n  tier1: { name: }\n}");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line"), std::string::npos);
}

TEST_F(SpecParserTest, ParseFileMissingIsNotFound) {
  auto spec = InstanceSpec::parse_file("/nonexistent/path.tiera");
  EXPECT_TRUE(spec.status().is_not_found());
}

TEST_F(SpecParserTest, CommentsAndWhitespaceIgnored) {
  constexpr std::string_view kCommented = R"(
% leading comment
Tiera   Compact(){tier1:{name:Memcached,size:1M};
event(insert.into):response{store(what:insert.object,to:tier1);}}
)";
  auto spec = InstanceSpec::parse(kCommented);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec->instance_name(), "Compact");
}

TEST_F(SpecParserTest, ApplyToReconfiguresLiveInstance) {
  auto base_spec = InstanceSpec::parse(kLruSpec);
  ASSERT_TRUE(base_spec.ok());
  auto instance = base_spec->instantiate(opts("apply"));
  ASSERT_TRUE(instance.ok());
  (*instance)->clear_rules();
  // Re-apply the same rules from the spec onto the live instance.
  ASSERT_TRUE(base_spec->apply_to(**instance).ok());
  ASSERT_TRUE((*instance)->put("x", as_view(make_payload(64, 1))).ok());
  EXPECT_TRUE((*instance)->stat("x")->in_tier("tier1"));
}

TEST_F(SpecParserTest, SlidingThresholdModifier) {
  constexpr std::string_view kSliding = R"(
Tiera Sliding() {
  tier1: { name: EBS, size: 8M };
  tier2: { name: EBS, size: 8M };
  event(insert.into) : response {
    store(what: insert.object, to: tier1);
  }
  background event(sliding tier1.used == 64K) : response {
    copy(what: object.location == tier1, to: tier2);
  }
}
)";
  auto spec = InstanceSpec::parse(kSliding);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto instance = spec->instantiate(opts("sliding"));
  ASSERT_TRUE(instance.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*instance)
                    ->put("s" + std::to_string(i),
                          as_view(make_payload(4 << 10, i)))
                    .ok());
  }
  (*instance)->control().drain();
  EXPECT_GT((*instance)->tier("tier2")->object_count(), 0u);
}

TEST_F(SpecParserTest, SloDeclarationParsesAndRegisters) {
  constexpr std::string_view kSloSpec = R"(
Tiera SloInstance() {
  tier1: { name: Memcached, size: 8M };
  tier2: { name: EBS, size: 8M };
  slo get_p99 < 2ms window 60s burn 5m/1h;
  event(insert.into) : response {
    store(what: insert.object, to: tier1);
  }
  background event(slo.get_p99 == violated) : response {
    grow(what: tier1, increment: 100%);
  }
}
)";
  auto spec = InstanceSpec::parse(kSloSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec->slo_count(), 1u);
  EXPECT_EQ(spec->rule_count(), 2u);

  auto instance = spec->instantiate(opts("slo"));
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  ASSERT_EQ((*instance)->slo().size(), 1u);
  const auto rows = (*instance)->slo().status();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "get_p99");
  EXPECT_EQ(rows[0].tier, "");
  EXPECT_DOUBLE_EQ(rows[0].target, 2.0);
  EXPECT_DOUBLE_EQ(rows[0].window_s, 60.0);
}

TEST_F(SpecParserTest, SloDefaultsAndPerTierScope) {
  // Window/burn are optional; a dotted metric scopes the objective to a
  // tier and error-rate targets parse as percentages.
  constexpr std::string_view kSloSpec = R"(
Tiera SloDefaults() {
  tier1: { name: Memcached, size: 8M };
  tier2: { name: EBS, size: 8M };
  slo tier2.get_p99 < 5ms;
  slo error_rate < 1%;
  event(insert.into) : response {
    store(what: insert.object, to: tier1);
  }
}
)";
  auto spec = InstanceSpec::parse(kSloSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec->slo_count(), 2u);

  auto instance = spec->instantiate(opts("slo-defaults"));
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  const auto rows = (*instance)->slo().status();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "tier2.get_p99");
  EXPECT_EQ(rows[0].tier, "tier2");
  EXPECT_EQ(rows[0].signal, "get_p99");
  EXPECT_DOUBLE_EQ(rows[0].target, 5.0);
  EXPECT_DOUBLE_EQ(rows[0].window_s, 60.0);  // default window
  EXPECT_EQ(rows[1].name, "error_rate");
  EXPECT_FALSE(rows[1].is_latency);
  EXPECT_DOUBLE_EQ(rows[1].target, 0.01);
}

TEST_F(SpecParserTest, SloTargetCanBeAParameter) {
  constexpr std::string_view kSloSpec = R"(
Tiera SloParam(time lat) {
  tier1: { name: Memcached, size: 8M };
  tier2: { name: EBS, size: 8M };
  slo get_p95 < lat;
  event(insert.into) : response {
    store(what: insert.object, to: tier1);
  }
}
)";
  auto spec = InstanceSpec::parse(kSloSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto instance = spec->instantiate(opts("slo-param"), {{"lat", "4ms"}});
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  const auto rows = (*instance)->slo().status();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].target, 4.0);
}

TEST_F(SpecParserTest, RejectsMalformedSlos) {
  const auto reject = [&](std::string_view body) {
    const std::string text = "Tiera Bad() {\n  tier1: { name: EBS, size: 1M "
                             "};\n  tier2: { name: EBS, size: 1M };\n" +
                             std::string(body) + "\n}";
    auto spec = InstanceSpec::parse(text);
    if (!spec.ok()) return true;  // parse-time rejection
    return !spec->instantiate(opts("bad-slo")).ok();  // bind-time rejection
  };
  EXPECT_TRUE(reject("slo nonsense_metric < 2ms;"));
  EXPECT_TRUE(reject("slo get_p99 < 2ms burn 5m;"));       // missing '/'
  EXPECT_TRUE(reject("slo get_p99 2ms;"));                 // missing '<'
  EXPECT_TRUE(reject("slo error_rate < 2ms;"));            // wants a percent
  EXPECT_TRUE(reject("slo get_p99 < 2ms frobnicate 3s;")); // unknown clause

  // And unknown comparisons in slo events.
  constexpr std::string_view kBadEvent = R"(
Tiera BadEvent() {
  tier1: { name: EBS, size: 1M };
  tier2: { name: EBS, size: 1M };
  slo get_p99 < 2ms;
  event(slo.get_p99 == open) : response {
    grow(what: tier1, increment: 10%);
  }
}
)";
  auto spec = InstanceSpec::parse(kBadEvent);
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->instantiate(opts("bad-slo-event")).ok());
}

}  // namespace
}  // namespace tiera
