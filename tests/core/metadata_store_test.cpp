#include "core/metadata_store.h"

#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;

ObjectMeta make_meta(const std::string& id, std::uint64_t size = 100) {
  ObjectMeta m;
  m.id = id;
  m.size = size;
  m.created = m.last_access = now();
  return m;
}

TEST(ObjectMetaTest, EncodeDecodeRoundTrip) {
  ObjectMeta m = make_meta("object-1", 4096);
  m.access_count = 17;
  m.dirty = true;
  m.locations = {"tier1", "tier3"};
  m.tags = {"tmp", "db"};
  m.compressed = true;
  m.encrypted = true;
  m.content_hash = "abc123";
  auto decoded = ObjectMeta::decode(as_view(m.encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, m.id);
  EXPECT_EQ(decoded->size, m.size);
  EXPECT_EQ(decoded->access_count, m.access_count);
  EXPECT_EQ(decoded->dirty, m.dirty);
  EXPECT_EQ(decoded->locations, m.locations);
  EXPECT_EQ(decoded->tags, m.tags);
  EXPECT_EQ(decoded->compressed, m.compressed);
  EXPECT_EQ(decoded->encrypted, m.encrypted);
  EXPECT_EQ(decoded->content_hash, m.content_hash);
  EXPECT_EQ(decoded->last_access, m.last_access);
}

TEST(ObjectMetaTest, DecodeRejectsTruncated) {
  const Bytes encoded = make_meta("x").encode();
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                          encoded.size() / 2}) {
    auto r = ObjectMeta::decode(ByteView(encoded.data(), cut));
    EXPECT_FALSE(r.ok()) << cut;
  }
}

TEST(ObjectMetaTest, StorageKeyUsesContentHashWhenSet) {
  ObjectMeta m = make_meta("id");
  EXPECT_EQ(m.storage_key(), "id");
  m.content_hash = "deadbeef";
  EXPECT_EQ(m.storage_key(), "cas:deadbeef");
}

TEST(MetadataStoreTest, CrudAndSelect) {
  MetadataStore store;
  ASSERT_TRUE(store.put(make_meta("a")).ok());
  ASSERT_TRUE(store.put(make_meta("b")).ok());
  EXPECT_TRUE(store.contains("a"));
  EXPECT_EQ(store.size(), 2u);
  ASSERT_TRUE(store.update("a", [](ObjectMeta& m) {
    m.dirty = true;
    return true;
  }).ok());
  EXPECT_TRUE(store.get("a")->dirty);
  const auto dirty =
      store.select([](const ObjectMeta& m) { return m.dirty; });
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], "a");
  ASSERT_TRUE(store.erase("a").ok());
  EXPECT_FALSE(store.contains("a"));
  EXPECT_TRUE(store.erase("a").is_not_found());
  EXPECT_TRUE(store.update("a", [](ObjectMeta&) { return true; })
                  .is_not_found());
}

TEST(MetadataStoreTest, UpdateAbortKeepsOldValue) {
  MetadataStore store;
  ASSERT_TRUE(store.put(make_meta("a", 1)).ok());
  ASSERT_TRUE(store.update("a", [](ObjectMeta& m) {
    m.size = 999;
    return false;  // abort
  }).ok());
  // The mutation ran on the stored record but was not persisted; for the
  // in-memory map the contract is "fn returning false skips persistence".
  EXPECT_TRUE(store.contains("a"));
}

TEST(MetadataStoreTest, TierLruOrdering) {
  MetadataStore store;
  store.touch_in_tier("t", "a");
  store.touch_in_tier("t", "b");
  store.touch_in_tier("t", "c");
  EXPECT_EQ(*store.oldest_in_tier("t"), "a");
  EXPECT_EQ(*store.newest_in_tier("t"), "c");
  store.touch_in_tier("t", "a");  // refresh
  EXPECT_EQ(*store.oldest_in_tier("t"), "b");
  EXPECT_EQ(*store.newest_in_tier("t"), "a");
  store.remove_from_tier("t", "b");
  EXPECT_EQ(*store.oldest_in_tier("t"), "c");
  EXPECT_EQ(store.count_in_tier("t"), 2u);
  store.drop_tier("t");
  EXPECT_FALSE(store.oldest_in_tier("t").has_value());
}

TEST(MetadataStoreTest, EmptyTierHasNoExtremes) {
  MetadataStore store;
  EXPECT_FALSE(store.oldest_in_tier("none").has_value());
  EXPECT_FALSE(store.newest_in_tier("none").has_value());
  EXPECT_EQ(store.count_in_tier("none"), 0u);
}

TEST(MetadataStoreTest, ContentRefCounting) {
  MetadataStore store;
  EXPECT_TRUE(store.add_content_ref("h1", "a"));   // first ref
  EXPECT_FALSE(store.add_content_ref("h1", "b"));  // duplicate content
  EXPECT_EQ(store.content_ref_count("h1"), 2u);
  EXPECT_FALSE(store.drop_content_ref("h1", "a"));  // one ref remains
  EXPECT_TRUE(store.drop_content_ref("h1", "b"));   // last ref
  EXPECT_EQ(store.content_ref_count("h1"), 0u);
  EXPECT_FALSE(store.drop_content_ref("h1", "ghost"));
}

TEST(MetadataStoreTest, PersistsThroughMetaDb) {
  TempDir dir;
  {
    auto db = MetaDb::open(dir.sub("meta"));
    ASSERT_TRUE(db.ok());
    MetadataStore store(std::move(db).value());
    ObjectMeta m = make_meta("persisted", 512);
    m.locations = {"tier1"};
    m.tags = {"keep"};
    m.content_hash = "h42";
    ASSERT_TRUE(store.put(m).ok());
    ASSERT_TRUE(store.put(make_meta("dropped")).ok());
    ASSERT_TRUE(store.erase("dropped").ok());
  }
  auto db = MetaDb::open(dir.sub("meta"));
  ASSERT_TRUE(db.ok());
  MetadataStore store(std::move(db).value());
  ASSERT_TRUE(store.recover().ok());
  EXPECT_EQ(store.size(), 1u);
  const auto m = store.get("persisted");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->size, 512u);
  EXPECT_TRUE(m->in_tier("tier1"));
  EXPECT_TRUE(m->has_tag("keep"));
  // Recovery rebuilds the recency and content indexes.
  EXPECT_EQ(*store.oldest_in_tier("tier1"), "persisted");
  EXPECT_EQ(store.content_ref_count("h42"), 1u);
}

TEST(MetadataStoreTest, ConcurrentTouchAndSelect) {
  MetadataStore store;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.put(make_meta("o" + std::to_string(i))).ok());
  }
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  threads.emplace_back([&] {
    while (!stop.load()) {
      (void)store.select([](const ObjectMeta&) { return true; });
    }
  });
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) {
        const std::string id = "o" + std::to_string((i * 7 + t) % 100);
        store.touch_in_tier("t", id);
        (void)store.update(id, [](ObjectMeta& m) {
          m.access_count++;
          return true;
        });
      }
    });
  }
  for (std::size_t i = 1; i < threads.size(); ++i) threads[i].join();
  stop.store(true);
  threads[0].join();
  EXPECT_EQ(store.count_in_tier("t"), 100u);
}

}  // namespace
}  // namespace tiera
