// Snapshotting — one of the responses the paper plans beyond Table 1.
#include <gtest/gtest.h>

#include "core/instance.h"
#include "core/responses.h"
#include "core/spec_parser.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceConfig config;
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 8 << 20},
                    {"EBS", "tier2", 64 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    instance_ = std::move(instance).value();
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
  InstancePtr instance_;
};

TEST_F(SnapshotTest, SnapshotSurvivesOverwriteAndRestores) {
  const Bytes v1 = make_payload(512, 1);
  const Bytes v2 = make_payload(512, 2);
  ASSERT_TRUE(instance_->put("doc", as_view(v1)).ok());
  ASSERT_TRUE(instance_->engine_snapshot({"doc"}, "before-edit").ok());
  ASSERT_TRUE(instance_->put("doc", as_view(v2)).ok());
  EXPECT_EQ(*instance_->get("doc"), v2);
  // The snapshot still holds v1.
  auto snap = instance_->get("doc@snap/before-edit");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(*snap, v1);
  // Restore brings v1 back through the normal PUT path.
  ASSERT_TRUE(instance_->restore_snapshot("doc", "before-edit").ok());
  EXPECT_EQ(*instance_->get("doc"), v1);
}

TEST_F(SnapshotTest, SnapshotSurvivesDelete) {
  ASSERT_TRUE(instance_->put("doc", as_view(make_payload(64, 1))).ok());
  ASSERT_TRUE(instance_->engine_snapshot({"doc"}, "keep").ok());
  ASSERT_TRUE(instance_->remove("doc").ok());
  EXPECT_FALSE(instance_->contains("doc"));
  EXPECT_TRUE(instance_->contains("doc@snap/keep"));
}

TEST_F(SnapshotTest, SnapshotToSpecificTier) {
  ASSERT_TRUE(instance_->put("doc", as_view(make_payload(64, 1))).ok());
  ASSERT_TRUE(
      instance_->engine_snapshot({"doc"}, "archived", {"tier2"}).ok());
  const auto meta = instance_->stat("doc@snap/archived");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->in_tier("tier2"));
  EXPECT_FALSE(meta->in_tier("tier1"));
  EXPECT_TRUE(meta->has_tag("snapshot"));
}

TEST_F(SnapshotTest, ListSnapshotsSortsNames) {
  ASSERT_TRUE(instance_->put("doc", as_view(make_payload(64, 1))).ok());
  ASSERT_TRUE(instance_->engine_snapshot({"doc"}, "beta").ok());
  ASSERT_TRUE(instance_->engine_snapshot({"doc"}, "alpha").ok());
  const auto names = instance_->list_snapshots("doc");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
  EXPECT_TRUE(instance_->list_snapshots("other").empty());
}

TEST_F(SnapshotTest, NoSnapshotOfSnapshotAndBadNames) {
  ASSERT_TRUE(instance_->put("doc", as_view(make_payload(64, 1))).ok());
  ASSERT_TRUE(instance_->engine_snapshot({"doc"}, "one").ok());
  // Snapshotting the snapshot is a silent no-op.
  ASSERT_TRUE(instance_->engine_snapshot({"doc@snap/one"}, "two").ok());
  EXPECT_FALSE(instance_->contains("doc@snap/one@snap/two"));
  EXPECT_FALSE(instance_->engine_snapshot({"doc"}, "").ok());
  EXPECT_FALSE(instance_->engine_snapshot({"doc"}, "a/b").ok());
}

TEST_F(SnapshotTest, SnapshotResponseViaRuleOnTag) {
  // Policy: snapshot every tagged object into EBS when a delete happens.
  Rule rule;
  rule.event = EventDef::on_action(ActionType::kDelete);
  rule.responses.push_back(std::make_unique<SnapshotResponse>(
      Selector::action_object(), "on-delete",
      std::vector<std::string>{"tier2"}));
  instance_->add_rule(std::move(rule));
  const Bytes payload = make_payload(256, 9);
  ASSERT_TRUE(instance_->put("precious", as_view(payload)).ok());
  ASSERT_TRUE(instance_->remove("precious").ok());
  auto snap = instance_->get("precious@snap/on-delete");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(*snap, payload);
}

TEST_F(SnapshotTest, SnapshotVerbInSpecLanguage) {
  constexpr std::string_view kSpec = R"(
Tiera SnapshottingInstance(time t) {
  tier1: { name: Memcached, size: 8M };
  tier2: { name: EBS, size: 64M };
  event(insert.into) : response {
    store(what: insert.object, to: tier1);
  }
  event(time=t) : response {
    snapshot(what: object.location == tier1, name: "periodic", to: tier2);
  }
}
)";
  auto spec = InstanceSpec::parse(kSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  ZeroLatencyScope scale(1.0);
  auto instance =
      spec->instantiate({.data_dir = dir_.sub("spec")}, {{"t", "50ms"}});
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  ASSERT_TRUE((*instance)->put("obj", as_view(make_payload(64, 1))).ok());
  precise_sleep(from_ms(150));
  (*instance)->control().drain();
  EXPECT_TRUE((*instance)->contains("obj@snap/periodic"));
}

}  // namespace
}  // namespace tiera
