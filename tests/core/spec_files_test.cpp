// Every spec file shipped under examples/specs/ parses, instantiates, and
// serves a basic PUT/GET round trip — the textual twins of the built-in
// templates stay in sync with the language.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/spec_parser.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

std::string specs_dir() {
  // Tests run from the build tree; walk up until examples/specs appears.
  std::filesystem::path probe = std::filesystem::current_path();
  for (int depth = 0; depth < 6; ++depth) {
    if (std::filesystem::exists(probe / "examples" / "specs")) {
      return (probe / "examples" / "specs").string();
    }
    probe = probe.parent_path();
  }
  return {};
}

class SpecFilesTest : public ::testing::TestWithParam<std::string> {
 protected:
  ZeroLatencyScope zero_latency_;
  TempDir dir_;
};

TEST_P(SpecFilesTest, ParsesInstantiatesAndServes) {
  const std::string dir = specs_dir();
  if (dir.empty()) GTEST_SKIP() << "examples/specs not found from cwd";
  const std::string path = dir + "/" + GetParam();
  auto spec = InstanceSpec::parse_file(path);
  ASSERT_TRUE(spec.ok()) << path << ": " << spec.status().to_string();
  EXPECT_GE(spec->tier_count(), 2u);
  EXPECT_GE(spec->rule_count(), 1u);

  std::map<std::string, std::string> args;
  for (const auto& param : spec->parameters()) args[param] = "30s";
  auto instance = spec->instantiate({.data_dir = dir_.sub("inst")}, args);
  ASSERT_TRUE(instance.ok()) << path << ": "
                             << instance.status().to_string();

  const Bytes payload = make_payload(512, 1);
  ASSERT_TRUE((*instance)->put("probe", as_view(payload)).ok()) << path;
  auto got = (*instance)->get("probe");
  ASSERT_TRUE(got.ok()) << path;
  EXPECT_EQ(*got, payload);
  (*instance)->control().drain();
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SpecFilesTest,
                         ::testing::Values("low_latency.tiera",
                                           "persistent.tiera",
                                           "growing.tiera",
                                           "lru_cache.tiera",
                                           "prefetching.tiera",
                                           "resilient.tiera",
                                           "slo_autoscale.tiera",
                                           "snapshotting.tiera"));

TEST(SpecFilesSmokeTest, DirectoryHasAllShippedSpecs) {
  const std::string dir = specs_dir();
  if (dir.empty()) GTEST_SKIP() << "examples/specs not found from cwd";
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".tiera") ++count;
  }
  EXPECT_GE(count, 4u);
}

}  // namespace
}  // namespace tiera
