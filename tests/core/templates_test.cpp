// The paper's named instances, built from templates, behave as specified.
#include "core/templates.h"

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class TemplatesTest : public ::testing::Test {
 protected:
  TemplateOptions opts(const std::string& name) {
    TemplateOptions o;
    o.data_dir = dir_.sub(name);
    return o;
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
};

TEST_F(TemplatesTest, LowLatencyWriteBackPersistsOnTimer) {
  ZeroLatencyScope scale(1.0);
  auto instance = make_low_latency_instance(opts("ll"), 1 << 20, 1 << 20,
                                            from_ms(40));
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->put("k", as_view(make_payload(64, 1))).ok());
  EXPECT_TRUE((*instance)->stat("k")->in_tier("tier1"));
  EXPECT_FALSE((*instance)->stat("k")->in_tier("tier2"));
  EXPECT_TRUE((*instance)->stat("k")->dirty);
  precise_sleep(from_ms(150));
  (*instance)->control().drain();
  EXPECT_TRUE((*instance)->stat("k")->in_tier("tier2"));
  EXPECT_FALSE((*instance)->stat("k")->dirty);
}

TEST_F(TemplatesTest, LowLatencyZeroPeriodIsWriteThrough) {
  auto instance =
      make_low_latency_instance(opts("wt"), 1 << 20, 1 << 20, Duration::zero());
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->put("k", as_view(make_payload(64, 1))).ok());
  EXPECT_TRUE((*instance)->stat("k")->in_tier("tier2"));  // synchronous
}

TEST_F(TemplatesTest, PersistentInstanceWriteThroughAndBackup) {
  auto instance =
      make_persistent_instance(opts("persist"), 1 << 20, 100 << 10, 8 << 20);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->put("k", as_view(make_payload(64, 1))).ok());
  const auto meta = (*instance)->stat("k");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->in_tier("tier1"));
  EXPECT_TRUE(meta->in_tier("tier2"));  // write-through copy
  EXPECT_FALSE(meta->dirty);

  // Fill EBS past 50%: backup-to-S3 threshold response kicks in.
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE((*instance)
                    ->put("fill" + std::to_string(i),
                          as_view(make_payload(6 << 10, i)))
                    .ok());
  }
  (*instance)->control().drain();
  EXPECT_GT((*instance)->tier("tier3")->object_count(), 0u);
}

TEST_F(TemplatesTest, MemcachedReplicatedWritesBothAZs) {
  auto instance = make_memcached_replicated_instance(opts("repl"), 1 << 20);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->put("k", as_view(make_payload(64, 1))).ok());
  const auto meta = (*instance)->stat("k");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->in_tier("tier1"));
  EXPECT_TRUE(meta->in_tier("tier2"));
  // Both replicas volatile: object stays dirty.
  EXPECT_TRUE(meta->dirty);
  EXPECT_TRUE((*instance)->get("k").ok());
}

TEST_F(TemplatesTest, MemcachedEbsWritesThrough) {
  auto instance = make_memcached_ebs_instance(opts("mebs"), 1 << 20, 1 << 20);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->put("k", as_view(make_payload(64, 1))).ok());
  EXPECT_TRUE((*instance)->stat("k")->in_tier("tier1"));
  EXPECT_TRUE((*instance)->stat("k")->in_tier("tier2"));
  EXPECT_FALSE((*instance)->stat("k")->dirty);
}

TEST_F(TemplatesTest, MemcachedS3EvictsLruToS3AndPromotes) {
  // Cache holds ~4 of the 4 KB objects.
  auto instance =
      make_memcached_s3_instance(opts("ms3"), 16 << 10, 64 << 20);
  ASSERT_TRUE(instance.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*instance)
                    ->put("o" + std::to_string(i),
                          as_view(make_payload(4 << 10, i)))
                    .ok())
        << i;
  }
  (*instance)->control().drain();
  // All objects are durable in S3 and readable.
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE((*instance)->get("o" + std::to_string(i)).ok()) << i;
  }
  (*instance)->control().drain();
  // The memcached tier never exceeds its capacity.
  EXPECT_LE((*instance)->tier("tier1")->used(),
            (*instance)->tier("tier1")->capacity());
  EXPECT_GT((*instance)->tier("tier2")->object_count(), 0u);
}

TEST_F(TemplatesTest, MemcachedS3DedupStoresUniqueContentOnce) {
  auto instance =
      make_memcached_s3_instance(opts("dedup"), 64 << 10, 64 << 20,
                                 /*dedup=*/true);
  ASSERT_TRUE(instance.ok());
  const Bytes shared = make_payload(4 << 10, 777);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        (*instance)->put("dup" + std::to_string(i), as_view(shared)).ok());
  }
  (*instance)->control().drain();
  // One content blob serves all eight objects.
  EXPECT_EQ((*instance)->tier("tier2")->object_count(), 1u);
  for (int i = 0; i < 8; ++i) {
    auto got = (*instance)->get("dup" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, shared);
  }
}

TEST_F(TemplatesTest, TieredLruDemotesDownTheChain) {
  // Dataset 100 x 4 KB = 400 KB; 50% mem, 30% ebs, 20% s3 (Table 2 TI:1).
  auto instance =
      make_tiered_lru_instance(opts("ti1"), 400 << 10, 0.5, 0.3, 0.2);
  ASSERT_TRUE(instance.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*instance)
                    ->put("k" + std::to_string(i),
                          as_view(make_payload(4 << 10, i)))
                    .ok())
        << i;
  }
  (*instance)->control().drain();
  // Exclusive placement: every object lives in exactly one tier.
  std::size_t total = 0;
  for (const auto& tier : (*instance)->tiers()) {
    total += tier->object_count();
    EXPECT_LE(tier->used(), tier->capacity());
  }
  EXPECT_EQ(total, 100u);
  // All three tiers are populated and all objects readable.
  EXPECT_GT((*instance)->tier("tier1")->object_count(), 0u);
  EXPECT_GT((*instance)->tier("tier2")->object_count(), 0u);
  EXPECT_GT((*instance)->tier("tier3")->object_count(), 0u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE((*instance)->get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(TemplatesTest, HighDurabilityBacksUpImmediately) {
  auto instance = make_high_durability_instance(opts("hd"), 1 << 20,
                                                std::chrono::minutes(2));
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->put("k", as_view(make_payload(64, 1))).ok());
  const auto meta = (*instance)->stat("k");
  EXPECT_TRUE(meta->in_tier("tier1"));
  EXPECT_TRUE(meta->in_tier("tier2"));  // synchronous EBS backup
  EXPECT_FALSE(meta->dirty);
}

TEST_F(TemplatesTest, LowDurabilityDefersBackup) {
  ZeroLatencyScope scale(1.0);
  auto instance =
      make_low_durability_instance(opts("ld"), 1 << 20, 8 << 20, from_ms(50));
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->put("k", as_view(make_payload(64, 1))).ok());
  EXPECT_FALSE((*instance)->stat("k")->in_tier("tier2"));  // memcached only
  EXPECT_TRUE((*instance)->stat("k")->dirty);
  precise_sleep(from_ms(160));
  (*instance)->control().drain();
  EXPECT_TRUE((*instance)->stat("k")->in_tier("tier2"));
}

TEST_F(TemplatesTest, ReplicatedEbsCopiesAfterNewDataThreshold) {
  auto instance = make_replicated_ebs_instance(
      opts("rebs"), 8 << 20, /*replicate=*/true,
      /*bytes_between_syncs=*/64 << 10, /*bandwidth_bps=*/0);
  ASSERT_TRUE(instance.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*instance)
                    ->put("w" + std::to_string(i),
                          as_view(make_payload(4 << 10, i)))
                    .ok());
  }
  (*instance)->control().drain();
  // 160 KB written with a 64 KB sliding threshold: at least two syncs.
  EXPECT_GT((*instance)->tier("tier2")->object_count(), 0u);
}

TEST_F(TemplatesTest, ReplicatedEbsBaselineNeverCopies) {
  auto instance = make_replicated_ebs_instance(
      opts("rebs0"), 8 << 20, /*replicate=*/false, 64 << 10, 0);
  ASSERT_TRUE(instance.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*instance)
                    ->put("w" + std::to_string(i),
                          as_view(make_payload(4 << 10, i)))
                    .ok());
  }
  (*instance)->control().drain();
  EXPECT_EQ((*instance)->tier("tier2")->object_count(), 0u);
}

TEST_F(TemplatesTest, GrowingInstanceExpandsAt75Percent) {
  auto instance = make_growing_instance(opts("grow"), 64 << 10, 8 << 20,
                                        std::chrono::seconds(10),
                                        Duration::zero(), 0.0);
  ASSERT_TRUE(instance.ok());
  const auto initial_cap = (*instance)->tier("tier1")->capacity();
  for (int i = 0; i < 13; ++i) {  // 52 KB of 64 KB = 81% > 75%
    ASSERT_TRUE((*instance)
                    ->put("g" + std::to_string(i),
                          as_view(make_payload(4 << 10, i)))
                    .ok());
  }
  (*instance)->control().drain();
  EXPECT_EQ((*instance)->tier("tier1")->capacity(), initial_cap * 2);
}

TEST_F(TemplatesTest, FailoverReconfigurationRestoresService) {
  // Fig. 17's flow, compressed: write-through Memcached+EBS; EBS times out;
  // the monitor detects it and swaps in Ephemeral+S3.
  auto instance = make_memcached_ebs_instance(opts("fo"), 1 << 20, 8 << 20);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE((*instance)->put("pre", as_view(make_payload(64, 1))).ok());

  (*instance)->tier("tier2")->inject_failure(FailureMode::kTimeout,
                                             from_ms(1));
  EXPECT_FALSE((*instance)->put("during", as_view(make_payload(64, 2))).ok());

  StorageMonitor::Options mopts;
  mopts.probe_period = from_ms(50);
  mopts.max_retries = 2;
  StorageMonitor monitor(**instance, mopts, [&](TieraInstance& inst) {
    ASSERT_TRUE(reconfigure_for_ebs_failure(inst, 8 << 20, 64 << 20,
                                            std::chrono::seconds(1))
                    .ok());
  });
  EXPECT_FALSE(monitor.probe());  // detects and reconfigures
  EXPECT_EQ(monitor.failures_detected(), 1);

  // Service restored on the new tiers.
  ASSERT_TRUE((*instance)->put("post", as_view(make_payload(64, 3))).ok());
  const auto meta = (*instance)->stat("post");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->in_tier("tier1"));
  EXPECT_TRUE(meta->in_tier("tier3"));  // ephemeral
  EXPECT_EQ((*instance)->tier("tier2"), nullptr);
  // Old data in the surviving Memcached tier remains readable.
  EXPECT_TRUE((*instance)->get("pre").ok());
}

TEST_F(TemplatesTest, MonitorRecoveryRearmsDetection) {
  auto instance = make_memcached_ebs_instance(opts("mon"), 1 << 20, 8 << 20);
  ASSERT_TRUE(instance.ok());
  int reconfigs = 0;
  StorageMonitor::Options mopts;
  mopts.max_retries = 1;
  StorageMonitor monitor(**instance, mopts,
                         [&](TieraInstance&) { ++reconfigs; });
  EXPECT_TRUE(monitor.probe());
  (*instance)->tier("tier2")->inject_failure(FailureMode::kFailStop);
  EXPECT_FALSE(monitor.probe());
  EXPECT_FALSE(monitor.probe());  // latched: no duplicate reconfig
  EXPECT_EQ(reconfigs, 1);
  (*instance)->tier("tier2")->heal();
  EXPECT_TRUE(monitor.probe());
  (*instance)->tier("tier2")->inject_failure(FailureMode::kFailStop);
  EXPECT_FALSE(monitor.probe());
  EXPECT_EQ(reconfigs, 2);  // re-armed after recovery
}

}  // namespace
}  // namespace tiera
