// End-to-end resilience: a write-back instance rides out a block-tier
// outage with zero client-visible errors while the tier's circuit breaker
// opens, fires the Fig. 17-style failover rule through the control layer,
// and heals back through a half-open probe once the tier recovers.
#include <gtest/gtest.h>

#include <thread>

#include "core/spec_parser.h"
#include "obs/metrics.h"
#include "store/resilient_tier.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

constexpr std::string_view kSpec = R"(
% Low-latency write-back instance with a resilient block tier: the breaker
% signal drives a failover rule (grow the memory tier) when EBS goes dark.
Tiera ResilienceDemo(time t) {
  tier1: { name: Memcached, size: 64M };
  tier2: { name: EBS, size: 256M, retries: 1, breaker: 3 };

  event(insert.into) : response {
    insert.object.dirty = true;
    store(what: insert.object, to: tier1);
  }

  background event(time=t) : response {
    copy(what: object.location == tier1 && object.dirty == true, to: tier2);
  }

  background event(tier2.breaker == open) : response {
    grow(what: tier1, increment: 100%);
  }
}
)";

bool wait_until(const std::function<bool()>& pred,
                Duration timeout = std::chrono::seconds(10)) {
  const TimePoint deadline = now() + timeout;
  while (now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(from_ms(10));
  }
  return pred();
}

TEST(ResilienceIntegrationTest, BlockTierOutageHealsWithoutClientErrors) {
  ZeroLatencyScope zero;
  TempDir dir;

  auto spec = InstanceSpec::parse(kSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  auto instance =
      spec->instantiate({.data_dir = dir.sub("inst")}, {{"t", "60ms"}});
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();

  const TierPtr block = (*instance)->tier("tier2");
  ASSERT_NE(block, nullptr);
  auto* resilient = dynamic_cast<ResilientTier*>(block.get());
  ASSERT_NE(resilient, nullptr) << "spec knobs should wrap the block tier";
  const std::uint64_t mem_capacity_before =
      (*instance)->tier("tier1")->capacity();

  // Phase 1 (healthy): client writes land in tier1 and the write-back timer
  // copies them to tier2.
  const Bytes payload = make_payload(2048, 1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        (*instance)->put("warm" + std::to_string(i), as_view(payload)).ok());
  }
  ASSERT_TRUE(wait_until([&] { return block->object_count() >= 4; }))
      << "write-back copy never reached the block tier";
  EXPECT_EQ(block->breaker_state(), BreakerState::kClosed);

  // Phase 2 (outage): the block tier times out. Background write-back copies
  // fail and trip the breaker; client PUT/GET must not see a single error.
  block->inject_failure(FailureMode::kTimeout, from_ms(5));
  int client_errors = 0;
  int round = 0;
  const bool opened = wait_until([&] {
    const std::string id = "outage" + std::to_string(round++);
    if (!(*instance)->put(id, as_view(payload)).ok()) ++client_errors;
    if (!(*instance)->get(id).ok()) ++client_errors;
    return block->breaker_state() == BreakerState::kOpen;
  });
  EXPECT_TRUE(opened) << "breaker never opened during the outage";
  EXPECT_EQ(client_errors, 0);
  EXPECT_GT(round, 0);

  // The breaker gauge mirrors the state machine...
  EXPECT_EQ(MetricsRegistry::global()
                .gauge("tiera_tier_breaker_state", {{"tier", "tier2"}})
                .value(),
            2.0);
  // ...and the breaker-state threshold event fired the failover rule.
  EXPECT_TRUE(wait_until([&] {
    return (*instance)->tier("tier1")->capacity() > mem_capacity_before;
  })) << "failover rule (grow tier1) did not fire from the breaker signal";
  bool rule_seen = false;
  for (const auto& activity : (*instance)->control().rule_activity()) {
    if (activity.event.find("breaker == open") != std::string::npos) {
      rule_seen = true;
      EXPECT_GE(activity.fires, 1u);
    }
  }
  EXPECT_TRUE(rule_seen);

  // Phase 3 (recovery): heal the tier; after the cool-down a half-open probe
  // succeeds and write-back traffic closes the breaker again.
  block->heal();
  const bool closed = wait_until([&] {
    const std::string id = "heal" + std::to_string(round++);
    if (!(*instance)->put(id, as_view(payload)).ok()) ++client_errors;
    return block->breaker_state() == BreakerState::kClosed;
  });
  EXPECT_TRUE(closed) << "breaker never closed after the tier healed";
  EXPECT_EQ(client_errors, 0);
  EXPECT_EQ(MetricsRegistry::global()
                .gauge("tiera_tier_breaker_state", {{"tier", "tier2"}})
                .value(),
            0.0);

  // With the breaker closed the write-back pipeline is live again: an
  // object written during the outage makes it to the block tier.
  ASSERT_TRUE(wait_until([&] { return block->contains("outage0"); }))
      << "write-back did not resume after recovery";

  (*instance)->control().drain();
}

}  // namespace
}  // namespace tiera
