// Control-layer semantics: action events (foreground/background, tier and
// tag filters), timer events, threshold events (edge-triggered re-arming and
// sliding thresholds), and dynamic rule replacement.
#include "core/control.h"

#include <gtest/gtest.h>

#include <atomic>

#include "core/instance.h"
#include "core/responses.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class ControlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceConfig config;
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 1 << 20},
                    {"EBS", "tier2", 1 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    instance_ = std::move(instance).value();
  }

  Rule counting_rule(EventDef event, std::atomic<int>& counter) {
    Rule rule;
    rule.event = std::move(event);
    rule.responses.push_back(std::make_unique<CallbackResponse>(
        "count", [&counter](EventContext&) {
          counter.fetch_add(1);
          return Status::Ok();
        }));
    return rule;
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
  InstancePtr instance_;
};

TEST_F(ControlTest, InsertEventFiresOnPut) {
  std::atomic<int> fired{0};
  instance_->add_rule(counting_rule(EventDef::on_insert(), fired));
  ASSERT_TRUE(instance_->put("a", as_view(make_payload(10, 1))).ok());
  EXPECT_EQ(fired.load(), 1);
  ASSERT_TRUE(instance_->put("b", as_view(make_payload(10, 2))).ok());
  EXPECT_EQ(fired.load(), 2);
}

TEST_F(ControlTest, TierFilteredInsertEventFiresAfterPlacement) {
  std::atomic<int> tier1_fired{0};
  std::atomic<int> tier2_fired{0};
  instance_->add_rule(counting_rule(EventDef::on_insert("tier1"), tier1_fired));
  instance_->add_rule(counting_rule(EventDef::on_insert("tier2"), tier2_fired));
  ASSERT_TRUE(instance_->put("a", as_view(make_payload(10, 1))).ok());
  EXPECT_EQ(tier1_fired.load(), 1);  // default placement goes to tier1
  EXPECT_EQ(tier2_fired.load(), 0);
}

TEST_F(ControlTest, GetEventCarriesServingTier) {
  std::atomic<int> fired{0};
  std::string served;
  Rule rule;
  rule.event = EventDef::on_action(ActionType::kGet, "tier1");
  rule.responses.push_back(std::make_unique<CallbackResponse>(
      "capture", [&](EventContext& ctx) {
        fired.fetch_add(1);
        served = ctx.action_tier;
        return Status::Ok();
      }));
  instance_->add_rule(std::move(rule));
  ASSERT_TRUE(instance_->put("a", as_view(make_payload(10, 1))).ok());
  ASSERT_TRUE(instance_->get("a").ok());
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(served, "tier1");
}

TEST_F(ControlTest, DeleteEventFiresBeforeRemoval) {
  std::atomic<bool> object_present_at_event{false};
  Rule rule;
  rule.event = EventDef::on_action(ActionType::kDelete);
  rule.responses.push_back(std::make_unique<CallbackResponse>(
      "check", [&](EventContext& ctx) {
        object_present_at_event = ctx.instance->contains(ctx.object_id);
        return Status::Ok();
      }));
  instance_->add_rule(std::move(rule));
  ASSERT_TRUE(instance_->put("a", as_view(make_payload(10, 1))).ok());
  ASSERT_TRUE(instance_->remove("a").ok());
  EXPECT_TRUE(object_present_at_event.load());
}

TEST_F(ControlTest, TagFilteredEventsSelectObjectClass) {
  std::atomic<int> tmp_fired{0};
  Rule rule;
  rule.event = EventDef::on_insert("", "tmp");
  rule.responses.push_back(std::make_unique<CallbackResponse>(
      "count", [&](EventContext&) {
        tmp_fired.fetch_add(1);
        return Status::Ok();
      }));
  instance_->add_rule(std::move(rule));
  ASSERT_TRUE(instance_->put("t", as_view(make_payload(10, 1)), {"tmp"}).ok());
  ASSERT_TRUE(instance_->put("p", as_view(make_payload(10, 2))).ok());
  EXPECT_EQ(tmp_fired.load(), 1);
}

TEST_F(ControlTest, TagPolicyRoutesObjectClassToCheapTier) {
  // The paper's example: objects tagged "tmp" go to inexpensive volatile
  // storage. Placement rule for tmp runs plus a store for everything else.
  Rule tmp_rule;
  tmp_rule.event = EventDef::on_insert("", "tmp");
  tmp_rule.responses.push_back(
      make_store(Selector::action_object(), {"tier1"}));
  instance_->add_rule(std::move(tmp_rule));
  Rule default_rule;
  default_rule.event = EventDef::on_insert("", "durable");
  default_rule.responses.push_back(
      make_store(Selector::action_object(), {"tier2"}));
  instance_->add_rule(std::move(default_rule));

  ASSERT_TRUE(instance_->put("a", as_view(make_payload(8, 1)), {"tmp"}).ok());
  ASSERT_TRUE(
      instance_->put("b", as_view(make_payload(8, 2)), {"durable"}).ok());
  EXPECT_TRUE(instance_->stat("a")->in_tier("tier1"));
  EXPECT_FALSE(instance_->stat("a")->in_tier("tier2"));
  EXPECT_TRUE(instance_->stat("b")->in_tier("tier2"));
}

TEST_F(ControlTest, BackgroundActionEventRunsOffRequestPath) {
  std::atomic<int> fired{0};
  Rule rule = counting_rule(EventDef::on_insert().in_background(), fired);
  instance_->add_rule(std::move(rule));
  ASSERT_TRUE(instance_->put("a", as_view(make_payload(10, 1))).ok());
  instance_->control().drain();
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(ControlTest, TimerEventFiresRepeatedly) {
  ZeroLatencyScope scale(1.0);
  std::atomic<int> fired{0};
  instance_->add_rule(
      counting_rule(EventDef::on_timer(from_ms(30)), fired));
  // ~200ms: expect several firings.
  precise_sleep(from_ms(220));
  instance_->control().drain();
  EXPECT_GE(fired.load(), 3);
  EXPECT_LE(fired.load(), 10);
}

TEST_F(ControlTest, TimerDrivenWriteBackCopiesDirtyData) {
  ZeroLatencyScope scale(1.0);
  Rule writeback;
  writeback.event = EventDef::on_timer(from_ms(40));
  writeback.responses.push_back(
      make_copy(Selector::in_tier("tier1", true), {"tier2"}));
  instance_->add_rule(std::move(writeback));
  ASSERT_TRUE(instance_->put("wb", as_view(make_payload(10, 1))).ok());
  EXPECT_TRUE(instance_->stat("wb")->dirty);
  precise_sleep(from_ms(150));
  instance_->control().drain();
  const auto meta = instance_->stat("wb");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->in_tier("tier2"));
  EXPECT_FALSE(meta->dirty);
}

TEST_F(ControlTest, ThresholdEventFiresOnCrossing) {
  std::atomic<int> fired{0};
  instance_->add_rule(counting_rule(
      EventDef::on_threshold("tier1", TierAttribute::kFillFraction, 0.5),
      fired));
  // ~30% full: no fire.
  ASSERT_TRUE(
      instance_->put("a", as_view(make_payload(300'000, 1))).ok());
  EXPECT_EQ(fired.load(), 0);
  // Cross 50%.
  ASSERT_TRUE(
      instance_->put("b", as_view(make_payload(300'000, 2))).ok());
  EXPECT_EQ(fired.load(), 1);
  // Still above: edge-triggered, no refire.
  ASSERT_TRUE(instance_->put("c", as_view(make_payload(10'000, 3))).ok());
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(ControlTest, ThresholdRearmsAfterFallingBelow) {
  std::atomic<int> fired{0};
  instance_->add_rule(counting_rule(
      EventDef::on_threshold("tier1", TierAttribute::kFillFraction, 0.5),
      fired));
  ASSERT_TRUE(
      instance_->put("a", as_view(make_payload(600'000, 1))).ok());
  EXPECT_EQ(fired.load(), 1);
  ASSERT_TRUE(instance_->remove("a").ok());  // below threshold: re-arm
  ASSERT_TRUE(
      instance_->put("b", as_view(make_payload(600'000, 2))).ok());
  EXPECT_EQ(fired.load(), 2);
}

TEST_F(ControlTest, SlidingThresholdFiresPerStep) {
  std::atomic<int> fired{0};
  instance_->add_rule(counting_rule(
      EventDef::on_threshold("tier1", TierAttribute::kUsedBytes, 100'000,
                             /*sliding=*/true),
      fired));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(instance_->put("s" + std::to_string(i),
                               as_view(make_payload(50'000, i)))
                    .ok());
  }
  // 500 KB written in 50 KB steps with a 100 KB sliding threshold: ~5 fires.
  EXPECT_GE(fired.load(), 4);
  EXPECT_LE(fired.load(), 6);
}

TEST_F(ControlTest, ObjectCountThreshold) {
  std::atomic<int> fired{0};
  instance_->add_rule(counting_rule(
      EventDef::on_threshold("tier1", TierAttribute::kObjectCount, 3), fired));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(instance_->put("o" + std::to_string(i),
                               as_view(make_payload(10, i)))
                    .ok());
  }
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(ControlTest, RemoveRuleStopsFiring) {
  std::atomic<int> fired{0};
  const std::uint64_t id =
      instance_->add_rule(counting_rule(EventDef::on_insert(), fired));
  ASSERT_TRUE(instance_->put("a", as_view(make_payload(10, 1))).ok());
  ASSERT_TRUE(instance_->remove_rule(id).ok());
  ASSERT_TRUE(instance_->put("b", as_view(make_payload(10, 2))).ok());
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(instance_->remove_rule(id).is_not_found());
}

TEST_F(ControlTest, ClearRulesKeepsServingWithDefaultPlacement) {
  std::atomic<int> fired{0};
  instance_->add_rule(counting_rule(EventDef::on_insert(), fired));
  instance_->clear_rules();
  EXPECT_EQ(instance_->control().rule_count(), 0u);
  ASSERT_TRUE(instance_->put("a", as_view(make_payload(10, 1))).ok());
  EXPECT_EQ(fired.load(), 0);
  EXPECT_TRUE(instance_->get("a").ok());
}

TEST_F(ControlTest, DynamicPolicyReplacementWhileServing) {
  // Start with placement into tier1; swap to tier2 mid-stream.
  Rule to_tier1;
  to_tier1.event = EventDef::on_insert();
  to_tier1.responses.push_back(
      make_store(Selector::action_object(), {"tier1"}));
  const std::uint64_t rule1 = instance_->add_rule(std::move(to_tier1));
  ASSERT_TRUE(instance_->put("early", as_view(make_payload(10, 1))).ok());

  ASSERT_TRUE(instance_->remove_rule(rule1).ok());
  Rule to_tier2;
  to_tier2.event = EventDef::on_insert();
  to_tier2.responses.push_back(
      make_store(Selector::action_object(), {"tier2"}));
  instance_->add_rule(std::move(to_tier2));
  ASSERT_TRUE(instance_->put("late", as_view(make_payload(10, 2))).ok());

  EXPECT_TRUE(instance_->stat("early")->in_tier("tier1"));
  EXPECT_TRUE(instance_->stat("late")->in_tier("tier2"));
  EXPECT_FALSE(instance_->stat("late")->in_tier("tier1"));
}

TEST_F(ControlTest, EventsFiredCounter) {
  std::atomic<int> fired{0};
  instance_->add_rule(counting_rule(EventDef::on_insert(), fired));
  const auto before = instance_->control().events_fired();
  ASSERT_TRUE(instance_->put("a", as_view(make_payload(10, 1))).ok());
  EXPECT_GT(instance_->control().events_fired(), before);
}

TEST_F(ControlTest, FailingResponseCounted) {
  Rule rule;
  rule.event = EventDef::on_insert();
  rule.responses.push_back(std::make_unique<CallbackResponse>(
      "fail", [](EventContext&) { return Status::Internal("boom"); }));
  // Add a placement rule too so the put itself succeeds.
  rule.responses.push_back(make_store(Selector::action_object(), {"tier1"}));
  instance_->add_rule(std::move(rule));
  ASSERT_TRUE(instance_->put("a", as_view(make_payload(10, 1))).ok());
  EXPECT_EQ(instance_->control().responses_failed(), 1u);
}

}  // namespace
}  // namespace tiera
