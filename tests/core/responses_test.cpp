// Exercises every response in Table 1 of the paper through the policy
// engine: store, storeOnce, retrieve, copy (with bandwidth cap), move,
// delete, encrypt/decrypt, compress/uncompress, grow/shrink.
#include "core/responses.h"

#include <gtest/gtest.h>

#include "core/instance.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class ResponsesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceConfig config;
    config.data_dir = dir_.sub("inst");
    config.tiers = {{"Memcached", "tier1", 1 << 20},
                    {"EBS", "tier2", 1 << 20},
                    {"S3", "tier3", 8 << 20}};
    auto instance = TieraInstance::create(std::move(config));
    ASSERT_TRUE(instance.ok());
    instance_ = std::move(instance).value();
  }

  // Run a response directly against a synthetic event context.
  Status run(Response& response, const std::string& object_id = "",
             std::shared_ptr<const Bytes> payload = nullptr) {
    EventContext ctx;
    ctx.instance = instance_.get();
    ctx.object_id = object_id;
    ctx.payload = std::move(payload);
    return response.execute(ctx);
  }

  Status put(const std::string& id, std::size_t size, std::uint64_t seed) {
    return instance_->put(id, as_view(make_payload(size, seed)));
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
  InstancePtr instance_;
};

TEST_F(ResponsesTest, StorePlacesActionObject) {
  auto payload = std::make_shared<const Bytes>(make_payload(64, 1));
  StoreResponse store(Selector::action_object(), {"tier2"});
  ASSERT_TRUE(run(store, "fresh", payload).ok());
  const auto meta = instance_->stat("fresh");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->in_tier("tier2"));
  EXPECT_FALSE(meta->dirty);  // EBS is durable
}

TEST_F(ResponsesTest, StoreToMultipleTiers) {
  auto payload = std::make_shared<const Bytes>(make_payload(64, 2));
  StoreResponse store(Selector::action_object(), {"tier1", "tier2"});
  ASSERT_TRUE(run(store, "replicated", payload).ok());
  const auto meta = instance_->stat("replicated");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->in_tier("tier1"));
  EXPECT_TRUE(meta->in_tier("tier2"));
}

TEST_F(ResponsesTest, StoreOnceDeduplicates) {
  const Bytes content = make_payload(512, 7);
  auto p1 = std::make_shared<const Bytes>(content);
  auto p2 = std::make_shared<const Bytes>(content);
  StoreResponse store(Selector::action_object(), {"tier3"}, /*once=*/true);
  ASSERT_TRUE(run(store, "dup-a", p1).ok());
  const auto puts_after_first = instance_->tier("tier3")->stats().puts.load();
  ASSERT_TRUE(run(store, "dup-b", p2).ok());
  // Second object with identical content: no extra billable S3 request.
  EXPECT_EQ(instance_->tier("tier3")->stats().puts.load(), puts_after_first);
  EXPECT_EQ(instance_->tier("tier3")->object_count(), 1u);
  // Both objects readable.
  EXPECT_TRUE(instance_->get("dup-a").ok());
  EXPECT_TRUE(instance_->get("dup-b").ok());
  // Distinct content still stored separately.
  auto p3 = std::make_shared<const Bytes>(make_payload(512, 8));
  ASSERT_TRUE(run(store, "uniq", p3).ok());
  EXPECT_EQ(instance_->tier("tier3")->object_count(), 2u);
}

TEST_F(ResponsesTest, StoreOnceDeleteKeepsSharedBytesUntilLastRef) {
  const Bytes content = make_payload(256, 9);
  StoreResponse store(Selector::action_object(), {"tier3"}, /*once=*/true);
  ASSERT_TRUE(
      run(store, "s1", std::make_shared<const Bytes>(content)).ok());
  ASSERT_TRUE(
      run(store, "s2", std::make_shared<const Bytes>(content)).ok());
  ASSERT_TRUE(instance_->remove("s1").ok());
  EXPECT_TRUE(instance_->get("s2").ok());  // bytes still there
  ASSERT_TRUE(instance_->remove("s2").ok());
  EXPECT_EQ(instance_->tier("tier3")->object_count(), 0u);
}

TEST_F(ResponsesTest, CopyReplicates) {
  ASSERT_TRUE(put("obj", 128, 1).ok());
  CopyResponse copy(Selector::in_tier("tier1"), {"tier2"});
  ASSERT_TRUE(run(copy).ok());
  const auto meta = instance_->stat("obj");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->in_tier("tier1"));
  EXPECT_TRUE(meta->in_tier("tier2"));
}

TEST_F(ResponsesTest, CopyHonoursDirtyFilter) {
  ASSERT_TRUE(put("dirty-one", 64, 1).ok());
  ASSERT_TRUE(put("clean-one", 64, 2).ok());
  ASSERT_TRUE(instance_->engine_set_dirty({"clean-one"}, false).ok());
  CopyResponse copy(Selector::in_tier("tier1", /*dirty=*/true), {"tier2"});
  ASSERT_TRUE(run(copy).ok());
  EXPECT_TRUE(instance_->stat("dirty-one")->in_tier("tier2"));
  EXPECT_FALSE(instance_->stat("clean-one")->in_tier("tier2"));
  // After the durable copy the object is clean: a second run copies nothing.
  EXPECT_FALSE(instance_->stat("dirty-one")->dirty);
}

TEST_F(ResponsesTest, CopyWithBandwidthCapThrottles) {
  ZeroLatencyScope scale(1.0);
  // 600 KB across multiple objects against a 1 MB/s cap with a 250 KB
  // burst bucket: at least ~350 ms of throttling.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(put("big" + std::to_string(i), 100'000, i).ok());
  }
  CopyResponse copy(Selector::in_tier("tier1"), {"tier2"}, 1'000'000);
  Stopwatch watch;
  ASSERT_TRUE(run(copy).ok());
  EXPECT_GE(watch.elapsed_ms(), 150.0);
}

TEST_F(ResponsesTest, MoveRemovesFromSource) {
  ASSERT_TRUE(put("obj", 128, 1).ok());
  MoveResponse move(Selector::in_tier("tier1"), {"tier2"});
  ASSERT_TRUE(run(move).ok());
  const auto meta = instance_->stat("obj");
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->in_tier("tier1"));
  EXPECT_TRUE(meta->in_tier("tier2"));
  EXPECT_EQ(instance_->tier("tier1")->object_count(), 0u);
  EXPECT_TRUE(instance_->get("obj").ok());
}

TEST_F(ResponsesTest, MoveOldestImplementsLru) {
  ASSERT_TRUE(put("old", 64, 1).ok());
  ASSERT_TRUE(put("mid", 64, 2).ok());
  ASSERT_TRUE(put("new", 64, 3).ok());
  ASSERT_TRUE(instance_->get("old").ok());  // refresh "old": now "mid" is LRU
  MoveResponse move(Selector::oldest_in("tier1"), {"tier2"});
  ASSERT_TRUE(run(move).ok());
  EXPECT_TRUE(instance_->stat("mid")->in_tier("tier2"));
  EXPECT_TRUE(instance_->stat("old")->in_tier("tier1"));
  EXPECT_TRUE(instance_->stat("new")->in_tier("tier1"));
}

TEST_F(ResponsesTest, MoveNewestImplementsMru) {
  ASSERT_TRUE(put("first", 64, 1).ok());
  ASSERT_TRUE(put("second", 64, 2).ok());
  MoveResponse move(Selector::newest_in("tier1"), {"tier2"});
  ASSERT_TRUE(run(move).ok());
  EXPECT_TRUE(instance_->stat("second")->in_tier("tier2"));
  EXPECT_TRUE(instance_->stat("first")->in_tier("tier1"));
}

TEST_F(ResponsesTest, DeleteFromSpecificTier) {
  ASSERT_TRUE(put("obj", 64, 1).ok());
  ASSERT_TRUE(
      instance_->engine_copy({"obj"}, {"tier2"}, nullptr, nullptr).ok());
  DeleteResponse del(Selector::by_id("obj"), {"tier1"});
  ASSERT_TRUE(run(del).ok());
  const auto meta = instance_->stat("obj");
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->in_tier("tier1"));
  EXPECT_TRUE(meta->in_tier("tier2"));
}

TEST_F(ResponsesTest, DeleteEverywhereErasesObject) {
  ASSERT_TRUE(put("obj", 64, 1).ok());
  DeleteResponse del(Selector::by_id("obj"));
  ASSERT_TRUE(run(del).ok());
  EXPECT_FALSE(instance_->contains("obj"));
}

TEST_F(ResponsesTest, DeleteByTagTargetsClass) {
  ASSERT_TRUE(instance_->put("t1", as_view(make_payload(10, 1)), {"tmp"}).ok());
  ASSERT_TRUE(instance_->put("t2", as_view(make_payload(10, 2)), {"tmp"}).ok());
  ASSERT_TRUE(instance_->put("keep", as_view(make_payload(10, 3))).ok());
  DeleteResponse del(Selector::with_tag("tmp"));
  ASSERT_TRUE(run(del).ok());
  EXPECT_FALSE(instance_->contains("t1"));
  EXPECT_FALSE(instance_->contains("t2"));
  EXPECT_TRUE(instance_->contains("keep"));
}

TEST_F(ResponsesTest, EncryptDecryptRoundTrip) {
  const Bytes payload = make_payload(1024, 11);
  ASSERT_TRUE(instance_->put("secret", as_view(payload)).ok());
  EncryptResponse encrypt(Selector::by_id("secret"), "passphrase");
  ASSERT_TRUE(run(encrypt).ok());
  EXPECT_TRUE(instance_->stat("secret")->encrypted);
  // Transparent decryption on GET.
  auto got = instance_->get("secret");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  // Raw tier bytes must differ from the plaintext.
  auto raw = instance_->tier("tier1")->get("secret");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(*raw, payload);
  DecryptResponse decrypt(Selector::by_id("secret"), "passphrase");
  ASSERT_TRUE(run(decrypt).ok());
  EXPECT_FALSE(instance_->stat("secret")->encrypted);
  got = instance_->get("secret");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
}

TEST_F(ResponsesTest, DecryptWithWrongKeyFails) {
  ASSERT_TRUE(put("secret", 128, 1).ok());
  EncryptResponse encrypt(Selector::by_id("secret"), "right");
  ASSERT_TRUE(run(encrypt).ok());
  DecryptResponse decrypt(Selector::by_id("secret"), "wrong");
  EXPECT_FALSE(run(decrypt).ok());
  EXPECT_TRUE(instance_->stat("secret")->encrypted);  // unchanged
}

TEST_F(ResponsesTest, CompressUncompressRoundTrip) {
  Bytes redundant;
  for (int i = 0; i < 500; ++i) append(redundant, std::string_view("tiera "));
  ASSERT_TRUE(instance_->put("page", as_view(redundant)).ok());
  const auto before = instance_->tier("tier1")->used();
  CompressResponse compress(Selector::by_id("page"));
  ASSERT_TRUE(run(compress).ok());
  EXPECT_TRUE(instance_->stat("page")->compressed);
  EXPECT_LT(instance_->tier("tier1")->used(), before / 2);
  // Transparent decompression on GET.
  auto got = instance_->get("page");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, redundant);
  UncompressResponse uncompress(Selector::by_id("page"));
  ASSERT_TRUE(run(uncompress).ok());
  EXPECT_FALSE(instance_->stat("page")->compressed);
  EXPECT_EQ(instance_->tier("tier1")->used(), before);
}

TEST_F(ResponsesTest, CompressThenEncryptReadsBack) {
  Bytes redundant;
  for (int i = 0; i < 500; ++i) append(redundant, std::string_view("order "));
  ASSERT_TRUE(instance_->put("both", as_view(redundant)).ok());
  CompressResponse compress(Selector::by_id("both"));
  EncryptResponse encrypt(Selector::by_id("both"), "k");
  ASSERT_TRUE(run(compress).ok());
  ASSERT_TRUE(run(encrypt).ok());
  auto got = instance_->get("both");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, redundant);
  // Wrong order is rejected.
  ASSERT_TRUE(put("wrongorder", 128, 5).ok());
  EncryptResponse enc2(Selector::by_id("wrongorder"), "k");
  ASSERT_TRUE(run(enc2).ok());
  CompressResponse comp2(Selector::by_id("wrongorder"));
  EXPECT_FALSE(run(comp2).ok());
}

TEST_F(ResponsesTest, GrowExpandsTier) {
  GrowResponse grow("tier1", 100.0);
  ASSERT_TRUE(run(grow).ok());
  EXPECT_EQ(instance_->tier("tier1")->capacity(), 2u << 20);
}

TEST_F(ResponsesTest, ShrinkReducesTier) {
  ShrinkResponse shrink("tier1", 50.0);
  ASSERT_TRUE(run(shrink).ok());
  EXPECT_EQ(instance_->tier("tier1")->capacity(), (1u << 20) / 2);
}

TEST_F(ResponsesTest, RetrieveTouchesAccessMetadata) {
  ASSERT_TRUE(put("obj", 64, 1).ok());
  RetrieveResponse retrieve(Selector::by_id("obj"));
  ASSERT_TRUE(run(retrieve).ok());
  EXPECT_EQ(instance_->stat("obj")->access_count, 1u);
}

TEST_F(ResponsesTest, SetDirtyResponseFlagsObjects) {
  ASSERT_TRUE(put("obj", 64, 1).ok());
  SetDirtyResponse clean(Selector::by_id("obj"), false);
  ASSERT_TRUE(run(clean).ok());
  EXPECT_FALSE(instance_->stat("obj")->dirty);
  SetDirtyResponse dirty(Selector::by_id("obj"), true);
  ASSERT_TRUE(run(dirty).ok());
  EXPECT_TRUE(instance_->stat("obj")->dirty);
}

TEST_F(ResponsesTest, ConditionalEvictionMakesRoom) {
  // Shrink tier1 so three 300-byte objects can't coexist with a fourth.
  ASSERT_TRUE(instance_->engine_shrink("tier1", 99.9).ok());
  const auto cap = instance_->tier("tier1")->capacity();
  ASSERT_LT(cap, 1200u);
  ASSERT_GE(cap, 900u);

  Rule rule;
  rule.event = EventDef::on_insert();
  rule.responses.push_back(make_evict_lru("tier1", "tier2"));
  rule.responses.push_back(make_store(Selector::action_object(), {"tier1"}));
  instance_->clear_rules();
  instance_->add_rule(std::move(rule));

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        instance_->put("e" + std::to_string(i), as_view(make_payload(300, i)))
            .ok())
        << i;
  }
  // Every object remains readable; older ones were demoted to tier2.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(instance_->get("e" + std::to_string(i)).ok()) << i;
  }
  EXPECT_GT(instance_->tier("tier2")->object_count(), 0u);
  EXPECT_LE(instance_->tier("tier1")->used(), cap);
}

TEST_F(ResponsesTest, ConditionalStopsWithoutProgress) {
  // Condition permanently true, body makes no mutations: must terminate.
  ResponseList body;
  body.push_back(std::make_unique<CallbackResponse>(
      "noop", [](EventContext&) { return Status::Ok(); }));
  ConditionalResponse cond(Condition::always(), std::move(body));
  EXPECT_TRUE(run(cond).ok());
}

TEST_F(ResponsesTest, DescribeStringsMentionVerbs) {
  EXPECT_NE(StoreResponse(Selector::action_object(), {"tier1"})
                .describe()
                .find("store"),
            std::string::npos);
  EXPECT_NE(
      CopyResponse(Selector::in_tier("tier1"), {"tier2"}, 1000).describe().find(
          "bandwidth"),
      std::string::npos);
  EXPECT_NE(make_evict_lru("a", "b")->describe().find("a.oldest"),
            std::string::npos);
  EXPECT_NE(make_evict_mru("a", "b")->describe().find("a.newest"),
            std::string::npos);
}

}  // namespace
}  // namespace tiera
