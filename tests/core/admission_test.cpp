// AdmissionController: token-bucket edges, the priority ladder, shed-level
// hysteresis, and tenant-map concurrency (this suite runs under the TSan
// gate via tools/check.sh's ^core_ filter).
#include "core/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/spec_parser.h"
#include "obs/metrics.h"

namespace tiera {
namespace {

AdmissionConfig base_config() {
  AdmissionConfig config;
  config.tenant_rate = 0;  // buckets off unless a test turns them on
  return config;
}

TimePoint t0() {
  static const TimePoint t = now();
  return t;
}

TimePoint at(double seconds) {
  return t0() + std::chrono::duration_cast<Duration>(
                    std::chrono::duration<double>(seconds));
}

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override { set_time_scale(1.0); }
};

TEST_F(AdmissionTest, DisabledAdmitsEverything) {
  AdmissionConfig config = base_config();
  config.enabled = false;
  AdmissionController admission(config, MetricsRegistry::global());
  admission.update_signals(100.0, 1.0, at(0));
  EXPECT_TRUE(admission.admit("t", RequestPriority::kBackground, at(0)).ok());
}

TEST_F(AdmissionTest, TokenBucketBurstAndRefillEdges) {
  AdmissionConfig config = base_config();
  config.tenant_rate = 10;     // 10 req/s
  config.tenant_burst_s = 2;   // bucket capacity 20
  AdmissionController admission(config, MetricsRegistry::global());

  // First touch primes a full bucket: exactly `burst` requests pass.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(admission.admit("a", RequestPriority::kGet, at(0)).ok())
        << "request " << i;
  }
  Status dry = admission.admit("a", RequestPriority::kGet, at(0));
  EXPECT_TRUE(dry.is_overloaded()) << dry.to_string();

  // One second of refill buys exactly rate more requests.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(admission.admit("a", RequestPriority::kGet, at(1)).ok());
  }
  EXPECT_TRUE(admission.admit("a", RequestPriority::kGet, at(1))
                  .is_overloaded());

  // A long idle stretch caps at burst, not rate * elapsed.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(admission.admit("a", RequestPriority::kGet, at(100)).ok());
  }
  EXPECT_TRUE(admission.admit("a", RequestPriority::kGet, at(100))
                  .is_overloaded());
}

TEST_F(AdmissionTest, TenantBucketsAreIsolated) {
  AdmissionConfig config = base_config();
  config.tenant_rate = 5;
  config.tenant_burst_s = 1;
  AdmissionController admission(config, MetricsRegistry::global());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(admission.admit("noisy", RequestPriority::kGet, at(0)).ok());
  }
  EXPECT_TRUE(admission.admit("noisy", RequestPriority::kGet, at(0))
                  .is_overloaded());
  // The noisy tenant's dry bucket does not tax the quiet one.
  EXPECT_TRUE(admission.admit("quiet", RequestPriority::kGet, at(0)).ok());
}

TEST_F(AdmissionTest, TenantFloodSharesOverflowBucket) {
  AdmissionConfig config = base_config();
  config.tenant_rate = 5;
  config.tenant_burst_s = 1;
  config.max_tenants = 2;
  AdmissionController admission(config, MetricsRegistry::global());
  EXPECT_TRUE(admission.admit("a", RequestPriority::kGet, at(0)).ok());
  EXPECT_TRUE(admission.admit("b", RequestPriority::kGet, at(0)).ok());
  // Tenants beyond the bound share one overflow bucket: draining it as "c"
  // throttles "d" too, while the bounded tenants keep their own tokens.
  for (int i = 0; i < 5; ++i) {
    (void)admission.admit("c", RequestPriority::kGet, at(0));
  }
  EXPECT_TRUE(admission.admit("d", RequestPriority::kGet, at(0))
                  .is_overloaded());
  EXPECT_TRUE(admission.admit("a", RequestPriority::kGet, at(0)).ok());
}

TEST_F(AdmissionTest, PriorityLadderShedsBottomRungsFirst) {
  AdmissionController admission(base_config(), MetricsRegistry::global());

  // Pressure 0.8 (inflight 0.6 / threshold 0.75): background only.
  admission.update_signals(0.0, 0.6, at(0));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedBackground);
  EXPECT_TRUE(admission.admit("t", RequestPriority::kBackground, at(0))
                  .is_overloaded());
  EXPECT_TRUE(admission.admit("t", RequestPriority::kPut, at(0)).ok());
  EXPECT_TRUE(admission.admit("t", RequestPriority::kGet, at(0)).ok());

  // Pressure ~1.07: writes join the background on the floor.
  admission.update_signals(0.0, 0.8, at(0.1));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedWrites);
  EXPECT_TRUE(admission.admit("t", RequestPriority::kPut, at(0.1))
                  .is_overloaded());
  EXPECT_TRUE(admission.admit("t", RequestPriority::kGet, at(0.1)).ok());

  // Pressure 2.0: everything but admin.
  admission.update_signals(0.0, 1.5, at(0.2));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedReads);
  EXPECT_TRUE(admission.admit("t", RequestPriority::kGet, at(0.2))
                  .is_overloaded());
  EXPECT_TRUE(admission.admit("t", RequestPriority::kAdmin, at(0.2)).ok());
}

TEST_F(AdmissionTest, AdminBypassesLadderAndBuckets) {
  AdmissionConfig config = base_config();
  config.tenant_rate = 1;
  config.tenant_burst_s = 1;
  AdmissionController admission(config, MetricsRegistry::global());
  admission.update_signals(100.0, 1.0, at(0));  // worst possible pressure
  (void)admission.admit("ops", RequestPriority::kGet, at(0));  // drain bucket
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(admission.admit("ops", RequestPriority::kAdmin, at(0)).ok());
  }
}

TEST_F(AdmissionTest, BurnSignalShedsLikeInflight) {
  AdmissionConfig config = base_config();  // shed_burn = 2.0
  AdmissionController admission(config, MetricsRegistry::global());
  admission.update_signals(2.1, 0.0, at(0));  // pressure just past 1.0
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedWrites);
}

TEST_F(AdmissionTest, HysteresisEscalatesFastRelaxesSlow) {
  AdmissionConfig config = base_config();
  config.resume_hold = std::chrono::seconds(2);
  AdmissionController admission(config, MetricsRegistry::global());

  // Escalation is immediate.
  admission.update_signals(4.0, 0.0, at(0));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedReads);

  // Calm signals do not relax the level before the hold elapses.
  admission.update_signals(0.0, 0.0, at(0.1));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedReads);
  admission.update_signals(0.0, 0.0, at(1.9));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedReads);

  // After the hold: one rung per hold period, not a jump to none.
  admission.update_signals(0.0, 0.0, at(2.2));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedWrites);
  admission.update_signals(0.0, 0.0, at(2.3));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedWrites);
  admission.update_signals(0.0, 0.0, at(4.5));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedBackground);
  admission.update_signals(0.0, 0.0, at(6.8));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedNone);
}

TEST_F(AdmissionTest, OscillatingPressureDoesNotFlap) {
  AdmissionConfig config = base_config();
  config.resume_hold = std::chrono::seconds(2);
  AdmissionController admission(config, MetricsRegistry::global());
  admission.update_signals(4.0, 0.0, at(0));
  EXPECT_EQ(admission.shed_level(), AdmissionController::kShedReads);
  // A spiky signal (calm for 1s, hot again, repeatedly) keeps resetting the
  // calm timer: the level must hold, never bouncing to none and back.
  for (int cycle = 0; cycle < 5; ++cycle) {
    const double base = 0.2 + 2.0 * cycle;
    admission.update_signals(0.0, 0.0, at(base));
    EXPECT_EQ(admission.shed_level(), AdmissionController::kShedReads)
        << "cycle " << cycle;
    admission.update_signals(4.0, 0.0, at(base + 1.0));
    EXPECT_EQ(admission.shed_level(), AdmissionController::kShedReads);
  }
}

TEST_F(AdmissionTest, SnapshotCountsOutcomesPerTenant) {
  AdmissionConfig config = base_config();
  config.tenant_rate = 1;
  config.tenant_burst_s = 1;
  AdmissionController admission(config, MetricsRegistry::global());
  EXPECT_TRUE(admission.admit("x", RequestPriority::kGet, at(0)).ok());
  EXPECT_TRUE(admission.admit("x", RequestPriority::kGet, at(0))
                  .is_overloaded());  // throttled
  admission.update_signals(0.0, 0.7, at(0));
  EXPECT_TRUE(admission.admit("x", RequestPriority::kBackground, at(0))
                  .is_overloaded());  // shed

  const AdmissionController::Snapshot snap = admission.snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(snap.admitted, 1u);
  EXPECT_EQ(snap.throttled, 1u);
  EXPECT_EQ(snap.shed, 1u);
  ASSERT_EQ(snap.tenants.size(), 1u);
  EXPECT_EQ(snap.tenants[0].tenant, "x");
  EXPECT_EQ(snap.tenants[0].admitted, 1u);
  EXPECT_EQ(snap.tenants[0].throttled, 1u);
  EXPECT_EQ(snap.tenants[0].shed, 1u);
}

TEST_F(AdmissionTest, EmptyTenantMapsToDefault) {
  AdmissionController admission(base_config(), MetricsRegistry::global());
  EXPECT_TRUE(admission.admit("", RequestPriority::kGet, at(0)).ok());
  const AdmissionController::Snapshot snap = admission.snapshot();
  ASSERT_EQ(snap.tenants.size(), 1u);
  EXPECT_EQ(snap.tenants[0].tenant, "default");
}

TEST_F(AdmissionTest, SpecAdmissionBlockResolvesConfig) {
  auto spec = InstanceSpec::parse(R"(
    Tiera T() {
      tier1: { name: Memcached, size: 8M };
      admission : {
        tenant_rate: 500,
        tenant_burst: 3s,
        max_tenants: 64,
        shed_burn: 1.5,
        shed_inflight: 60%,
        resume_burn: 0.5,
        resume_inflight: 25%,
        resume_hold: 4s
      };
      event(insert.into) : response { store(what: insert.object, to: tier1); }
    }
  )");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  ASSERT_TRUE(spec->has_admission());
  auto config = spec->admission_config();
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  EXPECT_TRUE(config->enabled);
  EXPECT_DOUBLE_EQ(config->tenant_rate, 500);
  EXPECT_DOUBLE_EQ(config->tenant_burst_s, 3);
  EXPECT_EQ(config->max_tenants, 64u);
  EXPECT_DOUBLE_EQ(config->shed_burn, 1.5);
  EXPECT_DOUBLE_EQ(config->shed_inflight, 0.60);
  EXPECT_DOUBLE_EQ(config->resume_burn, 0.5);
  EXPECT_DOUBLE_EQ(config->resume_inflight, 0.25);
  EXPECT_DOUBLE_EQ(to_seconds(config->resume_hold), 4);
}

TEST_F(AdmissionTest, SpecWithoutAdmissionBlockHasNone) {
  auto spec = InstanceSpec::parse(R"(
    Tiera T() {
      tier1: { name: Memcached, size: 8M };
      event(insert.into) : response { store(what: insert.object, to: tier1); }
    }
  )");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_FALSE(spec->has_admission());
}

TEST_F(AdmissionTest, SpecAdmissionBlockRejectsBadValues) {
  auto spec = InstanceSpec::parse(R"(
    Tiera T() {
      tier1: { name: Memcached, size: 8M };
      admission : { shed_inflight: bogus };
      event(insert.into) : response { store(what: insert.object, to: tier1); }
    }
  )");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_FALSE(spec->admission_config().ok());
}

// Many threads, many tenants, one signal poller — the shape the reactor
// gives the controller in production. Run under TSan by tools/check.sh.
TEST_F(AdmissionTest, ConcurrentAdmitAcrossTenantsIsRaceFree) {
  AdmissionConfig config = base_config();
  config.tenant_rate = 1000;
  config.max_tenants = 32;  // force overflow-bucket traffic too
  AdmissionController admission(config, MetricsRegistry::global());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::atomic<bool> stop{false};
  std::thread poller([&admission, &stop] {
    double burn = 0;
    while (!stop.load(std::memory_order_acquire)) {
      burn = burn > 0 ? 0.0 : 5.0;  // swing the ladder hard
      admission.update_signals(burn, 0.0);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> decisions{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&admission, &decisions, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string tenant = "tenant" + std::to_string((t * 13 + i) % 48);
        const auto priority = static_cast<RequestPriority>(i % 4);
        (void)admission.admit(tenant, priority);
        decisions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  poller.join();

  EXPECT_EQ(decisions.load(), kThreads * kOpsPerThread);
  const AdmissionController::Snapshot snap = admission.snapshot();
  EXPECT_EQ(snap.admitted + snap.shed + snap.throttled,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  // The tenant map must have respected its bound (32 named + overflow).
  EXPECT_LE(snap.tenants.size(), config.max_tenants + 1);
}

}  // namespace
}  // namespace tiera
