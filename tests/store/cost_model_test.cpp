#include "store/cost_model.h"

#include <gtest/gtest.h>

#include "store/file_tier.h"
#include "store/mem_tier.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

constexpr std::uint64_t kGB = 1ull << 30;

TEST(CostModelTest, CapacityBilledTier) {
  ZeroLatencyScope zero;
  MemTier tier("mem", 2 * kGB);
  // 2 GB of ElastiCache-style memory at $19/GB-month.
  EXPECT_NEAR(CostModel::storage_cost_per_month(tier), 38.0, 1e-6);
  // Empty or full, capacity billing is the same.
  ASSERT_TRUE(tier.put("a", as_view(make_payload(1000, 1))).ok());
  EXPECT_NEAR(CostModel::storage_cost_per_month(tier), 38.0, 1e-6);
}

TEST(CostModelTest, UsageBilledTier) {
  ZeroLatencyScope zero;
  TempDir dir;
  ObjectTier tier("s3", 10 * kGB, dir.sub("s3"));
  EXPECT_NEAR(CostModel::storage_cost_per_month(tier), 0.0, 1e-9);
  const Bytes payload = make_payload(1 << 20, 1);  // 1 MB
  ASSERT_TRUE(tier.put("a", as_view(payload)).ok());
  const double expected = 0.03 / 1024.0;  // 1 MB at $0.03/GB-month
  EXPECT_NEAR(CostModel::storage_cost_per_month(tier), expected,
              expected * 0.01);
}

TEST(CostModelTest, S3RequestCharges) {
  ZeroLatencyScope zero;
  TempDir dir;
  ObjectTier tier("s3", kGB, dir.sub("s3"));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tier.put("k" + std::to_string(i),
                         as_view(make_payload(16, i)))
                    .ok());
  }
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tier.get("k" + std::to_string(i % 100)).ok());
  }
  // 1000 PUTs at $5/1M + 1000 GETs at $0.4/1M, unextrapolated.
  const double expected = 1000 * 5.0 / 1e6 + 1000 * 0.4 / 1e6;
  EXPECT_NEAR(CostModel::request_cost(tier, 0), expected, expected * 0.01);
  // Extrapolated to a month from a 1-hour observation window: x720.
  EXPECT_NEAR(CostModel::request_cost(tier, 3600.0), expected * 720,
              expected * 720 * 0.01);
}

TEST(CostModelTest, EbsIoCharges) {
  ZeroLatencyScope zero;
  TempDir dir;
  BlockTier tier("ebs", kGB, dir.sub("ebs"));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tier.put("k" + std::to_string(i),
                         as_view(make_payload(16, i)))
                    .ok());
    ASSERT_TRUE(tier.get("k" + std::to_string(i)).ok());
  }
  const double expected = 200 * 0.05 / 1e6;
  EXPECT_NEAR(CostModel::request_cost(tier, 0), expected, expected * 0.01);
}

TEST(CostModelTest, EphemeralIsFree) {
  ZeroLatencyScope zero;
  EphemeralTier tier("eph", kGB);
  ASSERT_TRUE(tier.put("a", as_view(make_payload(100, 1))).ok());
  ASSERT_TRUE(tier.get("a").ok());
  EXPECT_DOUBLE_EQ(CostModel::cost(tier, 3600).total(), 0.0);
}

TEST(CostModelTest, BreakdownAndTotal) {
  ZeroLatencyScope zero;
  TempDir dir;
  std::vector<TierPtr> tiers = {
      std::make_shared<MemTier>("mem", kGB),
      std::make_shared<BlockTier>("ebs", kGB, dir.sub("ebs")),
  };
  const auto breakdown = CostModel::cost_breakdown(tiers);
  ASSERT_EQ(breakdown.size(), 2u);
  EXPECT_EQ(breakdown[0].tier, "mem");
  EXPECT_NEAR(breakdown[0].total(), 19.0, 1e-6);
  EXPECT_NEAR(breakdown[1].total(), 0.10, 1e-6);
  EXPECT_NEAR(CostModel::total_monthly_cost(tiers), 19.10, 1e-6);
}

TEST(CostModelTest, MemoryCostsDominateBlockAndObject) {
  // The premise of the paper's cost figures: memory >> block > object.
  ZeroLatencyScope zero;
  TempDir dir;
  MemTier mem("m", kGB);
  BlockTier ebs("e", kGB, dir.sub("e"));
  ObjectTier s3("s", kGB, dir.sub("s"));
  ASSERT_TRUE(s3.put("x", as_view(make_payload(64 << 20, 1))).ok());
  const double mem_cost = CostModel::storage_cost_per_month(mem);
  const double ebs_cost = CostModel::storage_cost_per_month(ebs);
  const double s3_cost = CostModel::storage_cost_per_month(s3);
  EXPECT_GT(mem_cost, ebs_cost * 50);
  EXPECT_GT(ebs_cost, s3_cost * 2);
}

}  // namespace
}  // namespace tiera
