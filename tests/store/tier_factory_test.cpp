#include "store/tier_factory.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

TEST(ParseSizeTest, PlainBytes) {
  EXPECT_EQ(*parse_size("123"), 123u);
  EXPECT_EQ(*parse_size("0"), 0u);
}

TEST(ParseSizeTest, Suffixes) {
  EXPECT_EQ(*parse_size("4K"), 4096u);
  EXPECT_EQ(*parse_size("200M"), 200ull << 20);
  EXPECT_EQ(*parse_size("5G"), 5ull << 30);
  EXPECT_EQ(*parse_size("1T"), 1ull << 40);
  EXPECT_EQ(*parse_size("5g"), 5ull << 30);  // case-insensitive
}

TEST(ParseSizeTest, Rejections) {
  EXPECT_FALSE(parse_size("").ok());
  EXPECT_FALSE(parse_size("G").ok());
  EXPECT_FALSE(parse_size("12X3").ok());
  EXPECT_FALSE(parse_size("-5G").ok());
}

TEST(TierFactoryTest, KnownServices) {
  EXPECT_TRUE(TierFactory::known_service("Memcached"));
  EXPECT_TRUE(TierFactory::known_service("memcached_remote"));
  EXPECT_TRUE(TierFactory::known_service("EBS"));
  EXPECT_TRUE(TierFactory::known_service("S3"));
  EXPECT_TRUE(TierFactory::known_service("Ephemeral"));
  EXPECT_FALSE(TierFactory::known_service("floppy"));
}

TEST(TierFactoryTest, CreatesEachService) {
  ZeroLatencyScope zero;
  TempDir dir;
  TierFactory factory(dir.path());
  struct Case {
    const char* service;
    TierKind kind;
  };
  const Case cases[] = {
      {"Memcached", TierKind::kMemory},
      {"memcached_remote", TierKind::kMemory},
      {"EBS", TierKind::kBlock},
      {"Ephemeral", TierKind::kEphemeral},
      {"S3", TierKind::kObject},
  };
  int index = 0;
  for (const auto& c : cases) {
    auto tier =
        factory.create({c.service, "tier" + std::to_string(index++), 1 << 20});
    ASSERT_TRUE(tier.ok()) << c.service;
    EXPECT_EQ((*tier)->kind(), c.kind) << c.service;
    EXPECT_EQ((*tier)->capacity(), 1u << 20);
    // Round trip a payload through each service.
    ASSERT_TRUE((*tier)->put("probe", as_view(make_payload(64, 1))).ok());
    EXPECT_TRUE((*tier)->get("probe").ok());
  }
}

TEST(TierFactoryTest, RemoteMemcachedIsSlower) {
  TempDir dir;
  TierFactory factory(dir.path());
  auto local = factory.create({"Memcached", "t1", 1 << 20});
  auto remote = factory.create({"memcached_remote", "t2", 1 << 20});
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(remote.ok());
  EXPECT_GT((*remote)->latency_model().read_base,
            (*local)->latency_model().read_base);
}

TEST(TierFactoryTest, UnknownServiceRejected) {
  TempDir dir;
  TierFactory factory(dir.path());
  auto tier = factory.create({"tape", "t1", 1024});
  EXPECT_FALSE(tier.ok());
  EXPECT_EQ(tier.status().code(), StatusCode::kInvalidArgument);
}

TEST(TierFactoryTest, LabelsNamespaceDirectories) {
  ZeroLatencyScope zero;
  TempDir dir;
  TierFactory factory(dir.path());
  auto a = factory.create({"EBS", "vol1", 1 << 20});
  auto b = factory.create({"EBS", "vol2", 1 << 20});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->put("k", as_view(make_payload(10, 1))).ok());
  EXPECT_FALSE((*b)->contains("k"));  // separate volumes
}

}  // namespace
}  // namespace tiera
