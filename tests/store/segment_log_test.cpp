// The append-only segment log backing the file tiers: replay, torn-tail
// truncation, rolling, compaction, and concurrent read/write safety.
#include "store/segment_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "test_util.h"

namespace tiera {
namespace {

namespace fs = std::filesystem;
using testing::TempDir;

using Index = std::map<std::string, LogLocation>;

Result<std::unique_ptr<SegmentLog>> open_with_index(const std::string& dir,
                                                    Index& index,
                                                    SegmentLogOptions options =
                                                        {}) {
  return SegmentLog::open(
      dir, options,
      [&index](std::string_view key, bool live, const LogLocation& loc) {
        if (live) {
          index[std::string(key)] = loc;
        } else {
          index.erase(std::string(key));
        }
      });
}

TEST(SegmentLogTest, AppendReadRoundTrip) {
  TempDir dir;
  Index index;
  auto log = open_with_index(dir.sub("log"), index);
  ASSERT_TRUE(log.ok());

  const Bytes v1 = make_payload(512, 1);
  auto loc = (*log)->append("a", as_view(v1));
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->length, 512u);
  auto got = (*log)->read(*loc);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v1);

  // Empty values are legal (zero-length objects exist in the tier tests).
  auto empty = (*log)->append("e", {});
  ASSERT_TRUE(empty.ok());
  auto got_empty = (*log)->read(*empty);
  ASSERT_TRUE(got_empty.ok());
  EXPECT_TRUE(got_empty->empty());
}

TEST(SegmentLogTest, ReplayRebuildsLiveSetAcrossReopen) {
  TempDir dir;
  const std::string path = dir.sub("log");
  {
    Index index;
    auto log = open_with_index(path, index);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->append("a", as_view(make_payload(100, 1))).ok());
    ASSERT_TRUE((*log)->append("b", as_view(make_payload(200, 2))).ok());
    ASSERT_TRUE((*log)->append("a", as_view(make_payload(300, 3))).ok());
    ASSERT_TRUE((*log)->append_tombstone("b").ok());
  }
  Index index;
  auto log = open_with_index(path, index);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(index.size(), 1u);  // b deleted, a overwritten
  auto got = (*log)->read(index["a"]);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, make_payload(300, 3));  // latest generation wins
}

TEST(SegmentLogTest, TornTailIsTruncatedOnReplay) {
  TempDir dir;
  const std::string path = dir.sub("log");
  Index index;
  {
    Index scratch;
    auto log = open_with_index(path, scratch);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->append("good", as_view(make_payload(64, 1))).ok());
  }
  // Simulate a crash mid-append: half a record at the tail.
  const std::string seg = path + "/seg-1.log";
  const auto full_size = fs::file_size(seg);
  {
    std::ofstream out(seg, std::ios::binary | std::ios::app);
    out.write("\x13\x37\x13\x37torn", 8);
  }
  auto log = open_with_index(path, index);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(index.size(), 1u);
  EXPECT_TRUE((*log)->read(index["good"]).ok());
  // The torn bytes are physically gone, so the next append lands cleanly.
  EXPECT_EQ(fs::file_size(seg), full_size);
  ASSERT_TRUE((*log)->append("next", as_view(make_payload(32, 2))).ok());
}

TEST(SegmentLogTest, CorruptRecordStopsReplayAtLastGoodRecord) {
  TempDir dir;
  const std::string path = dir.sub("log");
  {
    Index scratch;
    auto log = open_with_index(path, scratch);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->append("keep", as_view(make_payload(64, 1))).ok());
    ASSERT_TRUE((*log)->append("flip", as_view(make_payload(64, 2))).ok());
  }
  // Flip a byte inside the second record's value: its CRC fails and replay
  // must stop after "keep" (and truncate the bad tail away).
  const std::string seg = path + "/seg-1.log";
  {
    std::fstream f(seg, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-10, std::ios::end);
    f.put('\xFF');
  }
  Index index;
  auto log = open_with_index(path, index);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.count("keep"));
}

TEST(SegmentLogTest, RollsToNewSegmentsAndReplaysInOrder) {
  TempDir dir;
  const std::string path = dir.sub("log");
  SegmentLogOptions options;
  options.segment_bytes = 4 << 10;  // tiny segments force rolls
  {
    Index scratch;
    auto log = open_with_index(path, scratch, options);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 32; ++i) {
      const std::string key = "k" + std::to_string(i % 8);
      ASSERT_TRUE((*log)->append(key, as_view(make_payload(512, i))).ok());
    }
  }
  std::size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(path)) {
    if (entry.path().filename().string().rfind("seg-", 0) == 0) ++segments;
  }
  EXPECT_GT(segments, 1u);

  Index index;
  auto log = open_with_index(path, index, options);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(index.size(), 8u);
  // Replay applied segments in order: each key resolves to its last write.
  for (int k = 0; k < 8; ++k) {
    const std::string key = "k" + std::to_string(k);
    auto got = (*log)->read(index[key]);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, make_payload(512, 24 + k)) << key;
  }
}

TEST(SegmentLogTest, CompactionDropsDeadBytesAndPreservesValues) {
  TempDir dir;
  Index index;
  auto log = open_with_index(dir.sub("log"), index);
  ASSERT_TRUE(log.ok());
  for (int gen = 0; gen < 10; ++gen) {
    for (int k = 0; k < 4; ++k) {
      const std::string key = "k" + std::to_string(k);
      auto loc = (*log)->append(key, as_view(make_payload(1024, gen * 4 + k)));
      ASSERT_TRUE(loc.ok());
      index[key] = *loc;
    }
  }
  const std::uint64_t before = (*log)->log_bytes();

  ASSERT_TRUE((*log)
                  ->compact(
                      [&](const SegmentLog::LiveVisitor& visit) {
                        for (const auto& [key, loc] : index) visit(key, loc);
                      },
                      [&](std::string_view key, const LogLocation& loc) {
                        index[std::string(key)] = loc;
                      })
                  .ok());
  EXPECT_LT((*log)->log_bytes(), before / 2);  // 9 of 10 generations dropped
  for (int k = 0; k < 4; ++k) {
    const std::string key = "k" + std::to_string(k);
    auto got = (*log)->read(index[key]);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, make_payload(1024, 36 + k)) << key;
  }
  // Appends continue cleanly after compaction.
  ASSERT_TRUE((*log)->append("post", as_view(make_payload(64, 99))).ok());
}

TEST(SegmentLogTest, WipeClearsDiskAndStartsOver) {
  TempDir dir;
  const std::string path = dir.sub("log");
  Index index;
  auto log = open_with_index(path, index);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->append("a", as_view(make_payload(128, 1))).ok());
  ASSERT_TRUE((*log)->wipe().ok());
  EXPECT_EQ((*log)->log_bytes(), 0u);
  auto loc = (*log)->append("b", as_view(make_payload(64, 2)));
  ASSERT_TRUE(loc.ok());
  EXPECT_TRUE((*log)->read(*loc).ok());

  Index reopened;
  {
    auto log2 = open_with_index(dir.sub("other"), reopened);
    ASSERT_TRUE(log2.ok());
  }
}

TEST(SegmentLogTest, ConcurrentAppendersAndReaders) {
  TempDir dir;
  Index index;
  auto log = open_with_index(dir.sub("log"), index);
  ASSERT_TRUE(log.ok());

  // Seed a stable key each reader hammers while writers append.
  auto stable = (*log)->append("stable", as_view(make_payload(256, 7)));
  ASSERT_TRUE(stable.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 200; ++i) {
        const std::string key = "w" + std::to_string(w) + "-" +
                                std::to_string(i);
        auto loc = (*log)->append(key, as_view(make_payload(128, i)));
        if (!loc.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto got = (*log)->read(*loc);
        if (!got.ok() || *got != make_payload(128, i)) failures.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        auto got = (*log)->read(*stable);
        if (!got.ok() || *got != make_payload(256, 7)) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tiera
