// ResilientTier unit tests: backoff schedule, retry loop, deadline budget,
// circuit-breaker state machine, hedge-delay signal, and factory wrapping.
#include "store/resilient_tier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "store/mem_tier.h"
#include "store/tier_factory.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

// MemTier that fails the next `n` put/get attempts with kUnavailable before
// behaving normally again; counts every attempt that reached it.
class CountdownTier : public MemTier {
 public:
  CountdownTier(std::string name, std::uint64_t capacity)
      : MemTier(std::move(name), capacity) {}

  Status put(std::string_view key, ByteView value) override {
    if (consume()) return Status::Unavailable("injected put failure");
    return MemTier::put(key, value);
  }

  Result<Bytes> get(std::string_view key) override {
    if (consume()) return Status::Unavailable("injected get failure");
    return MemTier::get(key);
  }

  void fail_next(int n) { remaining_.store(n); }
  int attempts() const { return attempts_.load(); }

 private:
  bool consume() {
    attempts_.fetch_add(1);
    int current = remaining_.load();
    while (current > 0) {
      if (remaining_.compare_exchange_weak(current, current - 1)) return true;
    }
    return false;
  }

  std::atomic<int> remaining_{0};
  std::atomic<int> attempts_{0};
};

struct Wrapped {
  std::shared_ptr<CountdownTier> inner;
  std::shared_ptr<ResilientTier> tier;
};

Wrapped make_wrapped(ResiliencePolicy policy,
                     std::uint64_t capacity = 1 << 20) {
  Wrapped w;
  w.inner = std::make_shared<CountdownTier>("flaky", capacity);
  w.tier = std::make_shared<ResilientTier>(w.inner, policy);
  return w;
}

// --- nth_backoff -------------------------------------------------------------

TEST(NthBackoffTest, ExponentialAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff = from_ms(2);
  policy.multiplier = 2.0;
  policy.max_backoff = from_ms(10);
  policy.jitter = 0.0;  // deterministic
  Rng rng(1);
  EXPECT_EQ(nth_backoff(policy, 0, rng), from_ms(2));
  EXPECT_EQ(nth_backoff(policy, 1, rng), from_ms(4));
  EXPECT_EQ(nth_backoff(policy, 2, rng), from_ms(8));
  EXPECT_EQ(nth_backoff(policy, 3, rng), from_ms(10));   // capped
  EXPECT_EQ(nth_backoff(policy, 20, rng), from_ms(10));  // stays capped
}

TEST(NthBackoffTest, JitterStaysWithinBounds) {
  RetryPolicy policy;
  policy.initial_backoff = from_ms(10);
  policy.max_backoff = from_ms(1000);
  policy.jitter = 0.5;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Duration pause = nth_backoff(policy, 0, rng);
    EXPECT_GE(pause, from_ms(5));
    EXPECT_LE(pause, from_ms(15));
  }
}

// --- Retry loop --------------------------------------------------------------

TEST(ResilientTierTest, RetriesUntilSuccess) {
  ZeroLatencyScope zero;
  ResiliencePolicy policy;
  policy.retry.max_retries = 3;
  auto w = make_wrapped(policy);
  w.inner->fail_next(2);
  EXPECT_TRUE(w.tier->put("k", as_view(make_payload(100, 1))).ok());
  EXPECT_EQ(w.inner->attempts(), 3);  // 2 failures + 1 success
  EXPECT_TRUE(w.tier->contains("k"));
}

TEST(ResilientTierTest, ExhaustedRetriesSurfaceTheError) {
  ZeroLatencyScope zero;
  ResiliencePolicy policy;
  policy.retry.max_retries = 2;
  auto w = make_wrapped(policy);
  w.inner->fail_next(100);
  const Status s = w.tier->put("k", as_view(make_payload(100, 1)));
  EXPECT_TRUE(s.is_unavailable());
  EXPECT_EQ(w.inner->attempts(), 3);  // first try + 2 retries
}

TEST(ResilientTierTest, NonRetryableErrorsAreNotRetried) {
  ZeroLatencyScope zero;
  ResiliencePolicy policy;
  policy.retry.max_retries = 5;
  auto w = make_wrapped(policy);
  EXPECT_TRUE(w.tier->get("missing").status().is_not_found());
  EXPECT_EQ(w.inner->attempts(), 1);

  // Capacity errors are not a tier-health signal either.
  auto small = make_wrapped(policy, /*capacity=*/100);
  EXPECT_TRUE(small.tier->put("big", as_view(make_payload(500, 1)))
                  .is_capacity_exceeded());
  EXPECT_EQ(small.inner->attempts(), 1);
}

TEST(ResilientTierTest, DeadlineBoundsTheRetryLoop) {
  // The deadline is a modelled-time budget, so it needs a positive scale;
  // a large backoff makes the second attempt blow the budget deterministically.
  ZeroLatencyScope scale(0.05);
  ResiliencePolicy policy;
  policy.retry.max_retries = 50;
  policy.retry.initial_backoff = from_ms(200);
  policy.retry.max_backoff = from_ms(200);
  policy.deadline = from_ms(100);
  auto w = make_wrapped(policy);
  w.inner->fail_next(1000);
  const Status s = w.tier->put("k", as_view(make_payload(100, 1)));
  EXPECT_TRUE(s.is_timed_out()) << s.to_string();
  EXPECT_LT(w.inner->attempts(), 10);
}

// --- Circuit breaker ---------------------------------------------------------

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  BreakerPolicy policy;
  policy.enabled = true;
  policy.failure_threshold = 3;
  CircuitBreaker breaker(policy);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // A success resets the consecutive count.
  breaker.record_success();
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow());
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesAfterSuccesses) {
  ZeroLatencyScope zero;  // cool-down runs in real time at scale 0
  BreakerPolicy policy;
  policy.enabled = true;
  policy.failure_threshold = 1;
  policy.open_for = from_ms(20);
  policy.success_to_close = 2;
  CircuitBreaker breaker(policy);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow());

  std::this_thread::sleep_for(from_ms(30));
  EXPECT_TRUE(breaker.allow());  // claims the half-open probe slot
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // only one probe at a time
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  ZeroLatencyScope zero;
  BreakerPolicy policy;
  policy.enabled = true;
  policy.failure_threshold = 1;
  policy.open_for = from_ms(20);
  CircuitBreaker breaker(policy);
  breaker.record_failure();
  std::this_thread::sleep_for(from_ms(30));
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow());
}

TEST(CircuitBreakerTest, ListenerSeesEveryTransition) {
  ZeroLatencyScope zero;
  BreakerPolicy policy;
  policy.enabled = true;
  policy.failure_threshold = 1;
  policy.open_for = from_ms(10);
  policy.success_to_close = 1;
  CircuitBreaker breaker(policy);
  std::vector<BreakerState> seen;
  breaker.set_listener([&](BreakerState s) { seen.push_back(s); });
  breaker.record_failure();
  std::this_thread::sleep_for(from_ms(20));
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], BreakerState::kOpen);
  EXPECT_EQ(seen[1], BreakerState::kHalfOpen);
  EXPECT_EQ(seen[2], BreakerState::kClosed);
}

TEST(ResilientTierTest, BreakerFastFailsWithoutTouchingTheInnerTier) {
  ZeroLatencyScope zero;
  ResiliencePolicy policy;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 2;
  policy.breaker.open_for = from_ms(60'000);  // never recovers in this test
  auto w = make_wrapped(policy);
  w.inner->fail_next(1000);
  (void)w.tier->put("a", as_view(make_payload(10, 1)));
  (void)w.tier->put("b", as_view(make_payload(10, 1)));
  EXPECT_EQ(w.tier->breaker_state(), BreakerState::kOpen);

  const int attempts_before = w.inner->attempts();
  const Status s = w.tier->put("c", as_view(make_payload(10, 1)));
  EXPECT_TRUE(s.is_unavailable());
  EXPECT_NE(s.message().find("breaker open"), std::string::npos);
  EXPECT_EQ(w.inner->attempts(), attempts_before);
}

TEST(ResilientTierTest, NonRetryableProbeReleasesHalfOpenSlot) {
  ZeroLatencyScope zero;
  ResiliencePolicy policy;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 1;
  policy.breaker.open_for = from_ms(20);
  policy.breaker.success_to_close = 1;
  auto w = make_wrapped(policy);
  w.inner->fail_next(1);
  (void)w.tier->put("a", as_view(make_payload(10, 1)));
  EXPECT_EQ(w.tier->breaker_state(), BreakerState::kOpen);

  std::this_thread::sleep_for(from_ms(30));
  // The half-open probe lands on a NotFound. The tier answered, so the
  // probe slot must be released (and the answer counted as health) rather
  // than leaving the breaker fast-failing forever.
  EXPECT_TRUE(w.tier->get("missing").status().is_not_found());
  EXPECT_TRUE(w.tier->put("a", as_view(make_payload(10, 1))).ok());
  EXPECT_EQ(w.tier->breaker_state(), BreakerState::kClosed);
}

TEST(ResilientTierTest, BreakerHealsThroughHalfOpenProbes) {
  ZeroLatencyScope zero;
  ResiliencePolicy policy;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 1;
  policy.breaker.open_for = from_ms(20);
  policy.breaker.success_to_close = 1;
  auto w = make_wrapped(policy);
  w.inner->fail_next(1);
  (void)w.tier->put("a", as_view(make_payload(10, 1)));
  EXPECT_EQ(w.tier->breaker_state(), BreakerState::kOpen);

  std::this_thread::sleep_for(from_ms(30));
  EXPECT_TRUE(w.tier->put("a", as_view(make_payload(10, 1))).ok());
  EXPECT_EQ(w.tier->breaker_state(), BreakerState::kClosed);
}

// --- Hedge-delay signal ------------------------------------------------------

TEST(ResilientTierTest, HedgeDelayUsesMaxUntilHistoryThenQuantile) {
  ZeroLatencyScope zero;
  ResiliencePolicy policy;
  policy.hedge.quantile = 0.95;
  policy.hedge.min_delay = from_ms(1);
  policy.hedge.max_delay = from_ms(200);
  auto w = make_wrapped(policy);
  EXPECT_EQ(w.tier->hedge_delay(), policy.hedge.max_delay);

  ASSERT_TRUE(w.tier->put("k", as_view(make_payload(64, 1))).ok());
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(w.tier->get("k").ok());
  // Inner gets are ~instant at scale 0, so the quantile clamps to min_delay.
  EXPECT_EQ(w.tier->hedge_delay(), policy.hedge.min_delay);
}

TEST(ResilientTierTest, NoHedgeSignalWhenDisabled) {
  ZeroLatencyScope zero;
  auto w = make_wrapped(ResiliencePolicy{});
  EXPECT_EQ(w.tier->hedge_delay(), Duration::zero());
}

// --- Delegation and factory wrapping -----------------------------------------

TEST(ResilientTierTest, DelegatesManagementToInner) {
  ZeroLatencyScope zero;
  ResiliencePolicy policy;
  policy.retry.max_retries = 1;
  auto w = make_wrapped(policy, /*capacity=*/1000);
  EXPECT_EQ(w.tier->capacity(), 1000u);
  ASSERT_TRUE(w.tier->put("k", as_view(make_payload(100, 1))).ok());
  EXPECT_EQ(w.tier->used(), 100u);
  EXPECT_EQ(w.tier->object_count(), 1u);
  ASSERT_TRUE(w.tier->grow(100).ok());
  EXPECT_EQ(w.tier->capacity(), 2000u);
  EXPECT_EQ(w.inner->capacity(), 2000u);
  EXPECT_EQ(w.tier->name(), w.inner->name());
  EXPECT_EQ(w.tier->kind(), w.inner->kind());

  std::size_t keys = 0;
  w.tier->for_each_key([&](std::string_view) { ++keys; });
  EXPECT_EQ(keys, 1u);

  ASSERT_TRUE(w.tier->remove("k").ok());
  EXPECT_EQ(w.tier->used(), 0u);
}

TEST(ResilientTierTest, InjectedFailStopIsRetryable) {
  ZeroLatencyScope zero;
  ResiliencePolicy policy;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 1;
  auto w = make_wrapped(policy);
  w.tier->inject_failure(FailureMode::kFailStop);
  EXPECT_TRUE(w.tier->put("k", as_view(make_payload(10, 1))).is_unavailable());
  EXPECT_EQ(w.tier->breaker_state(), BreakerState::kOpen);
  w.tier->heal();
  EXPECT_EQ(w.tier->failure_mode(), FailureMode::kNone);
}

TEST(TierFactoryResilienceTest, WrapsOnlyWhenKnobsAreSet) {
  ZeroLatencyScope zero;
  TempDir dir;
  TierFactory factory(dir.path());

  TierSpec plain("memcached", "tier1", 1 << 20);
  auto bare = factory.create(plain);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(dynamic_cast<ResilientTier*>(bare->get()), nullptr);

  TierSpec knobs("ebs", "tier2", 1 << 20);
  knobs.resilience.retry.max_retries = 2;
  knobs.resilience.breaker.enabled = true;
  auto wrapped = factory.create(knobs);
  ASSERT_TRUE(wrapped.ok());
  auto* resilient = dynamic_cast<ResilientTier*>(wrapped->get());
  ASSERT_NE(resilient, nullptr);
  EXPECT_EQ(resilient->policy().retry.max_retries, 2);
  EXPECT_EQ((*wrapped)->breaker_state(), BreakerState::kClosed);
  // The wrapper serves the data path end to end.
  ASSERT_TRUE((*wrapped)->put("k", as_view(make_payload(64, 1))).ok());
  EXPECT_TRUE((*wrapped)->get("k").ok());
}

}  // namespace
}  // namespace tiera
