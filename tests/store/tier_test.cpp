#include "store/tier.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "store/file_tier.h"
#include "store/mem_tier.h"
#include "test_util.h"

namespace tiera {
namespace {

using testing::TempDir;
using testing::ZeroLatencyScope;

class TierKindsTest : public ::testing::TestWithParam<std::string> {
 protected:
  TierPtr make(std::uint64_t capacity) {
    const std::string& kind = GetParam();
    if (kind == "mem") return std::make_shared<MemTier>("mem", capacity);
    if (kind == "ephemeral") {
      return std::make_shared<EphemeralTier>("eph", capacity);
    }
    if (kind == "block") {
      return std::make_shared<BlockTier>("ebs", capacity, dir_.sub("block"));
    }
    return std::make_shared<ObjectTier>("s3", capacity, dir_.sub("object"));
  }

  ZeroLatencyScope zero_latency_;
  TempDir dir_;
};

TEST_P(TierKindsTest, PutGetRemove) {
  auto tier = make(1 << 20);
  const Bytes payload = make_payload(4096, 1);
  ASSERT_TRUE(tier->put("obj1", as_view(payload)).ok());
  EXPECT_TRUE(tier->contains("obj1"));
  auto got = tier->get("obj1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  ASSERT_TRUE(tier->remove("obj1").ok());
  EXPECT_FALSE(tier->contains("obj1"));
  EXPECT_TRUE(tier->get("obj1").status().is_not_found());
}

TEST_P(TierKindsTest, UsageAccounting) {
  auto tier = make(1 << 20);
  EXPECT_EQ(tier->used(), 0u);
  ASSERT_TRUE(tier->put("a", as_view(make_payload(1000, 1))).ok());
  EXPECT_EQ(tier->used(), 1000u);
  ASSERT_TRUE(tier->put("b", as_view(make_payload(500, 2))).ok());
  EXPECT_EQ(tier->used(), 1500u);
  // Overwrite replaces, not adds.
  ASSERT_TRUE(tier->put("a", as_view(make_payload(200, 3))).ok());
  EXPECT_EQ(tier->used(), 700u);
  ASSERT_TRUE(tier->remove("b").ok());
  EXPECT_EQ(tier->used(), 200u);
  EXPECT_EQ(tier->object_count(), 1u);
}

TEST_P(TierKindsTest, CapacityEnforced) {
  auto tier = make(1000);
  ASSERT_TRUE(tier->put("a", as_view(make_payload(800, 1))).ok());
  const Status s = tier->put("b", as_view(make_payload(300, 2)));
  EXPECT_TRUE(s.is_capacity_exceeded());
  EXPECT_FALSE(tier->contains("b"));
  // Replacing the existing object with a same-size one is fine.
  EXPECT_TRUE(tier->put("a", as_view(make_payload(900, 3))).ok());
}

TEST_P(TierKindsTest, FillFraction) {
  auto tier = make(1000);
  EXPECT_DOUBLE_EQ(tier->fill_fraction(), 0.0);
  ASSERT_TRUE(tier->put("a", as_view(make_payload(750, 1))).ok());
  EXPECT_DOUBLE_EQ(tier->fill_fraction(), 0.75);
}

TEST_P(TierKindsTest, GrowAndShrink) {
  auto tier = make(1000);
  ASSERT_TRUE(tier->grow(100).ok());
  EXPECT_EQ(tier->capacity(), 2000u);
  ASSERT_TRUE(tier->shrink(25).ok());
  EXPECT_EQ(tier->capacity(), 1500u);
  EXPECT_FALSE(tier->grow(-5).ok());
  EXPECT_FALSE(tier->shrink(0).ok());
  EXPECT_FALSE(tier->shrink(150).ok());
}

TEST_P(TierKindsTest, ShrinkBelowUsageRefused) {
  auto tier = make(1000);
  ASSERT_TRUE(tier->put("a", as_view(make_payload(900, 1))).ok());
  EXPECT_TRUE(tier->shrink(50).is_capacity_exceeded());
  EXPECT_EQ(tier->capacity(), 1000u);
}

TEST_P(TierKindsTest, FailStopInjection) {
  auto tier = make(1 << 20);
  ASSERT_TRUE(tier->put("a", as_view(make_payload(10, 1))).ok());
  tier->inject_failure(FailureMode::kFailStop);
  EXPECT_TRUE(tier->put("b", as_view(make_payload(10, 2))).is_unavailable());
  EXPECT_TRUE(tier->get("a").status().is_unavailable());
  EXPECT_TRUE(tier->remove("a").is_unavailable());
  tier->heal();
  EXPECT_TRUE(tier->get("a").ok());
  EXPECT_GT(tier->stats().failed_ops.load(), 0u);
}

TEST_P(TierKindsTest, TimeoutInjection) {
  auto tier = make(1 << 20);
  tier->inject_failure(FailureMode::kTimeout, from_ms(5));
  EXPECT_TRUE(tier->put("a", as_view(make_payload(10, 1))).is_timed_out());
  tier->heal();
  EXPECT_EQ(tier->failure_mode(), FailureMode::kNone);
}

TEST_P(TierKindsTest, StatsCountOps) {
  auto tier = make(1 << 20);
  ASSERT_TRUE(tier->put("a", as_view(make_payload(100, 1))).ok());
  (void)tier->get("a");
  (void)tier->get("missing");
  ASSERT_TRUE(tier->remove("a").ok());
  EXPECT_EQ(tier->stats().puts.load(), 1u);
  EXPECT_EQ(tier->stats().gets.load(), 2u);
  EXPECT_EQ(tier->stats().removes.load(), 1u);
  EXPECT_EQ(tier->stats().bytes_written.load(), 100u);
  EXPECT_EQ(tier->stats().bytes_read.load(), 100u);
  EXPECT_EQ(tier->stats().total_requests(), 4u);
}

TEST_P(TierKindsTest, ForEachKeyListsAll) {
  auto tier = make(1 << 20);
  std::set<std::string> expected;
  for (int i = 0; i < 10; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(tier->put(key, as_view(make_payload(10, i))).ok());
    expected.insert(key);
  }
  std::set<std::string> seen;
  tier->for_each_key([&](std::string_view k) { seen.insert(std::string(k)); });
  EXPECT_EQ(seen, expected);
}

TEST_P(TierKindsTest, ConcurrentPutsAndGets) {
  auto tier = make(64 << 20);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string key = "t" + std::to_string(t) + "-" +
                                std::to_string(i);
        const Bytes payload = make_payload(256, t * 1000 + i);
        if (!tier->put(key, as_view(payload)).ok()) failures.fetch_add(1);
        auto got = tier->get(key);
        if (!got.ok() || *got != payload) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(tier->object_count(), 1600u);
}

INSTANTIATE_TEST_SUITE_P(AllTierKinds, TierKindsTest,
                         ::testing::Values("mem", "ephemeral", "block",
                                           "object"));

TEST(MemTierTest, RebootLosesData) {
  ZeroLatencyScope zero;
  MemTier tier("mem", 1 << 20);
  ASSERT_TRUE(tier.put("a", as_view(make_payload(100, 1))).ok());
  tier.reboot();
  EXPECT_FALSE(tier.contains("a"));
  EXPECT_EQ(tier.used(), 0u);
}

TEST(EphemeralTierTest, RebootLosesData) {
  ZeroLatencyScope zero;
  EphemeralTier tier("eph", 1 << 20);
  ASSERT_TRUE(tier.put("a", as_view(make_payload(100, 1))).ok());
  tier.reboot();
  EXPECT_FALSE(tier.contains("a"));
  EXPECT_FALSE(tier.durable());
}

TEST(FileTierTest, SurvivesReopen) {
  ZeroLatencyScope zero;
  TempDir dir;
  const Bytes payload = make_payload(5000, 42);
  {
    BlockTier tier("ebs", 1 << 20, dir.sub("vol"));
    ASSERT_TRUE(tier.put("persisted", as_view(payload)).ok());
  }
  BlockTier tier("ebs", 1 << 20, dir.sub("vol"));
  EXPECT_TRUE(tier.contains("persisted"));
  EXPECT_EQ(tier.used(), payload.size());
  auto got = tier.get("persisted");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  EXPECT_TRUE(tier.durable());
}

TEST(FileTierTest, WipeClearsDiskAndIndex) {
  ZeroLatencyScope zero;
  TempDir dir;
  BlockTier tier("ebs", 1 << 20, dir.sub("vol"));
  ASSERT_TRUE(tier.put("a", as_view(make_payload(10, 1))).ok());
  tier.wipe();
  EXPECT_EQ(tier.object_count(), 0u);
  EXPECT_EQ(tier.used(), 0u);
  BlockTier reopened("ebs", 1 << 20, dir.sub("vol"));
  EXPECT_EQ(reopened.object_count(), 0u);
}

TEST(BlockTierTest, PageCacheSpeedsRepeatReads) {
  testing::ZeroLatencyScope scale(0.05);
  TempDir dir;
  BlockTier tier("ebs", 1 << 20, dir.sub("vol"));
  tier.set_page_cache_bytes(1 << 20);
  const Bytes payload = make_payload(4096, 7);
  ASSERT_TRUE(tier.put("hot", as_view(payload)).ok());

  // First read after the write is already cached (writes warm the cache);
  // compare against a cache-disabled tier instead.
  Stopwatch cached_watch;
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(tier.get("hot").ok());
  const double cached_ms = cached_watch.elapsed_ms();

  BlockTier cold("ebs2", 1 << 20, dir.sub("vol2"));
  ASSERT_TRUE(cold.put("hot", as_view(payload)).ok());
  Stopwatch cold_watch;
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(cold.get("hot").ok());
  const double cold_ms = cold_watch.elapsed_ms();

  EXPECT_LT(cached_ms * 2, cold_ms);
  EXPECT_GT(tier.cache_hit_rate(), 0.9);
}

TEST(BlockTierTest, PageCacheEvictsByCapacity) {
  ZeroLatencyScope zero;
  TempDir dir;
  BlockTier tier("ebs", 16 << 20, dir.sub("vol"));
  tier.set_page_cache_bytes(8192);  // two 4K objects
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tier.put("k" + std::to_string(i),
                         as_view(make_payload(4096, i)))
                    .ok());
  }
  // Only the two most recent writes are cached; rereading old keys misses.
  (void)tier.get("k0");
  (void)tier.get("k1");
  EXPECT_LT(tier.cache_hit_rate(), 0.5);
}


TEST(IoSlotsTest, BoundedConcurrencyQueues) {
  testing::ZeroLatencyScope scale(1.0);
  MemTier tier("m", 1 << 20);
  tier.set_io_slots(1);
  EXPECT_EQ(tier.io_slots(), 1u);
  // Two concurrent 20ms operations must serialise: total >= ~40ms.
  ASSERT_TRUE(tier.put("warm", as_view(make_payload(8, 1))).ok());
  Stopwatch watch;
  std::thread a([&] {
    // Large payloads so per-MB cost dominates: ~8ms/MB * 2MB = 16ms each.
    (void)tier.put("a", as_view(make_payload(2 << 20, 2)));
  });
  std::thread b([&] { (void)tier.put("b", as_view(make_payload(2 << 20, 3))); });
  a.join();
  b.join();
  const double serialized = watch.elapsed_ms();
  tier.set_io_slots(0);  // unlimited
  Stopwatch watch2;
  std::thread c([&] { (void)tier.put("c", as_view(make_payload(2 << 20, 4))); });
  std::thread d([&] { (void)tier.put("d", as_view(make_payload(2 << 20, 5))); });
  c.join();
  d.join();
  const double parallel = watch2.elapsed_ms();
  EXPECT_GT(serialized, parallel * 1.2);
}

TEST(TierKindNamesTest, ToString) {
  EXPECT_EQ(to_string(TierKind::kMemory), "memory");
  EXPECT_EQ(to_string(TierKind::kBlock), "block");
  EXPECT_EQ(to_string(TierKind::kEphemeral), "ephemeral");
  EXPECT_EQ(to_string(TierKind::kObject), "object");
}

}  // namespace
}  // namespace tiera
