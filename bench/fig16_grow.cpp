// Figure 16: adapting to a changing workload with the grow response. A
// GrowingInstance (Fig. 6) absorbs a write-heavy stream; when the Memcached
// tier hits 75% of its 20 MB capacity, it grows by 100%. Provisioning the
// bigger cache node takes ~1 modelled minute, and the resize invalidates
// half of the replicated cached objects (consistent-hash remap), which
// shows up as the paper's read-latency spike until the cache re-warms.
// Prints, per modelled minute: tier capacity, space consumed, and the mean
// read latency.
#include <thread>

#include "bench_util.h"
#include "core/templates.h"
#include "workload/kv_workload.h"

using namespace tiera;

int main() {
  const double scale = bench::setup_time_scale(0.02);
  bench::print_title("Figure 16", "grow(): capacity, usage and read latency "
                                  "over a 14-minute window");

  constexpr std::uint64_t kMemBytes = 20ull << 20;   // scaled from 200 MB
  constexpr std::size_t kValue = 4096;
  auto instance = make_growing_instance(
      {.data_dir = bench::scratch_dir("fig16")}, kMemBytes,
      /*ebs_bytes=*/512ull << 20, /*writeback_period=*/std::chrono::seconds(30),
      /*provisioning_delay=*/std::chrono::seconds(60),
      /*remap_fraction=*/0.5);
  if (!instance.ok()) {
    std::fprintf(stderr, "instance failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }

  constexpr int kMinutes = 14;
  // Insert fast enough to cross 15 MB around minute 6:
  // 15 MB / 6 min ≈ 2.5 MB/min ≈ 10.6 obj/s of 4 KB.
  constexpr double kInsertsPerSec = 10.6;

  std::vector<double> capacity_mb(kMinutes + 1), used_mb(kMinutes + 1),
      latency_ms(kMinutes + 1);
  std::vector<LatencyHistogram> per_minute(kMinutes + 1);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inserted{0};
  const TimePoint start = now();

  // Writer: steady insert stream of fresh objects.
  std::thread writer([&] {
    Rng rng(5);
    std::uint64_t next_id = 0;
    while (!stop.load()) {
      const double modelled_elapsed = to_seconds(now() - start) / scale;
      const auto target = static_cast<std::uint64_t>(modelled_elapsed *
                                                     kInsertsPerSec);
      if (next_id >= target) {
        precise_sleep(from_ms(2));
        continue;
      }
      const std::string id = "obj" + std::to_string(next_id);
      if ((*instance)->put(id, as_view(make_payload(kValue, next_id))).ok()) {
        inserted.fetch_add(1);
      }
      ++next_id;
    }
  });

  // Readers: zipfian over what exists so far; latencies bucketed per minute.
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      while (!stop.load()) {
        const std::uint64_t existing = inserted.load();
        if (existing < 10) {
          precise_sleep(from_ms(1));
          continue;
        }
        // Favor recent objects (the growing working set).
        const std::uint64_t index =
            existing - 1 - rng.next_below(std::min<std::uint64_t>(
                               existing, existing / 2 + 1));
        Stopwatch watch;
        auto got = (*instance)->get("obj" + std::to_string(index));
        const double modelled_elapsed = to_seconds(now() - start) / scale;
        const auto minute = static_cast<std::size_t>(modelled_elapsed / 60.0);
        if (got.ok() && minute <= kMinutes) {
          per_minute[minute].record_ms(watch.elapsed_ms() / scale);
        }
        precise_sleep(from_ms(0.5 * scale * 1000));
      }
    });
  }

  // Sampler: capacity/usage snapshot each modelled minute.
  for (int minute = 0; minute <= kMinutes; ++minute) {
    const TimePoint target =
        start + std::chrono::duration_cast<Duration>(
                    std::chrono::seconds(60) * minute * scale);
    while (now() < target) precise_sleep(from_ms(5));
    const auto tier = (*instance)->tier("tier1");
    capacity_mb[minute] = tier->capacity() / (1024.0 * 1024.0);
    used_mb[minute] = tier->used() / (1024.0 * 1024.0);
  }
  stop.store(true);
  writer.join();
  for (auto& reader : readers) reader.join();
  for (int minute = 0; minute <= kMinutes; ++minute) {
    latency_ms[minute] = per_minute[minute].mean_ms();
  }

  std::printf("%8s %14s %14s %16s\n", "min", "capacity(MB)", "used(MB)",
              "read mean(ms)");
  for (int minute = 0; minute <= kMinutes; ++minute) {
    std::printf("%8d %14.1f %14.1f %16.2f\n", minute, capacity_mb[minute],
                used_mb[minute], latency_ms[minute]);
  }
  std::printf("expected shape: capacity doubles shortly after usage crosses "
              "15 MB (75%%);\nread latency spikes for ~2-3 minutes after the "
              "resize (cache misses) then settles.\n");
  return 0;
}
