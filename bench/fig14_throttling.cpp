// Figure 14: throttling background replication. Instance with two EBS
// volumes; after every 50 MB of new data in volume 1 its contents are
// copied to volume 2. Write latencies are compared for:
//   (a) no replication,
//   (b) replication at full speed (contends for the volumes' I/O slots),
//   (c) replication throttled to a 40 KB/s bandwidth cap.
#include "bench_util.h"
#include "core/templates.h"
#include "workload/kv_workload.h"

using namespace tiera;

namespace {

struct RunResult {
  double mean_ms;
  double p95_ms;
};

RunResult run(const char* tag, bool replicate, double bandwidth_bps) {
  auto instance = make_replicated_ebs_instance(
      {.data_dir = bench::scratch_dir(std::string("fig14-") + tag)},
      /*bytes_per_volume=*/512ull << 20, replicate,
      /*bytes_between_syncs=*/2ull << 20, bandwidth_bps);
  if (!instance.ok()) {
    std::fprintf(stderr, "instance failed: %s\n",
                 instance.status().to_string().c_str());
    std::exit(1);
  }
  // Tighten the volume queue depth so replication visibly contends.
  for (const auto& tier : (*instance)->tiers()) tier->set_io_slots(1);

  KvWorkloadOptions options;
  options.record_count = 20'000;
  options.value_size = 4096;
  options.read_fraction = 0.0;  // write-only stream of new data
  options.preload = false;
  options.threads = 2;
  // Paced client (~36 writes/s): the volume has headroom until the
  // replication stream contends for it.
  options.op_delay = from_ms(55);
  options.duration = std::chrono::seconds(70);
  auto backend = KvBackend::for_instance(**instance);
  const KvWorkloadResult result = run_kv_workload(backend, options);
  (*instance)->control().drain();
  return {result.write_latency.mean_ms(), result.write_latency.percentile_ms(0.95)};
}

}  // namespace

int main() {
  bench::setup_time_scale(0.06);
  bench::print_title("Figure 14",
                     "write latency under background replication");

  std::printf("%-28s %10s %9s\n", "configuration", "mean(ms)", "p95(ms)");
  const RunResult none = run("none", false, 0);
  std::printf("%-28s %10.2f %9.2f\n", "No Repl.", none.mean_ms, none.p95_ms);
  const RunResult uncapped = run("uncapped", true, 0);
  std::printf("%-28s %10.2f %9.2f\n", "Repl. without B/W cap",
              uncapped.mean_ms, uncapped.p95_ms);
  const RunResult capped = run("capped", true, 40.0 * 1024);
  std::printf("%-28s %10.2f %9.2f\n", "Repl. with B/W cap (40KB/s)",
              capped.mean_ms, capped.p95_ms);
  std::printf("expected shape: uncapped replication inflates latency "
              "(~50%% in the paper);\nthe 40 KB/s cap restores it to near "
              "the no-replication baseline.\n");
  return 0;
}
