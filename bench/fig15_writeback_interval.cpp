// Figure 15: write latency vs the write-back interval of the
// LowLatencyInstance (Fig. 3). t = 0 behaves as a write-through cache (the
// client pays the synchronous block-store write); large t behaves as a
// write-back cache. YCSB write-only workload.
#include "bench_util.h"
#include "core/templates.h"
#include "workload/kv_workload.h"

using namespace tiera;

int main() {
  bench::setup_time_scale(0.08);
  bench::print_title("Figure 15", "write latency vs interval to persist");

  std::printf("%12s %16s\n", "interval(s)", "write mean(ms)");
  for (const int seconds : {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) {
    auto instance = make_low_latency_instance(
        {.data_dir =
             bench::scratch_dir("fig15-" + std::to_string(seconds))},
        /*mem_bytes=*/256ull << 20, /*ebs_bytes=*/256ull << 20,
        std::chrono::seconds(seconds));
    if (!instance.ok()) {
      std::fprintf(stderr, "instance failed: %s\n",
                   instance.status().to_string().c_str());
      return 1;
    }
    // Modest queue depths: frequent write-back rounds contend with the
    // foreground stream on the Memcached service they read from.
    (*instance)->tier("tier1")->set_io_slots(8);

    KvWorkloadOptions options;
    options.record_count = 4000;
    options.value_size = 4096;
    options.read_fraction = 0.0;
    options.preload = true;  // a standing dirty set for the timer to drain
    options.threads = 8;
    options.duration = std::chrono::seconds(25);
    auto backend = KvBackend::for_instance(**instance);
    const KvWorkloadResult result = run_kv_workload(backend, options);
    (*instance)->control().drain();
    std::printf("%12d %16.2f\n", seconds, result.write_latency.mean_ms());
  }
  std::printf("expected shape: latency falls as the interval grows "
              "(write-through -> write-back\ncontinuum); durability falls "
              "with it — up to one interval of updates is at risk.\n");
  return 0;
}
