// Shared plumbing for the figure-regeneration benches.
//
// Every bench prints the series/rows of one figure or table from the paper's
// evaluation (§4). Latencies and rates are reported in *modelled* time, so
// results are invariant to the wall-clock compression factor
// (TIERA_TIME_SCALE, default per bench).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/clock.h"
#include "common/logging.h"

namespace tiera::bench {

// Scratch directory for one bench run (wiped at start). Prefer tmpfs: the
// file-backed tiers write one file per object, and real disk metadata costs
// would pollute the modelled service times.
inline std::string scratch_dir(const std::string& name) {
  std::error_code ec;
  const std::string base = std::filesystem::exists("/dev/shm", ec)
                               ? "/dev/shm/tiera-bench/"
                               : "/tmp/tiera-bench/";
  const std::string path = base + name;
  std::filesystem::remove_all(path, ec);
  std::filesystem::create_directories(path, ec);
  return path;
}

// Install the time scale: env override wins, otherwise the bench default.
inline double setup_time_scale(double default_scale) {
  double scale = default_scale;
  if (const char* env = std::getenv("TIERA_TIME_SCALE")) {
    scale = std::atof(env);
    if (scale <= 0) scale = default_scale;
  }
  set_time_scale(scale);
  set_log_level(LogLevel::kError);
  return scale;
}

inline void print_title(const std::string& figure, const std::string& what) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), what.c_str());
  std::printf("(modelled time; wall-clock scale %.3f)\n", time_scale());
}

}  // namespace tiera::bench
