// Microbenchmarks (google-benchmark) for the primitives under everything:
// tier data path (no modelled latency), metadata updates, policy firing,
// hashing, compression, and encryption. These quantify the engine's real
// CPU overhead — the part of the Fig. 18 "control layer" cost that is not
// modelled service time.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/logging.h"

#include "common/compress.h"
#include "common/crypto.h"
#include "common/hash.h"
#include "core/responses.h"
#include "core/templates.h"
#include "obs/stage.h"
#include "store/mem_tier.h"

namespace tiera {
namespace {

// GCC 12 false-positives -Wrestrict on operator+(const char*, string&&) when
// fully inlined at -O3 (GCC PR 105329); building the key via append avoids
// that overload while doing the same per-iteration work.
std::string key_of(std::uint64_t i) {
  std::string key = "k";
  key += std::to_string(i);
  return key;
}

void BM_TierPut4K(benchmark::State& state) {
  set_time_scale(0.0);
  MemTier tier("m", 1ull << 32);
  const Bytes payload = make_payload(4096, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tier.put(key_of(i++ % 1000), as_view(payload)));
  }
}
BENCHMARK(BM_TierPut4K);

void BM_TierGet4K(benchmark::State& state) {
  set_time_scale(0.0);
  MemTier tier("m", 1ull << 32);
  const Bytes payload = make_payload(4096, 1);
  for (int i = 0; i < 1000; ++i) {
    (void)tier.put(key_of(i), as_view(payload));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tier.get(key_of(i++ % 1000)));
  }
}
BENCHMARK(BM_TierGet4K);

// The base instance benches run the bare data path (track_heat=false); the
// WithHeat variants below re-enable the default heat/cost telemetry, so the
// delta is the sketch-add + counter cost per op (budget: <= 5%).
// Per-thread keyspaces ("t<thread>-<n>") keep the contention on the engine
// (object-lock stripes, tier internals, metadata) rather than on shared
// benchmark keys. Thread 0 owns setup/teardown; google-benchmark's barrier
// at loop entry publishes the shared instance to the other threads.
std::string thread_key(int thread, std::uint64_t i) {
  std::string key = "t";
  key += std::to_string(thread);
  key += '-';
  key += std::to_string(i);
  return key;
}

void BM_InstancePut4K(benchmark::State& state) {
  static std::unique_ptr<TieraInstance> shared;
  if (state.thread_index() == 0) {
    set_time_scale(0.0);
    set_log_level(LogLevel::kError);
    shared.reset();
    auto instance = make_memcached_ebs_instance(
        {.data_dir = "/tmp/tiera-bench/micro-instance", .track_heat = false},
        1ull << 32, 1ull << 32);
    if (instance.ok()) {
      shared = std::move(*instance);
    } else {
      state.SkipWithError("instance creation failed");
    }
  }
  const Bytes payload = make_payload(4096, 1);
  const int thread = state.thread_index();
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (!shared) break;
    benchmark::DoNotOptimize(
        shared->put(thread_key(thread, i++ % 1000), as_view(payload)));
  }
  state.SetLabel("write-through policy, no modelled latency");
  if (state.thread_index() == 0) shared.reset();
}
BENCHMARK(BM_InstancePut4K)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

void BM_InstanceGet4K(benchmark::State& state) {
  static std::unique_ptr<TieraInstance> shared;
  if (state.thread_index() == 0) {
    set_time_scale(0.0);
    set_log_level(LogLevel::kError);
    shared.reset();
    auto instance = make_memcached_ebs_instance(
        {.data_dir = "/tmp/tiera-bench/micro-instance-get",
         .track_heat = false},
        1ull << 32, 1ull << 32);
    if (instance.ok()) {
      shared = std::move(*instance);
      const Bytes payload = make_payload(4096, 1);
      for (int t = 0; t < state.threads(); ++t) {
        for (int i = 0; i < 1000; ++i) {
          (void)shared->put(thread_key(t, i), as_view(payload));
        }
      }
    } else {
      state.SkipWithError("instance creation failed");
    }
  }
  const int thread = state.thread_index();
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (!shared) break;
    benchmark::DoNotOptimize(shared->get(thread_key(thread, i++ % 1000)));
  }
  if (state.thread_index() == 0) shared.reset();
}
BENCHMARK(BM_InstanceGet4K)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

void BM_InstancePut4KWithHeat(benchmark::State& state) {
  set_time_scale(0.0);
  set_log_level(LogLevel::kError);
  auto instance = make_memcached_ebs_instance(
      {.data_dir = "/tmp/tiera-bench/micro-instance-heat-put"}, 1ull << 32,
      1ull << 32);
  if (!instance.ok()) {
    state.SkipWithError("instance creation failed");
    return;
  }
  const Bytes payload = make_payload(4096, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*instance)->put(key_of(i++ % 1000), as_view(payload)));
  }
  state.SetLabel("heat sketch + cost counters on every PUT");
}
BENCHMARK(BM_InstancePut4KWithHeat);

void BM_InstanceGet4KWithHeat(benchmark::State& state) {
  set_time_scale(0.0);
  set_log_level(LogLevel::kError);
  auto instance = make_memcached_ebs_instance(
      {.data_dir = "/tmp/tiera-bench/micro-instance-heat-get"}, 1ull << 32,
      1ull << 32);
  if (!instance.ok()) {
    state.SkipWithError("instance creation failed");
    return;
  }
  const Bytes payload = make_payload(4096, 1);
  for (int i = 0; i < 1000; ++i) {
    (void)(*instance)->put(key_of(i), as_view(payload));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*instance)->get(key_of(i++ % 1000)));
  }
  state.SetLabel("heat sketch + cost counters on every GET");
}
BENCHMARK(BM_InstanceGet4KWithHeat);

// Same PUT/GET loops with one active latency objective: the delta against
// BM_InstancePut4K/BM_InstanceGet4K is the SLO engine's hot-path cost (one
// ring record per op plus the tracker-list snapshot load).
void BM_InstancePut4KWithSlo(benchmark::State& state) {
  set_time_scale(0.0);
  set_log_level(LogLevel::kError);
  auto instance = make_memcached_ebs_instance(
      {.data_dir = "/tmp/tiera-bench/micro-instance-slo-put"}, 1ull << 32,
      1ull << 32);
  if (!instance.ok()) {
    state.SkipWithError("instance creation failed");
    return;
  }
  SloSpec slo;
  slo.name = "put_p99";
  slo.signal = SloSignal::kPutP99;
  slo.target_ms = 2.0;
  if (!(*instance)->add_slo(slo).ok()) {
    state.SkipWithError("slo registration failed");
    return;
  }
  const Bytes payload = make_payload(4096, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*instance)->put(key_of(i++ % 1000), as_view(payload)));
  }
  state.SetLabel("one active SLO recording every PUT");
}
BENCHMARK(BM_InstancePut4KWithSlo);

void BM_InstanceGet4KWithSlo(benchmark::State& state) {
  set_time_scale(0.0);
  set_log_level(LogLevel::kError);
  auto instance = make_memcached_ebs_instance(
      {.data_dir = "/tmp/tiera-bench/micro-instance-slo-get"}, 1ull << 32,
      1ull << 32);
  if (!instance.ok()) {
    state.SkipWithError("instance creation failed");
    return;
  }
  SloSpec slo;
  slo.name = "get_p99";
  slo.target_ms = 2.0;
  if (!(*instance)->add_slo(slo).ok()) {
    state.SkipWithError("slo registration failed");
    return;
  }
  const Bytes payload = make_payload(4096, 1);
  for (int i = 0; i < 1000; ++i) {
    (void)(*instance)->put(key_of(i), as_view(payload));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*instance)->get(key_of(i++ % 1000)));
  }
  state.SetLabel("one active SLO recording every GET");
}
BENCHMARK(BM_InstanceGet4KWithSlo);

// Stage-timer cost: the default BM_InstancePut4K/Get4K above already run
// with the default 1-in-8 stage sampling (that is the shipping
// configuration); these variants record a breakdown for *every* op
// (sample=1), so the delta is the worst-case full instrumentation cost.
void BM_InstancePut4KWithStages(benchmark::State& state) {
  set_time_scale(0.0);
  set_log_level(LogLevel::kError);
  set_stage_sample_every(1);
  auto instance = make_memcached_ebs_instance(
      {.data_dir = "/tmp/tiera-bench/micro-instance-stage-put"}, 1ull << 32,
      1ull << 32);
  if (!instance.ok()) {
    state.SkipWithError("instance creation failed");
    return;
  }
  const Bytes payload = make_payload(4096, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*instance)->put(key_of(i++ % 1000), as_view(payload)));
  }
  set_stage_sample_every(8);
  state.SetLabel("per-stage breakdown recorded on every PUT");
}
BENCHMARK(BM_InstancePut4KWithStages);

void BM_InstanceGet4KWithStages(benchmark::State& state) {
  set_time_scale(0.0);
  set_log_level(LogLevel::kError);
  set_stage_sample_every(1);
  auto instance = make_memcached_ebs_instance(
      {.data_dir = "/tmp/tiera-bench/micro-instance-stage-get"}, 1ull << 32,
      1ull << 32);
  if (!instance.ok()) {
    state.SkipWithError("instance creation failed");
    return;
  }
  const Bytes payload = make_payload(4096, 1);
  for (int i = 0; i < 1000; ++i) {
    (void)(*instance)->put(key_of(i), as_view(payload));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*instance)->get(key_of(i++ % 1000)));
  }
  set_stage_sample_every(8);
  state.SetLabel("per-stage breakdown recorded on every GET");
}
BENCHMARK(BM_InstanceGet4KWithStages);

void BM_Sha256_4K(benchmark::State& state) {
  const Bytes payload = make_payload(4096, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::digest(as_view(payload)));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Sha256_4K);

void BM_Crc32c_4K(benchmark::State& state) {
  const Bytes payload = make_payload(4096, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(as_view(payload)));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Crc32c_4K);

void BM_LzCompress4K(benchmark::State& state) {
  Bytes redundant;
  while (redundant.size() < 4096) {
    append(redundant, std::string_view("tiera tiered storage "));
  }
  redundant.resize(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lz_compress(as_view(redundant)));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_LzCompress4K);

void BM_ChaChaEncrypt4K(benchmark::State& state) {
  const ChaChaKey key = derive_key("bench");
  const Bytes payload = make_payload(4096, 4);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chacha_encrypt(as_view(payload), key, ++nonce));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ChaChaEncrypt4K);

}  // namespace
}  // namespace tiera

BENCHMARK_MAIN();
