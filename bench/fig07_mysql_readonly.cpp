// Figure 7: unmodified MySQL (minidb) on Tiera vs on EBS — read-only OLTP,
// 8 client threads, sysbench "special" distribution. The x-axis is the hot
// fraction of the data receiving 80% of accesses (1..30%); columns are
// transactions/sec and 95th-percentile transaction latency.
#include "bench_util.h"
#include "mysql_deployments.h"
#include "workload/oltp_workload.h"

using namespace tiera;
using bench::make_db_deployment;

int main() {
  bench::setup_time_scale(0.15);
  bench::print_title("Figure 7",
                     "MySQL read-only TPS and p95 latency vs %hot (8 threads)");

  const char* kinds[] = {"memcached_replicated", "memcached_ebs", "ebs"};
  const char* labels[] = {"Tiera MemcachedReplicated", "Tiera MemcachedEBS",
                          "MySQL On EBS"};

  OltpOptions options;
  options.table_rows = 40'000;
  options.read_only = true;
  options.journal_readonly = true;  // MySQL journals even read-only load
  options.threads = 8;
  options.duration = std::chrono::seconds(15);

  std::printf("%-28s", "instance \\ %hot");
  for (const int hot : {1, 10, 20, 30}) std::printf(" %8d%%", hot);
  std::printf("\n");

  for (int k = 0; k < 3; ++k) {
    std::vector<double> tps_row, p95_row;
    for (const int hot : {1, 10, 20, 30}) {
      auto deployment = make_db_deployment(
          kinds[k], bench::scratch_dir(std::string("fig07-") + kinds[k] +
                                       "-" + std::to_string(hot)));
      options.hot_fraction = hot / 100.0;
      if (!load_oltp_table(*deployment.db, options).ok()) return 1;
      const OltpResult result = run_oltp(*deployment.db, options);
      tps_row.push_back(result.tps());
      p95_row.push_back(result.p95_ms());
    }
    std::printf("%-28s", (std::string(labels[k]) + " TPS").c_str());
    for (double v : tps_row) std::printf(" %9.1f", v);
    std::printf("\n%-28s", (std::string(labels[k]) + " p95ms").c_str());
    for (double v : p95_row) std::printf(" %9.1f", v);
    std::printf("\n");
  }
  std::printf("expected shape: MemcachedReplicated highest TPS / lowest "
              "p95; EBS degrades as the\nhot set outgrows the caches; "
              "MemcachedEBS sits between (journal writes hit EBS).\n");
  return 0;
}
