// CI smoke gate for the heat & spend telemetry subsystem.
//
// Drives a zipfian PUT load (theta 0.99, >= 100k distinct keys) through a
// real instance and asserts the acceptance bar for the sketch geometry: the
// reported per-tier top-20 must contain at least 18 of the true top-20 keys
// (>= 90% recall) while the tracker's memory stays at its fixed bound. Also
// checks the cost ledger's reconciliation invariant — per-rule byte totals
// must equal the engine's policy_bytes counter. Writes the rendered
// heat/cost report to the path given on the command line so CI can upload
// it as an artifact.
//
//   $ ./heat_smoke [heat_report.txt]
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/responses.h"
#include "core/templates.h"
#include "obs/cost_meter.h"
#include "obs/heat.h"

using namespace tiera;

namespace {

bool write_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  set_time_scale(0.0);

  const char* report_path = argc > 1 ? argv[1] : "heat_report.txt";

  auto instance = make_memcached_ebs_instance(
      {.data_dir = bench::scratch_dir("heat-smoke")}, 1ull << 30, 1ull << 30);
  if (!instance.ok()) {
    std::fprintf(stderr, "FAIL: instance creation: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }
  if ((*instance)->heat() == nullptr || (*instance)->cost_meter() == nullptr) {
    std::fprintf(stderr, "FAIL: telemetry not enabled by default\n");
    return 1;
  }

  // Zipfian over >= 100k distinct keys. Theta 0.99 is the YCSB standard;
  // the Gray et al. generator is singular at exactly 1.0.
  constexpr std::uint64_t kKeySpace = 100000;
  constexpr int kAccesses = 400000;
  Rng rng(42);
  ZipfianDistribution zipf(kKeySpace, /*theta=*/0.99, /*scrambled=*/true);
  const Bytes payload = make_payload(512, 9);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  truth.reserve(kKeySpace / 4);
  for (int i = 0; i < kAccesses; ++i) {
    const std::uint64_t key = zipf.next(rng);
    ++truth[key];
    if (!(*instance)->put("obj-" + std::to_string(key), as_view(payload))
             .ok()) {
      std::fprintf(stderr, "FAIL: put %d\n", i);
      return 1;
    }
  }
  (*instance)->control().drain();

  bool ok = true;

  // Invariant 1: reported top-20 recall >= 90% against the exact counts.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked(truth.begin(),
                                                              truth.end());
  if (ranked.size() < 20) {
    std::fprintf(stderr, "FAIL: only %zu distinct keys drawn\n",
                 ranked.size());
    return 1;
  }
  std::partial_sort(
      ranked.begin(), ranked.begin() + 20, ranked.end(),
      [](const auto& a, const auto& b) { return a.second > b.second; });
  const auto snap = (*instance)->heat()->snapshot(20);
  int overlap = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string key = "obj-" + std::to_string(ranked[i].first);
    for (const auto& tier : snap.tiers) {
      const auto hit = std::find_if(
          tier.top.begin(), tier.top.end(),
          [&](const auto& entry) { return entry.key == key; });
      if (hit != tier.top.end()) {
        ++overlap;
        break;
      }
    }
  }
  std::printf("top-20 recall: %d/20 (limit 18)\n", overlap);
  if (overlap < 18) {
    std::fprintf(stderr, "FAIL: heat top-K recall below 90%%\n");
    ok = false;
  }

  // Invariant 2: tracker memory stayed at its fixed bound through 100k
  // distinct keys (per tier: sketch + top-K registers, no per-key state).
  const HeatOptions& options = (*instance)->heat()->options();
  const std::uint64_t per_tier =
      static_cast<std::uint64_t>(options.sketch_shards) *
          options.sketch_depth * options.sketch_width *
          sizeof(std::uint32_t) +
      static_cast<std::uint64_t>(options.top_k) * 256;
  const std::uint64_t bound = per_tier * snap.tiers.size() + 4096;
  const std::uint64_t used = (*instance)->heat()->memory_bytes();
  std::printf("heat memory: %llu bytes (bound %llu)\n",
              static_cast<unsigned long long>(used),
              static_cast<unsigned long long>(bound));
  if (used == 0 || used > bound) {
    std::fprintf(stderr, "FAIL: heat memory outside fixed bound\n");
    ok = false;
  }

  // Invariant 3: the cost ledger reconciles — every policy-moved byte is
  // attributed to exactly one rule.
  const auto cost = (*instance)->cost_meter()->snapshot();
  std::uint64_t rule_bytes = 0;
  for (const auto& rule : cost.rules) rule_bytes += rule.bytes_moved;
  const std::uint64_t policy_bytes = (*instance)->stats().policy_bytes.load();
  std::printf("rule bytes: %llu, policy bytes: %llu\n",
              static_cast<unsigned long long>(rule_bytes),
              static_cast<unsigned long long>(policy_bytes));
  if (rule_bytes != policy_bytes) {
    std::fprintf(stderr, "FAIL: per-rule cost bytes do not reconcile with "
                         "tiera_instance_policy_bytes_total\n");
    ok = false;
  }

  const std::string report = (*instance)->render_top("heat,cost");
  std::fputs(report.c_str(), stdout);
  (void)write_file(report_path, report);

  std::printf("%s\n", ok ? "HEAT-SMOKE PASS" : "HEAT-SMOKE FAIL");
  return ok ? 0 : 1;
}
