// CI perf-smoke gate for the cost-attribution subsystem.
//
// Drives an unsampled PUT/GET/DELETE load through an in-process instance
// (server + RPC client, so the rpc.decode stage is exercised too) with the
// sampling profiler running, then asserts the self-consistency invariant:
// per-op stage sums must reconcile with the whole-op span within 10%, and
// the folded profile must name the journal, policy-eval, and tier-I/O
// frames. Writes the stage-breakdown report and folded stacks to the paths
// given on the command line so CI can upload them as artifacts.
//
//   $ ./stage_smoke [stage_report.txt] [profile.folded]
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_util.h"
#include "core/responses.h"
#include "core/templates.h"
#include "net/tiera_service.h"
#include "obs/profiler.h"
#include "obs/stage.h"

using namespace tiera;

namespace {

bool write_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  set_time_scale(0.0);
  // Unsampled: the reconciliation assertion wants every op's books, and the
  // gate should catch accounting bugs on the first broken op.
  set_stage_sample_every(1);

  const char* report_path = argc > 1 ? argv[1] : "stage_report.txt";
  const char* folded_path = argc > 2 ? argv[2] : "profile.folded";

  auto instance = make_memcached_ebs_instance(
      {.data_dir = bench::scratch_dir("stage-smoke"), .persist_metadata = true},
      1ull << 30, 1ull << 30);
  if (!instance.ok()) {
    std::fprintf(stderr, "FAIL: instance creation: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }
  TieraServer server(**instance, 0, 4);
  if (!server.start().ok()) {
    std::fprintf(stderr, "FAIL: server start\n");
    return 1;
  }
  auto client = RemoteTieraClient::connect("127.0.0.1", server.port());
  if (!client.ok()) {
    std::fprintf(stderr, "FAIL: client connect\n");
    return 1;
  }

  if (!Profiler::global().start(/*interval_us=*/200).ok()) {
    std::fprintf(stderr, "FAIL: profiler start\n");
    return 1;
  }

  const Bytes payload = make_payload(4096, 7);
  constexpr int kOps = 3000;
  for (int i = 0; i < kOps; ++i) {
    const std::string key = "smoke" + std::to_string(i % 500);
    if (!(*client)->put(key, as_view(payload)).ok()) {
      std::fprintf(stderr, "FAIL: put %d\n", i);
      return 1;
    }
    if (!(*client)->get(key).ok()) {
      std::fprintf(stderr, "FAIL: get %d\n", i);
      return 1;
    }
    if (i % 10 == 9 && !(*client)->remove(key).ok()) {
      std::fprintf(stderr, "FAIL: remove %d\n", i);
      return 1;
    }
  }
  (*instance)->control().drain();

  const std::string folded = Profiler::global().stop();
  server.stop();

  const std::string report = render_stage_report();
  std::fputs(report.c_str(), stdout);
  (void)write_file(report_path, report);
  (void)write_file(folded_path, folded);

  bool ok = true;

  // Invariant 1: Σ(named + other) ≈ total, per op, within 10%.
  const double recon = stage_reconciliation_error();
  std::printf("reconciliation error: %.2f%% (limit 10%%)\n", recon * 100.0);
  if (recon > 0.10) {
    std::fprintf(stderr, "FAIL: stage sums do not reconcile with whole-op "
                         "latency\n");
    ok = false;
  }

  // Invariant 2: every op class saw samples.
  bool saw_put = false, saw_get = false, saw_delete = false;
  for (const StageRow& row : stage_breakdown()) {
    if (row.stage != "total") continue;
    if (row.op == "put") saw_put = row.count > 0;
    if (row.op == "get") saw_get = row.count > 0;
    if (row.op == "delete") saw_delete = row.count > 0;
  }
  if (!saw_put || !saw_get || !saw_delete) {
    std::fprintf(stderr, "FAIL: missing op breakdown (put=%d get=%d del=%d)\n",
                 saw_put, saw_get, saw_delete);
    ok = false;
  }

  // Invariant 3: the folded profile names the load-bearing frames.
  for (const char* frame : {"journal.append", "policy.eval", "tier.io"}) {
    if (folded.find(frame) == std::string::npos) {
      std::fprintf(stderr, "FAIL: folded profile has no '%s' frame\n", frame);
      ok = false;
    }
  }
  if (folded.empty()) {
    std::fprintf(stderr, "FAIL: folded profile is empty\n");
    ok = false;
  }

  std::printf("%s\n", ok ? "STAGE-SMOKE PASS" : "STAGE-SMOKE FAIL");
  return ok ? 0 : 1;
}
