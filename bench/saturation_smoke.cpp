// CI saturation gate for the event-driven request core.
//
// Drives a mixed PUT/GET load end-to-end (RemoteTieraClient -> epoll
// reactor -> per-core shards -> instance -> group-committed journal) from
// 1 and then 4 client threads, each on its own connection, with
// journal_sync on so every acknowledged write rides a group-commit fsync.
// Asserts:
//   - zero request errors at both concurrency levels (hard)
//   - fsyncs stay well below one per record: fsyncs * 4 < records (hard)
//   - 4-thread QPS does not collapse below half of 1-thread QPS (hard)
//   - 4-thread QPS >= 3x 1-thread QPS -- only when TIERA_SATURATION_STRICT=1
//     (the scaling gate needs real cores; CI containers often pin us to one)
// Writes a small report to the path given on the command line so CI can
// upload it as an artifact.
//
//   $ ./saturation_smoke [saturation_report.txt]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/responses.h"
#include "core/templates.h"
#include "net/tiera_service.h"
#include "obs/metrics.h"

using namespace tiera;

namespace {

constexpr auto kRunTime = std::chrono::milliseconds(1200);

std::uint64_t counter_value(const char* name) {
  return MetricsRegistry::global().counter(name).value();
}

// Runs `threads` client workers against the server for kRunTime and
// returns aggregate QPS. Each worker owns one connection and a private
// keyspace, so scaling is limited by the server, not by client locking.
double run_load(std::uint16_t port, int threads,
                std::atomic<std::uint64_t>& errors) {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  const Bytes payload = make_payload(4096, 3);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto client = RemoteTieraClient::connect("127.0.0.1", port);
      if (!client.ok()) {
        errors.fetch_add(1);
        return;
      }
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      const auto deadline = std::chrono::steady_clock::now() + kRunTime;
      std::uint64_t i = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        const std::string key =
            "s" + std::to_string(t) + "-" + std::to_string(i % 256);
        if (!(*client)->put(key, as_view(payload)).ok()) {
          errors.fetch_add(1);
          break;
        }
        if (!(*client)->get(key).ok()) {
          errors.fetch_add(1);
          break;
        }
        ops.fetch_add(2);
        ++i;
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  return static_cast<double>(ops.load()) / elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  set_time_scale(0.0);
  const char* report_path = argc > 1 ? argv[1] : "saturation_report.txt";

  auto instance = make_memcached_ebs_instance(
      {.data_dir = bench::scratch_dir("saturation-smoke"),
       .persist_metadata = true,
       .journal_sync = true,
       .track_heat = false},
      1ull << 30, 1ull << 30);
  if (!instance.ok()) {
    std::fprintf(stderr, "FAIL: instance creation: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }
  // Pin the geometry rather than inheriting hardware_concurrency: a 1-CPU
  // CI container would otherwise get one shard, serializing every request
  // and making fsync coalescing structurally impossible. fsync waits are
  // I/O, not CPU, so four shards overlap their journal appends even on one
  // core -- which is exactly what the coalescing gate measures.
  ReactorOptions reactor;
  reactor.loops = 2;
  reactor.shards = 8;
  TieraServer server(**instance, 0, reactor);
  if (!server.start().ok()) {
    std::fprintf(stderr, "FAIL: server start\n");
    return 1;
  }
  const std::size_t loops = server.loop_count();
  const std::size_t shards = server.shard_count();

  std::atomic<std::uint64_t> errors{0};
  const double qps1 = run_load(server.port(), 1, errors);

  const double qps4 = run_load(server.port(), 4, errors);

  // The coalescing gate is judged on a genuinely saturated phase: with N
  // concurrent committers the best possible records/fsync ratio is ~N (one
  // record per writer per batch), so 4 writers top out right at the gate.
  // Eight writers leave headroom; a serial client commits alone by
  // definition and would only dilute the ratio.
  const std::uint64_t records0 =
      counter_value("tiera_metadb_group_commit_records_total");
  const std::uint64_t fsyncs0 =
      counter_value("tiera_metadb_group_commit_fsyncs_total");
  const double qps8 = run_load(server.port(), 8, errors);
  const std::uint64_t records =
      counter_value("tiera_metadb_group_commit_records_total") - records0;
  const std::uint64_t fsyncs =
      counter_value("tiera_metadb_group_commit_fsyncs_total") - fsyncs0;
  server.stop();

  const bool strict = []() {
    const char* env = std::getenv("TIERA_SATURATION_STRICT");
    return env != nullptr && env[0] == '1';
  }();

  bool ok = true;
  if (errors.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu request errors\n",
                 static_cast<unsigned long long>(errors.load()));
    ok = false;
  }
  if (records == 0 || fsyncs == 0) {
    std::fprintf(stderr, "FAIL: journal idle (records=%llu fsyncs=%llu); "
                         "journal_sync load did not reach the group "
                         "committer\n",
                 static_cast<unsigned long long>(records),
                 static_cast<unsigned long long>(fsyncs));
    ok = false;
  } else if (fsyncs * 4 >= records) {
    std::fprintf(stderr, "FAIL: group commit not coalescing: fsyncs=%llu "
                         "records=%llu (gate: fsyncs*4 < records)\n",
                 static_cast<unsigned long long>(fsyncs),
                 static_cast<unsigned long long>(records));
    ok = false;
  }
  if (qps4 < 0.5 * qps1) {
    std::fprintf(stderr, "FAIL: throughput collapses under concurrency "
                         "(qps1=%.0f qps4=%.0f)\n", qps1, qps4);
    ok = false;
  }
  if (strict && qps4 < 3.0 * qps1) {
    std::fprintf(stderr, "FAIL (strict): qps4=%.0f < 3x qps1=%.0f\n",
                 qps4, qps1);
    ok = false;
  }

  std::string report;
  report += "saturation_smoke\n";
  report += "loops: " + std::to_string(loops) + "\n";
  report += "shards: " + std::to_string(shards) + "\n";
  report += "qps_threads_1: " + std::to_string(qps1) + "\n";
  report += "qps_threads_4: " + std::to_string(qps4) + "\n";
  report += "qps_threads_8: " + std::to_string(qps8) + "\n";
  report += "journal_records: " + std::to_string(records) + "\n";
  report += "journal_fsyncs: " + std::to_string(fsyncs) + "\n";
  report += "records_per_fsync: " +
            std::to_string(fsyncs ? static_cast<double>(records) /
                                        static_cast<double>(fsyncs)
                                  : 0.0) + "\n";
  report += std::string("strict_scaling_gate: ") +
            (strict ? "enforced" : "skipped (TIERA_SATURATION_STRICT!=1)") +
            "\n";
  report += std::string("result: ") + (ok ? "PASS" : "FAIL") + "\n";
  std::fputs(report.c_str(), stdout);
  if (std::FILE* f = std::fopen(report_path, "w")) {
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
  }

  std::printf("%s\n", ok ? "SATURATION-SMOKE PASS" : "SATURATION-SMOKE FAIL");
  return ok ? 0 : 1;
}
