// Figure 11 + Table 2: performance/cost tradeoff across three instance
// configurations with growing Memcached share (50/60/70%), exclusive LRU
// tiering Memcached -> EBS -> S3, read workloads from 14 clients (uniform
// and zipfian theta=0.99), 4 KB objects. Reports average read latency per
// workload and the monthly storage cost of each configuration.
#include "bench_util.h"
#include "core/templates.h"
#include "workload/kv_workload.h"

using namespace tiera;

int main() {
  bench::setup_time_scale(0.15);
  bench::print_title("Figure 11 / Table 2",
                     "read latency and cost vs tier mix (TI:1..TI:3)");

  constexpr std::uint64_t kObjects = 1200;
  constexpr std::size_t kValueSize = 4096;
  constexpr std::uint64_t kDataset = kObjects * kValueSize;

  struct Config {
    const char* name;
    double mem, ebs, s3;
  };
  const Config configs[] = {
      {"TI:1 (50% Mem, 30% EBS, 20% S3)", 0.50, 0.30, 0.20},
      {"TI:2 (60% Mem, 20% EBS, 20% S3)", 0.60, 0.20, 0.20},
      {"TI:3 (70% Mem, 10% EBS, 20% S3)", 0.70, 0.10, 0.20},
  };

  std::printf("%-36s %14s %14s %12s\n", "instance", "uniform(ms)",
              "zipfian(ms)", "$/month*");
  for (const auto& config : configs) {
    double latency_ms[2] = {0, 0};
    double cost = 0;
    int which = 0;
    for (const KeyDist dist : {KeyDist::kUniform, KeyDist::kZipfian}) {
      auto instance = make_tiered_lru_instance(
          {.data_dir = bench::scratch_dir(
               std::string("fig11-") + std::to_string(config.mem) +
               (dist == KeyDist::kUniform ? "u" : "z"))},
          kDataset, config.mem, config.ebs, config.s3);
      if (!instance.ok()) {
        std::fprintf(stderr, "instance failed: %s\n",
                     instance.status().to_string().c_str());
        return 1;
      }
      KvWorkloadOptions options;
      options.record_count = kObjects;
      options.value_size = kValueSize;
      options.read_fraction = 1.0;
      options.distribution = dist;
      options.threads = 14;  // the paper's 14 clients
      options.duration = std::chrono::seconds(15);
      auto backend = KvBackend::for_instance(**instance);
      const KvWorkloadResult result = run_kv_workload(backend, options);
      (*instance)->control().drain();
      latency_ms[which++] = result.read_latency.mean_ms();
      cost = (*instance)->monthly_cost();  // storage only (paper excludes
                                           // S3 request charges here)
    }
    std::printf("%-36s %14.2f %14.2f %12.2f\n", config.name, latency_ms[0],
                latency_ms[1], cost);
  }
  std::printf(
      "* storage cost of the scaled-down dataset (%.1f MB); the paper's\n"
      "  absolute dollars use full-size tiers — the trend is the result.\n",
      kDataset / (1024.0 * 1024.0));
  std::printf("expected shape: latency falls and cost rises from TI:1 to "
              "TI:3; zipfian < uniform.\n");
  return 0;
}
