// Figure 18: overhead of the Tiera control layer. The same write-through
// policy is exercised twice: through a Tiera instance (action events fire on
// each request) and with the application writing to the two tiers directly.
// Increasing the number of clients raises the event-firing rate (the
// paper's x-axis, events/sec); the latency gap between the two setups is
// the control-layer overhead.
#include "bench_util.h"
#include "core/responses.h"
#include "core/templates.h"
#include "workload/kv_workload.h"

using namespace tiera;

namespace {

struct Sample {
  double events_per_sec;
  double read_ms;
  double write_ms;
};

Sample run_with_control(std::size_t threads) {
  auto instance = make_memcached_ebs_instance(
      {.data_dir = bench::scratch_dir("fig18-ctl-" + std::to_string(threads))},
      256ull << 20, 512ull << 20);
  if (!instance.ok()) std::exit(1);
  KvWorkloadOptions options;
  options.record_count = 2000;
  options.value_size = 4096;
  options.read_fraction = 0.5;
  options.distribution = KeyDist::kZipfian;
  options.threads = threads;
  options.duration = std::chrono::seconds(25);
  auto backend = KvBackend::for_instance(**instance);
  const auto events_before = (*instance)->control().events_fired();
  const KvWorkloadResult result = run_kv_workload(backend, options);
  const double events =
      static_cast<double>((*instance)->control().events_fired() -
                          events_before) /
      result.elapsed_modelled_seconds;
  return {events, result.read_latency.mean_ms(),
          result.write_latency.mean_ms()};
}

Sample run_without_control(std::size_t threads) {
  // Same tiers, no Tiera server: the application manages both tiers itself.
  auto instance = make_memcached_ebs_instance(
      {.data_dir = bench::scratch_dir("fig18-raw-" + std::to_string(threads))},
      256ull << 20, 512ull << 20);
  if (!instance.ok()) std::exit(1);
  (*instance)->clear_rules();
  KvWorkloadOptions options;
  options.record_count = 2000;
  options.value_size = 4096;
  options.read_fraction = 0.5;
  options.distribution = KeyDist::kZipfian;
  options.threads = threads;
  options.duration = std::chrono::seconds(25);
  auto backend = KvBackend::for_tiers((*instance)->tiers());
  const KvWorkloadResult result = run_kv_workload(backend, options);
  // Each op would have fired ~2 events (action + tier-filtered reaction).
  const double events = result.ops_per_sec() * 2;
  return {events, result.read_latency.mean_ms(),
          result.write_latency.mean_ms()};
}

}  // namespace

int main() {
  bench::setup_time_scale(0.08);
  bench::print_title("Figure 18", "control-layer overhead vs event rate");

  std::printf("%8s | %14s %10s %10s | %14s %10s %10s | %9s\n", "clients",
              "events/s(ctl)", "read(ms)", "write(ms)", "events/s(raw)",
              "read(ms)", "write(ms)", "overhead");
  for (const std::size_t threads : {1, 2, 4, 6, 8, 10}) {
    const Sample with = run_with_control(threads);
    const Sample without = run_without_control(threads);
    const double overhead =
        without.write_ms > 0
            ? (with.write_ms - without.write_ms) / without.write_ms * 100.0
            : 0.0;
    std::printf("%8zu | %14.0f %10.3f %10.3f | %14.0f %10.3f %10.3f | %8.1f%%\n",
                threads, with.events_per_sec, with.read_ms, with.write_ms,
                without.events_per_sec, without.read_ms, without.write_ms,
                overhead);
  }
  std::printf("expected shape: latencies track each other across event "
              "rates; control-layer\noverhead stays small (the paper "
              "reports under 2%%).\n");
  return 0;
}
