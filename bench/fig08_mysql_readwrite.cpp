// Figure 8: the Figure 7 comparison under the read-write OLTP mix (point
// selects + range scan + updates + delete/insert churn per transaction).
// Also reports the MySQL Memory Engine baseline the paper measures in
// passing (~0.15 TPS: table-level locks, no transactions).
#include "bench_util.h"
#include "mysql_deployments.h"
#include "workload/oltp_workload.h"

using namespace tiera;
using bench::make_db_deployment;

int main() {
  bench::setup_time_scale(0.15);
  bench::print_title(
      "Figure 8",
      "MySQL read-write TPS and p95 latency vs %hot (8 threads)");

  const char* kinds[] = {"memcached_replicated", "memcached_ebs", "ebs"};
  const char* labels[] = {"Tiera MemcachedReplicated", "Tiera MemcachedEBS",
                          "MySQL On EBS"};

  OltpOptions options;
  options.table_rows = 40'000;
  options.read_only = false;
  options.threads = 8;
  options.duration = std::chrono::seconds(15);

  std::printf("%-28s", "instance \\ %hot");
  for (const int hot : {1, 10, 20, 30}) std::printf(" %8d%%", hot);
  std::printf("\n");

  for (int k = 0; k < 3; ++k) {
    std::vector<double> tps_row, p95_row;
    for (const int hot : {1, 10, 20, 30}) {
      auto deployment = make_db_deployment(
          kinds[k], bench::scratch_dir(std::string("fig08-") + kinds[k] +
                                       "-" + std::to_string(hot)));
      options.hot_fraction = hot / 100.0;
      if (!load_oltp_table(*deployment.db, options).ok()) return 1;
      const OltpResult result = run_oltp(*deployment.db, options);
      tps_row.push_back(result.tps());
      p95_row.push_back(result.p95_ms());
    }
    std::printf("%-28s", (std::string(labels[k]) + " TPS").c_str());
    for (double v : tps_row) std::printf(" %9.1f", v);
    std::printf("\n%-28s", (std::string(labels[k]) + " p95ms").c_str());
    for (double v : p95_row) std::printf(" %9.1f", v);
    std::printf("\n");
  }

  // Memory Engine baseline (single configuration; the paper reports ~0.15
  // TPS across workloads).
  {
    auto deployment = make_db_deployment(
        "memory_engine", bench::scratch_dir("fig08-memeng"));
    options.hot_fraction = 0.10;
    if (!load_oltp_table(*deployment.db, options).ok()) return 1;
    const OltpResult result = run_oltp(*deployment.db, options);
    std::printf("%-28s %9.2f TPS (table-level locks, no transactions)\n",
                "MySQL Memory Engine", result.tps());
  }
  std::printf("expected shape: MemcachedReplicated far ahead (~125%% over "
              "EBS in the paper);\nMemcachedEBS ~= EBS (journal writes to "
              "EBS gate the commit path); Memory Engine collapses.\n");
  return 0;
}
