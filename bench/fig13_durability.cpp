// Figure 13 + Table 3: performance/durability tradeoff. Two instances:
//   High Durability — Memcached + immediate EBS backup + S3 push every 2 min
//   Low Durability  — Memcached only + S3 backup every 2 min
// YCSB mixed workload (50/50 read/write, uniform, 4 KB). Reports average
// read and write latency plus the monthly storage cost of each.
#include "bench_util.h"
#include "core/templates.h"
#include "workload/kv_workload.h"

using namespace tiera;

int main() {
  bench::setup_time_scale(0.15);
  bench::print_title("Figure 13 / Table 3",
                     "read/write latency and cost vs durability");

  constexpr std::uint64_t kTierBytes = 100ull << 20;  // paper: 100 MB tiers
  const auto push_period = std::chrono::seconds(120);

  std::printf("%-16s %10s %11s %10s\n", "instance", "read(ms)", "write(ms)",
              "$/month");

  for (const bool high : {true, false}) {
    Result<InstancePtr> instance =
        high ? make_high_durability_instance(
                   {.data_dir = bench::scratch_dir("fig13-high")}, kTierBytes,
                   push_period)
             : make_low_durability_instance(
                   {.data_dir = bench::scratch_dir("fig13-low")}, kTierBytes,
                   kTierBytes, push_period);
    if (!instance.ok()) {
      std::fprintf(stderr, "instance failed: %s\n",
                   instance.status().to_string().c_str());
      return 1;
    }
    KvWorkloadOptions options;
    options.record_count = 2000;
    options.value_size = 4096;
    options.read_fraction = 0.5;
    options.distribution = KeyDist::kUniform;
    options.threads = 8;
    options.duration = std::chrono::seconds(25);
    auto backend = KvBackend::for_instance(**instance);
    const KvWorkloadResult result = run_kv_workload(backend, options);
    (*instance)->control().drain();
    std::printf("%-16s %10.2f %11.2f %10.2f\n",
                high ? "High Durability" : "Low Durability",
                result.read_latency.mean_ms(), result.write_latency.mean_ms(),
                (*instance)->monthly_cost());
  }
  std::printf("expected shape: similar read latency; High pays the EBS "
              "write on the write path\nand costs more; Low risks the last "
              "2-minute window of updates.\n");
  return 0;
}
