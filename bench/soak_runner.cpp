// Million-user soak harness: open-loop traffic against a real served
// instance, with admission control in the loop.
//
// Boots the SoakInstance spec (two tiers, GET-p99 SLO, an `admission`
// block) behind a TieraServer, then replays a time-compressed production
// day over RPC from pipelined async clients:
//
//   * a zipfian population of --users simulated users (default 1M)
//   * YCSB-B mix on a diurnal load curve
//   * one flash crowd that exceeds the fast tier's modelled service
//     capacity (io_slots pins it, so the saturation point is machine-
//     independent)
//   * one failure storm on the durable tier (Tier::inject_failure), with
//     the breaker riding it out
//   * a low-rate background scan stream carrying the background RPC flag,
//     so the priority ladder's bottom rung is exercised end to end
//
// GET misses are refilled read-through style (a miss schedules a PUT), so
// the keyspace populates the way a cache does in production.
//
// The run writes a soak report (timeline + phase table + gate verdicts)
// and exits non-zero if any gate fails:
//
//   gate 1  zero unexpected client errors (sheds/throttles and storm-window
//           casualties on the failed tier are expected, and reported)
//   gate 2  the shedder engaged during the crowd (admission runs only)
//   gate 3  peak RSS under the ceiling (--rss-mb, default 512)
//   gate 4  recovery: storms end with breakers closed, every SLO green,
//           and the shed level back to none
//
//   $ ./soak_runner [report.txt] [--users=N] [--rss-mb=N] [--no-admission]
//                   [--soak-scale=F]
//
// TIERA_SOAK_SCALE (or --soak-scale) multiplies every phase duration —
// the nightly lane runs 10x the PR-lane soak. TIERA_TIME_SCALE overrides
// the wall-per-modelled-second compression (default 0.25: the PR soak's
// 260 modelled seconds run in ~65 s of wall clock).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "core/admission.h"
#include "core/spec_parser.h"
#include "net/async_client.h"
#include "net/tiera_service.h"
#include "obs/metrics.h"
#include "workload/traffic.h"

using namespace tiera;

namespace {

// Kept in sync with examples/specs/soak.tiera (embedded so the binary runs
// from any working directory — CI invokes it out of the build tree).
constexpr const char* kSoakSpec = R"(
Tiera SoakInstance(time t) {
  tier1: { name: Memcached, size: 64M };
  tier2: { name: EBS, size: 512M, retries: 2, deadline: 2s, breaker: 3 };

  slo get_p99 < 25ms window 10s burn 30s/5m;

  admission : {
    tenant_rate: 0,
    tenant_burst: 2s,
    max_tenants: 4096,
    shed_burn: 2.0,
    shed_inflight: 75%,
    resume_burn: 1.0,
    resume_inflight: 50%,
    resume_hold: 2s
  };

  event(insert.into) : response {
    if (tier1.filled) {
      move(what: tier1.oldest, to: tier2);
    }
    insert.object.dirty = true;
    store(what: insert.object, to: tier1);
  }

  event(time=t) : response {
    copy(what: object.location == tier1 && object.dirty == true,
         to: tier2);
  }

  background event(tier1.filled == 90%) : response {
    move(what: tier1.oldest, to: tier2);
  }
}
)";

constexpr std::size_t kClients = 4;       // foreground connections = tenants
constexpr std::size_t kValueSize = 1024;
constexpr double kBaseQps = 600;          // modelled req/s at curve baseline
constexpr double kCrowdMultiplier = 8;    // tier1 io_slots=1 caps GETs at
                                          // ~2.9k modelled qps; 8x600 floods it
constexpr double kBackgroundQps = 50;     // background scan stream

// Phase boundaries in modelled seconds, before the soak-scale multiplier.
constexpr double kSteadyEnd = 120;
constexpr double kCrowdEnd = 150;
constexpr double kCalmEnd = 170;
constexpr double kStormEnd = 190;
constexpr double kRunEnd = 260;
// Completions this long after a storm window may still carry the injected
// fault (in-flight retries, breaker reopen until its 500ms probe).
constexpr double kStormGraceS = 15;

struct Phase {
  const char* name;
  double start_s;
  double end_s;
};

enum class OpOutcome { kOk, kShed, kMiss, kStormErr, kUnexpectedErr };

struct SoakStats {
  explicit SoakStats(std::size_t buckets, std::size_t phases)
      : offered(buckets), ok(buckets), shed(buckets), errors(buckets),
        get_latency(phases) {}

  std::vector<std::atomic<std::uint64_t>> offered;
  std::vector<std::atomic<std::uint64_t>> ok;
  std::vector<std::atomic<std::uint64_t>> shed;
  std::vector<std::atomic<std::uint64_t>> errors;  // storm + unexpected
  std::vector<LatencyHistogram> get_latency;       // per phase, modelled ms

  std::atomic<std::uint64_t> total_ok{0};
  std::atomic<std::uint64_t> total_shed{0};
  std::atomic<std::uint64_t> total_miss{0};
  std::atomic<std::uint64_t> total_storm_err{0};
  std::atomic<std::uint64_t> total_unexpected{0};
  std::atomic<std::uint64_t> background_ok{0};
  std::atomic<std::uint64_t> background_shed{0};
};

std::uint64_t rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

class SoakRun {
 public:
  SoakRun(double soak_scale, std::uint64_t users, bool admission_on)
      : scale_(soak_scale),
        admission_on_(admission_on),
        phases_{{"steady", 0, kSteadyEnd * scale_},
                {"crowd", kSteadyEnd * scale_, kCrowdEnd * scale_},
                {"calm", kCrowdEnd * scale_, kCalmEnd * scale_},
                {"storm", kCalmEnd * scale_, kStormEnd * scale_},
                {"recover", kStormEnd * scale_, kRunEnd * scale_}},
        bucket_s_(std::max(1.0, kRunEnd * scale_ / 60.0)),
        stats_(static_cast<std::size_t>(kRunEnd * scale_ / bucket_s_) + 2,
               phases_.size()) {
    options_.users = users;
    options_.mix = OpMix::ycsb_b();
    options_.curve.base_qps = kBaseQps;
    options_.curve.diurnal_amplitude = 0.3;
    options_.curve.diurnal_period_s = kSteadyEnd * scale_;
    options_.curve.crowds = {
        {kSteadyEnd * scale_, (kCrowdEnd - kSteadyEnd) * scale_,
         kCrowdMultiplier}};
    options_.storms = {{"tier2", kCalmEnd * scale_,
                        (kStormEnd - kCalmEnd) * scale_,
                        FailureMode::kFailStop}};
    options_.duration_s = kRunEnd * scale_;
    options_.tenants = kClients;
  }

  int run(const std::string& report_path);
  void set_rss_ceiling(std::uint64_t mb) { rss_ceiling_mb_ = mb; }

 private:
  std::size_t bucket_of(double at_s) const {
    const auto b = static_cast<std::size_t>(at_s / bucket_s_);
    return b < stats_.offered.size() ? b : stats_.offered.size() - 1;
  }

  std::size_t phase_of(double at_s) const {
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      if (at_s < phases_[i].end_s) return i;
    }
    return phases_.size() - 1;
  }

  bool in_storm_window(double at_s) const {
    for (const FailureStorm& storm : options_.storms) {
      if (at_s >= storm.start_s &&
          at_s < storm.start_s + storm.duration_s + kStormGraceS * scale_) {
        return true;
      }
    }
    return false;
  }

  void classify(double at_s, TrafficOpKind kind, const Status& status,
                std::uint64_t user, Duration wall_latency);
  void dispatch(AsyncRpcClient& client, TrafficOpKind kind,
                std::uint64_t user, double at_s);
  void drive_background(std::uint16_t port, std::atomic<bool>* stop);
  void write_report(const std::string& path, const std::string& body);

  const double scale_;
  const bool admission_on_;
  const std::vector<Phase> phases_;
  const double bucket_s_;
  TrafficOptions options_;
  SoakStats stats_;
  Bytes payload_ = make_payload(kValueSize, 7);

  std::mutex fill_mu_;
  std::deque<std::uint64_t> fill_queue_;  // users whose GET missed

  std::vector<std::unique_ptr<AsyncRpcClient>> clients_;
  std::atomic<std::uint64_t> rss_peak_{0};
  std::uint64_t rss_ceiling_mb_ = 512;
};

void SoakRun::classify(double at_s, TrafficOpKind kind, const Status& status,
                       std::uint64_t user, Duration wall_latency) {
  const std::size_t bucket = bucket_of(at_s);
  if (status.ok()) {
    stats_.ok[bucket].fetch_add(1, std::memory_order_relaxed);
    stats_.total_ok.fetch_add(1, std::memory_order_relaxed);
    if (kind == TrafficOpKind::kGet) {
      const double scale = time_scale() > 0 ? time_scale() : 1.0;
      stats_.get_latency[phase_of(at_s)].record_ms(to_ms(wall_latency) /
                                                   scale);
    }
    return;
  }
  if (status.is_overloaded()) {
    stats_.shed[bucket].fetch_add(1, std::memory_order_relaxed);
    stats_.total_shed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (status.is_not_found() && kind == TrafficOpKind::kGet) {
    // Cold key: refill read-through style. The fill rides the normal PUT
    // path (and can itself be shed under pressure — it just re-misses).
    stats_.total_miss.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(fill_mu_);
    fill_queue_.push_back(user);
    return;
  }
  stats_.errors[bucket].fetch_add(1, std::memory_order_relaxed);
  if (in_storm_window(at_s)) {
    stats_.total_storm_err.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.total_unexpected.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "soak: unexpected error at t=%.1fs: %s\n", at_s,
                 status.to_string().c_str());
  }
}

void SoakRun::dispatch(AsyncRpcClient& client, TrafficOpKind kind,
                       std::uint64_t user, double at_s) {
  WireWriter w;
  std::uint8_t method;
  const std::string key = "u" + std::to_string(user);
  if (kind == TrafficOpKind::kGet) {
    method = static_cast<std::uint8_t>(TieraMethod::kGet);
    w.str(key);
  } else {
    method = static_cast<std::uint8_t>(TieraMethod::kPut);
    w.str(key);
    w.bytes(as_view(payload_));
    w.u32(0);  // no tags
  }
  stats_.offered[bucket_of(at_s)].fetch_add(1, std::memory_order_relaxed);
  const TimePoint sent = now();
  const Status rc = client.call_async(
      method, as_view(w.data()),
      [this, at_s, kind, user, sent](Status status, Bytes) {
        classify(at_s, kind, status, user, now() - sent);
      });
  if (!rc.ok()) classify(at_s, kind, rc, user, Duration::zero());
}

// Low-rate scan stream with the background RPC flag set: the first traffic
// the shedder drops, visible as `background_shed` in the report.
void SoakRun::drive_background(std::uint16_t port, std::atomic<bool>* stop) {
  auto client = AsyncRpcClient::connect("127.0.0.1", port);
  if (!client.ok()) return;
  (*client)->set_tenant("scan");
  (*client)->set_background(true);
  const double wall_per_model = time_scale() > 0 ? time_scale() : 1.0;
  Rng rng(99);
  const TimePoint start = now();
  double t = 0;
  while (!stop->load(std::memory_order_acquire) && t < options_.duration_s) {
    t += 1.0 / kBackgroundQps;
    const TimePoint target =
        start + std::chrono::duration_cast<Duration>(
                    std::chrono::duration<double>(t * wall_per_model));
    std::this_thread::sleep_until(target);
    WireWriter w;
    w.str("u" + std::to_string(rng.next_below(options_.users)));
    (*client)->call_async(static_cast<std::uint8_t>(TieraMethod::kGet),
                          as_view(w.data()), [this](Status status, Bytes) {
                            if (status.ok() || status.is_not_found()) {
                              stats_.background_ok.fetch_add(1);
                            } else if (status.is_overloaded()) {
                              stats_.background_shed.fetch_add(1);
                            }
                          });
  }
  // Let stragglers land before the client (and its callbacks) go away.
  for (int i = 0; i < 100 && (*client)->outstanding() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void SoakRun::write_report(const std::string& path, const std::string& body) {
  std::fputs(body.c_str(), stdout);
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fputs(body.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "soak: cannot write report to %s\n", path.c_str());
  }
}

int SoakRun::run(const std::string& report_path) {
  const std::string dir = bench::scratch_dir("soak");
  auto spec = InstanceSpec::parse(kSoakSpec);
  if (!spec.ok()) {
    std::fprintf(stderr, "soak: spec error: %s\n",
                 spec.status().to_string().c_str());
    return 2;
  }
  TemplateOptions opts{.data_dir = dir};
  auto instance = spec->instantiate(opts, {{"t", "10s"}});
  if (!instance.ok()) {
    std::fprintf(stderr, "soak: instantiate error: %s\n",
                 instance.status().to_string().c_str());
    return 2;
  }
  // Pin the fast tier's modelled service concurrency so the flash crowd
  // saturates by model, not by host CPU: 1 slot x 0.35ms GETs ~= 2.9k
  // modelled qps of capacity against the crowd's 4.8k offered.
  (*instance)->tier("tier1")->set_io_slots(1);

  ReactorOptions reactor;
  reactor.loops = 1;
  reactor.shards = 4;
  TieraServer server(**instance, 0, reactor);
  if (admission_on_) {
    auto admission = spec->admission_config();
    if (!admission.ok()) {
      std::fprintf(stderr, "soak: admission spec error: %s\n",
                   admission.status().to_string().c_str());
      return 2;
    }
    server.enable_admission(*admission);
  }
  if (!server.start().ok()) {
    std::fprintf(stderr, "soak: server failed to start\n");
    return 2;
  }

  for (std::size_t i = 0; i < kClients; ++i) {
    auto client = AsyncRpcClient::connect("127.0.0.1", server.port());
    if (!client.ok()) {
      std::fprintf(stderr, "soak: connect failed: %s\n",
                   client.status().to_string().c_str());
      return 2;
    }
    (*client)->set_tenant("t" + std::to_string(i));
    clients_.push_back(std::move(*client));
  }

  std::atomic<bool> stop_aux{false};
  std::thread background(
      [this, port = server.port(), &stop_aux] {
        drive_background(port, &stop_aux);
      });
  std::thread rss_monitor([this, &stop_aux] {
    while (!stop_aux.load(std::memory_order_acquire)) {
      const std::uint64_t rss = rss_bytes();
      if (rss > rss_peak_.load()) rss_peak_.store(rss);
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  });

  // --- the open-loop replay --------------------------------------------
  const double wall_per_model = time_scale() > 0 ? time_scale() : 1.0;
  TrafficSchedule schedule(options_);
  TrafficOp op;
  std::vector<bool> storm_active(options_.storms.size(), false);
  const TimePoint start = now();
  while (schedule.next(&op)) {
    // Storm boundaries ride the schedule clock.
    for (std::size_t s = 0; s < options_.storms.size(); ++s) {
      const FailureStorm& storm = options_.storms[s];
      if (!storm_active[s] && storm.active_at(op.at_s)) {
        storm_active[s] = true;
        std::fprintf(stderr, "soak: t=%.0fs storm begins on %s\n", op.at_s,
                     storm.tier_label.c_str());
        (*instance)->tier(storm.tier_label)->inject_failure(storm.mode);
      } else if (storm_active[s] &&
                 op.at_s >= storm.start_s + storm.duration_s) {
        storm_active[s] = false;
        std::fprintf(stderr, "soak: t=%.0fs storm ends on %s\n", op.at_s,
                     storm.tier_label.c_str());
        (*instance)->tier(storm.tier_label)->heal();
      }
    }
    const TimePoint target =
        start + std::chrono::duration_cast<Duration>(
                    std::chrono::duration<double>(op.at_s * wall_per_model));
    if (now() < target) std::this_thread::sleep_until(target);
    // Read-through fills queued by GET misses ride along as PUTs.
    std::vector<std::uint64_t> fills;
    {
      std::lock_guard<std::mutex> lock(fill_mu_);
      while (!fill_queue_.empty()) {
        fills.push_back(fill_queue_.front());
        fill_queue_.pop_front();
      }
    }
    for (std::uint64_t user : fills) {
      dispatch(*clients_[user % kClients], TrafficOpKind::kPut, user,
               op.at_s);
    }
    dispatch(*clients_[op.tenant % kClients], op.kind, op.user, op.at_s);
  }
  for (std::size_t s = 0; s < options_.storms.size(); ++s) {
    if (storm_active[s]) {
      (*instance)->tier(options_.storms[s].tier_label)->heal();
    }
  }

  // Drain: wait for outstanding responses, then give the control layer a
  // beat of wall time so breakers probe shut and the SLO window clears.
  for (int i = 0; i < 750; ++i) {
    std::size_t outstanding = 0;
    for (const auto& client : clients_) outstanding += client->outstanding();
    if (outstanding == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop_aux.store(true, std::memory_order_release);
  background.join();
  rss_monitor.join();

  // --- gates ------------------------------------------------------------
  const std::uint64_t unexpected = stats_.total_unexpected.load();
  const std::uint64_t shed_total = stats_.total_shed.load();
  const std::uint64_t rss_mb = rss_peak_.load() / (1024 * 1024);

  bool breakers_closed = true;
  std::string breaker_detail;
  for (const TierPtr& tier : (*instance)->tiers()) {
    if (tier->has_breaker() &&
        tier->breaker_state() != BreakerState::kClosed) {
      breakers_closed = false;
      breaker_detail += " " + tier->name();
    }
  }
  bool slo_green = true;
  std::string slo_detail;
  for (const SloStatus& row : (*instance)->slo().status()) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "  slo %s: current=%.2f target=%.2f %s\n",
                  row.name.c_str(), row.current, row.target,
                  row.violated ? "VIOLATED" : "ok");
    slo_detail += buf;
    if (row.violated) slo_green = false;
  }
  int shed_level = AdmissionController::kShedNone;
  AdmissionController::Snapshot admission_snap{};
  if (server.admission() != nullptr) {
    admission_snap = server.admission()->snapshot();
    shed_level = admission_snap.shed_level;
  }

  // --- report -----------------------------------------------------------
  std::string out;
  char line[320];
  std::snprintf(line, sizeof line,
                "soak: users=%llu tenants=%zu admission=%s soak_scale=%.1f "
                "time_scale=%.3f modelled=%.0fs\n",
                static_cast<unsigned long long>(options_.users), kClients,
                admission_on_ ? "on" : "off", scale_, time_scale(),
                options_.duration_s);
  out += line;

  out += "\nphase      window(model s)   get_p99(model ms)  get_p50\n";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    std::snprintf(line, sizeof line, "%-10s [%5.0f,%5.0f)       %8.2f  %8.2f\n",
                  phases_[i].name, phases_[i].start_s, phases_[i].end_s,
                  stats_.get_latency[i].percentile_ms(0.99),
                  stats_.get_latency[i].percentile_ms(0.50));
    out += line;
  }

  out += "\ntimeline (bucket=" + std::to_string(static_cast<int>(bucket_s_)) +
         " model s): t offered ok shed err\n";
  for (std::size_t b = 0; b < stats_.offered.size(); ++b) {
    if (stats_.offered[b].load() == 0 && stats_.ok[b].load() == 0) continue;
    std::snprintf(line, sizeof line, "%6.0f %8llu %8llu %8llu %6llu\n",
                  b * bucket_s_,
                  static_cast<unsigned long long>(stats_.offered[b].load()),
                  static_cast<unsigned long long>(stats_.ok[b].load()),
                  static_cast<unsigned long long>(stats_.shed[b].load()),
                  static_cast<unsigned long long>(stats_.errors[b].load()));
    out += line;
  }

  std::snprintf(line, sizeof line,
                "\ntotals: ok=%llu shed=%llu miss_fill=%llu storm_err=%llu "
                "unexpected_err=%llu background_ok=%llu background_shed=%llu\n",
                static_cast<unsigned long long>(stats_.total_ok.load()),
                static_cast<unsigned long long>(shed_total),
                static_cast<unsigned long long>(stats_.total_miss.load()),
                static_cast<unsigned long long>(stats_.total_storm_err.load()),
                static_cast<unsigned long long>(unexpected),
                static_cast<unsigned long long>(stats_.background_ok.load()),
                static_cast<unsigned long long>(stats_.background_shed.load()));
  out += line;
  if (server.admission() != nullptr) {
    std::snprintf(line, sizeof line,
                  "admission: admitted=%llu shed=%llu throttled=%llu "
                  "final_shed_level=%d\n",
                  static_cast<unsigned long long>(admission_snap.admitted),
                  static_cast<unsigned long long>(admission_snap.shed),
                  static_cast<unsigned long long>(admission_snap.throttled),
                  shed_level);
    out += line;
  }
  out += slo_detail;

  bool pass = true;
  auto gate = [&](const char* name, bool ok, const std::string& detail) {
    std::snprintf(line, sizeof line, "gate %-34s %s%s\n", name,
                  ok ? "PASS" : "FAIL", detail.c_str());
    out += line;
    if (!ok) pass = false;
  };
  out += "\n";
  gate("zero unexpected client errors", unexpected == 0,
       " (" + std::to_string(unexpected) + ")");
  if (admission_on_) {
    gate("shedder engaged under pressure", shed_total > 0,
         " (shed=" + std::to_string(shed_total) + ")");
  }
  gate("peak RSS under ceiling", rss_mb < rss_ceiling_mb_,
       " (" + std::to_string(rss_mb) + " MB / " +
           std::to_string(rss_ceiling_mb_) + " MB)");
  gate("breakers closed after storm", breakers_closed, breaker_detail);
  if (admission_on_) {
    gate("SLO green after recovery", slo_green, "");
    gate("shed level back to none", shed_level == AdmissionController::kShedNone,
         " (level=" + std::to_string(shed_level) + ")");
  } else if (!slo_green) {
    out += "note: SLO violated with admission off (expected under the same "
           "crowd; this mode exists to demonstrate the contrast)\n";
  }
  std::snprintf(line, sizeof line, "\nRESULT: %s\n", pass ? "PASS" : "FAIL");
  out += line;

  write_report(report_path, out);
  server.stop();
  clients_.clear();
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_time_scale(0.25);
  std::string report_path = "soak_report.txt";
  std::uint64_t users = 1'000'000;
  bool admission_on = true;
  double soak_scale = 1.0;
  if (const char* env = std::getenv("TIERA_SOAK_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) soak_scale = v;
  }
  std::uint64_t rss_mb = 512;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--users=", 8) == 0) {
      users = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--rss-mb=", 9) == 0) {
      rss_mb = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--soak-scale=", 13) == 0) {
      soak_scale = std::atof(argv[i] + 13);
    } else if (std::strcmp(argv[i], "--no-admission") == 0) {
      admission_on = false;
    } else if (argv[i][0] != '-') {
      report_path = argv[i];
    }
  }
  SoakRun run(soak_scale, users, admission_on);
  run.set_rss_ceiling(rss_mb);
  return run.run(report_path);
}
