// Figure 10: the TPC-W online bookstore end-to-end on Tiera. Database rows
// AND the static HTML/images served by the web tier live either on an EBS
// volume (standard deployment; instance RAM deliberately small — the paper
// boots the EC2 node with 1 GB so "both MySQL and the web server performed
// sufficient IO") or on the MemcachedEBS Tiera instance. Emulated browsers
// drive the read-dominant shopping mix; the metric is WIPS (web
// interactions per second) for 5..25 browsers.
#include "bench_util.h"
#include "mysql_deployments.h"
#include "apps/bookstore.h"

using namespace tiera;
using bench::make_db_deployment;

namespace {

std::vector<double> run_deployment(const std::string& kind,
                                   const std::vector<std::size_t>& browsers) {
  bench::DbDeploymentKnobs knobs;
  knobs.buffer_pool_pages = 96;
  knobs.os_page_cache_bytes = 1 << 20;  // the paper's RAM-limited instance
  auto deployment =
      make_db_deployment(kind, bench::scratch_dir("fig10-" + kind), knobs);
  if (kind == "ebs") {
    // 2014 standard EBS volumes deliver ~100 IOPS.
    deployment.instance->tier("tier1")->set_io_slots(2);
  }

  BookstoreOptions store_options;
  store_options.items = 250;
  store_options.customers = 2500;
  store_options.html_bytes = 72 << 10;
  store_options.image_bytes = 144 << 10;
  Bookstore store(*deployment.db, *deployment.files, store_options);
  if (!store.initialize().ok()) {
    std::fprintf(stderr, "bookstore init failed\n");
    std::exit(1);
  }
  deployment.instance->control().drain();

  // m3.medium-class web/app server: ~100 ms of CPU per interaction across
  // two worker cores; browsers think ~500 ms between interactions.
  ServerModel server{from_ms(100), 2};
  std::vector<double> wips;
  for (const std::size_t eb : browsers) {
    const BrowserRunResult result = run_emulated_browsers(
        store, eb, /*duration=*/std::chrono::seconds(45),
        /*think_time=*/from_ms(500), /*seed=*/17 + eb, server);
    wips.push_back(result.wips);
  }
  return wips;
}

}  // namespace

int main() {
  bench::setup_time_scale(0.05);
  bench::print_title("Figure 10", "TPC-W bookstore WIPS vs emulated browsers");

  const std::vector<std::size_t> browsers = {5, 10, 15, 20, 25};
  const std::vector<double> ebs = run_deployment("ebs", browsers);
  const std::vector<double> tiera = run_deployment("memcached_ebs", browsers);

  std::printf("%10s %14s %16s %10s\n", "browsers", "TPC-W On EBS",
              "TPC-W On Tiera", "gain");
  for (std::size_t i = 0; i < browsers.size(); ++i) {
    std::printf("%10zu %14.2f %16.2f %9.0f%%\n", browsers[i], ebs[i],
                tiera[i], ebs[i] > 0 ? (tiera[i] - ebs[i]) / ebs[i] * 100.0
                                     : 0.0);
  }
  std::printf("expected shape: Tiera above EBS at every browser count "
              "(46-69%% in the paper);\nthe EBS deployment saturates its "
              "volume as browser concurrency grows.\n");
  return 0;
}
