// Figure 17: adapting to a storage-service failure. A write-through
// Memcached+EBS instance serves a YCSB write-only workload over a 10-minute
// modelled window. Around t = 4 min the EBS service starts timing out
// (as in the real EBS outages the paper cites); a monitoring application
// probing on a schedule detects the failure and reconfigures the instance
// to Ephemeral + S3-backup at t ≈ 6 min. Prints ops/sec per 30-second
// bucket: throughput drops to ~0 during the outage and recovers after the
// reconfiguration.
#include <thread>

#include "bench_util.h"
#include "core/monitor.h"
#include "core/templates.h"
#include "workload/kv_workload.h"

using namespace tiera;

int main() {
  const double scale = bench::setup_time_scale(0.05);
  bench::print_title("Figure 17", "throughput during EBS failure and "
                                  "dynamic reconfiguration");

  auto instance = make_memcached_ebs_instance(
      {.data_dir = bench::scratch_dir("fig17")}, 256ull << 20, 512ull << 20);
  if (!instance.ok()) {
    std::fprintf(stderr, "instance failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }

  StorageMonitor::Options mon_options;
  mon_options.probe_period = std::chrono::minutes(2);  // the paper's schedule
  mon_options.max_retries = 3;
  StorageMonitor monitor(**instance, mon_options, [](TieraInstance& inst) {
    (void)reconfigure_for_ebs_failure(inst, /*ephemeral_bytes=*/512ull << 20,
                                      /*s3_bytes=*/2048ull << 20,
                                      /*s3_backup_period=*/
                                      std::chrono::seconds(120));
  });
  monitor.start();

  ThroughputTimeline timeline(std::chrono::seconds(30), 21);
  KvWorkloadOptions options;
  options.record_count = 100'000;
  options.value_size = 4096;
  options.read_fraction = 0.0;
  options.preload = false;
  options.threads = 8;
  options.duration = std::chrono::seconds(600);
  options.timeline = &timeline;

  // Injector: EBS writes start timing out at t ≈ 4.4 min.
  std::thread injector([&] {
    precise_sleep(std::chrono::duration_cast<Duration>(
        std::chrono::seconds(265) * scale));
    auto ebs = (*instance)->tier("tier2");
    if (ebs) {
      ebs->inject_failure(FailureMode::kTimeout,
                          /*timeout=*/std::chrono::seconds(1));
    }
  });

  timeline.start();
  auto backend = KvBackend::for_instance(**instance);
  const KvWorkloadResult result = run_kv_workload(backend, options);
  injector.join();
  monitor.stop();
  (*instance)->control().drain();

  std::printf("%10s %12s\n", "t(min)", "ops/sec");
  for (std::size_t bucket = 0; bucket < 20; ++bucket) {
    std::printf("%10.1f %12.1f\n", bucket * 0.5, timeline.rate(bucket));
  }
  std::printf("(total ok=%llu failed=%llu; failures detected by monitor: "
              "%d)\n",
              static_cast<unsigned long long>(result.writes),
              static_cast<unsigned long long>(result.errors),
              monitor.failures_detected());
  std::printf("expected shape: steady throughput until minute 4, ~0 during "
              "the outage,\nrestored within ~a minute of the monitor's "
              "detection (around minute 6).\n");
  return 0;
}
