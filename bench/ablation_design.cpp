// Ablations for the design choices DESIGN.md calls out. Each section turns
// one mechanism off and reports the cost of living without it:
//   1. group commit        — journal throughput with/without batching
//   2. promote-on-read     — tiered-LRU read latency with/without promotion
//   3. OS-page-cache model — EBS deployment reads with/without the cache
//   4. storeOnce dedup     — fast-tier effectiveness with/without dedup
#include "bench_util.h"
#include "core/templates.h"
#include "sql/minidb.h"
#include "workload/kv_workload.h"
#include "workload/oltp_workload.h"

using namespace tiera;

namespace {

void ablate_group_commit() {
  std::printf("\n-- ablation 1: journal group commit --\n");
  std::printf("%-16s %10s\n", "group commit", "RW TPS");
  // Group commit lives in minidb's journal; emulate "off" by running one
  // committer at a time (threads=1) vs the batched 8-thread path, against
  // the same storage. The paper-relevant effect: batched commits amortise
  // the block-store write that gates every read-write transaction.
  for (const std::size_t threads : {1u, 8u}) {
    InstanceConfig config;
    config.data_dir = bench::scratch_dir("abl-gc-" + std::to_string(threads));
    config.tiers = {{"EBS", "tier1", 512ull << 20}};
    auto instance = TieraInstance::create(std::move(config));
    if (!instance.ok()) std::exit(1);
    FileAdapter files(**instance, 4096);
    MiniDb db(files);
    if (!db.open().ok()) std::exit(1);
    OltpOptions options;
    options.table_rows = 5000;
    options.hot_fraction = 0.1;
    options.read_only = false;
    options.threads = threads;
    options.duration = std::chrono::seconds(12);
    if (!load_oltp_table(db, options).ok()) std::exit(1);
    const OltpResult result = run_oltp(db, options);
    std::printf("%-16s %10.1f   (%zu committer%s; per-committer %.1f)\n",
                threads == 1 ? "serial" : "batched(8)", result.tps(), threads,
                threads == 1 ? "" : "s", result.tps() / threads);
  }
}

void ablate_promotion() {
  std::printf("\n-- ablation 2: promote-on-read in the tiered LRU chain --\n");
  std::printf("%-16s %16s\n", "promotion", "zipf read ms");
  for (const bool promote : {true, false}) {
    auto instance = make_tiered_lru_instance(
        {.data_dir = bench::scratch_dir(std::string("abl-promo-") +
                                        (promote ? "on" : "off"))},
        1200ull * 4096, 0.5, 0.3, 0.2);
    if (!instance.ok()) std::exit(1);
    if (!promote) {
      // Strip the get-triggered promotion rules, keep placement.
      // (Rule ids 2 and 3 are the promote rules; safer: rebuild policy.)
      (*instance)->clear_rules();
      Rule place;
      place.event = EventDef::on_insert();
      ResponseList demote;
      demote.push_back(make_evict_lru("tier2", "tier3"));
      demote.push_back(make_move(Selector::oldest_in("tier1"), {"tier2"}));
      place.responses.push_back(std::make_unique<ConditionalResponse>(
          Condition::tier_cannot_fit("tier1"), std::move(demote)));
      place.responses.push_back(
          make_store(Selector::action_object(), {"tier1"}));
      (*instance)->add_rule(std::move(place));
    }
    KvWorkloadOptions options;
    options.record_count = 1200;
    options.value_size = 4096;
    options.read_fraction = 1.0;
    options.distribution = KeyDist::kZipfian;
    options.threads = 8;
    options.duration = std::chrono::seconds(15);
    auto backend = KvBackend::for_instance(**instance);
    const KvWorkloadResult result = run_kv_workload(backend, options);
    (*instance)->control().drain();
    std::printf("%-16s %16.2f\n", promote ? "on" : "off",
                result.read_latency.mean_ms());
  }
}

void ablate_page_cache() {
  std::printf("\n-- ablation 3: OS-buffer-cache model on the EBS tier --\n");
  std::printf("%-16s %16s\n", "page cache", "read mean ms");
  for (const bool cache : {true, false}) {
    InstanceConfig config;
    config.data_dir = bench::scratch_dir(std::string("abl-cache-") +
                                         (cache ? "on" : "off"));
    config.tiers = {{"EBS", "tier1", 512ull << 20}};
    auto instance = TieraInstance::create(std::move(config));
    if (!instance.ok()) std::exit(1);
    if (cache) {
      if (auto* block =
              dynamic_cast<BlockTier*>((*instance)->tier("tier1").get())) {
        block->set_page_cache_bytes(4 << 20);
      }
    }
    KvWorkloadOptions options;
    options.record_count = 2000;  // 8 MB working set vs 4 MB cache
    options.value_size = 4096;
    options.read_fraction = 1.0;
    options.distribution = KeyDist::kZipfian;
    options.threads = 8;
    options.duration = std::chrono::seconds(15);
    auto backend = KvBackend::for_instance(**instance);
    const KvWorkloadResult result = run_kv_workload(backend, options);
    std::printf("%-16s %16.2f\n", cache ? "on (4MB)" : "off",
                result.read_latency.mean_ms());
  }
}

void ablate_dedup() {
  std::printf("\n-- ablation 4: storeOnce dedup (50%% duplicate data) --\n");
  std::printf("%-16s %14s %14s\n", "storeOnce", "S3 puts", "mem used KB");
  for (const bool dedup : {true, false}) {
    auto instance = make_memcached_s3_instance(
        {.data_dir = bench::scratch_dir(std::string("abl-dedup-") +
                                        (dedup ? "on" : "off"))},
        /*mem_bytes=*/2 << 20, /*s3_bytes=*/256ull << 20, dedup);
    if (!instance.ok()) std::exit(1);
    Rng rng(3);
    for (int i = 0; i < 400; ++i) {
      const bool duplicate = rng.next_double() < 0.5;
      const std::uint64_t seed = duplicate ? rng.next_below(10) : 10000 + i;
      (void)(*instance)->put("o" + std::to_string(i),
                             as_view(make_payload(4096, seed)));
    }
    (*instance)->control().drain();
    std::printf("%-16s %14llu %14llu\n", dedup ? "on" : "off",
                static_cast<unsigned long long>(
                    (*instance)->tier("tier2")->stats().puts.load()),
                static_cast<unsigned long long>(
                    (*instance)->tier("tier1")->used() / 1024));
  }
}

}  // namespace

int main() {
  bench::setup_time_scale(0.08);
  bench::print_title("Ablations", "design choices, mechanism on vs off");
  ablate_group_commit();
  ablate_promotion();
  ablate_page_cache();
  ablate_dedup();
  return 0;
}
