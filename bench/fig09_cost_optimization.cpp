// Figure 9: cost optimization. MySQL (minidb) on EBS vs on the MemcachedS3
// Tiera instance (small LRU Memcached cache, S3 persistent store). OLTP at
// 10% hot / 80% of accesses, 8 threads, read-only and read-write mixes.
// Reports TPS (the paper plots it on a log scale) and the monthly storage
// cost of each deployment, total and per GB of data.
#include "bench_util.h"
#include "mysql_deployments.h"
#include "workload/oltp_workload.h"

using namespace tiera;
using bench::make_db_deployment;

int main() {
  bench::setup_time_scale(0.15);
  bench::print_title("Figure 9", "TPS and storage cost: EBS vs MemcachedS3");

  OltpOptions options;
  options.table_rows = 40'000;
  options.hot_fraction = 0.10;
  options.threads = 8;
  options.duration = std::chrono::seconds(15);

  const char* kinds[] = {"ebs", "memcached_s3"};
  const char* labels[] = {"MySQL On EBS", "MySQL On Tiera (MemcachedS3)"};

  std::printf("%-30s %12s %12s %12s %12s\n", "deployment", "RO TPS",
              "RW TPS", "$/month", "$/GB-month");
  for (int k = 0; k < 2; ++k) {
    double tps[2] = {0, 0};
    double cost = 0, cost_per_gb = 0;
    int which = 0;
    for (const bool read_only : {true, false}) {
      bench::DbDeploymentKnobs knobs;
      // The paper's standard deployment provisions an 8 GB EBS volume; the
      // Tiera instance is sized to the data (cache) and billed by usage (S3).
      knobs.tier_bytes = kinds[k] == std::string("ebs") ? (8ull << 30)
                                                        : (512ull << 20);
      auto deployment = make_db_deployment(
          kinds[k],
          bench::scratch_dir(std::string("fig09-") + kinds[k] +
                             (read_only ? "-ro" : "-rw")),
          knobs);
      options.read_only = read_only;
      options.journal_readonly = read_only;
      if (!load_oltp_table(*deployment.db, options).ok()) return 1;
      const OltpResult result = run_oltp(*deployment.db, options);
      deployment.instance->control().drain();
      tps[which++] = result.tps();
      // Cost: storage only, the paper's fig-9b/11b methodology (request
      // charges are excluded there; our CostModel can extrapolate them,
      // see EXPERIMENTS.md for that analysis).
      cost = deployment.instance->monthly_cost(0);
      const double data_gb =
          static_cast<double>(options.table_rows) * options.record_size /
          (1024.0 * 1024.0 * 1024.0);
      cost_per_gb = cost / data_gb;
    }
    std::printf("%-30s %12.1f %12.1f %12.2f %12.2f\n", labels[k], tps[0],
                tps[1], cost, cost_per_gb);
  }
  std::printf("expected shape: comparable read-only TPS; Tiera sacrifices "
              "read-write TPS\n(synchronous S3 persistence) but costs a "
              "fraction of the EBS deployment.\n");
  return 0;
}
