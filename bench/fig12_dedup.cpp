// Figure 12: effective fast-tier utilisation through de-duplication. A
// modified S3FS (here: FileAdapter over a Memcached+S3 instance whose
// placement uses the storeOnce response) stores files whose chunks are
// duplicated to varying degrees (0..75%). fio-style zipfian reads
// (theta = 1.2). Reports average read latency and the number of billable S3
// requests — both fall as redundancy rises.
#include "bench_util.h"
#include "core/templates.h"
#include "posix/file_adapter.h"
#include "workload/file_workload.h"

using namespace tiera;

int main() {
  bench::setup_time_scale(0.08);
  bench::print_title("Figure 12",
                     "read latency and S3 requests vs % duplicate chunks");

  constexpr std::size_t kChunk = 4096;
  constexpr std::size_t kChunksPerFile = 64;
  constexpr std::size_t kFiles = 24;
  // 20% Memcached / 80% S3 split, as in the experiment.
  constexpr std::uint64_t kDataset = kFiles * kChunksPerFile * kChunk;

  std::printf("%12s %15s %15s\n", "%duplicates", "read mean(ms)",
              "S3 requests");
  for (const int dup_percent : {0, 25, 50, 75}) {
    auto instance = make_memcached_s3_instance(
        {.data_dir =
             bench::scratch_dir("fig12-" + std::to_string(dup_percent))},
        /*mem_bytes=*/kDataset / 5, /*s3_bytes=*/kDataset * 4,
        /*dedup=*/true);
    if (!instance.ok()) {
      std::fprintf(stderr, "instance failed: %s\n",
                   instance.status().to_string().c_str());
      return 1;
    }
    FileAdapter files(**instance, kChunk);

    // Populate: dup_percent of each file's chunks carry shared content
    // (drawn from a small pool), the rest are unique.
    Rng rng(99);
    for (std::size_t f = 0; f < kFiles; ++f) {
      const std::string path = "data/file" + std::to_string(f);
      if (!files.create(path).ok()) return 1;
      Bytes content;
      content.reserve(kChunksPerFile * kChunk);
      for (std::size_t c = 0; c < kChunksPerFile; ++c) {
        const bool duplicate =
            rng.next_double() < static_cast<double>(dup_percent) / 100.0;
        const std::uint64_t seed =
            duplicate ? 1000 + rng.next_below(8)  // shared pool of 8 blobs
                      : 1'000'000 + f * kChunksPerFile + c;
        append(content, as_view(make_payload(kChunk, seed)));
      }
      if (!files.write(path, 0, as_view(content)).ok()) return 1;
    }
    (*instance)->control().drain();
    // Reset request counters: the figure reports workload-time requests.
    const auto s3 = (*instance)->tier("tier2");
    const std::uint64_t base_requests = s3->stats().total_requests();

    FileWorkloadOptions options;
    options.io_size = kChunk;
    options.zipf_theta = 1.2;
    options.threads = 8;
    options.duration = std::chrono::seconds(30);
    for (std::size_t f = 0; f < kFiles; ++f) {
      options.paths.push_back("data/file" + std::to_string(f));
    }
    const FileWorkloadResult result = run_file_reads(files, options);
    (*instance)->control().drain();
    std::printf("%12d %15.2f %15llu\n", dup_percent,
                result.read_latency.mean_ms(),
                static_cast<unsigned long long>(
                    s3->stats().total_requests() - base_requests));
  }
  std::printf("expected shape: both columns fall with redundancy — "
              "de-duplicated chunks make the\nsmall Memcached tier hold a "
              "larger effective working set and spare S3 round trips.\n");
  return 0;
}
