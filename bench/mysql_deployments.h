// The database deployments compared in §4.1: an unmodified database engine
// (minidb in MySQL's role) whose files live on different storage stacks.
//
//   EBS            — the standard cloud deployment: database files on one
//                    EBS volume, aided only by the instance's OS buffer
//                    cache (modelled in BlockTier).
//   MemcachedRepl  — Tiera instance replicating across two AZ-separated
//                    Memcached tiers before acknowledging.
//   MemcachedEBS   — Tiera instance writing through to Memcached + EBS.
//   MemcachedS3    — cost-oriented Tiera instance: small LRU Memcached
//                    cache over S3.
//   MemoryEngine   — MySQL's Memory Engine: no Tiera, whole DB pinned in
//                    RAM, table-level locks, no transactions.
#pragma once

#include <memory>

#include "bench_util.h"
#include "core/templates.h"
#include "sql/minidb.h"

namespace tiera::bench {

struct DbDeployment {
  InstancePtr instance;
  std::unique_ptr<FileAdapter> files;
  std::unique_ptr<MiniDb> db;
};

struct DbDeploymentKnobs {
  std::size_t buffer_pool_pages = 96;       // the engine's own cache
  std::uint64_t os_page_cache_bytes = 2 << 20;  // EBS deployments only
  std::uint64_t tier_bytes = 512ull << 20;
  bool memory_engine = false;
};

inline DbDeployment make_db_deployment(const std::string& kind,
                                       const std::string& dir,
                                       const DbDeploymentKnobs& knobs = {}) {
  DbDeployment deployment;
  Result<InstancePtr> instance = Status::Internal("unset");
  if (kind == "ebs" || kind == "memory_engine") {
    InstanceConfig config;
    config.data_dir = dir;
    config.tiers = {{"EBS", "tier1", knobs.tier_bytes}};
    instance = TieraInstance::create(std::move(config));
    if (instance.ok()) {
      if (auto* block =
              dynamic_cast<BlockTier*>((*instance)->tier("tier1").get())) {
        block->set_page_cache_bytes(knobs.os_page_cache_bytes);
      }
    }
  } else if (kind == "memcached_replicated") {
    instance = make_memcached_replicated_instance({.data_dir = dir},
                                                  knobs.tier_bytes);
  } else if (kind == "memcached_ebs") {
    instance = make_memcached_ebs_instance({.data_dir = dir},
                                           knobs.tier_bytes, knobs.tier_bytes);
  } else if (kind == "memcached_s3") {
    // Cache too small for the database: the LRU policy earns its keep.
    instance = make_memcached_s3_instance({.data_dir = dir},
                                          knobs.tier_bytes / 32,
                                          knobs.tier_bytes * 4);
  } else {
    std::fprintf(stderr, "unknown deployment kind %s\n", kind.c_str());
    std::exit(1);
  }
  if (!instance.ok()) {
    std::fprintf(stderr, "deployment %s failed: %s\n", kind.c_str(),
                 instance.status().to_string().c_str());
    std::exit(1);
  }
  deployment.instance = std::move(instance).value();
  deployment.files = std::make_unique<FileAdapter>(*deployment.instance, 4096);
  MiniDbOptions options;
  options.buffer_pool_pages = knobs.buffer_pool_pages;
  options.memory_engine = knobs.memory_engine || kind == "memory_engine";
  deployment.db = std::make_unique<MiniDb>(*deployment.files, options);
  if (!deployment.db->open().ok()) {
    std::fprintf(stderr, "minidb open failed for %s\n", kind.c_str());
    std::exit(1);
  }
  return deployment;
}

}  // namespace tiera::bench
