// A cloud-backed file system with de-duplication: the paper's modified
// S3FS (§4.2.1). Files are chunked into 4 KB objects through the
// FileAdapter; the instance's placement policy uses the storeOnce response,
// so chunks with identical content are stored once — saving both fast-tier
// space and billable S3 requests.
//
//   $ ./dedup_fs
#include <cstdio>
#include <filesystem>

#include "common/logging.h"

#include "core/templates.h"
#include "posix/file_adapter.h"

using namespace tiera;

int main() {
  // Start from a clean slate: examples are re-runnable demos.
  std::error_code wipe_ec;
  std::filesystem::remove_all("/tmp/tiera-dedupfs", wipe_ec);

  set_log_level(LogLevel::kWarn);
  set_time_scale(0.05);

  auto instance = make_memcached_s3_instance(
      {.data_dir = "/tmp/tiera-dedupfs"}, /*mem_bytes=*/1 << 20,
      /*s3_bytes=*/256 << 20, /*dedup=*/true);
  if (!instance.ok()) {
    std::fprintf(stderr, "instance failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }
  FileAdapter fs(**instance, 4096);

  // Write 8 "virtual machine images" that share 75% of their chunks.
  const std::size_t chunks_per_file = 64;
  Rng rng(7);
  for (int f = 0; f < 8; ++f) {
    const std::string path = "images/vm" + std::to_string(f) + ".img";
    if (!fs.create(path).ok()) return 1;
    Bytes content;
    for (std::size_t c = 0; c < chunks_per_file; ++c) {
      const bool shared = rng.next_double() < 0.75;
      const std::uint64_t seed = shared ? 42 + (c % 16) : f * 1000 + c;
      append(content, as_view(make_payload(4096, seed)));
    }
    if (!fs.write(path, 0, as_view(content)).ok()) return 1;
  }
  (*instance)->control().drain();

  const auto s3 = (*instance)->tier("tier2");
  const std::size_t logical_chunks = 8 * chunks_per_file;
  std::printf("logical data : %zu chunks (%zu KB)\n", logical_chunks,
              logical_chunks * 4);
  std::printf("stored in S3 : %zu unique blobs (%llu KB)\n",
              s3->object_count(),
              static_cast<unsigned long long>(s3->used() / 1024));
  std::printf("S3 requests  : %llu (vs %zu without storeOnce)\n",
              static_cast<unsigned long long>(s3->stats().puts.load()),
              logical_chunks);

  // Every file still reads back correctly.
  for (int f = 0; f < 8; ++f) {
    const std::string path = "images/vm" + std::to_string(f) + ".img";
    auto size = fs.size(path);
    if (!size.ok() || *size != chunks_per_file * 4096) {
      std::fprintf(stderr, "verification failed for %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("all 8 files verified through the POSIX-style interface\n");
  return 0;
}
