// An unmodified database engine on Tiera (§4.1.1): minidb stores its pages
// and journal through the POSIX-style FileAdapter over a MemcachedEBS
// instance — no database code knows about tiers. Runs a short OLTP burst
// and reports engine + storage statistics.
//
//   $ ./tiered_database
#include <cstdio>
#include <filesystem>

#include "common/logging.h"

#include "core/templates.h"
#include "workload/oltp_workload.h"

using namespace tiera;

int main() {
  // Start from a clean slate: examples are re-runnable demos.
  std::error_code wipe_ec;
  std::filesystem::remove_all("/tmp/tiera-db-demo", wipe_ec);

  set_log_level(LogLevel::kWarn);
  set_time_scale(0.1);

  auto instance = make_memcached_ebs_instance(
      {.data_dir = "/tmp/tiera-db-demo"}, 256 << 20, 512 << 20);
  if (!instance.ok()) {
    std::fprintf(stderr, "instance failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }
  FileAdapter files(**instance, 4096);
  MiniDbOptions db_options;
  db_options.buffer_pool_pages = 128;
  MiniDb db(files, db_options);
  if (!db.open().ok()) return 1;

  OltpOptions workload;
  workload.table_rows = 5000;
  workload.hot_fraction = 0.10;
  workload.read_only = false;
  workload.threads = 4;
  workload.duration = std::chrono::seconds(5);
  if (!load_oltp_table(db, workload).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("loaded %llu rows through the tiered storage stack\n",
              static_cast<unsigned long long>(*db.row_count(workload.table)));

  const OltpResult result = run_oltp(db, workload);
  std::printf("OLTP: %.1f TPS, mean %.2f ms, p95 %.2f ms (%llu txns)\n",
              result.tps(), result.mean_ms(), result.p95_ms(),
              static_cast<unsigned long long>(result.transactions));
  std::printf("engine: buffer pool hit rate %.1f%%, %llu journal commits\n",
              db.buffer_stats().hit_rate() * 100.0,
              static_cast<unsigned long long>(db.journal_commits()));
  for (const auto& label : (*instance)->tier_labels()) {
    const auto tier = (*instance)->tier(label);
    std::printf("tier %-8s %6zu objects  %8llu KB   %llu puts, %llu gets\n",
                label.c_str(), tier->object_count(),
                static_cast<unsigned long long>(tier->used() / 1024),
                static_cast<unsigned long long>(tier->stats().puts.load()),
                static_cast<unsigned long long>(tier->stats().gets.load()));
  }
  return 0;
}
