// Quickstart: build a two-tier Tiera instance, attach an event/response
// policy, store and fetch objects, and inspect placement, stats and cost.
//
//   $ ./quickstart
#include <cstdio>
#include <filesystem>

#include "common/logging.h"

#include "core/instance.h"
#include "core/responses.h"

using namespace tiera;

int main() {
  // Start from a clean slate: examples are re-runnable demos.
  std::error_code wipe_ec;
  std::filesystem::remove_all("/tmp/tiera-quickstart", wipe_ec);

  set_log_level(LogLevel::kWarn);
  set_time_scale(0.1);  // modelled cloud latencies, 10x compressed

  // 1. Declare the tiers this instance encapsulates.
  InstanceConfig config;
  config.name = "quickstart";
  config.data_dir = "/tmp/tiera-quickstart";
  config.tiers = {{"Memcached", "tier1", 64 << 20},
                  {"EBS", "tier2", 256 << 20}};
  auto instance = TieraInstance::create(std::move(config));
  if (!instance.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }

  // 2. Policy: store inserts into Memcached; write through to EBS.
  Rule placement;
  placement.name = "store-into-memcached";
  placement.event = EventDef::on_insert();
  placement.responses.push_back(
      make_store(Selector::action_object(), {"tier1"}));
  (*instance)->add_rule(std::move(placement));

  Rule write_through;
  write_through.name = "write-through";
  write_through.event = EventDef::on_insert("tier1");
  write_through.responses.push_back(
      make_copy(Selector::action_object(), {"tier2"}));
  (*instance)->add_rule(std::move(write_through));

  // 3. PUT/GET through the application interface.
  const Bytes payload = to_bytes("hello, tiered storage");
  if (!(*instance)->put("greeting", as_view(payload), {"demo"}).ok()) {
    std::fprintf(stderr, "put failed\n");
    return 1;
  }
  auto got = (*instance)->get("greeting");
  if (!got.ok()) {
    std::fprintf(stderr, "get failed: %s\n", got.status().to_string().c_str());
    return 1;
  }
  std::printf("read back: %s\n", to_string(as_view(*got)).c_str());

  // 4. Where did the bytes land?
  const auto meta = (*instance)->stat("greeting");
  std::printf("locations:");
  for (const auto& tier : meta->locations) std::printf(" %s", tier.c_str());
  std::printf("  (dirty=%s)\n", meta->dirty ? "true" : "false");

  // 5. Instance statistics and monthly cost estimate.
  std::printf("puts=%llu gets=%llu  put p95=%.2fms  get p95=%.2fms\n",
              static_cast<unsigned long long>(
                  (*instance)->stats().puts.load()),
              static_cast<unsigned long long>(
                  (*instance)->stats().gets.load()),
              (*instance)->stats().put_latency.percentile_ms(0.95),
              (*instance)->stats().get_latency.percentile_ms(0.95));
  for (const auto& cost : (*instance)->cost_breakdown()) {
    std::printf("tier %-16s $%.4f/month\n", cost.tier.c_str(), cost.total());
  }
  return 0;
}
