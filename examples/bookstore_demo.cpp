// The TPC-W-style online bookstore end-to-end on Tiera (§4.1.2): database
// tables AND static web content on a MemcachedEBS instance, driven by
// emulated browsers. Prints WIPS — the paper's Figure 10 metric.
//
//   $ ./bookstore_demo
#include <cstdio>
#include <filesystem>

#include "common/logging.h"

#include "apps/bookstore.h"
#include "core/templates.h"

using namespace tiera;

int main() {
  // Start from a clean slate: examples are re-runnable demos.
  std::error_code wipe_ec;
  std::filesystem::remove_all("/tmp/tiera-bookstore", wipe_ec);

  set_log_level(LogLevel::kWarn);
  set_time_scale(0.05);

  auto instance = make_memcached_ebs_instance(
      {.data_dir = "/tmp/tiera-bookstore"}, 256 << 20, 512 << 20);
  if (!instance.ok()) {
    std::fprintf(stderr, "instance failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }
  FileAdapter files(**instance, 4096);
  MiniDb db(files);
  if (!db.open().ok()) return 1;

  BookstoreOptions options;
  options.items = 100;
  options.customers = 1000;
  Bookstore store(db, files, options);
  if (!store.initialize().ok()) {
    std::fprintf(stderr, "initialize failed\n");
    return 1;
  }
  std::printf("bookstore loaded: %llu items, %llu customers, %zu static "
              "files\n",
              static_cast<unsigned long long>(options.items),
              static_cast<unsigned long long>(options.customers),
              files.list("static/").size() + files.list("img/").size());

  for (const std::size_t browsers : {2u, 8u}) {
    const BrowserRunResult result = run_emulated_browsers(
        store, browsers, /*duration=*/std::chrono::seconds(20),
        /*think_time=*/from_ms(500));
    std::printf("%zu browsers: %.2f WIPS, interaction p95 %.1f ms "
                "(%llu interactions, %llu errors)\n",
                browsers, result.wips,
                result.interaction_latency.percentile_ms(0.95),
                static_cast<unsigned long long>(result.interactions),
                static_cast<unsigned long long>(result.errors));
  }
  return 0;
}
