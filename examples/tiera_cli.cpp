// tiera_cli: command-line client for a running tierad server.
//
//   $ ./tiera_cli <port> put <id> <text> [tag ...]
//   $ ./tiera_cli <port> get <id>
//   $ ./tiera_cli <port> rm <id>
//   $ ./tiera_cli <port> stat <id>
//   $ ./tiera_cli <port> tiers
//   $ ./tiera_cli <port> grow <tier> <percent>
//   $ ./tiera_cli <port> stats [--format=prom|text]
//   $ ./tiera_cli <port> trace [--json] [n]
//   $ ./tiera_cli <port> top [--sections slo,pool,...] [period-seconds]
//   $ ./tiera_cli <port> slo
//   $ ./tiera_cli <port> heat [--top N]
//   $ ./tiera_cli <port> profile [--seconds N] [--interval-us N]
//                                [--folded|--flamegraph-html]
//
// `trace --json` emits Chrome trace-event JSON (open in chrome://tracing or
// https://ui.perfetto.dev); `top` refreshes live per-tier / per-rule activity
// tables until interrupted (`--sections` limits it to a comma-separated
// subset of header,tiers,slo,rules,pool,heat,cost). `heat` prints the
// per-tier hot-key top-K, heat histograms and the live cost-meter breakdown.
// `profile` runs the server's sampling profiler for N seconds and prints
// folded stacks (default) or a self-contained HTML flamegraph — redirect to
// a file and open in a browser.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "net/tiera_service.h"
#include "obs/profiler.h"

using namespace tiera;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  set_time_scale(0.0);  // the server models latency, not the CLI

  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <port> put|get|rm|stat|tiers|grow|stats|trace|top"
                 "|slo|heat|profile ...\n",
                 argv[0]);
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[1]));
  auto client = RemoteTieraClient::connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().to_string().c_str());
    return 1;
  }
  const std::string command = argv[2];

  if (command == "put" && argc >= 5) {
    std::vector<std::string> tags;
    for (int i = 5; i < argc; ++i) tags.emplace_back(argv[i]);
    const Status s =
        (*client)->put(argv[3], as_view(std::string_view(argv[4])), tags);
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }
  if (command == "get" && argc == 4) {
    auto bytes = (*client)->get(argv[3]);
    if (!bytes.ok()) {
      std::fprintf(stderr, "get failed: %s\n",
                   bytes.status().to_string().c_str());
      return 1;
    }
    std::fwrite(bytes->data(), 1, bytes->size(), stdout);
    std::printf("\n");
    return 0;
  }
  if (command == "rm" && argc == 4) {
    const Status s = (*client)->remove(argv[3]);
    if (!s.ok()) {
      std::fprintf(stderr, "rm failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }
  if (command == "stat" && argc == 4) {
    auto info = (*client)->stat(argv[3]);
    if (!info.ok()) {
      std::fprintf(stderr, "stat failed: %s\n",
                   info.status().to_string().c_str());
      return 1;
    }
    std::printf("id: %s\nsize: %llu\naccess_count: %llu\ndirty: %s\n",
                info->id.c_str(),
                static_cast<unsigned long long>(info->size),
                static_cast<unsigned long long>(info->access_count),
                info->dirty ? "true" : "false");
    std::printf("locations:");
    for (const auto& tier : info->locations) std::printf(" %s", tier.c_str());
    std::printf("\ntags:");
    for (const auto& tag : info->tags) std::printf(" %s", tag.c_str());
    std::printf("\n");
    return 0;
  }
  if (command == "tiers" && argc == 3) {
    auto tiers = (*client)->list_tiers();
    if (!tiers.ok()) return 1;
    for (const auto& tier : *tiers) std::printf("%s\n", tier.c_str());
    return 0;
  }
  if (command == "stats" && (argc == 3 || argc == 4)) {
    std::string format = "text";
    if (argc == 4) {
      const std::string arg = argv[3];
      const std::string prefix = "--format=";
      if (arg.rfind(prefix, 0) != 0) {
        std::fprintf(stderr, "usage: stats [--format=prom|text]\n");
        return 2;
      }
      format = arg.substr(prefix.size());
    }
    auto text = (*client)->stats(format);
    if (!text.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   text.status().to_string().c_str());
      return 1;
    }
    std::fputs(text->c_str(), stdout);
    return 0;
  }
  if (command == "trace" && argc >= 3 && argc <= 5) {
    bool json = false;
    std::uint32_t n = 0;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        json = true;
      } else {
        n = static_cast<std::uint32_t>(std::atoi(argv[i]));
      }
    }
    if (json) {
      // Fetch structured spans and render Chrome trace-event JSON locally,
      // so the output is a file chrome://tracing / Perfetto load directly.
      auto spans = (*client)->trace_spans(n ? n : 512u);
      if (!spans.ok()) {
        std::fprintf(stderr, "trace failed: %s\n",
                     spans.status().to_string().c_str());
        return 1;
      }
      std::fputs(render_chrome_trace(*spans).c_str(), stdout);
      return 0;
    }
    auto text = (*client)->trace(n ? n : 32u);
    if (!text.ok()) {
      std::fprintf(stderr, "trace failed: %s\n",
                   text.status().to_string().c_str());
      return 1;
    }
    std::fputs(text->c_str(), stdout);
    return 0;
  }
  if (command == "top") {
    double period = 2.0;
    std::string format = "top";
    bool bad = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--sections" && i + 1 < argc) {
        format = std::string("top:") + argv[++i];
      } else if (!arg.empty() && (std::isdigit(arg[0]) || arg[0] == '.')) {
        period = std::atof(arg.c_str());
      } else {
        bad = true;
      }
    }
    if (bad) {
      std::fprintf(stderr,
                   "usage: top [--sections header,tiers,slo,rules,pool,heat,"
                   "cost] [period-seconds]\n");
      return 2;
    }
    for (;;) {
      auto text = (*client)->stats(format);
      if (!text.ok()) {
        std::fprintf(stderr, "top failed: %s\n",
                     text.status().to_string().c_str());
        return 1;
      }
      // ANSI clear + home, like top(1); harmless when redirected to a file.
      std::printf("\x1b[2J\x1b[H%s", text->c_str());
      std::fflush(stdout);
      if (period <= 0) return 0;  // one shot (scripting/tests)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int>(period * 1000)));
    }
  }
  if (command == "slo" && argc == 3) {
    auto rows = (*client)->slo();
    if (!rows.ok()) {
      std::fprintf(stderr, "slo failed: %s\n",
                   rows.status().to_string().c_str());
      return 1;
    }
    if (rows->empty()) {
      std::printf("no SLOs declared\n");
      return 0;
    }
    std::printf("%-18s %-10s %10s %10s %8s %8s %8s %9s %5s\n", "SLO", "TIER",
                "TARGET", "CURRENT", "WINDOW", "BURN-S", "BURN-L", "STATE",
                "VIOL");
    for (const auto& row : *rows) {
      char target[32], current[32];
      if (row.is_latency) {
        std::snprintf(target, sizeof(target), "%.2fms", row.target);
        std::snprintf(current, sizeof(current), "%.2fms", row.current);
      } else {
        std::snprintf(target, sizeof(target), "%.2f%%", row.target * 100.0);
        std::snprintf(current, sizeof(current), "%.2f%%", row.current * 100.0);
      }
      std::printf("%-18s %-10s %10s %10s %7.0fs %8.2f %8.2f %9s %5llu\n",
                  row.name.c_str(), row.tier.empty() ? "-" : row.tier.c_str(),
                  target, current, row.window_s, row.burn_short, row.burn_long,
                  row.violated ? "VIOLATED" : "ok",
                  static_cast<unsigned long long>(row.violations));
    }
    return 0;
  }
  if (command == "heat") {
    std::uint32_t top_n = 20;
    bool bad = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--top" && i + 1 < argc) {
        top_n = static_cast<std::uint32_t>(std::atoi(argv[++i]));
      } else {
        bad = true;
      }
    }
    if (bad || top_n == 0) {
      std::fprintf(stderr, "usage: heat [--top N]\n");
      return 2;
    }
    auto report = (*client)->heat(top_n);
    if (!report.ok()) {
      std::fprintf(stderr, "heat failed: %s\n",
                   report.status().to_string().c_str());
      return 1;
    }
    if (!report->enabled) {
      std::printf("heat tracking disabled on server (track_heat=false)\n");
      return 0;
    }
    std::printf("heat: half-life=%.0fs epochs=%llu mem=%llu bytes\n",
                report->half_life_s,
                static_cast<unsigned long long>(report->decay_epochs),
                static_cast<unsigned long long>(report->memory_bytes));
    for (const auto& tier : report->tiers) {
      std::printf("\n[%s] tracked=%llu records=%llu bytes=%llu "
                  "evictions=%llu\n",
                  tier.tier.c_str(),
                  static_cast<unsigned long long>(tier.tracked_keys),
                  static_cast<unsigned long long>(tier.records),
                  static_cast<unsigned long long>(tier.bytes),
                  static_cast<unsigned long long>(tier.evictions));
      std::printf("  %-40s %10s %10s\n", "KEY", "EST", "RATE/S");
      for (const auto& entry : tier.top) {
        std::printf("  %-40s %10llu %10.2f\n", entry.key.c_str(),
                    static_cast<unsigned long long>(entry.estimate),
                    entry.rate_per_s);
      }
      // Histogram buckets are [2^i, 2^(i+1)) decayed-estimate ranges; only
      // print the occupied ones.
      bool any = false;
      for (std::size_t b = 0; b < tier.histogram.size(); ++b) {
        if (tier.histogram[b] == 0) continue;
        if (!any) std::printf("  heat histogram (est range: keys):\n");
        any = true;
        std::printf("    [%llu, %llu): %llu\n",
                    static_cast<unsigned long long>(1ull << b),
                    static_cast<unsigned long long>(1ull << (b + 1)),
                    static_cast<unsigned long long>(tier.histogram[b]));
      }
    }
    std::printf("\ncost: total=$%.6f burn=$%.4f/mo modelled=%.0fs\n",
                report->total_dollars, report->monthly_burn_dollars,
                report->modelled_seconds);
    std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "TIER", "STORAGE$",
                "REQUEST$", "EGRESS$", "BURN$/MO", "READ-B", "WRITE-B");
    for (const auto& tier : report->tier_costs) {
      std::printf("%-10s %12.6f %12.6f %12.6f %12.4f %12llu %12llu\n",
                  tier.tier.c_str(), tier.storage_dollars,
                  tier.request_dollars, tier.egress_dollars,
                  tier.monthly_burn_dollars,
                  static_cast<unsigned long long>(tier.read_bytes),
                  static_cast<unsigned long long>(tier.write_bytes));
    }
    if (!report->rule_costs.empty()) {
      std::printf("%-10s %-18s %12s %8s %12s\n", "RULE", "NAME", "BYTES",
                  "OBJ", "$");
      for (const auto& rule : report->rule_costs) {
        std::printf("%-10llu %-18s %12llu %8llu %12.6f\n",
                    static_cast<unsigned long long>(rule.rule_id),
                    rule.name.c_str(),
                    static_cast<unsigned long long>(rule.bytes),
                    static_cast<unsigned long long>(rule.objects),
                    rule.dollars);
      }
    }
    return 0;
  }
  if (command == "profile") {
    double seconds = 2.0;
    std::uint32_t interval_us = 1000;
    bool html = false;
    bool bad = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--seconds" && i + 1 < argc) {
        seconds = std::atof(argv[++i]);
      } else if (arg == "--interval-us" && i + 1 < argc) {
        interval_us = static_cast<std::uint32_t>(std::atoi(argv[++i]));
      } else if (arg == "--flamegraph-html") {
        html = true;
      } else if (arg == "--folded") {
        html = false;
      } else {
        bad = true;
      }
    }
    if (bad || seconds <= 0) {
      std::fprintf(stderr,
                   "usage: profile [--seconds N] [--interval-us N] "
                   "[--folded|--flamegraph-html]\n");
      return 2;
    }
    auto folded = (*client)->profile(
        static_cast<std::uint32_t>(seconds * 1000.0), interval_us);
    if (!folded.ok()) {
      std::fprintf(stderr, "profile failed: %s\n",
                   folded.status().to_string().c_str());
      return 1;
    }
    if (html) {
      std::fputs(render_flamegraph_html(*folded, "tiera profile").c_str(),
                 stdout);
    } else {
      std::fputs(folded->c_str(), stdout);
    }
    return 0;
  }
  if (command == "grow" && argc == 5) {
    const Status s = (*client)->grow_tier(argv[3], std::atof(argv[4]));
    if (!s.ok()) {
      std::fprintf(stderr, "grow failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }
  std::fprintf(stderr, "bad command/arguments\n");
  return 2;
}
