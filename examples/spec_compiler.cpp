// Instance specification files, end to end: parse a .tiera spec (the
// paper's Figure 3-6 syntax), instantiate it, and exercise the policy.
//
//   $ ./spec_compiler [path/to/spec.tiera]
//
// Defaults to examples/specs/low_latency.tiera next to the binary's source
// tree, falling back to an embedded copy of the Figure 3 spec.
#include <cstdio>
#include <filesystem>

#include "common/logging.h"

#include "core/spec_parser.h"

using namespace tiera;

namespace {
constexpr std::string_view kEmbeddedSpec = R"(
Tiera LowLatencyInstance(time t) {
  tier1: { name: Memcached, size: 64M };
  tier2: { name: EBS, size: 256M };
  event(insert.into) : response {
    insert.object.dirty = true;
    store(what: insert.object, to: tier1);
  }
  event(time=t) : response {
    copy(what: object.location == tier1 && object.dirty == true,
         to: tier2);
  }
}
)";
}  // namespace

int main(int argc, char** argv) {
  // Start from a clean slate: examples are re-runnable demos.
  std::error_code wipe_ec;
  std::filesystem::remove_all("/tmp/tiera-spec-demo", wipe_ec);

  set_log_level(LogLevel::kWarn);
  set_time_scale(0.1);

  Result<InstanceSpec> spec = Status::NotFound("no spec");
  if (argc > 1) {
    spec = InstanceSpec::parse_file(argv[1]);
  } else {
    spec = InstanceSpec::parse_file("examples/specs/low_latency.tiera");
    if (!spec.ok()) spec = InstanceSpec::parse(kEmbeddedSpec);
  }
  if (!spec.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 spec.status().to_string().c_str());
    return 1;
  }
  std::printf("parsed instance '%s': %zu tiers, %zu rules, %zu parameters\n",
              spec->instance_name().c_str(), spec->tier_count(),
              spec->rule_count(), spec->parameters().size());

  // Bind every declared parameter to a demo value (here: 2s write-back).
  std::map<std::string, std::string> args;
  for (const auto& param : spec->parameters()) args[param] = "2s";

  auto instance =
      spec->instantiate({.data_dir = "/tmp/tiera-spec-demo"}, args);
  if (!instance.ok()) {
    std::fprintf(stderr, "instantiate failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }

  // Drive the policy: insert objects, then watch the write-back (or
  // whatever the spec declares) move data between tiers.
  for (int i = 0; i < 32; ++i) {
    const std::string id = "object" + std::to_string(i);
    if (!(*instance)->put(id, as_view(make_payload(64 << 10, i))).ok()) {
      std::fprintf(stderr, "put %s failed\n", id.c_str());
      return 1;
    }
  }
  std::printf("inserted 32 objects (2 MB)\n");
  const auto report = [&] {
    for (const auto& label : (*instance)->tier_labels()) {
      const auto tier = (*instance)->tier(label);
      std::printf("  %-8s %4zu objects, %6.2f MB used\n", label.c_str(),
                  tier->object_count(), tier->used() / (1024.0 * 1024.0));
    }
  };
  std::printf("immediately after inserts:\n");
  report();

  // Give timer/background rules a chance to run (3 modelled seconds).
  precise_sleep(std::chrono::duration_cast<Duration>(
      std::chrono::seconds(3) * time_scale()));
  (*instance)->control().drain();
  std::printf("after the policy's timers fired:\n");
  report();
  return 0;
}
