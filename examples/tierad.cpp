// tierad: the Tiera server as a standalone process (the paper deploys the
// prototype as a Thrift server on an EC2 instance). Reads an instance
// specification file, serves the PUT/GET application interface over the
// framed-RPC protocol, and prints stats on shutdown.
//
//   $ ./tierad <spec.tiera> [port] [param=value ...] [--stats-period=<sec>]
//            [--retries=<n>] [--deadline=<dur>] [--breaker[=<n>]] [--hedge[=<q>%]]
//            [--persist-metadata] [--journal-sync] [--journal-batch=<size>]
//            [--loops=<n>] [--shards=<n>]
//            [--admission] [--no-admission] [--tenant-rate=<req/s>]
//            [--tenant-burst=<dur>] [--shed-burn=<x>] [--shed-inflight=<f>]
//
// --loops/--shards size the request core: epoll event loops owning the
// sockets and per-core worker shards running the handlers (0 = one per
// hardware thread). --journal-sync fsyncs the metadata journal on every
// acknowledged write; --journal-batch bounds the group-commit batches that
// amortize those fsyncs across concurrent writers (a `journal_batch:`
// declaration in the spec overrides the flag).
//
// --stats-period=N logs the metrics registry (human-readable rendering)
// every N seconds while serving. --persist-metadata journals object
// metadata to <data_dir>/metadb so a restarted tierad recovers its index
// (and the journal.append stage/profiler frames are exercised).
//
// Admission control (the overload front door, DESIGN.md §14): an
// `admission: { ... };` block in the spec enables it with the declared
// knobs; --admission enables it with defaults when the spec has no block;
// --no-admission forces it off either way. The --tenant-rate/--tenant-burst/
// --shed-burn/--shed-inflight flags override individual knobs. Shed
// requests fail fast with OVERLOADED and show up in
// tiera_admission_shed_total and the `top` ADMISSION table, not in
// tiera_rpc_errors_total.
//
// The resilience flags set the default ResiliencePolicy for tiers whose
// spec declaration carries no knobs of its own (same grammar as the spec
// fields — see DESIGN.md §8): --retries=3 --deadline=50ms --breaker=5
// --hedge=95%.
//
// Tracing knobs (read by every served instance): TIERA_TRACE_CAPACITY sizes
// the span ring (overflow counts into `tiera_trace_dropped_total`), and
// TIERA_SLOW_OP_MS logs completed span trees slower than the threshold.
// `tiera_cli trace --json` and `tiera_cli top` consume the result.
//
// A second process (or the remote client API) can then connect:
//   auto client = RemoteTieraClient::connect("127.0.0.1", port);
//
// With --demo, tierad spawns an in-process client, round-trips a few
// objects through the RPC surface, and exits (used for smoke testing).
#include <csignal>
#include <cstdio>

#include "common/logging.h"
#include <cstring>

#include "core/spec_parser.h"
#include "net/tiera_service.h"
#include "store/tier_factory.h"
#include "obs/metrics.h"

using namespace tiera;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  set_time_scale(0.1);

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <spec.tiera> [port] [k=v ...] [--demo]\n",
                 argv[0]);
    return 2;
  }
  bool demo = false;
  bool persist_metadata = false;
  bool journal_sync = false;
  bool force_admission = false;
  bool no_admission = false;
  std::string tenant_rate, tenant_burst, shed_burn, shed_inflight;
  std::string journal_batch;
  ReactorOptions reactor;
  std::uint16_t port = 0;
  int stats_period_s = 0;
  std::string retries, deadline, breaker, hedge;
  std::map<std::string, std::string> args;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--persist-metadata") == 0) {
      persist_metadata = true;
    } else if (std::strcmp(argv[i], "--journal-sync") == 0) {
      journal_sync = true;
    } else if (std::strncmp(argv[i], "--journal-batch=", 16) == 0) {
      journal_batch = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--loops=", 8) == 0) {
      reactor.loops = static_cast<std::size_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      reactor.shards = static_cast<std::size_t>(std::atoi(argv[i] + 9));
    } else if (std::strcmp(argv[i], "--admission") == 0) {
      force_admission = true;
    } else if (std::strcmp(argv[i], "--no-admission") == 0) {
      no_admission = true;
    } else if (std::strncmp(argv[i], "--tenant-rate=", 14) == 0) {
      tenant_rate = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--tenant-burst=", 15) == 0) {
      tenant_burst = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--shed-burn=", 12) == 0) {
      shed_burn = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--shed-inflight=", 16) == 0) {
      shed_inflight = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--stats-period=", 15) == 0) {
      stats_period_s = std::atoi(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      retries = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--deadline=", 11) == 0) {
      deadline = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--breaker=", 10) == 0) {
      breaker = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--breaker") == 0) {
      breaker = "on";
    } else if (std::strncmp(argv[i], "--hedge=", 8) == 0) {
      hedge = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--hedge") == 0) {
      hedge = "on";
    } else if (std::strchr(argv[i], '=')) {
      const std::string kv = argv[i];
      const auto eq = kv.find('=');
      args[kv.substr(0, eq)] = kv.substr(eq + 1);
    } else {
      port = static_cast<std::uint16_t>(std::atoi(argv[i]));
    }
  }

  auto spec = InstanceSpec::parse_file(argv[1]);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec error: %s\n",
                 spec.status().to_string().c_str());
    return 1;
  }
  for (const auto& param : spec->parameters()) {
    if (!args.count(param)) args[param] = "30s";  // default binding
  }
  TemplateOptions opts{.data_dir = "/tmp/tierad"};
  auto resilience =
      parse_resilience_fields(retries, deadline, breaker, hedge);
  if (!resilience.ok()) {
    std::fprintf(stderr, "resilience flag error: %s\n",
                 resilience.status().to_string().c_str());
    return 2;
  }
  opts.default_resilience = *resilience;
  opts.persist_metadata = persist_metadata;
  opts.journal_sync = journal_sync;
  if (!journal_batch.empty()) {
    auto batch = parse_size(journal_batch);
    if (!batch.ok()) {
      std::fprintf(stderr, "--journal-batch error: %s\n",
                   batch.status().to_string().c_str());
      return 2;
    }
    opts.journal_batch_bytes = *batch;
  }
  auto instance = spec->instantiate(opts, args);
  if (!instance.ok()) {
    std::fprintf(stderr, "instantiate error: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }
  // Served instances always trace: the kTrace verb / `tiera_cli trace`
  // should answer "what did the last N requests do" out of the box.
  (*instance)->tracer().set_enabled(true);

  TieraServer server(**instance, port, reactor);
  if ((spec->has_admission() || force_admission) && !no_admission) {
    auto admission = spec->admission_config();
    if (!admission.ok()) {
      std::fprintf(stderr, "admission spec error: %s\n",
                   admission.status().to_string().c_str());
      return 1;
    }
    if (!tenant_rate.empty()) admission->tenant_rate = std::atof(tenant_rate.c_str());
    if (!tenant_burst.empty()) {
      auto burst = parse_duration_text(tenant_burst);
      if (!burst.ok()) {
        std::fprintf(stderr, "--tenant-burst error: %s\n",
                     burst.status().to_string().c_str());
        return 2;
      }
      admission->tenant_burst_s = to_seconds(*burst);
    }
    if (!shed_burn.empty()) admission->shed_burn = std::atof(shed_burn.c_str());
    if (!shed_inflight.empty()) {
      admission->shed_inflight = std::atof(shed_inflight.c_str());
    }
    server.enable_admission(*admission);
    std::printf("tierad: admission control on (tenant_rate=%.0f/s "
                "shed_burn=%.2f shed_inflight=%.2f)\n",
                admission->tenant_rate, admission->shed_burn,
                admission->shed_inflight);
  }
  if (!server.start().ok()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }
  std::printf("tierad: instance '%s' serving on 127.0.0.1:%u\n",
              spec->instance_name().c_str(), server.port());

  if (demo) {
    auto client = RemoteTieraClient::connect("127.0.0.1", server.port());
    if (!client.ok()) return 1;
    for (int i = 0; i < 5; ++i) {
      const std::string id = "demo" + std::to_string(i);
      if (!(*client)->put(id, as_view(make_payload(1024, i))).ok()) return 1;
      if (!(*client)->get(id).ok()) return 1;
    }
    auto tiers = (*client)->list_tiers();
    std::printf("demo client round-tripped 5 objects; server tiers:");
    if (tiers.ok()) {
      for (const auto& tier : *tiers) std::printf(" %s", tier.c_str());
    }
    std::printf("\n");
    server.stop();
    return 0;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  TimePoint next_stats = now() + std::chrono::seconds(
                                     stats_period_s > 0 ? stats_period_s : 0);
  while (!g_stop) {
    precise_sleep(from_ms(100));
    if (stats_period_s > 0 && now() >= next_stats) {
      next_stats = now() + std::chrono::seconds(stats_period_s);
      std::fprintf(stderr, "--- tierad stats ---\n%s",
                   MetricsRegistry::global().render_text().c_str());
    }
  }
  std::printf("tierad: shutting down (%llu objects stored)\n",
              static_cast<unsigned long long>((*instance)->object_count()));
  server.stop();
  return 0;
}
