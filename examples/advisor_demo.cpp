// From abstract requirements to a running instance (the paper's §6 vision):
// "99 percentile read latency < 10 ms with read requests following a
// uniform distribution" — the advisor picks the cheapest tier mix that
// meets the requirement and materialises it.
//
//   $ ./advisor_demo
#include <cstdio>
#include <filesystem>

#include "common/logging.h"
#include "core/advisor.h"
#include "workload/kv_workload.h"

using namespace tiera;

int main() {
  std::error_code wipe_ec;
  std::filesystem::remove_all("/tmp/tiera-advisor", wipe_ec);
  set_log_level(LogLevel::kWarn);
  set_time_scale(0.1);

  Requirements req;
  req.read_latency_ms = 10.0;
  req.percentile = 0.99;
  req.working_set_bytes = 1000ull * 4096;  // scaled-down working set
  req.object_bytes = 4096;
  req.distribution = Requirements::Distribution::kZipfian;

  std::printf("requirement: p99 read latency < %.1f ms, zipfian reads, "
              "%.1f MB working set\n",
              req.read_latency_ms,
              req.working_set_bytes / (1024.0 * 1024.0));

  auto plan = advise(req);
  if (!plan.ok()) {
    std::fprintf(stderr, "no feasible plan: %s\n",
                 plan.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", plan->summary().c_str());

  auto instance = plan->instantiate({.data_dir = "/tmp/tiera-advisor"},
                                    req.working_set_bytes);
  if (!instance.ok()) {
    std::fprintf(stderr, "instantiate failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }

  KvWorkloadOptions options;
  options.record_count = 1000;
  options.value_size = 4096;
  options.read_fraction = 1.0;
  options.distribution = KeyDist::kZipfian;
  options.threads = 4;
  options.duration = std::chrono::seconds(6);
  auto backend = KvBackend::for_instance(**instance);
  const KvWorkloadResult result = run_kv_workload(backend, options);
  (*instance)->control().drain();

  std::printf("measured: mean %.2f ms, p95 %.2f ms, p99 %.2f ms over %llu "
              "reads\n",
              result.read_latency.mean_ms(),
              result.read_latency.percentile_ms(0.95),
              result.read_latency.percentile_ms(0.99),
              static_cast<unsigned long long>(result.reads));
  std::printf("actual monthly storage cost: $%.4f\n",
              (*instance)->monthly_cost());
  return 0;
}
