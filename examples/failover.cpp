// Surviving a storage-service outage (§4.2.3 / Fig. 17). A write-through
// Memcached+EBS instance serves traffic; EBS starts timing out; the
// monitoring application detects the failure and swaps the instance's
// tiers and policy to Ephemeral + periodic S3 backup — while it keeps
// serving.
//
//   $ ./failover
#include <cstdio>
#include <filesystem>

#include "common/logging.h"

#include "core/monitor.h"
#include "core/templates.h"

using namespace tiera;

int main() {
  // Start from a clean slate: examples are re-runnable demos.
  std::error_code wipe_ec;
  std::filesystem::remove_all("/tmp/tiera-failover", wipe_ec);

  set_log_level(LogLevel::kWarn);
  set_time_scale(0.05);

  auto instance = make_memcached_ebs_instance(
      {.data_dir = "/tmp/tiera-failover"}, 64 << 20, 256 << 20);
  if (!instance.ok()) {
    std::fprintf(stderr, "instance failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }

  StorageMonitor::Options options;
  options.probe_period = std::chrono::seconds(2);
  options.max_retries = 2;
  StorageMonitor monitor(**instance, options, [](TieraInstance& inst) {
    std::printf(">> monitor: EBS failed, reconfiguring to Ephemeral+S3\n");
    const Status s = reconfigure_for_ebs_failure(
        inst, 256 << 20, 1024 << 20, std::chrono::seconds(30));
    if (!s.ok()) {
      std::fprintf(stderr, "reconfiguration failed: %s\n",
                   s.to_string().c_str());
    }
  });

  const auto write_burst = [&](const char* phase) {
    int ok = 0, failed = 0;
    for (int i = 0; i < 50; ++i) {
      const std::string id = std::string(phase) + std::to_string(i);
      if ((*instance)->put(id, as_view(make_payload(4096, i))).ok()) {
        ++ok;
      } else {
        ++failed;
      }
    }
    std::printf("%-12s writes ok=%d failed=%d   tiers:", phase, ok, failed);
    for (const auto& label : (*instance)->tier_labels()) {
      std::printf(" %s", label.c_str());
    }
    std::printf("\n");
  };

  write_burst("healthy");

  std::printf(">> injecting EBS timeout failure\n");
  (*instance)->tier("tier2")->inject_failure(FailureMode::kTimeout,
                                             from_ms(200));
  write_burst("outage");

  // One monitor probe detects the failure and reconfigures.
  monitor.probe();
  write_burst("recovered");

  const auto meta = (*instance)->stat("recovered0");
  if (meta.ok()) {
    std::printf("object 'recovered0' now lives in:");
    for (const auto& tier : meta->locations) std::printf(" %s", tier.c_str());
    std::printf("\n");
  }
  return 0;
}
