#include "store/resilient_tier.h"

#include <algorithm>
#include <optional>
#include <thread>

#include "common/logging.h"

namespace tiera {

namespace {
thread_local Rng t_backoff_rng{0xBACC0FFull ^
                               std::hash<std::thread::id>{}(
                                   std::this_thread::get_id())};

bool retryable(const Status& s) {
  return s.is_unavailable() || s.is_timed_out();
}
}  // namespace

Duration nth_backoff(const RetryPolicy& policy, int k, Rng& rng) {
  double ms = to_ms(policy.initial_backoff);
  for (int i = 0; i < k && ms < to_ms(policy.max_backoff); ++i) {
    ms *= policy.multiplier;
  }
  ms = std::min(ms, to_ms(policy.max_backoff));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const double factor = 1.0 - jitter + 2.0 * jitter * rng.next_double();
  return from_ms(ms * factor);
}

// --- CircuitBreaker ----------------------------------------------------------

CircuitBreaker::CircuitBreaker(BreakerPolicy policy) : policy_(policy) {}

void CircuitBreaker::set_listener(std::function<void(BreakerState)> listener) {
  std::lock_guard lock(mu_);
  listener_ = std::move(listener);
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard lock(mu_);
  return state_;
}

// Runs `fn` under the lock; when the state changed, notifies the listener
// outside the lock (a listener may call back into state()).
template <typename Fn>
void CircuitBreaker::transition(Fn&& fn) {
  BreakerState before;
  BreakerState after;
  std::function<void(BreakerState)> listener;
  {
    std::lock_guard lock(mu_);
    before = state_;
    fn();
    after = state_;
    listener = listener_;
  }
  if (after != before && listener) listener(after);
}

bool CircuitBreaker::allow() {
  if (!policy_.enabled) return true;
  bool allowed = false;
  transition([&] {
    switch (state_) {
      case BreakerState::kClosed:
        allowed = true;
        break;
      case BreakerState::kOpen:
        if (now() >= open_until_) {
          state_ = BreakerState::kHalfOpen;
          half_open_successes_ = 0;
          probe_in_flight_ = true;
          allowed = true;
        }
        break;
      case BreakerState::kHalfOpen:
        // One probe at a time; concurrent callers fail fast until it lands.
        if (!probe_in_flight_) {
          probe_in_flight_ = true;
          allowed = true;
        }
        break;
    }
  });
  return allowed;
}

void CircuitBreaker::record_success() {
  if (!policy_.enabled) return;
  transition([&] {
    consecutive_failures_ = 0;
    if (state_ == BreakerState::kHalfOpen) {
      probe_in_flight_ = false;
      if (++half_open_successes_ >= policy_.success_to_close) {
        state_ = BreakerState::kClosed;
      }
    }
  });
}

void CircuitBreaker::record_failure() {
  if (!policy_.enabled) return;
  transition([&] {
    const double scale = time_scale();
    const auto cooldown = std::chrono::duration_cast<Duration>(
        policy_.open_for * (scale > 0 ? scale : 1.0));
    switch (state_) {
      case BreakerState::kClosed:
        if (++consecutive_failures_ >= policy_.failure_threshold) {
          state_ = BreakerState::kOpen;
          open_until_ = now() + cooldown;
        }
        break;
      case BreakerState::kHalfOpen:
        // The probe failed: back to a full cool-down.
        probe_in_flight_ = false;
        state_ = BreakerState::kOpen;
        open_until_ = now() + cooldown;
        break;
      case BreakerState::kOpen:
        open_until_ = now() + cooldown;
        break;
    }
  });
}

// --- ResilientTier -----------------------------------------------------------

ResilientTier::ResilientTier(TierPtr inner, ResiliencePolicy policy)
    : Tier(DecoratorTag{}, *inner),
      inner_(std::move(inner)),
      policy_(policy),
      breaker_(policy.breaker) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::string label_part = name().substr(0, name().find(':'));
  const MetricsRegistry::Labels labels = {{"tier", label_part}};
  metrics_.retries = &reg.counter("tiera_tier_retries_total", labels);
  metrics_.breaker_fastfails =
      &reg.counter("tiera_tier_breaker_fastfail_total", labels);
  metrics_.breaker_opens =
      &reg.counter("tiera_tier_breaker_open_total", labels);
  metrics_.deadline_exceeded =
      &reg.counter("tiera_tier_deadline_exceeded_total", labels);
  metrics_.hedges_issued =
      &reg.counter("tiera_tier_hedge_issued_total", labels);
  metrics_.hedge_wins = &reg.counter("tiera_tier_hedge_wins_total", labels);
  metrics_.breaker_state = &reg.gauge("tiera_tier_breaker_state", labels);
  metrics_.breaker_state->set(0);
  metrics_.retry_latency =
      &reg.histogram("tiera_tier_retry_latency_ms", labels);
  breaker_.set_listener([this](BreakerState state) {
    on_breaker_change(state);
  });
}

void ResilientTier::set_breaker_listener(
    std::function<void(BreakerState)> listener) {
  std::lock_guard lock(listener_mu_);
  breaker_listener_ = std::move(listener);
}

void ResilientTier::on_breaker_change(BreakerState state) {
  metrics_.breaker_state->set(static_cast<double>(static_cast<int>(state)));
  if (state == BreakerState::kOpen) {
    metrics_.breaker_opens->inc();
    TIERA_LOG(kWarn, "store") << name() << " circuit breaker opened";
  } else {
    TIERA_LOG(kInfo, "store")
        << name() << " circuit breaker " << to_string(state);
  }
  std::function<void(BreakerState)> listener;
  {
    std::lock_guard lock(listener_mu_);
    listener = breaker_listener_;
  }
  if (listener) listener(state);
}

Status ResilientTier::run_op(const char* what,
                             const std::function<Status()>& attempt) {
  const TimePoint start = now();
  const double scale = time_scale();
  // The deadline is modelled time, like every latency in the system; a zero
  // scale runs no modelled delays, so the budget is moot there too.
  const Duration budget =
      scale > 0 ? std::chrono::duration_cast<Duration>(policy_.deadline * scale)
                : Duration::zero();
  std::optional<TraceScope> span;
  if (tracer_ && tracer_->enabled()) span.emplace();

  int retries = 0;
  bool fast_failed = false;
  Status result = Status::Ok();
  for (int k = 0;; ++k) {
    if (!breaker_.allow()) {
      metrics_.breaker_fastfails->inc();
      fast_failed = true;
      result = Status::Unavailable(name() + " breaker open");
      break;
    }
    result = attempt();
    if (result.ok()) {
      breaker_.record_success();
      break;
    }
    if (!retryable(result)) {
      // NotFound etc: not a failure-count signal, but the tier did answer, so
      // it is reachable. Recording a success also releases the half-open
      // probe slot this attempt may hold — without it the breaker would be
      // stuck failing fast forever after a non-retryable probe result.
      breaker_.record_success();
      break;
    }
    breaker_.record_failure();
    if (k >= policy_.retry.max_retries) break;
    if (budget > Duration::zero() && now() - start >= budget) {
      metrics_.deadline_exceeded->inc();
      result = Status::TimedOut(name() + ": op deadline exceeded (" +
                                result.message() + ")");
      break;
    }
    apply_model_delay(nth_backoff(policy_.retry, k, t_backoff_rng));
    ++retries;
    metrics_.retries->inc();
  }

  if (retries > 0 || fast_failed) {
    if (retries > 0) metrics_.retry_latency->record(now() - start);
    if (span) {
      tracer_->record(*span, TraceOp::kRetry,
                      fast_failed ? std::string(what) + ":fastfail"
                                  : std::string(what) + ":x" +
                                        std::to_string(retries + 1),
                      "", name(), result.ok());
    }
  }
  return result;
}

Status ResilientTier::put(std::string_view key, ByteView value) {
  return run_op("put", [&] { return inner_->put(key, value); });
}

Result<Bytes> ResilientTier::get(std::string_view key) {
  std::optional<Result<Bytes>> out;
  const Status s = run_op("get", [&] {
    const TimePoint attempt_start = now();
    out.emplace(inner_->get(key));
    if (out->ok()) {
      // Feed the hedge-delay quantile with successful service times only
      // (failed attempts would teach the hedger to wait out outages).
      get_latency_.record(now() - attempt_start);
    }
    return out->ok() ? Status::Ok() : out->status();
  });
  if (!s.ok()) return s;
  return *std::move(out);
}

Status ResilientTier::remove(std::string_view key) {
  return run_op("remove", [&] { return inner_->remove(key); });
}

bool ResilientTier::contains(std::string_view key) const {
  return inner_->contains(key);
}

Status ResilientTier::grow(double percent_increase) {
  return inner_->grow(percent_increase);
}

Status ResilientTier::shrink(double percent_decrease) {
  return inner_->shrink(percent_decrease);
}

void ResilientTier::set_io_slots(std::size_t slots) {
  inner_->set_io_slots(slots);
}

void ResilientTier::inject_failure(FailureMode mode, Duration timeout) {
  inner_->inject_failure(mode, timeout);
}

void ResilientTier::for_each_key(
    const std::function<void(std::string_view)>& fn) const {
  inner_->for_each_key(fn);
}

Duration ResilientTier::hedge_delay() const {
  if (policy_.hedge.quantile <= 0) return Duration::zero();
  // Until enough history exists, hedge conservatively at the cap.
  if (get_latency_.count() < 16) return policy_.hedge.max_delay;
  const Duration q = from_ms(get_latency_.percentile_ms(
      std::min(policy_.hedge.quantile, 0.999)));
  return std::clamp(q, policy_.hedge.min_delay, policy_.hedge.max_delay);
}

void ResilientTier::note_hedge_issued() { metrics_.hedges_issued->inc(); }

void ResilientTier::note_hedge_win() { metrics_.hedge_wins->inc(); }

// --- Unreachable raw hooks ---------------------------------------------------
// Every public entry point forwards to inner_ before the base class would
// consult these; they exist only to satisfy the pure-virtual interface.

Status ResilientTier::store_raw(std::string_view, ByteView) {
  return Status::Internal("ResilientTier::store_raw unreachable");
}

Result<Bytes> ResilientTier::load_raw(std::string_view) const {
  return Status::Internal("ResilientTier::load_raw unreachable");
}

Status ResilientTier::erase_raw(std::string_view) {
  return Status::Internal("ResilientTier::erase_raw unreachable");
}

bool ResilientTier::contains_raw(std::string_view key) const {
  return inner_->contains(key);
}

std::optional<std::uint64_t> ResilientTier::size_raw(std::string_view) const {
  return std::nullopt;
}

std::size_t ResilientTier::count_raw() const {
  return inner_->object_count();
}

void ResilientTier::keys_raw(
    const std::function<void(std::string_view)>& fn) const {
  inner_->for_each_key(fn);
}

}  // namespace tiera
