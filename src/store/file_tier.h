// File-backed tiers: the EBS-like block store and the S3-like object store.
//
// Objects live in an append-only segment log under the tier directory
// (store/segment_log.h) and are mirrored in a RAM index of key -> location;
// on open the log is replayed, so contents survive process restarts — the
// durability property that distinguishes these tiers from memory/ephemeral
// ones. Overwrites and deletes leave dead records behind; the tier compacts
// the log once dead bytes dominate. Directories written by the old
// one-file-per-object format are migrated into the log on open.
//
// BlockTier optionally models the instance's OS buffer cache: a bounded LRU
// of recently touched objects whose hits are charged memory-like latency
// instead of disk latency. The paper's baselines lean on this effect
// ("requests can be served from the local instance's buffer cache"), and the
// TPC-W experiment explicitly shrinks instance RAM to defeat it.
#pragma once

#include <list>
#include <memory>
#include <unordered_map>

#include "store/segment_log.h"
#include "store/sharded_map.h"
#include "store/tier.h"

namespace tiera {

class FileTier : public Tier {
 public:
  // `directory` is created if missing; existing objects are loaded (index
  // only; bytes stay on disk until read).
  FileTier(std::string name, TierKind kind, std::uint64_t capacity_bytes,
           std::string directory, LatencyModel latency, TierPricing pricing);

  // Drop every stored object (used by tests and by EphemeralTier::reboot).
  void wipe();

  // Segment-log footprint, live + dead record bytes. Exposed for tests.
  std::uint64_t log_bytes() const;
  std::uint64_t dead_log_bytes() const;
  Status compact_log();

 protected:
  Status store_raw(std::string_view key, ByteView value) override;
  Result<Bytes> load_raw(std::string_view key) const override;
  Status erase_raw(std::string_view key) override;
  bool contains_raw(std::string_view key) const override;
  std::optional<std::uint64_t> size_raw(std::string_view key) const override;
  std::size_t count_raw() const override;
  void keys_raw(
      const std::function<void(std::string_view)>& fn) const override;

 private:
  void open_log();
  void migrate_legacy_files();
  Status compact_locked();        // requires index_mu_ held
  Status maybe_compact_locked();  // requires index_mu_ held

  const std::string directory_;
  std::unique_ptr<SegmentLog> log_;
  // key -> value location in the log; guarded by index_mu_. Writers hold
  // the lock across append + index update so log order matches index order.
  mutable std::mutex index_mu_;
  std::unordered_map<std::string, LogLocation> index_;
  std::uint64_t dead_bytes_ = 0;
};

class BlockTier final : public FileTier {
 public:
  BlockTier(std::string name, std::uint64_t capacity_bytes,
            std::string directory,
            LatencyModel latency = LatencyModel::ebs(),
            TierPricing pricing = default_pricing());

  // 2014 EBS standard volume: $0.10/GB-month provisioned + I/O charges.
  static TierPricing default_pricing() {
    return {.dollars_per_gb_month = 0.10,
            .dollars_per_io = 0.05 / 1e6,
            .bill_by_capacity = true};
  }

  // Enable the OS-buffer-cache model with the given capacity (0 disables).
  void set_page_cache_bytes(std::uint64_t bytes);
  std::uint64_t page_cache_bytes() const;
  double cache_hit_rate() const;

 protected:
  // Cache hits are charged RAM-copy latency instead of disk latency; both
  // reads and writes populate the modelled cache (Linux-like behaviour).
  Duration sample_read_delay(std::string_view key, std::uint64_t bytes,
                             Rng& rng) override;
  Duration sample_write_delay(std::string_view key, std::uint64_t bytes,
                              Rng& rng) override;

 private:
  struct CacheState {
    std::list<std::string> lru;  // front = most recent
    std::unordered_map<std::string, std::pair<std::list<std::string>::iterator,
                                              std::uint64_t>>
        entries;
    std::uint64_t bytes = 0;
    std::uint64_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  bool cache_touch(std::string_view key, std::uint64_t size) const;

  mutable std::mutex cache_mu_;
  mutable CacheState cache_;
};

class ObjectTier final : public FileTier {
 public:
  ObjectTier(std::string name, std::uint64_t capacity_bytes,
             std::string directory,
             LatencyModel latency = LatencyModel::s3(),
             TierPricing pricing = default_pricing());

  // 2014 S3: $0.03/GB-month stored, $5/1M PUT, $0.4/1M GET, $0.12/GB
  // transfer out.
  static TierPricing default_pricing() {
    return {.dollars_per_gb_month = 0.03,
            .dollars_per_put = 5.0 / 1e6,
            .dollars_per_get = 0.4 / 1e6,
            .dollars_per_gb_egress = 0.12,
            .bill_by_capacity = false};
  }
};

// Instance store: performance like a block device, but contents (and cost)
// vanish with the instance. Pure RAM here — there is nothing durable about
// it worth putting on disk.
class EphemeralTier final : public Tier {
 public:
  EphemeralTier(std::string name, std::uint64_t capacity_bytes,
                LatencyModel latency = LatencyModel::ephemeral());

  void reboot() override {
    map_.clear();
    reset_usage();
  }

 protected:
  Status store_raw(std::string_view key, ByteView value) override;
  Result<Bytes> load_raw(std::string_view key) const override;
  Status erase_raw(std::string_view key) override;
  bool contains_raw(std::string_view key) const override;
  std::optional<std::uint64_t> size_raw(std::string_view key) const override;
  std::size_t count_raw() const override;
  void keys_raw(
      const std::function<void(std::string_view)>& fn) const override;

 private:
  ShardedMap map_;
};

}  // namespace tiera
