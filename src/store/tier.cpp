#include "store/tier.h"

#include <optional>
#include <thread>

#include "common/logging.h"

namespace tiera {

namespace {
thread_local Rng t_jitter_rng{0xD1CEBA5Eull ^
                              std::hash<std::thread::id>{}(
                                  std::this_thread::get_id())};
}  // namespace

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kHalfOpen: return "half-open";
    case BreakerState::kOpen: return "open";
  }
  return "?";
}

std::string_view to_string(TierKind kind) {
  switch (kind) {
    case TierKind::kMemory: return "memory";
    case TierKind::kBlock: return "block";
    case TierKind::kEphemeral: return "ephemeral";
    case TierKind::kObject: return "object";
  }
  return "?";
}

Tier::Tier(std::string name, TierKind kind, std::uint64_t capacity_bytes,
           LatencyModel latency, TierPricing pricing)
    : name_(std::move(name)),
      kind_(kind),
      latency_(latency),
      pricing_(pricing),
      capacity_(capacity_bytes) {
  MetricsRegistry& reg = MetricsRegistry::global();
  // Factory-built tiers are named "<label>:<service>"; label the series with
  // just the instance-level label so they join with tiera_instance_* series.
  const std::string label_part = name_.substr(0, name_.find(':'));
  const MetricsRegistry::Labels labels = {{"tier", label_part}};
  metrics_.puts = &reg.counter("tiera_tier_puts_total", labels);
  metrics_.gets = &reg.counter("tiera_tier_gets_total", labels);
  metrics_.removes = &reg.counter("tiera_tier_removes_total", labels);
  metrics_.failed_ops = &reg.counter("tiera_tier_failed_ops_total", labels);
  metrics_.bytes_written = &reg.counter("tiera_tier_bytes_written_total", labels);
  metrics_.bytes_read = &reg.counter("tiera_tier_bytes_read_total", labels);
  metrics_.put_latency = &reg.histogram("tiera_tier_put_latency_ms", labels);
  metrics_.get_latency = &reg.histogram("tiera_tier_get_latency_ms", labels);
  metrics_.used_bytes = &reg.gauge("tiera_tier_used_bytes", labels);
  metrics_.capacity_bytes = &reg.gauge("tiera_tier_capacity_bytes", labels);
  metrics_.capacity_bytes->set(static_cast<double>(capacity_bytes));
  collector_id_ = reg.add_collector([this] { collect_metrics(); });
}

Tier::Tier(DecoratorTag, const Tier& inner)
    : name_(inner.name_),
      kind_(inner.kind_),
      latency_(inner.latency_),
      pricing_(inner.pricing_),
      capacity_(0) {}

Tier::~Tier() {
  // The collector reads this tier; drop it before any state dies.
  // Decorators never registered one (collector_id_ stays 0).
  if (collector_id_ != 0) {
    MetricsRegistry::global().remove_collector(collector_id_);
  }
}

void Tier::collect_metrics() {
  const auto sync = [](Counter* counter,
                       const std::atomic<std::uint64_t>& source,
                       std::uint64_t& seen) {
    const std::uint64_t v = source.load(std::memory_order_relaxed);
    if (v > seen) {
      counter->inc(v - seen);
      seen = v;
    }
  };
  sync(metrics_.puts, stats_.puts, synced_.puts);
  sync(metrics_.gets, stats_.gets, synced_.gets);
  sync(metrics_.removes, stats_.removes, synced_.removes);
  sync(metrics_.failed_ops, stats_.failed_ops, synced_.failed_ops);
  sync(metrics_.bytes_written, stats_.bytes_written, synced_.bytes_written);
  sync(metrics_.bytes_read, stats_.bytes_read, synced_.bytes_read);
  metrics_.used_bytes->set(static_cast<double>(used()));
  metrics_.capacity_bytes->set(static_cast<double>(capacity()));
}

Status Tier::check_failure() const {
  switch (failure_mode_.load(std::memory_order_acquire)) {
    case FailureMode::kNone:
      return Status::Ok();
    case FailureMode::kFailStop:
      stats_.failed_ops.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(name_ + " is down");
    case FailureMode::kTimeout: {
      apply_model_delay(
          Duration(failure_timeout_ns_.load(std::memory_order_relaxed)));
      stats_.failed_ops.fetch_add(1, std::memory_order_relaxed);
      return Status::TimedOut(name_ + " timed out");
    }
  }
  return Status::Internal("bad failure mode");
}

Duration Tier::sample_read_delay(std::string_view /*key*/,
                                 std::uint64_t bytes, Rng& rng) {
  return latency_.sample_read(bytes, rng);
}

Duration Tier::sample_write_delay(std::string_view /*key*/,
                                  std::uint64_t bytes, Rng& rng) {
  return latency_.sample_write(bytes, rng);
}

// Holds one of the tier's I/O slots for the duration of a modelled service
// time; queues when the service is saturated.
class Tier::IoSlotGuard {
 public:
  explicit IoSlotGuard(const Tier& tier) : tier_(tier) {
    std::unique_lock lock(tier_.io_mu_);
    if (tier_.io_slots_ == 0) return;
    tier_.io_cv_.wait(lock,
                      [&] { return tier_.io_in_flight_ < tier_.io_slots_; });
    ++tier_.io_in_flight_;
    held_ = true;
  }
  ~IoSlotGuard() {
    if (!held_) return;
    {
      std::lock_guard lock(tier_.io_mu_);
      --tier_.io_in_flight_;
    }
    tier_.io_cv_.notify_one();
  }

 private:
  const Tier& tier_;
  bool held_ = false;
};

void Tier::set_io_slots(std::size_t slots) {
  {
    std::lock_guard lock(io_mu_);
    io_slots_ = slots;
  }
  io_cv_.notify_all();
}

std::size_t Tier::io_slots() const {
  std::lock_guard lock(io_mu_);
  return io_slots_;
}

Status Tier::put(std::string_view key, ByteView value) {
  // Latency is sampled (see latency_sample_every()); counters stay exact.
  const bool timed =
      latency_sample_hit(stats_.puts.load(std::memory_order_relaxed));
  const TimePoint start = timed ? now() : TimePoint{};
  TIERA_RETURN_IF_ERROR(check_failure());
  {
    IoSlotGuard slot(*this);
    apply_model_delay(sample_write_delay(key, value.size(), t_jitter_rng));
  }

  // Capacity accounting: replace-aware. A races here can transiently
  // over/under count by one object; the control layer's threshold events
  // tolerate that (they fire on the next mutation).
  const std::optional<std::uint64_t> old_size = size_raw(key);
  const std::uint64_t delta_new = value.size();
  const std::uint64_t delta_old = old_size.value_or(0);
  const std::uint64_t cap = capacity();
  if (cap > 0 && used() - delta_old + delta_new > cap) {
    stats_.failed_ops.fetch_add(1, std::memory_order_relaxed);
    return Status::CapacityExceeded(name_ + " full");
  }
  TIERA_RETURN_IF_ERROR(store_raw(key, value));
  used_.fetch_add(delta_new, std::memory_order_relaxed);
  used_.fetch_sub(delta_old, std::memory_order_relaxed);
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(value.size(), std::memory_order_relaxed);
  if (timed) metrics_.put_latency->record(now() - start);
  return Status::Ok();
}

Result<Bytes> Tier::get(std::string_view key) {
  const bool timed =
      latency_sample_hit(stats_.gets.load(std::memory_order_relaxed));
  const TimePoint start = timed ? now() : TimePoint{};
  TIERA_RETURN_IF_ERROR(check_failure());
  Result<Bytes> result = load_raw(key);
  // Charge the modelled read time for the bytes actually moved (a miss costs
  // a base round trip).
  {
    IoSlotGuard slot(*this);
    apply_model_delay(sample_read_delay(
        key, result.ok() ? result->size() : 0, t_jitter_rng));
  }
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  if (result.ok()) {
    stats_.bytes_read.fetch_add(result->size(), std::memory_order_relaxed);
  }
  if (timed) metrics_.get_latency->record(now() - start);
  return result;
}

Status Tier::remove(std::string_view key) {
  TIERA_RETURN_IF_ERROR(check_failure());
  {
    IoSlotGuard slot(*this);
    apply_model_delay(sample_write_delay(key, 0, t_jitter_rng));
  }
  const std::optional<std::uint64_t> old_size = size_raw(key);
  if (!old_size) return Status::NotFound(name_ + ": no such object");
  TIERA_RETURN_IF_ERROR(erase_raw(key));
  used_.fetch_sub(*old_size, std::memory_order_relaxed);
  stats_.removes.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

bool Tier::contains(std::string_view key) const {
  return contains_raw(key);
}

std::size_t Tier::object_count() const { return count_raw(); }

Status Tier::grow(double percent_increase) {
  if (percent_increase <= 0) {
    return Status::InvalidArgument("grow percent must be positive");
  }
  std::lock_guard lock(resize_mu_);
  const auto cap = capacity_.load();
  const auto add = static_cast<std::uint64_t>(
      static_cast<double>(cap) * percent_increase / 100.0);
  capacity_.store(cap + add);
  TIERA_LOG(kInfo, "store") << name_ << " grown by " << percent_increase
                            << "% to " << capacity_.load() << " bytes";
  return Status::Ok();
}

Status Tier::shrink(double percent_decrease) {
  if (percent_decrease <= 0 || percent_decrease >= 100) {
    return Status::InvalidArgument("shrink percent must be in (0,100)");
  }
  std::lock_guard lock(resize_mu_);
  const auto cap = capacity_.load();
  const auto sub = static_cast<std::uint64_t>(
      static_cast<double>(cap) * percent_decrease / 100.0);
  const auto next = cap - sub;
  if (next < used()) {
    return Status::CapacityExceeded(
        name_ + ": cannot shrink below current usage");
  }
  capacity_.store(next);
  return Status::Ok();
}

void Tier::inject_failure(FailureMode mode, Duration timeout) {
  failure_timeout_ns_.store(timeout.count(), std::memory_order_relaxed);
  failure_mode_.store(mode, std::memory_order_release);
  TIERA_LOG(kWarn, "store") << name_ << " failure injected";
}

void Tier::heal() {
  failure_mode_.store(FailureMode::kNone, std::memory_order_release);
}

void Tier::for_each_key(
    const std::function<void(std::string_view)>& fn) const {
  keys_raw(fn);
}

}  // namespace tiera
