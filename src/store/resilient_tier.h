// ResilientTier: a decorator that makes any Tier survive flaky backends.
//
// The paper's flexibility demo (§5.3, Fig. 17) rides out an EBS outage by
// reconfiguring onto Ephemeral+S3 — but between failure injection and the
// policy engine nothing recovered: a flaky tier op surfaced straight to the
// client. This layer closes that gap with the standard cloud-storage
// resilience toolkit:
//   * bounded retries with exponential backoff + jitter,
//   * a per-op deadline budget spanning all attempts,
//   * a per-tier circuit breaker (closed -> open -> half-open, probe on
//     recovery) that fails fast while the backend is down and reports its
//     state to threshold rules (`tierX.breaker == open`),
//   * a hedge-delay signal (a latency quantile of recent GETs) the instance
//     uses to race a second object location when this tier is slow.
// All of it is observable: `tiera_tier_retries_total`,
// `tiera_tier_breaker_state`, `tiera_tier_retry_latency_ms`, plus retry
// spans in the causal tracer.
#pragma once

#include <functional>
#include <mutex>

#include "common/histogram.h"
#include "obs/trace.h"
#include "store/tier.h"

namespace tiera {

struct RetryPolicy {
  // Extra attempts after the first (0 = no retries).
  int max_retries = 0;
  Duration initial_backoff = from_ms(2);
  double multiplier = 2.0;
  Duration max_backoff = from_ms(100);
  // Each backoff is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.5;
};

struct BreakerPolicy {
  bool enabled = false;
  // Consecutive retryable failures that trip the breaker open.
  int failure_threshold = 5;
  // Modelled cool-down before a half-open probe is allowed.
  Duration open_for = from_ms(500);
  // Consecutive probe successes that close it again.
  int success_to_close = 2;
};

struct HedgePolicy {
  // Latency quantile of recent GETs used as the hedge delay (0 = hedging
  // off). `hedge: 95%` in specs sets 0.95.
  double quantile = 0.0;
  Duration min_delay = from_ms(1);
  // Upper bound; also the delay used before enough latency history exists.
  Duration max_delay = from_ms(200);
};

struct ResiliencePolicy {
  RetryPolicy retry;
  // Total modelled-time budget per op across all attempts (0 = none).
  Duration deadline = Duration::zero();
  BreakerPolicy breaker;
  HedgePolicy hedge;

  bool any() const {
    return retry.max_retries > 0 || deadline > Duration::zero() ||
           breaker.enabled || hedge.quantile > 0;
  }
};

// The kth backoff pause (k = 0 before the first retry): exponential in k,
// capped, jittered by `rng`. Factored out so tests can pin the schedule.
Duration nth_backoff(const RetryPolicy& policy, int k, Rng& rng);

// Closed/open/half-open state machine counting consecutive retryable
// failures. Thread-safe; transitions are reported through an optional
// listener (invoked outside the breaker lock).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy);

  // False when the caller must fail fast (breaker open and the cool-down
  // has not elapsed, or a half-open probe is already in flight). A true
  // return in half-open claims the probe slot.
  bool allow();
  void record_success();
  void record_failure();

  BreakerState state() const;
  void set_listener(std::function<void(BreakerState)> listener);

 private:
  // Returns the new state when a transition happened, so the caller can
  // notify outside the lock.
  template <typename Fn>
  void transition(Fn&& fn);

  const BreakerPolicy policy_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  TimePoint open_until_{};
  std::function<void(BreakerState)> listener_;
};

class ResilientTier final : public Tier {
 public:
  ResilientTier(TierPtr inner, ResiliencePolicy policy);

  Tier& inner() { return *inner_; }
  const ResiliencePolicy& policy() const { return policy_; }

  // --- Wrapped data path ----------------------------------------------------
  Status put(std::string_view key, ByteView value) override;
  Result<Bytes> get(std::string_view key) override;
  Status remove(std::string_view key) override;
  bool contains(std::string_view key) const override;

  // --- Delegated management / introspection ---------------------------------
  std::uint64_t capacity() const override { return inner_->capacity(); }
  std::uint64_t used() const override { return inner_->used(); }
  std::size_t object_count() const override { return inner_->object_count(); }
  Status grow(double percent_increase) override;
  Status shrink(double percent_decrease) override;
  void set_io_slots(std::size_t slots) override;
  std::size_t io_slots() const override { return inner_->io_slots(); }
  void inject_failure(FailureMode mode,
                      Duration timeout = from_ms(250)) override;
  void heal() override { inner_->heal(); }
  FailureMode failure_mode() const override { return inner_->failure_mode(); }
  void reboot() override { inner_->reboot(); }
  const TierStats& stats() const override { return inner_->stats(); }
  void for_each_key(
      const std::function<void(std::string_view)>& fn) const override;

  // --- Resilience introspection ---------------------------------------------
  bool has_breaker() const override { return policy_.breaker.enabled; }
  BreakerState breaker_state() const override { return breaker_.state(); }
  Duration hedge_delay() const override;

  // Invoked (outside the breaker lock) whenever the breaker changes state;
  // the instance uses it to schedule a threshold-rule evaluation so
  // failover rules fire on `tierX.breaker == open`.
  void set_breaker_listener(std::function<void(BreakerState)> listener);
  // Retry spans land in this tracer as children of the current request span.
  void set_tracer(RequestTracer* tracer) { tracer_ = tracer; }

  // Hedge accounting, driven by the instance (hedging is a routing decision
  // made where the object's location set is visible).
  void note_hedge_issued();
  void note_hedge_win();

 protected:
  // Unreachable: every public entry point above forwards to `inner_`
  // before the base class would consult these hooks.
  Status store_raw(std::string_view, ByteView) override;
  Result<Bytes> load_raw(std::string_view) const override;
  Status erase_raw(std::string_view) override;
  bool contains_raw(std::string_view key) const override;
  std::optional<std::uint64_t> size_raw(std::string_view) const override;
  std::size_t count_raw() const override;
  void keys_raw(const std::function<void(std::string_view)>&) const override;

 private:
  // Retry loop shared by put/get/remove. `attempt` returns the status of
  // one try against the inner tier; retryable failures (kUnavailable /
  // kTimedOut) are re-tried within the policy's attempt and deadline
  // budgets and feed the breaker.
  Status run_op(const char* what, const std::function<Status()>& attempt);

  void on_breaker_change(BreakerState state);

  TierPtr inner_;
  const ResiliencePolicy policy_;
  CircuitBreaker breaker_;
  RequestTracer* tracer_ = nullptr;
  std::function<void(BreakerState)> breaker_listener_;
  mutable std::mutex listener_mu_;

  // Recent inner-GET service times (successful attempts only); the hedge
  // delay is a quantile of this.
  LatencyHistogram get_latency_;

  // Registry series (`tiera_tier_*{tier=<label>}`); push-model — resilience
  // events are rare enough that counting them inline is cheaper than a
  // collector.
  struct Metrics {
    Counter* retries = nullptr;
    Counter* breaker_fastfails = nullptr;
    Counter* breaker_opens = nullptr;
    Counter* deadline_exceeded = nullptr;
    Counter* hedges_issued = nullptr;
    Counter* hedge_wins = nullptr;
    Gauge* breaker_state = nullptr;
    LatencyHistogram* retry_latency = nullptr;
  };
  Metrics metrics_;
};

}  // namespace tiera
