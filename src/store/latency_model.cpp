#include "store/latency_model.h"

#include <algorithm>

namespace tiera {

namespace {
Duration jittered(Duration base, double jitter, Rng& rng) {
  if (jitter <= 0) return base;
  const double factor = (1.0 - jitter) + 2.0 * jitter * rng.next_double();
  return std::chrono::duration_cast<Duration>(base * factor);
}

Duration scale_by_mb(Duration per_mb, std::uint64_t bytes) {
  return std::chrono::duration_cast<Duration>(
      per_mb * (static_cast<double>(bytes) / (1024.0 * 1024.0)));
}
}  // namespace

Duration LatencyModel::sample_read(std::uint64_t bytes, Rng& rng) const {
  return jittered(read_base + scale_by_mb(read_per_mb, bytes), jitter, rng);
}

Duration LatencyModel::sample_write(std::uint64_t bytes, Rng& rng) const {
  return jittered(write_base + scale_by_mb(write_per_mb, bytes), jitter, rng);
}

LatencyModel LatencyModel::memcached_local() {
  return {.read_base = from_ms(0.35),
          .write_base = from_ms(0.40),
          .read_per_mb = from_ms(8.0),
          .write_per_mb = from_ms(8.0),
          .jitter = 0.15};
}

LatencyModel LatencyModel::memcached_remote() {
  return {.read_base = from_ms(0.90),
          .write_base = from_ms(1.00),
          .read_per_mb = from_ms(9.0),
          .write_per_mb = from_ms(9.0),
          .jitter = 0.20};
}

LatencyModel LatencyModel::ebs() {
  return {.read_base = from_ms(9.0),
          .write_base = from_ms(13.0),
          .read_per_mb = from_ms(12.0),
          .write_per_mb = from_ms(14.0),
          .jitter = 0.25};
}

LatencyModel LatencyModel::ephemeral() {
  // The paper deploys instance storage as a drop-in for a failed EBS volume:
  // "performance comparable to EBS (read and write latencies similar)".
  return {.read_base = from_ms(9.0),
          .write_base = from_ms(13.0),
          .read_per_mb = from_ms(11.0),
          .write_per_mb = from_ms(12.0),
          .jitter = 0.25};
}

LatencyModel LatencyModel::s3() {
  // 2014-era in-region S3: ~25 ms first byte on small GETs, PUTs roughly 2x.
  return {.read_base = from_ms(25.0),
          .write_base = from_ms(50.0),
          .read_per_mb = from_ms(20.0),
          .write_per_mb = from_ms(25.0),
          .jitter = 0.30};
}

LatencyModel LatencyModel::zero() { return {.jitter = 0.0}; }

}  // namespace tiera
