#include "store/cost_model.h"

namespace tiera {

namespace {
constexpr double kGb = 1024.0 * 1024.0 * 1024.0;
}

double CostModel::storage_cost_per_month(const Tier& tier) {
  const TierPricing& p = tier.pricing();
  const double bytes = static_cast<double>(
      p.bill_by_capacity ? tier.capacity() : tier.used());
  return p.dollars_per_gb_month * bytes / kGb;
}

double CostModel::request_cost(const Tier& tier, double observed_seconds) {
  const TierPricing& p = tier.pricing();
  const TierStats& s = tier.stats();
  const double puts = static_cast<double>(s.puts.load());
  const double gets = static_cast<double>(s.gets.load());
  const double ios = puts + gets + static_cast<double>(s.removes.load());
  double cost = puts * p.dollars_per_put + gets * p.dollars_per_get +
                ios * p.dollars_per_io;
  if (observed_seconds > 0) {
    cost *= kSecondsPerMonth / observed_seconds;
  }
  return cost;
}

TierCost CostModel::cost(const Tier& tier, double observed_seconds) {
  return {.tier = tier.name(),
          .storage_dollars = storage_cost_per_month(tier),
          .request_dollars = request_cost(tier, observed_seconds)};
}

std::vector<TierCost> CostModel::cost_breakdown(
    const std::vector<TierPtr>& tiers, double observed_seconds) {
  std::vector<TierCost> out;
  out.reserve(tiers.size());
  for (const auto& tier : tiers) {
    out.push_back(cost(*tier, observed_seconds));
  }
  return out;
}

double CostModel::total_monthly_cost(const std::vector<TierPtr>& tiers,
                                     double observed_seconds) {
  double total = 0;
  for (const auto& tier : tiers) {
    total += cost(*tier, observed_seconds).total();
  }
  return total;
}

}  // namespace tiera
