// Latency model for simulated storage services.
//
// Each tier charges a modelled service time per operation:
//   latency = base + per_mb * size_mb, multiplied by lognormal-ish jitter.
// The charge is realised as an actual (time-scaled) sleep in the calling
// thread, so queueing and concurrency effects in the benches are physical.
// Default profiles approximate the 2014 AWS services the paper evaluates on.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/random.h"

namespace tiera {

struct LatencyModel {
  Duration read_base{};
  Duration write_base{};
  Duration read_per_mb{};
  Duration write_per_mb{};
  // Multiplicative jitter: latency *= (1 - j) + 2j*u, u ~ U[0,1).
  double jitter = 0.15;

  Duration sample_read(std::uint64_t bytes, Rng& rng) const;
  Duration sample_write(std::uint64_t bytes, Rng& rng) const;

  // Named profiles (modelled, unscaled).
  static LatencyModel memcached_local();   // same-AZ ElastiCache
  static LatencyModel memcached_remote();  // cross-AZ ElastiCache
  static LatencyModel ebs();               // standard EBS volume
  static LatencyModel ephemeral();         // EC2 instance store
  static LatencyModel s3();                // S3 object store
  static LatencyModel zero();              // no modelled latency
};

}  // namespace tiera
