// Sharded string->Bytes map: the in-RAM object storage used by the memory
// and ephemeral tiers, and as the loaded index of the file-backed tiers.
// Sharding keeps the many concurrent client threads in the throughput
// experiments from serialising on one lock.
#pragma once

#include <array>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/hash.h"

namespace tiera {

class ShardedMap {
 public:
  static constexpr std::size_t kShards = 16;

  void put(std::string_view key, ByteView value) {
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mu);
    shard.map[std::string(key)] = Bytes(value.begin(), value.end());
  }

  std::optional<Bytes> get(std::string_view key) const {
    const Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mu);
    auto it = shard.map.find(std::string(key));
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  bool erase(std::string_view key) {
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mu);
    return shard.map.erase(std::string(key)) > 0;
  }

  bool contains(std::string_view key) const {
    const Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mu);
    return shard.map.count(std::string(key)) > 0;
  }

  std::optional<std::uint64_t> size_of(std::string_view key) const {
    const Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mu);
    auto it = shard.map.find(std::string(key));
    if (it == shard.map.end()) return std::nullopt;
    return it->second.size();
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard.mu);
      n += shard.map.size();
    }
    return n;
  }

  void clear() {
    for (auto& shard : shards_) {
      std::lock_guard lock(shard.mu);
      shard.map.clear();
    }
  }

  void for_each_key(const std::function<void(std::string_view)>& fn) const {
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard.mu);
      for (const auto& [key, value] : shard.map) fn(key);
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Bytes> map;
  };

  Shard& shard_for(std::string_view key) {
    return shards_[fnv1a64(key) % kShards];
  }
  const Shard& shard_for(std::string_view key) const {
    return shards_[fnv1a64(key) % kShards];
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace tiera
