// Append-only segment log: the shared data path under the file-backed tiers.
//
// The original FileTier wrote one file per object (open + write + close +
// rename), which costs ~250µs per 4K PUT on ext4 — the entire tier.io stage
// of the hot path. The segment log replaces that with a single buffered
// append to an already-open segment file (~6µs), the same shape the metadata
// journal uses: CRC-framed records, replay on open with torn-tail
// truncation, and stop-the-world compaction that rewrites the live set into
// fresh segments.
//
// Layout: `directory/seg-<n>.log`, each up to segment_bytes of
//   u32 crc (over type..value) | u8 type (1=put, 2=tombstone) |
//   u32 key_len | u32 value_len | key | value
//
// Values are located by (segment, offset, length) and served with pread, so
// reads never seek the write fd and run concurrently under a shared lock.
// Durability matches the old tier files: appends land in the OS page cache
// (fsync only via sync(), which tiers do not call on the hot path) — the
// paper's durability story for tier contents is the tier hierarchy itself,
// not per-write fsync.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace tiera {

struct SegmentLogOptions {
  // Roll to a fresh segment once the current one reaches this size.
  std::uint64_t segment_bytes = 64ull << 20;
};

// Where a value lives. `offset`/`length` frame the value bytes themselves
// (not the record header), so reads are a single pread.
struct LogLocation {
  std::uint64_t segment = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
};

class SegmentLog {
 public:
  // Called once per replayed record, in log order. `live` is true for put
  // records (loc frames the value) and false for tombstones.
  using ReplayFn = std::function<void(std::string_view key, bool live,
                                      const LogLocation& loc)>;

  // Opens (creating if needed) the log under `directory` and replays every
  // segment in order. A torn or corrupt tail in the last segment is
  // truncated away (crash recovery), matching the metadata journal.
  static Result<std::unique_ptr<SegmentLog>> open(std::string directory,
                                                  SegmentLogOptions options,
                                                  const ReplayFn& replay);
  ~SegmentLog();

  SegmentLog(const SegmentLog&) = delete;
  SegmentLog& operator=(const SegmentLog&) = delete;

  Result<LogLocation> append(std::string_view key, ByteView value);
  Status append_tombstone(std::string_view key);
  Result<Bytes> read(const LogLocation& loc) const;

  // Flush + fsync the current segment.
  Status sync();

  // Stop-the-world compaction: `for_each_live` must yield every live
  // (key, location) pair; each value is copied into fresh segments and its
  // new location reported through `update`. Old segments are deleted once
  // the copies are fsynced, so a crash mid-compaction replays to the same
  // live set (newer segments win during replay).
  using LiveVisitor =
      std::function<void(std::string_view key, const LogLocation& loc)>;
  Status compact(
      const std::function<void(const LiveVisitor&)>& for_each_live,
      const std::function<void(std::string_view key, const LogLocation& loc)>&
          update);

  // Delete every segment and start over from an empty log.
  Status wipe();

  // Total record bytes across all segments (live + dead).
  std::uint64_t log_bytes() const;

 private:
  SegmentLog(std::string directory, SegmentLogOptions options);

  std::string segment_path(std::uint64_t segment) const;
  Status open_segment_locked(std::uint64_t segment);
  Status roll_if_needed_locked();
  Status append_record_locked(std::uint8_t type, std::string_view key,
                              ByteView value, LogLocation* loc);
  Status replay_segment(std::uint64_t segment, const ReplayFn& replay);

  const std::string directory_;
  const SegmentLogOptions options_;

  // Appends, rolls, compaction and wipe take the lock exclusively; reads
  // share it (pread is position-less, so concurrent reads never interfere).
  mutable std::shared_mutex mu_;
  std::map<std::uint64_t, int> segment_fds_;  // all fds are O_RDWR|O_APPEND
  std::uint64_t current_segment_ = 1;
  std::uint64_t current_offset_ = 0;  // size of the current segment
  std::uint64_t log_bytes_ = 0;
};

}  // namespace tiera
