#include "store/mem_tier.h"

namespace tiera {

MemTier::MemTier(std::string name, std::uint64_t capacity_bytes,
                 LatencyModel latency, TierPricing pricing)
    : Tier(std::move(name), TierKind::kMemory, capacity_bytes, latency,
           pricing) {}

Status MemTier::store_raw(std::string_view key, ByteView value) {
  map_.put(key, value);
  return Status::Ok();
}

Result<Bytes> MemTier::load_raw(std::string_view key) const {
  auto value = map_.get(key);
  if (!value) return Status::NotFound(name() + ": no such object");
  return std::move(*value);
}

Status MemTier::erase_raw(std::string_view key) {
  map_.erase(key);
  return Status::Ok();
}

bool MemTier::contains_raw(std::string_view key) const {
  return map_.contains(key);
}

std::optional<std::uint64_t> MemTier::size_raw(std::string_view key) const {
  return map_.size_of(key);
}

std::size_t MemTier::count_raw() const { return map_.size(); }

void MemTier::keys_raw(
    const std::function<void(std::string_view)>& fn) const {
  map_.for_each_key(fn);
}

}  // namespace tiera
