// CostModel: estimates the monthly dollar cost of a set of tiers, the metric
// behind the cost plots in Figs. 9b, 11b and 13b.
//
// Capacity-billed tiers (cache nodes, EBS volumes) charge for provisioned
// bytes; usage-billed tiers (S3) charge for stored bytes. Request charges are
// extrapolated from the request counts observed so far over the observation
// window: requests/sec * seconds-per-month * $/request.
#pragma once

#include <string>
#include <vector>

#include "store/tier.h"

namespace tiera {

struct TierCost {
  std::string tier;
  double storage_dollars = 0.0;
  double request_dollars = 0.0;
  double total() const { return storage_dollars + request_dollars; }
};

class CostModel {
 public:
  // Storage-only monthly cost of one tier.
  static double storage_cost_per_month(const Tier& tier);

  // Extrapolated request cost: the tier's observed request counts are taken
  // as a rate over `observed_seconds` of *modelled* time and extended to a
  // month. Pass 0 to bill only the requests already made (no extrapolation).
  static double request_cost(const Tier& tier, double observed_seconds = 0);

  static TierCost cost(const Tier& tier, double observed_seconds = 0);

  static std::vector<TierCost> cost_breakdown(
      const std::vector<TierPtr>& tiers, double observed_seconds = 0);
  static double total_monthly_cost(const std::vector<TierPtr>& tiers,
                                   double observed_seconds = 0);

  static constexpr double kSecondsPerMonth = 30.0 * 24 * 3600;
};

}  // namespace tiera
