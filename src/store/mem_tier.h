// Memory tier: Memcached/ElastiCache stand-in. Volatile RAM storage with a
// network-round-trip latency model; contents are lost on reboot().
#pragma once

#include "store/sharded_map.h"
#include "store/tier.h"

namespace tiera {

// Not final: tests subclass it to inject scripted failures around the
// virtual data path.
class MemTier : public Tier {
 public:
  MemTier(std::string name, std::uint64_t capacity_bytes,
          LatencyModel latency = LatencyModel::memcached_local(),
          TierPricing pricing = default_pricing());

  // ElastiCache 2014-era effective $/GB-month of cache-node memory.
  static TierPricing default_pricing() {
    return {.dollars_per_gb_month = 19.0, .bill_by_capacity = true};
  }

  void reboot() override {
    map_.clear();
    reset_usage();
  }

 protected:
  Status store_raw(std::string_view key, ByteView value) override;
  Result<Bytes> load_raw(std::string_view key) const override;
  Status erase_raw(std::string_view key) override;
  bool contains_raw(std::string_view key) const override;
  std::optional<std::uint64_t> size_raw(std::string_view key) const override;
  std::size_t count_raw() const override;
  void keys_raw(
      const std::function<void(std::string_view)>& fn) const override;

 private:
  ShardedMap map_;
};

}  // namespace tiera
