// Tier: the storage-interface-layer abstraction.
//
// "A tier can be any source or sink for data with a prescribed interface"
// (paper §2.2). A Tier stores uninterpreted byte objects under string keys
// and reports capacity/usage so the control layer can evaluate threshold
// events like `tier1.filled == 75%`. The base class centralises:
//   * modelled service-time charging (LatencyModel + global time scale),
//   * capacity accounting and grow/shrink,
//   * failure injection (fail-stop / timeout outages, as in Fig. 17),
//   * operation statistics (including billable request counts for S3).
// Subclasses provide the raw storage (RAM, files).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <optional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "store/latency_model.h"

namespace tiera {

enum class TierKind {
  kMemory,     // Memcached/ElastiCache-like: volatile RAM
  kBlock,      // EBS-like: durable block store
  kEphemeral,  // EC2 instance store: fast but lost on reboot
  kObject,     // S3-like: durable, cheap, per-request billed
};

std::string_view to_string(TierKind kind);

enum class FailureMode {
  kNone,
  kFailStop,  // operations fail immediately with kUnavailable
  kTimeout,   // operations hang for the injected delay, then fail kTimedOut
};

// Circuit-breaker position of a tier, surfaced so threshold rules can react
// to `tierX.breaker == open` (ResilientTier overrides; plain tiers are
// always closed). Numeric values are the threshold-event encoding.
enum class BreakerState : int {
  kClosed = 0,
  kHalfOpen = 1,
  kOpen = 2,
};

std::string_view to_string(BreakerState state);

struct TierStats {
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> removes{0};
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> failed_ops{0};

  std::uint64_t total_requests() const {
    return puts.load() + gets.load() + removes.load();
  }
};

// Per-GB-month and per-request pricing used by CostModel and the live
// CostMeter.
struct TierPricing {
  double dollars_per_gb_month = 0.0;
  double dollars_per_put = 0.0;      // billable mutating request
  double dollars_per_get = 0.0;      // billable read request
  double dollars_per_io = 0.0;       // EBS-style I/O charge (any op)
  // (Simulated) data-transfer-out charge on bytes leaving the tier: client
  // reads and policy moves/copies sourced from it. Zero for tiers whose
  // service bills transfer separately or not at all (EBS, local memory).
  double dollars_per_gb_egress = 0.0;
  // Capacity-billed services (EBS volumes, cache nodes) charge for the
  // provisioned size; usage-billed (S3) charge for stored bytes.
  bool bill_by_capacity = true;
};

class Tier {
 public:
  Tier(std::string name, TierKind kind, std::uint64_t capacity_bytes,
       LatencyModel latency, TierPricing pricing);
  virtual ~Tier();

  Tier(const Tier&) = delete;
  Tier& operator=(const Tier&) = delete;

  const std::string& name() const { return name_; }
  TierKind kind() const { return kind_; }
  bool durable() const {
    return kind_ == TierKind::kBlock || kind_ == TierKind::kObject;
  }

  // --- Data path -----------------------------------------------------------
  // Stores (or overwrites) `key`. Fails with kCapacityExceeded when the
  // object does not fit. Virtual so decorators (ResilientTier) can interpose
  // retry/deadline/breaker logic around the base implementation.
  virtual Status put(std::string_view key, ByteView value);
  virtual Result<Bytes> get(std::string_view key);
  virtual Status remove(std::string_view key);
  virtual bool contains(std::string_view key) const;

  // --- Capacity ------------------------------------------------------------
  virtual std::uint64_t capacity() const { return capacity_.load(); }
  virtual std::uint64_t used() const { return used_.load(); }
  double fill_fraction() const {
    const auto cap = capacity();
    return cap ? static_cast<double>(used()) / static_cast<double>(cap) : 1.0;
  }
  virtual std::size_t object_count() const;

  // grow/shrink responses (Table 1): resize by a percentage of current
  // capacity. Shrinking below current usage is refused.
  virtual Status grow(double percent_increase);
  virtual Status shrink(double percent_decrease);

  // --- Service concurrency ---------------------------------------------------
  // Maximum in-flight operations the backing service processes at once
  // (0 = unlimited). A block volume has a small effective queue depth, so
  // background replication contends with foreground I/O — the effect behind
  // the paper's bandwidth-cap experiment (Fig. 14). Ops beyond the limit
  // queue for a slot before their service time runs.
  virtual void set_io_slots(std::size_t slots);
  virtual std::size_t io_slots() const;

  // --- Failure injection ---------------------------------------------------
  virtual void inject_failure(FailureMode mode, Duration timeout = from_ms(250));
  virtual void heal();
  virtual FailureMode failure_mode() const { return failure_mode_.load(); }

  // Ephemeral semantics: drop contents (no-op for durable tiers).
  virtual void reboot() {}

  // --- Resilience introspection --------------------------------------------
  // Plain tiers have no breaker and never suggest hedging; ResilientTier
  // overrides these. `has_breaker` lets views print "n/a" instead of a
  // misleading "closed" for tiers without one.
  virtual bool has_breaker() const { return false; }
  virtual BreakerState breaker_state() const { return BreakerState::kClosed; }
  // Non-zero: the instance should hedge a GET to another location when this
  // tier has not answered within the returned delay.
  virtual Duration hedge_delay() const { return Duration::zero(); }

  // --- Introspection -------------------------------------------------------
  virtual const TierStats& stats() const { return stats_; }
  const TierPricing& pricing() const { return pricing_; }
  const LatencyModel& latency_model() const { return latency_; }
  virtual void for_each_key(
      const std::function<void(std::string_view)>& fn) const;

 protected:
  // Decorator constructor: copies the inner tier's identity (name, kind,
  // pricing, latency model) but registers no metrics series and no registry
  // collector — the wrapper forwards every op to the inner tier, which
  // already owns the `tiera_tier_*{tier=<label>}` series; a second collector
  // under the same labels would clobber the gauges.
  struct DecoratorTag {};
  Tier(DecoratorTag, const Tier& inner);

  // Service-time sampling; overridable so tiers can model caching effects
  // (BlockTier's OS-buffer-cache model discounts cached reads).
  virtual Duration sample_read_delay(std::string_view key,
                                     std::uint64_t bytes, Rng& rng);
  virtual Duration sample_write_delay(std::string_view key,
                                      std::uint64_t bytes, Rng& rng);

  // Raw storage hooks; no latency/failure/stat logic inside.
  virtual Status store_raw(std::string_view key, ByteView value) = 0;
  virtual Result<Bytes> load_raw(std::string_view key) const = 0;
  virtual Status erase_raw(std::string_view key) = 0;
  virtual bool contains_raw(std::string_view key) const = 0;
  // Size of the stored object, or nullopt when absent.
  virtual std::optional<std::uint64_t> size_raw(std::string_view key) const = 0;
  virtual std::size_t count_raw() const = 0;
  virtual void keys_raw(
      const std::function<void(std::string_view)>& fn) const = 0;

  void reset_usage() { used_.store(0); }
  // For tiers that reload persisted objects at construction time.
  void add_reloaded_usage(std::uint64_t bytes) { used_.fetch_add(bytes); }

 private:
  Status check_failure() const;

  // Registry-owned series (`tiera_tier_*{tier=<label>}`), looked up once at
  // construction; the pointers outlive the tier (the registry never deletes
  // series). Counters and gauges are pull-model: a registered collector
  // delta-syncs them from `stats_` at render time, so the data path pays
  // nothing for them. Only the sampled latency histograms are pushed.
  struct Metrics {
    Counter* puts = nullptr;
    Counter* gets = nullptr;
    Counter* removes = nullptr;
    Counter* failed_ops = nullptr;
    Counter* bytes_written = nullptr;
    Counter* bytes_read = nullptr;
    LatencyHistogram* put_latency = nullptr;
    LatencyHistogram* get_latency = nullptr;
    Gauge* used_bytes = nullptr;
    Gauge* capacity_bytes = nullptr;
  };
  // Last stats_ values the collector already pushed into the registry
  // counters; only the collector touches these (serialized by the registry).
  struct SyncedStats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t removes = 0;
    std::uint64_t failed_ops = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_read = 0;
  };
  void collect_metrics();

  const std::string name_;
  const TierKind kind_;
  LatencyModel latency_;
  TierPricing pricing_;

  class IoSlotGuard;
  std::atomic<std::uint64_t> capacity_;
  std::atomic<std::uint64_t> used_{0};
  std::atomic<FailureMode> failure_mode_{FailureMode::kNone};
  std::atomic<std::int64_t> failure_timeout_ns_{0};

  mutable std::mutex io_mu_;
  mutable std::condition_variable io_cv_;
  std::size_t io_slots_ = 0;  // 0 = unlimited
  mutable std::size_t io_in_flight_ = 0;

  mutable TierStats stats_;
  Metrics metrics_;
  SyncedStats synced_;
  std::uint64_t collector_id_ = 0;
  mutable std::mutex resize_mu_;
};

using TierPtr = std::shared_ptr<Tier>;

}  // namespace tiera
