// TierFactory: builds tiers from the service names used in instance
// specification files ("Memcached", "EBS", "S3", "Ephemeral", ...), mirroring
// the paper's assumption that "the specific tier names are known to Tiera".
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "store/file_tier.h"
#include "store/mem_tier.h"
#include "store/resilient_tier.h"

namespace tiera {

struct TierSpec {
  TierSpec() = default;
  TierSpec(std::string service, std::string label,
           std::uint64_t capacity_bytes, ResiliencePolicy resilience = {})
      : service(std::move(service)),
        label(std::move(label)),
        capacity_bytes(capacity_bytes),
        resilience(resilience) {}

  // Service name. Recognised (case-insensitive): "memcached",
  // "memcached_remote" (cross-AZ replica), "ebs", "ephemeral", "s3".
  std::string service;
  // The tier's identifier inside the instance (tier1, tier2, ... in specs).
  std::string label;
  std::uint64_t capacity_bytes = 0;
  // When any knob is set (spec fields `retries`, `deadline`, `breaker`,
  // `hedge`), the factory wraps the tier in a ResilientTier.
  ResiliencePolicy resilience;
};

// Parses "5G", "200M", "64K", "123" (bytes) — the sizes in spec files.
Result<std::uint64_t> parse_size(std::string_view text);

class TierFactory {
 public:
  // `data_dir` is where file-backed services keep their objects; each tier
  // gets a subdirectory "<label>-<service>".
  explicit TierFactory(std::string data_dir);

  Result<TierPtr> create(const TierSpec& spec) const;

  static bool known_service(std::string_view service);

 private:
  std::string data_dir_;
};

}  // namespace tiera
