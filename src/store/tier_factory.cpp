#include "store/tier_factory.h"

#include <algorithm>
#include <cctype>

namespace tiera {

namespace {
std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}
}  // namespace

Result<std::uint64_t> parse_size(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty size");
  std::uint64_t multiplier = 1;
  std::string_view digits = text;
  switch (std::toupper(static_cast<unsigned char>(text.back()))) {
    case 'K': multiplier = 1ull << 10; digits.remove_suffix(1); break;
    case 'M': multiplier = 1ull << 20; digits.remove_suffix(1); break;
    case 'G': multiplier = 1ull << 30; digits.remove_suffix(1); break;
    case 'T': multiplier = 1ull << 40; digits.remove_suffix(1); break;
    default: break;
  }
  if (digits.empty()) return Status::InvalidArgument("no digits in size");
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad size: " + std::string(text));
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value * multiplier;
}

TierFactory::TierFactory(std::string data_dir)
    : data_dir_(std::move(data_dir)) {}

bool TierFactory::known_service(std::string_view service) {
  const std::string s = lower(service);
  return s == "memcached" || s == "memcached_remote" || s == "ebs" ||
         s == "ephemeral" || s == "s3";
}

namespace {
// Wraps the service tier in the resilience decorator when the spec asks for
// any of retries/deadline/breaker/hedge.
Result<TierPtr> finish(TierPtr tier, const TierSpec& spec) {
  if (!spec.resilience.any()) return tier;
  return TierPtr(
      std::make_shared<ResilientTier>(std::move(tier), spec.resilience));
}
}  // namespace

Result<TierPtr> TierFactory::create(const TierSpec& spec) const {
  const std::string service = lower(spec.service);
  const std::string name =
      spec.label.empty() ? service : spec.label + ":" + spec.service;
  const std::string dir = data_dir_ + "/" +
                          (spec.label.empty() ? service : spec.label) + "-" +
                          service;
  if (service == "memcached") {
    return finish(std::make_shared<MemTier>(name, spec.capacity_bytes), spec);
  }
  if (service == "memcached_remote") {
    return finish(std::make_shared<MemTier>(name, spec.capacity_bytes,
                                            LatencyModel::memcached_remote()),
                  spec);
  }
  if (service == "ebs") {
    return finish(std::make_shared<BlockTier>(name, spec.capacity_bytes, dir),
                  spec);
  }
  if (service == "ephemeral") {
    return finish(std::make_shared<EphemeralTier>(name, spec.capacity_bytes),
                  spec);
  }
  if (service == "s3") {
    return finish(std::make_shared<ObjectTier>(name, spec.capacity_bytes, dir),
                  spec);
  }
  return Status::InvalidArgument("unknown storage service: " + spec.service);
}

}  // namespace tiera
