#include "store/file_tier.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/hash.h"
#include "common/logging.h"

namespace fs = std::filesystem;

namespace tiera {

namespace {

// Filenames are the hex of the key, or hex prefix + sha256 when too long for
// one path component. Decodable in the common case, unique in every case.
std::string encode_key(std::string_view key) {
  const std::string hex = to_hex(as_view(key));
  if (hex.size() <= 200) return hex;
  return hex.substr(0, 120) + "-" + Sha256::hex_digest(as_view(key));
}

Status errno_status(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

// RAM-copy latency for a modelled page-cache hit.
LatencyModel cache_hit_model() {
  return {.read_base = from_ms(0.02),
          .write_base = from_ms(0.02),
          .read_per_mb = from_ms(0.4),
          .write_per_mb = from_ms(0.4),
          .jitter = 0.10};
}

}  // namespace

FileTier::FileTier(std::string name, TierKind kind,
                   std::uint64_t capacity_bytes, std::string directory,
                   LatencyModel latency, TierPricing pricing)
    : Tier(std::move(name), kind, capacity_bytes, latency, pricing),
      directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  load_existing();
}

std::string FileTier::file_path(std::string_view key) const {
  return directory_ + "/" + encode_key(key);
}

void FileTier::load_existing() {
  std::error_code ec;
  std::uint64_t total = 0;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string hex = entry.path().filename().string();
    // Recover the key from its hex name when possible; hashed names keep the
    // hex prefix only, so reconstruct those keys as opaque (rare: >100-char
    // keys). We store them under their file name to stay addressable.
    std::string key;
    bool decodable = hex.find('-') == std::string::npos && hex.size() % 2 == 0;
    if (decodable) {
      key.reserve(hex.size() / 2);
      for (std::size_t i = 0; decodable && i + 1 < hex.size(); i += 2) {
        auto nibble = [&](char c) -> int {
          if (c >= '0' && c <= '9') return c - '0';
          if (c >= 'a' && c <= 'f') return c - 'a' + 10;
          return -1;
        };
        const int hi = nibble(hex[i]);
        const int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0) {
          decodable = false;
          break;
        }
        key.push_back(static_cast<char>((hi << 4) | lo));
      }
    }
    if (!decodable) key = hex;
    const std::uint64_t size = entry.file_size(ec);
    index_[key] = size;
    total += size;
  }
  reset_usage();
  add_reloaded_usage(total);
  if (!index_.empty()) {
    TIERA_LOG(kInfo, "store") << name() << " reloaded " << index_.size()
                              << " objects (" << total << " bytes) from "
                              << directory_;
  }
}

Status FileTier::store_raw(std::string_view key, ByteView value) {
  const std::string path = file_path(key);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_status("file tier open");
  const std::uint8_t* data = value.data();
  std::size_t len = value.size();
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return errno_status("file tier write");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return errno_status("file tier rename");
  }
  std::lock_guard lock(index_mu_);
  index_[std::string(key)] = value.size();
  return Status::Ok();
}

Result<Bytes> FileTier::load_raw(std::string_view key) const {
  {
    std::lock_guard lock(index_mu_);
    if (index_.find(std::string(key)) == index_.end()) {
      return Status::NotFound(name() + ": no such object");
    }
  }
  const std::string path = file_path(key);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound(name() + ": no such object");
  Bytes out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return errno_status("file tier read");
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

Status FileTier::erase_raw(std::string_view key) {
  {
    std::lock_guard lock(index_mu_);
    index_.erase(std::string(key));
  }
  ::unlink(file_path(key).c_str());
  return Status::Ok();
}

bool FileTier::contains_raw(std::string_view key) const {
  std::lock_guard lock(index_mu_);
  return index_.count(std::string(key)) > 0;
}

std::optional<std::uint64_t> FileTier::size_raw(std::string_view key) const {
  std::lock_guard lock(index_mu_);
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::size_t FileTier::count_raw() const {
  std::lock_guard lock(index_mu_);
  return index_.size();
}

void FileTier::keys_raw(
    const std::function<void(std::string_view)>& fn) const {
  std::lock_guard lock(index_mu_);
  for (const auto& [key, size] : index_) fn(key);
}

void FileTier::wipe() {
  std::lock_guard lock(index_mu_);
  for (const auto& [key, size] : index_) {
    ::unlink(file_path(key).c_str());
  }
  index_.clear();
  reset_usage();
}

// --- BlockTier --------------------------------------------------------------

BlockTier::BlockTier(std::string name, std::uint64_t capacity_bytes,
                     std::string directory, LatencyModel latency,
                     TierPricing pricing)
    : FileTier(std::move(name), TierKind::kBlock, capacity_bytes,
               std::move(directory), latency, pricing) {
  // A block volume has a bounded effective queue depth; memory and object
  // services scale out and stay unlimited.
  set_io_slots(8);
}

void BlockTier::set_page_cache_bytes(std::uint64_t bytes) {
  std::lock_guard lock(cache_mu_);
  cache_.capacity = bytes;
  while (cache_.bytes > cache_.capacity && !cache_.lru.empty()) {
    const std::string& victim = cache_.lru.back();
    auto it = cache_.entries.find(victim);
    cache_.bytes -= it->second.second;
    cache_.entries.erase(it);
    cache_.lru.pop_back();
  }
}

std::uint64_t BlockTier::page_cache_bytes() const {
  std::lock_guard lock(cache_mu_);
  return cache_.capacity;
}

double BlockTier::cache_hit_rate() const {
  std::lock_guard lock(cache_mu_);
  const std::uint64_t total = cache_.hits + cache_.misses;
  return total ? static_cast<double>(cache_.hits) /
                     static_cast<double>(total)
               : 0.0;
}

bool BlockTier::cache_touch(std::string_view key, std::uint64_t size) const {
  std::lock_guard lock(cache_mu_);
  if (cache_.capacity == 0) return false;
  auto it = cache_.entries.find(std::string(key));
  if (it != cache_.entries.end()) {
    cache_.lru.splice(cache_.lru.begin(), cache_.lru, it->second.first);
    ++cache_.hits;
    return true;
  }
  ++cache_.misses;
  if (size > cache_.capacity) return false;  // too big to cache
  cache_.lru.emplace_front(key);
  cache_.entries[std::string(key)] = {cache_.lru.begin(), size};
  cache_.bytes += size;
  while (cache_.bytes > cache_.capacity && !cache_.lru.empty()) {
    const std::string victim = cache_.lru.back();
    auto vit = cache_.entries.find(victim);
    cache_.bytes -= vit->second.second;
    cache_.entries.erase(vit);
    cache_.lru.pop_back();
  }
  return false;
}

Duration BlockTier::sample_read_delay(std::string_view key,
                                      std::uint64_t bytes, Rng& rng) {
  if (cache_touch(key, bytes)) {
    return cache_hit_model().sample_read(bytes, rng);
  }
  return Tier::sample_read_delay(key, bytes, rng);
}

Duration BlockTier::sample_write_delay(std::string_view key,
                                       std::uint64_t bytes, Rng& rng) {
  // Writes always pay the device (EBS acknowledges at the volume), but they
  // warm the modelled cache for subsequent reads.
  cache_touch(key, bytes);
  return Tier::sample_write_delay(key, bytes, rng);
}

// --- ObjectTier -------------------------------------------------------------

ObjectTier::ObjectTier(std::string name, std::uint64_t capacity_bytes,
                       std::string directory, LatencyModel latency,
                       TierPricing pricing)
    : FileTier(std::move(name), TierKind::kObject, capacity_bytes,
               std::move(directory), latency, pricing) {}

// --- EphemeralTier ----------------------------------------------------------

EphemeralTier::EphemeralTier(std::string name, std::uint64_t capacity_bytes,
                             LatencyModel latency)
    : Tier(std::move(name), TierKind::kEphemeral, capacity_bytes, latency,
           TierPricing{}) {
  set_io_slots(8);  // local disk: bounded queue depth, like a block volume
}

Status EphemeralTier::store_raw(std::string_view key, ByteView value) {
  map_.put(key, value);
  return Status::Ok();
}

Result<Bytes> EphemeralTier::load_raw(std::string_view key) const {
  auto value = map_.get(key);
  if (!value) return Status::NotFound(name() + ": no such object");
  return std::move(*value);
}

Status EphemeralTier::erase_raw(std::string_view key) {
  map_.erase(key);
  return Status::Ok();
}

bool EphemeralTier::contains_raw(std::string_view key) const {
  return map_.contains(key);
}

std::optional<std::uint64_t> EphemeralTier::size_raw(
    std::string_view key) const {
  return map_.size_of(key);
}

std::size_t EphemeralTier::count_raw() const { return map_.size(); }

void EphemeralTier::keys_raw(
    const std::function<void(std::string_view)>& fn) const {
  map_.for_each_key(fn);
}

}  // namespace tiera
