#include "store/file_tier.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "common/hash.h"
#include "common/logging.h"

namespace fs = std::filesystem;

namespace tiera {

namespace {

// Dead-record accounting mirrors the log's framing: header + key + value.
constexpr std::uint64_t kLogRecordHeader = 4 + 1 + 4 + 4;

std::uint64_t record_bytes(std::size_t key_len, std::size_t value_len) {
  return kLogRecordHeader + key_len + value_len;
}

// Compact once the log passes this size with mostly dead bytes.
constexpr std::uint64_t kCompactMinBytes = 8ull << 20;
constexpr double kCompactDeadRatio = 0.5;

// RAM-copy latency for a modelled page-cache hit.
LatencyModel cache_hit_model() {
  return {.read_base = from_ms(0.02),
          .write_base = from_ms(0.02),
          .read_per_mb = from_ms(0.4),
          .write_per_mb = from_ms(0.4),
          .jitter = 0.10};
}

}  // namespace

FileTier::FileTier(std::string name, TierKind kind,
                   std::uint64_t capacity_bytes, std::string directory,
                   LatencyModel latency, TierPricing pricing)
    : Tier(std::move(name), kind, capacity_bytes, latency, pricing),
      directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  open_log();
  migrate_legacy_files();
  std::uint64_t total = 0;
  for (const auto& [key, loc] : index_) total += loc.length;
  reset_usage();
  add_reloaded_usage(total);
  if (!index_.empty()) {
    TIERA_LOG(kInfo, "store") << this->name() << " reloaded " << index_.size()
                              << " objects (" << total << " bytes) from "
                              << directory_;
  }
}

void FileTier::open_log() {
  auto log = SegmentLog::open(
      directory_, SegmentLogOptions{},
      [this](std::string_view key, bool live, const LogLocation& loc) {
        auto it = index_.find(std::string(key));
        if (it != index_.end()) {
          dead_bytes_ += record_bytes(key.size(), it->second.length);
          if (!live) {
            // Tombstone: the record itself is dead weight too.
            dead_bytes_ += record_bytes(key.size(), 0);
            index_.erase(it);
            return;
          }
          it->second = loc;
        } else if (live) {
          index_.emplace(std::string(key), loc);
        } else {
          dead_bytes_ += record_bytes(key.size(), 0);
        }
      });
  if (!log.ok()) {
    TIERA_LOG(kError, "store") << name() << " segment log open failed: "
                               << log.status().to_string();
    return;
  }
  log_ = std::move(log).value();
}

// One-time import of directories written by the old one-file-per-object
// format (filename = hex key, or hex prefix + sha when too long): append
// each file's bytes to the log, then remove the file.
void FileTier::migrate_legacy_files() {
  if (!log_) return;
  std::error_code ec;
  std::size_t migrated = 0;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string hex = entry.path().filename().string();
    if (hex.rfind("seg-", 0) == 0) continue;
    std::string key;
    bool decodable = hex.find('-') == std::string::npos && hex.size() % 2 == 0;
    if (decodable) {
      key.reserve(hex.size() / 2);
      for (std::size_t i = 0; decodable && i + 1 < hex.size(); i += 2) {
        auto nibble = [&](char c) -> int {
          if (c >= '0' && c <= '9') return c - '0';
          if (c >= 'a' && c <= 'f') return c - 'a' + 10;
          return -1;
        };
        const int hi = nibble(hex[i]);
        const int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0) {
          decodable = false;
          break;
        }
        key.push_back(static_cast<char>((hi << 4) | lo));
      }
    }
    if (!decodable) key = hex;
    std::ifstream in(entry.path(), std::ios::binary);
    Bytes value((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    if (!in && !in.eof()) continue;
    auto loc = log_->append(key, as_view(value));
    if (!loc.ok()) continue;
    auto it = index_.find(key);
    if (it != index_.end()) {
      dead_bytes_ += record_bytes(key.size(), it->second.length);
      it->second = *loc;
    } else {
      index_.emplace(std::move(key), *loc);
    }
    fs::remove(entry.path(), ec);
    ++migrated;
  }
  if (migrated > 0) {
    TIERA_LOG(kInfo, "store") << name() << " migrated " << migrated
                              << " legacy object files into the segment log";
  }
}

Status FileTier::store_raw(std::string_view key, ByteView value) {
  if (!log_) return Status::Internal(name() + ": segment log unavailable");
  std::lock_guard lock(index_mu_);
  auto loc = log_->append(key, value);
  if (!loc.ok()) return loc.status();
  auto it = index_.find(std::string(key));
  if (it != index_.end()) {
    dead_bytes_ += record_bytes(key.size(), it->second.length);
    it->second = *loc;
  } else {
    index_.emplace(std::string(key), *loc);
  }
  return maybe_compact_locked();
}

// >= not >: after one full overwrite generation the log is exactly half
// dead, and a strict compare would stall compaction right at the boundary
// while every further generation keeps appending.
Status FileTier::maybe_compact_locked() {
  if (!log_) return Status::Ok();
  if (log_->log_bytes() >= kCompactMinBytes &&
      static_cast<double>(dead_bytes_) >=
          kCompactDeadRatio * static_cast<double>(log_->log_bytes())) {
    return compact_locked();
  }
  return Status::Ok();
}

Result<Bytes> FileTier::load_raw(std::string_view key) const {
  // The location is fetched under the index lock but the pread runs outside
  // it; a compaction can relocate the value in between (its old segment
  // disappears), so retry with a fresh location rather than surfacing a
  // spurious miss.
  for (int attempt = 0; attempt < 3; ++attempt) {
    LogLocation loc;
    {
      std::lock_guard lock(index_mu_);
      auto it = index_.find(std::string(key));
      if (it == index_.end()) {
        return Status::NotFound(name() + ": no such object");
      }
      loc = it->second;
    }
    if (!log_) return Status::Internal(name() + ": segment log unavailable");
    auto value = log_->read(loc);
    if (value.ok() || value.status().code() != StatusCode::kNotFound) {
      return value;
    }
  }
  return Status::Internal(name() + ": object relocated repeatedly");
}

Status FileTier::erase_raw(std::string_view key) {
  if (!log_) return Status::Internal(name() + ": segment log unavailable");
  std::lock_guard lock(index_mu_);
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::Ok();
  dead_bytes_ += record_bytes(key.size(), it->second.length);
  dead_bytes_ += record_bytes(key.size(), 0);  // the tombstone itself
  index_.erase(it);
  TIERA_RETURN_IF_ERROR(log_->append_tombstone(key));
  // Erase-heavy churn (exclusive caching demotes/promotes) adds dead bytes
  // without ever passing through store_raw, so check the trigger here too.
  return maybe_compact_locked();
}

bool FileTier::contains_raw(std::string_view key) const {
  std::lock_guard lock(index_mu_);
  return index_.count(std::string(key)) > 0;
}

std::optional<std::uint64_t> FileTier::size_raw(std::string_view key) const {
  std::lock_guard lock(index_mu_);
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return std::nullopt;
  return it->second.length;
}

std::size_t FileTier::count_raw() const {
  std::lock_guard lock(index_mu_);
  return index_.size();
}

void FileTier::keys_raw(
    const std::function<void(std::string_view)>& fn) const {
  std::lock_guard lock(index_mu_);
  for (const auto& [key, loc] : index_) fn(key);
}

void FileTier::wipe() {
  std::lock_guard lock(index_mu_);
  if (log_) (void)log_->wipe();
  index_.clear();
  dead_bytes_ = 0;
  reset_usage();
}

std::uint64_t FileTier::log_bytes() const {
  return log_ ? log_->log_bytes() : 0;
}

std::uint64_t FileTier::dead_log_bytes() const {
  std::lock_guard lock(index_mu_);
  return dead_bytes_;
}

Status FileTier::compact_log() {
  std::lock_guard lock(index_mu_);
  return compact_locked();
}

Status FileTier::compact_locked() {
  if (!log_) return Status::Internal(name() + ": segment log unavailable");
  TIERA_RETURN_IF_ERROR(log_->compact(
      [this](const SegmentLog::LiveVisitor& visit) {
        for (const auto& [key, loc] : index_) visit(key, loc);
      },
      [this](std::string_view key, const LogLocation& loc) {
        index_[std::string(key)] = loc;
      }));
  dead_bytes_ = 0;
  return Status::Ok();
}

// --- BlockTier --------------------------------------------------------------

BlockTier::BlockTier(std::string name, std::uint64_t capacity_bytes,
                     std::string directory, LatencyModel latency,
                     TierPricing pricing)
    : FileTier(std::move(name), TierKind::kBlock, capacity_bytes,
               std::move(directory), latency, pricing) {
  // A block volume has a bounded effective queue depth; memory and object
  // services scale out and stay unlimited.
  set_io_slots(8);
}

void BlockTier::set_page_cache_bytes(std::uint64_t bytes) {
  std::lock_guard lock(cache_mu_);
  cache_.capacity = bytes;
  while (cache_.bytes > cache_.capacity && !cache_.lru.empty()) {
    const std::string& victim = cache_.lru.back();
    auto it = cache_.entries.find(victim);
    cache_.bytes -= it->second.second;
    cache_.entries.erase(it);
    cache_.lru.pop_back();
  }
}

std::uint64_t BlockTier::page_cache_bytes() const {
  std::lock_guard lock(cache_mu_);
  return cache_.capacity;
}

double BlockTier::cache_hit_rate() const {
  std::lock_guard lock(cache_mu_);
  const std::uint64_t total = cache_.hits + cache_.misses;
  return total ? static_cast<double>(cache_.hits) /
                     static_cast<double>(total)
               : 0.0;
}

bool BlockTier::cache_touch(std::string_view key, std::uint64_t size) const {
  std::lock_guard lock(cache_mu_);
  if (cache_.capacity == 0) return false;
  auto it = cache_.entries.find(std::string(key));
  if (it != cache_.entries.end()) {
    cache_.lru.splice(cache_.lru.begin(), cache_.lru, it->second.first);
    ++cache_.hits;
    return true;
  }
  ++cache_.misses;
  if (size > cache_.capacity) return false;  // too big to cache
  cache_.lru.emplace_front(key);
  cache_.entries[std::string(key)] = {cache_.lru.begin(), size};
  cache_.bytes += size;
  while (cache_.bytes > cache_.capacity && !cache_.lru.empty()) {
    const std::string victim = cache_.lru.back();
    auto vit = cache_.entries.find(victim);
    cache_.bytes -= vit->second.second;
    cache_.entries.erase(vit);
    cache_.lru.pop_back();
  }
  return false;
}

Duration BlockTier::sample_read_delay(std::string_view key,
                                      std::uint64_t bytes, Rng& rng) {
  if (cache_touch(key, bytes)) {
    return cache_hit_model().sample_read(bytes, rng);
  }
  return Tier::sample_read_delay(key, bytes, rng);
}

Duration BlockTier::sample_write_delay(std::string_view key,
                                       std::uint64_t bytes, Rng& rng) {
  // Writes always pay the device (EBS acknowledges at the volume), but they
  // warm the modelled cache for subsequent reads.
  cache_touch(key, bytes);
  return Tier::sample_write_delay(key, bytes, rng);
}

// --- ObjectTier -------------------------------------------------------------

ObjectTier::ObjectTier(std::string name, std::uint64_t capacity_bytes,
                       std::string directory, LatencyModel latency,
                       TierPricing pricing)
    : FileTier(std::move(name), TierKind::kObject, capacity_bytes,
               std::move(directory), latency, pricing) {}

// --- EphemeralTier ----------------------------------------------------------

EphemeralTier::EphemeralTier(std::string name, std::uint64_t capacity_bytes,
                             LatencyModel latency)
    : Tier(std::move(name), TierKind::kEphemeral, capacity_bytes, latency,
           TierPricing{}) {
  set_io_slots(8);  // local disk: bounded queue depth, like a block volume
}

Status EphemeralTier::store_raw(std::string_view key, ByteView value) {
  map_.put(key, value);
  return Status::Ok();
}

Result<Bytes> EphemeralTier::load_raw(std::string_view key) const {
  auto value = map_.get(key);
  if (!value) return Status::NotFound(name() + ": no such object");
  return std::move(*value);
}

Status EphemeralTier::erase_raw(std::string_view key) {
  map_.erase(key);
  return Status::Ok();
}

bool EphemeralTier::contains_raw(std::string_view key) const {
  return map_.contains(key);
}

std::optional<std::uint64_t> EphemeralTier::size_raw(
    std::string_view key) const {
  return map_.size_of(key);
}

std::size_t EphemeralTier::count_raw() const { return map_.size(); }

void EphemeralTier::keys_raw(
    const std::function<void(std::string_view)>& fn) const {
  map_.for_each_key(fn);
}

}  // namespace tiera
