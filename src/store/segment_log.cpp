#include "store/segment_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace fs = std::filesystem;

namespace tiera {

namespace {

constexpr std::uint8_t kTypePut = 1;
constexpr std::uint8_t kTypeTombstone = 2;
constexpr std::size_t kRecordHeader = 4 + 1 + 4 + 4;

Status errno_status(const char* op) {
  return Status::Internal(std::string("segment log ") + op + ": " +
                          std::strerror(errno));
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

Bytes encode_record(std::uint8_t type, std::string_view key, ByteView value) {
  Bytes rec;
  rec.reserve(kRecordHeader + key.size() + value.size());
  rec.resize(4);  // crc placeholder
  rec.push_back(type);
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto value_len = static_cast<std::uint32_t>(value.size());
  rec.insert(rec.end(), reinterpret_cast<const std::uint8_t*>(&key_len),
             reinterpret_cast<const std::uint8_t*>(&key_len) + 4);
  rec.insert(rec.end(), reinterpret_cast<const std::uint8_t*>(&value_len),
             reinterpret_cast<const std::uint8_t*>(&value_len) + 4);
  append(rec, key);
  append(rec, value);
  const std::uint32_t crc = crc32c(ByteView(rec.data() + 4, rec.size() - 4));
  std::memcpy(rec.data(), &crc, 4);
  return rec;
}

}  // namespace

SegmentLog::SegmentLog(std::string directory, SegmentLogOptions options)
    : directory_(std::move(directory)), options_(options) {}

SegmentLog::~SegmentLog() {
  std::unique_lock lock(mu_);
  for (auto& [segment, fd] : segment_fds_) {
    if (fd >= 0) ::close(fd);
  }
  segment_fds_.clear();
}

std::string SegmentLog::segment_path(std::uint64_t segment) const {
  return directory_ + "/seg-" + std::to_string(segment) + ".log";
}

Result<std::unique_ptr<SegmentLog>> SegmentLog::open(
    std::string directory, SegmentLogOptions options, const ReplayFn& replay) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  std::unique_ptr<SegmentLog> log(
      new SegmentLog(std::move(directory), options));

  // Collect existing segment numbers; everything else in the directory is
  // the caller's problem (FileTier migrates legacy per-object files).
  std::vector<std::uint64_t> segments;
  for (const auto& entry : fs::directory_iterator(log->directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= 8 || name.rfind("seg-", 0) != 0 ||
        name.substr(name.size() - 4) != ".log") {
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const std::string digits = name.substr(4, name.size() - 8);
    const unsigned long long n = std::strtoull(digits.c_str(), &end, 10);
    if (errno != 0 || end == digits.c_str() || *end != '\0' || n == 0) continue;
    segments.push_back(n);
  }
  std::sort(segments.begin(), segments.end());

  for (const std::uint64_t segment : segments) {
    TIERA_RETURN_IF_ERROR(log->replay_segment(segment, replay));
  }

  std::unique_lock lock(log->mu_);
  log->current_segment_ = segments.empty() ? 1 : segments.back();
  TIERA_RETURN_IF_ERROR(log->open_segment_locked(log->current_segment_));
  struct stat st {};
  if (::fstat(log->segment_fds_[log->current_segment_], &st) != 0) {
    return errno_status("fstat");
  }
  log->current_offset_ = static_cast<std::uint64_t>(st.st_size);
  lock.unlock();
  return log;
}

Status SegmentLog::replay_segment(std::uint64_t segment,
                                  const ReplayFn& replay) {
  const std::string path = segment_path(segment);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_status("open for replay");
  Bytes data;
  {
    std::uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return errno_status("read for replay");
      }
      if (n == 0) break;
      data.insert(data.end(), buf, buf + n);
    }
  }
  ::close(fd);

  std::size_t pos = 0;
  std::size_t valid_end = 0;
  while (pos + kRecordHeader <= data.size()) {
    std::uint32_t crc, key_len, value_len;
    std::memcpy(&crc, data.data() + pos, 4);
    const std::uint8_t type = data[pos + 4];
    std::memcpy(&key_len, data.data() + pos + 5, 4);
    std::memcpy(&value_len, data.data() + pos + 9, 4);
    const std::uint64_t body = std::uint64_t(key_len) + value_len;
    if (pos + kRecordHeader + body > data.size()) break;  // torn tail
    const ByteView payload(data.data() + pos + 4, 1 + 8 + body);
    if (crc32c(payload) != crc) break;  // corrupt tail: stop here
    if (type != kTypePut && type != kTypeTombstone) break;
    const std::string_view key(
        reinterpret_cast<const char*>(data.data() + pos + kRecordHeader),
        key_len);
    LogLocation loc;
    loc.segment = segment;
    loc.offset = pos + kRecordHeader + key_len;
    loc.length = value_len;
    replay(key, type == kTypePut, loc);
    pos += kRecordHeader + body;
    valid_end = pos;
  }
  log_bytes_ += valid_end;
  if (valid_end < data.size()) {
    TIERA_LOG(kWarn, "store")
        << "segment log discarding " << (data.size() - valid_end)
        << " torn/corrupt bytes at tail of " << path;
    if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
      return errno_status("truncate");
    }
  }
  return Status::Ok();
}

Status SegmentLog::open_segment_locked(std::uint64_t segment) {
  if (segment_fds_.count(segment)) return Status::Ok();
  const int fd = ::open(segment_path(segment).c_str(),
                        O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return errno_status("open segment");
  segment_fds_[segment] = fd;
  return Status::Ok();
}

Status SegmentLog::roll_if_needed_locked() {
  if (current_offset_ < options_.segment_bytes) return Status::Ok();
  ++current_segment_;
  current_offset_ = 0;
  return open_segment_locked(current_segment_);
}

Status SegmentLog::append_record_locked(std::uint8_t type,
                                        std::string_view key, ByteView value,
                                        LogLocation* loc) {
  TIERA_RETURN_IF_ERROR(roll_if_needed_locked());
  const Bytes rec = encode_record(type, key, value);
  const int fd = segment_fds_[current_segment_];
  if (!write_all(fd, rec.data(), rec.size())) return errno_status("write");
  if (loc) {
    loc->segment = current_segment_;
    loc->offset = current_offset_ + kRecordHeader + key.size();
    loc->length = static_cast<std::uint32_t>(value.size());
  }
  current_offset_ += rec.size();
  log_bytes_ += rec.size();
  return Status::Ok();
}

Result<LogLocation> SegmentLog::append(std::string_view key, ByteView value) {
  std::unique_lock lock(mu_);
  LogLocation loc;
  TIERA_RETURN_IF_ERROR(append_record_locked(kTypePut, key, value, &loc));
  return loc;
}

Status SegmentLog::append_tombstone(std::string_view key) {
  std::unique_lock lock(mu_);
  return append_record_locked(kTypeTombstone, key, {}, nullptr);
}

Result<Bytes> SegmentLog::read(const LogLocation& loc) const {
  std::shared_lock lock(mu_);
  auto it = segment_fds_.find(loc.segment);
  if (it == segment_fds_.end()) {
    return Status::NotFound("segment log: no such segment");
  }
  Bytes out(loc.length);
  std::size_t done = 0;
  while (done < loc.length) {
    const ssize_t n =
        ::pread(it->second, out.data() + done, loc.length - done,
                static_cast<off_t>(loc.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("pread");
    }
    if (n == 0) return Status::Internal("segment log: short read");
    done += static_cast<std::size_t>(n);
  }
  return out;
}

Status SegmentLog::sync() {
  std::unique_lock lock(mu_);
  auto it = segment_fds_.find(current_segment_);
  if (it != segment_fds_.end() && ::fsync(it->second) != 0) {
    return errno_status("fsync");
  }
  return Status::Ok();
}

Status SegmentLog::compact(
    const std::function<void(const LiveVisitor&)>& for_each_live,
    const std::function<void(std::string_view key, const LogLocation& loc)>&
        update) {
  std::unique_lock lock(mu_);
  // Copy the live set into fresh segments numbered after the current one.
  // Replay applies segments in order, so the copies (newest) win over the
  // stale records even if a crash leaves both generations on disk.
  const std::uint64_t first_new = current_segment_ + 1;
  std::uint64_t old_log_bytes = log_bytes_;
  current_segment_ = first_new;
  current_offset_ = 0;
  log_bytes_ = 0;
  TIERA_RETURN_IF_ERROR(open_segment_locked(current_segment_));

  Status status = Status::Ok();
  for_each_live([&](std::string_view key, const LogLocation& loc) {
    if (!status.ok()) return;
    // Read from the old location (old segment fds are still open).
    auto it = segment_fds_.find(loc.segment);
    if (it == segment_fds_.end()) {
      status = Status::Internal("segment log compact: missing segment");
      return;
    }
    Bytes value(loc.length);
    std::size_t done = 0;
    while (done < loc.length) {
      const ssize_t n =
          ::pread(it->second, value.data() + done, loc.length - done,
                  static_cast<off_t>(loc.offset + done));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        status = errno_status("compact pread");
        return;
      }
      done += static_cast<std::size_t>(n);
    }
    LogLocation new_loc;
    status = append_record_locked(kTypePut, key, as_view(value), &new_loc);
    if (status.ok()) update(key, new_loc);
  });
  if (!status.ok()) return status;

  // Make the copies durable before deleting their sources.
  for (auto it = segment_fds_.lower_bound(first_new);
       it != segment_fds_.end(); ++it) {
    if (::fsync(it->second) != 0) return errno_status("compact fsync");
  }
  for (auto it = segment_fds_.begin();
       it != segment_fds_.end() && it->first < first_new;) {
    ::close(it->second);
    ::unlink(segment_path(it->first).c_str());
    it = segment_fds_.erase(it);
  }
  TIERA_LOG(kInfo, "store") << "segment log " << directory_ << " compacted "
                            << old_log_bytes << " -> " << log_bytes_
                            << " bytes";
  return Status::Ok();
}

Status SegmentLog::wipe() {
  std::unique_lock lock(mu_);
  for (auto& [segment, fd] : segment_fds_) {
    ::close(fd);
    ::unlink(segment_path(segment).c_str());
  }
  segment_fds_.clear();
  current_segment_ = 1;
  current_offset_ = 0;
  log_bytes_ = 0;
  return open_segment_locked(current_segment_);
}

std::uint64_t SegmentLog::log_bytes() const {
  std::shared_lock lock(mu_);
  return log_bytes_;
}

}  // namespace tiera
