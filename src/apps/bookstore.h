// Online bookstore: the TPC-W web application of §4.1.2.
//
// The paper deploys the bookstore bundled with TPC-W: MySQL behind Apache
// Tomcat, static HTML and images on disk, and emulated browsers driving the
// *shopping mix* of web interactions. This module reproduces the parts the
// storage stack sees:
//   * database tables (items, customers, carts, orders) in minidb,
//   * static HTML pages and item images as files through the FileAdapter,
//   * a web-interaction processor whose interactions combine static content
//     reads with database transactions,
//   * emulated browsers (one thread each, fixed think time) and the WIPS
//     metric (web interactions per second).
#pragma once

#include <atomic>

#include "common/histogram.h"
#include "sql/minidb.h"

namespace tiera {

struct BookstoreOptions {
  std::uint64_t items = 1000;       // paper: 10,000 (scaled by benches)
  std::uint64_t customers = 10'000; // paper: 100,000
  std::size_t html_bytes = 6 << 10;
  std::size_t image_bytes = 12 << 10;
  std::uint32_t item_record = 192;
  std::uint32_t customer_record = 192;
  std::uint32_t cart_record = 256;
  std::uint32_t order_record = 256;
};

class Bookstore {
 public:
  Bookstore(MiniDb& db, FileAdapter& files, BookstoreOptions options = {});

  // Create tables, load rows, and publish the static content.
  Status initialize();

  // --- Web interactions (shopping-mix subset) -------------------------------
  // Browsing interactions (read-only): home page, product detail with
  // image, search result listing, best sellers.
  Status home(Rng& rng);
  Status product_detail(Rng& rng);
  Status search(Rng& rng);
  Status best_sellers(Rng& rng);
  // Ordering interactions (read-write): cart update and buy confirm.
  Status add_to_cart(Rng& rng);
  Status buy_confirm(Rng& rng);

  // One interaction drawn from the shopping mix (read-dominant: ~80%
  // browsing / 20% ordering, TPC-W's shopping profile).
  Status interaction(Rng& rng);

  const BookstoreOptions& options() const { return options_; }

 private:
  std::string html_path(std::uint64_t item) const;
  std::string image_path(std::uint64_t item) const;

  MiniDb& db_;
  FileAdapter& files_;
  BookstoreOptions options_;
  std::atomic<std::uint64_t> next_order_{0};
};

struct BrowserRunResult {
  double wips = 0;                 // web interactions per modelled second
  LatencyHistogram interaction_latency;  // modelled ms
  std::uint64_t interactions = 0;
  std::uint64_t errors = 0;
};

// Models the web/application server's compute: each interaction burns
// `cpu_per_interaction` of modelled CPU while holding one of `cpu_slots`
// cores. Zero slots disables the model (storage-bound only).
struct ServerModel {
  Duration cpu_per_interaction = Duration::zero();
  std::size_t cpu_slots = 0;
};

// Runs `browsers` emulated-browser threads for `duration` (modelled time)
// with the given think time between interactions.
BrowserRunResult run_emulated_browsers(Bookstore& store, std::size_t browsers,
                                       Duration duration,
                                       Duration think_time,
                                       std::uint64_t seed = 17,
                                       ServerModel server = {});

}  // namespace tiera
