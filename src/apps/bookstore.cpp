#include "apps/bookstore.h"

#include <cmath>
#include <thread>

namespace tiera {

namespace {
constexpr std::string_view kItems = "bs_items";
constexpr std::string_view kCustomers = "bs_customers";
constexpr std::string_view kCarts = "bs_carts";
constexpr std::string_view kOrders = "bs_orders";
}  // namespace

Bookstore::Bookstore(MiniDb& db, FileAdapter& files, BookstoreOptions options)
    : db_(db), files_(files), options_(options) {}

std::string Bookstore::html_path(std::uint64_t item) const {
  return "static/item" + std::to_string(item) + ".html";
}

std::string Bookstore::image_path(std::uint64_t item) const {
  return "img/item" + std::to_string(item) + ".jpg";
}

Status Bookstore::initialize() {
  TIERA_RETURN_IF_ERROR(
      db_.create_table(std::string(kItems), options_.item_record));
  TIERA_RETURN_IF_ERROR(
      db_.create_table(std::string(kCustomers), options_.customer_record));
  TIERA_RETURN_IF_ERROR(
      db_.create_table(std::string(kCarts), options_.cart_record));
  TIERA_RETURN_IF_ERROR(
      db_.create_table(std::string(kOrders), options_.order_record));

  // Item and customer rows in bulk transactions.
  const std::uint64_t batch = 64;
  for (std::uint64_t first = 0; first < options_.items; first += batch) {
    MiniDb::Transaction txn = db_.begin();
    for (std::uint64_t i = first;
         i < std::min(options_.items, first + batch); ++i) {
      TIERA_RETURN_IF_ERROR(
          txn.write(std::string(kItems), i,
                    as_view(make_payload(options_.item_record, i))));
    }
    TIERA_RETURN_IF_ERROR(db_.commit(txn));
  }
  for (std::uint64_t first = 0; first < options_.customers; first += batch) {
    MiniDb::Transaction txn = db_.begin();
    for (std::uint64_t i = first;
         i < std::min(options_.customers, first + batch); ++i) {
      TIERA_RETURN_IF_ERROR(
          txn.write(std::string(kCustomers), i,
                    as_view(make_payload(options_.customer_record, i ^ 7))));
    }
    TIERA_RETURN_IF_ERROR(db_.commit(txn));
  }

  // Static pages and images.
  for (std::uint64_t i = 0; i < options_.items; ++i) {
    TIERA_RETURN_IF_ERROR(files_.create(html_path(i), {"static"}));
    TIERA_RETURN_IF_ERROR(files_.write(
        html_path(i), 0, as_view(make_payload(options_.html_bytes, i * 3))));
    TIERA_RETURN_IF_ERROR(files_.create(image_path(i), {"static"}));
    TIERA_RETURN_IF_ERROR(
        files_.write(image_path(i), 0,
                     as_view(make_payload(options_.image_bytes, i * 5))));
  }
  return db_.checkpoint();
}

Status Bookstore::home(Rng& rng) {
  // Home page: one static page + the customer's record.
  const std::uint64_t item = rng.next_below(options_.items);
  TIERA_RETURN_IF_ERROR(
      files_.read(html_path(item), 0, options_.html_bytes).status());
  MiniDb::Transaction txn = db_.begin();
  (void)txn.read(std::string(kCustomers),
                 rng.next_below(options_.customers));
  return Status::Ok();
}

Status Bookstore::product_detail(Rng& rng) {
  const std::uint64_t item = rng.next_below(options_.items);
  MiniDb::Transaction txn = db_.begin();
  Result<Bytes> row = txn.read(std::string(kItems), item);
  if (!row.ok()) return row.status();
  TIERA_RETURN_IF_ERROR(
      files_.read(html_path(item), 0, options_.html_bytes).status());
  return files_.read(image_path(item), 0, options_.image_bytes).status();
}

Status Bookstore::search(Rng& rng) {
  // A result page: scan a window of items plus the listing page.
  const std::uint64_t first =
      rng.next_below(std::max<std::uint64_t>(1, options_.items - 20));
  MiniDb::Transaction txn = db_.begin();
  TIERA_RETURN_IF_ERROR(
      txn.range_read(std::string(kItems), first, 20).status());
  return files_.read(html_path(first), 0, options_.html_bytes).status();
}

Status Bookstore::best_sellers(Rng& rng) {
  MiniDb::Transaction txn = db_.begin();
  TIERA_RETURN_IF_ERROR(
      txn.range_read(std::string(kItems), 0, 30).status());
  TIERA_RETURN_IF_ERROR(
      files_.read(html_path(rng.next_below(options_.items)), 0,
                  options_.html_bytes)
          .status());
  return Status::Ok();
}

Status Bookstore::add_to_cart(Rng& rng) {
  const std::uint64_t customer = rng.next_below(options_.customers);
  const std::uint64_t item = rng.next_below(options_.items);
  MiniDb::Transaction txn = db_.begin();
  (void)txn.read(std::string(kItems), item);
  (void)txn.read(std::string(kCarts), customer);
  TIERA_RETURN_IF_ERROR(
      txn.write(std::string(kCarts), customer,
                as_view(make_payload(options_.cart_record, customer ^ item))));
  return db_.commit(txn);
}

Status Bookstore::buy_confirm(Rng& rng) {
  const std::uint64_t customer = rng.next_below(options_.customers);
  const std::uint64_t order = next_order_.fetch_add(1);
  MiniDb::Transaction txn = db_.begin();
  (void)txn.read(std::string(kCarts), customer);
  (void)txn.read(std::string(kCustomers), customer);
  // Record the order, update stock on the purchased item, clear the cart.
  TIERA_RETURN_IF_ERROR(
      txn.write(std::string(kOrders), order,
                as_view(make_payload(options_.order_record, order))));
  const std::uint64_t item = rng.next_below(options_.items);
  TIERA_RETURN_IF_ERROR(
      txn.write(std::string(kItems), item,
                as_view(make_payload(options_.item_record, item + order))));
  TIERA_RETURN_IF_ERROR(txn.remove(std::string(kCarts), customer));
  return db_.commit(txn);
}

Status Bookstore::interaction(Rng& rng) {
  // TPC-W shopping mix, collapsed to this implementation's interactions:
  // read-dominant browsing with a 20% ordering component.
  const double p = rng.next_double();
  if (p < 0.25) return home(rng);
  if (p < 0.55) return product_detail(rng);
  if (p < 0.72) return search(rng);
  if (p < 0.80) return best_sellers(rng);
  if (p < 0.93) return add_to_cart(rng);
  return buy_confirm(rng);
}

namespace {

// Counting semaphore for the modelled server cores.
class CpuSlots {
 public:
  explicit CpuSlots(std::size_t slots) : slots_(slots) {}
  void run(Duration cpu_cost) {
    if (slots_ == 0) return;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return in_use_ < slots_; });
      ++in_use_;
    }
    apply_model_delay(cpu_cost);
    {
      std::lock_guard lock(mu_);
      --in_use_;
    }
    cv_.notify_one();
  }

 private:
  const std::size_t slots_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t in_use_ = 0;
};

}  // namespace

BrowserRunResult run_emulated_browsers(Bookstore& store, std::size_t browsers,
                                       Duration duration, Duration think_time,
                                       std::uint64_t seed,
                                       ServerModel server) {
  BrowserRunResult result;
  const double scale = time_scale() > 0 ? time_scale() : 1.0;
  const TimePoint deadline =
      now() + std::chrono::duration_cast<Duration>(duration * scale);

  CpuSlots cpu(server.cpu_slots);
  std::vector<std::thread> threads;
  std::vector<BrowserRunResult> partials(browsers);
  for (std::size_t b = 0; b < browsers; ++b) {
    threads.emplace_back([&, b] {
      BrowserRunResult& local = partials[b];
      Rng rng(seed * 31 + b);
      while (now() < deadline) {
        Stopwatch watch;
        cpu.run(server.cpu_per_interaction);
        const Status s = store.interaction(rng);
        local.interaction_latency.record_ms(watch.elapsed_ms() / scale);
        if (s.ok()) {
          ++local.interactions;
        } else {
          ++local.errors;
        }
        // Exponentially distributed think time around the mean.
        const double u = std::max(1e-6, rng.next_double());
        apply_model_delay(std::chrono::duration_cast<Duration>(
            think_time * (-std::log(u))));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (const auto& partial : partials) {
    result.interaction_latency.merge(partial.interaction_latency);
    result.interactions += partial.interactions;
    result.errors += partial.errors;
  }
  result.wips =
      static_cast<double>(result.interactions) / to_seconds(duration);
  return result;
}

}  // namespace tiera
