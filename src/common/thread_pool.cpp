#include "common/thread_pool.h"

#include <utility>

#include "common/profile_stack.h"

namespace tiera {

ThreadPool::ThreadPool(std::size_t num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  std::shared_ptr<const Observer> observer;
  std::size_t depth = 0, active = 0;
  {
    std::lock_guard lock(mu_);
    if (stopping_) return false;
    queue_.push_back({std::move(task), current_trace_context(), now()});
    observer = observer_;
    depth = queue_.size();
    active = active_;
  }
  work_cv_.notify_one();
  if (observer) (*observer)(depth, active);
  return true;
}

void ThreadPool::set_observer(Observer observer) {
  std::lock_guard lock(mu_);
  observer_ = observer ? std::make_shared<const Observer>(std::move(observer))
                       : nullptr;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::active() const {
  std::lock_guard lock(mu_);
  return active_;
}

void ThreadPool::worker_loop() {
  // name_ outlives the workers (joined in the destructor), so the profiler
  // may hold the pointer for the thread's lifetime.
  profile_set_thread_name(name_.c_str());
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    sojourn_.record(now() - task.enqueued);
    {
      // Adopt the submitter's trace context so spans recorded by this task
      // link back to the request/event that queued it.
      ScopedTraceContext trace(task.trace);
      task.fn();
    }
    std::shared_ptr<const Observer> observer;
    std::size_t depth = 0, active = 0;
    {
      std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
      observer = observer_;
      depth = queue_.size();
      active = active_;
    }
    if (observer) (*observer)(depth, active);
  }
}

}  // namespace tiera
