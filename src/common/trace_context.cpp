#include "common/trace_context.h"

#include <atomic>

namespace tiera {

namespace {

thread_local TraceContext g_current;

std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::uint64_t> g_next_span{1};

}  // namespace

TraceContext current_trace_context() { return g_current; }

std::uint64_t next_trace_id() {
  return g_next_trace.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t next_span_id() {
  return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) : saved_(g_current) {
  g_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_current = saved_; }

TraceScope::TraceScope() : saved_(g_current), start_(now()) {
  parent_ = saved_.valid() ? saved_.span_id : 0;
  self_.trace_id = saved_.valid() ? saved_.trace_id : next_trace_id();
  self_.span_id = next_span_id();
  g_current = self_;
}

TraceScope::~TraceScope() { g_current = saved_; }

}  // namespace tiera
