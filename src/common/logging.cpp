#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace tiera {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mu;

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace internal {
void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_sink_mu);
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}
}  // namespace internal

}  // namespace tiera
