#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <optional>
#include <string>

#include <strings.h>
#include <sys/time.h>

namespace tiera {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mu;

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_level(const char* name) {
  if (!name) return std::nullopt;
  if (::strcasecmp(name, "debug") == 0) return LogLevel::kDebug;
  if (::strcasecmp(name, "info") == 0) return LogLevel::kInfo;
  if (::strcasecmp(name, "warn") == 0) return LogLevel::kWarn;
  if (::strcasecmp(name, "error") == 0) return LogLevel::kError;
  if (::strcasecmp(name, "off") == 0) return LogLevel::kOff;
  return std::nullopt;
}

// TIERA_LOG_LEVEL is read once; an operator exporting it outranks whatever
// level the program hardcodes at bootstrap.
const std::optional<LogLevel>& env_level() {
  static const std::optional<LogLevel> level =
      parse_level(std::getenv("TIERA_LOG_LEVEL"));
  return level;
}

// Small dense per-thread ids keep log lines short and greppable.
int thread_log_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(env_level().value_or(level), std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace internal {
void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level()) return;

  struct timeval tv;
  ::gettimeofday(&tv, nullptr);
  struct tm tm_buf;
  ::localtime_r(&tv.tv_sec, &tm_buf);
  char stamp[40];
  const std::size_t n = std::strftime(stamp, sizeof(stamp), "%Y-%m-%d %H:%M:%S", &tm_buf);
  std::snprintf(stamp + n, sizeof(stamp) - n, ".%03d",
                static_cast<int>(tv.tv_usec / 1000));

  std::lock_guard lock(g_sink_mu);
  std::fprintf(stderr, "%s t%02d [%.*s] %.*s: %.*s\n", stamp, thread_log_id(),
               static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}
}  // namespace internal

}  // namespace tiera
