#include "common/group_commit.h"

#include <algorithm>

namespace tiera {

GroupCommitter::GroupCommitter(FlushFn flush, Options options)
    : flush_(std::move(flush)), options_(options) {}

std::uint64_t GroupCommitter::stage(ByteView record) {
  std::lock_guard lock(mu_);
  append(staged_, record);
  ++staged_records_;
  const std::uint64_t seq = ++staged_seq_;
  // A lingering leader waits for bytes to accumulate; wake it if this
  // record filled the batch.
  if (staged_.size() >= options_.max_batch_bytes) cv_.notify_all();
  return seq;
}

Status GroupCommitter::commit(std::uint64_t seq) {
  std::unique_lock lock(mu_);
  return commit_locked(lock, seq, /*linger=*/true);
}

Status GroupCommitter::drain() {
  std::unique_lock lock(mu_);
  return commit_locked(lock, staged_seq_, /*linger=*/false);
}

Status GroupCommitter::commit_locked(std::unique_lock<std::mutex>& lock,
                                     std::uint64_t seq, bool linger) {
  for (;;) {
    if (flushed_seq_ >= seq) return sticky_;
    if (!flushing_) break;  // become the leader
    cv_.wait(lock);
  }
  flushing_ = true;

  if (linger && options_.max_wait > Duration::zero()) {
    // Collect followers: wait until the batch fills or the window closes.
    // stage() notifies when it fills the batch early.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              options_.max_wait);
    while (staged_.size() < options_.max_batch_bytes) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
  }

  Bytes batch = std::move(staged_);
  staged_.clear();
  const std::uint64_t batch_records = staged_records_;
  staged_records_ = 0;
  const std::uint64_t batch_seq = staged_seq_;

  Status status = Status::Ok();
  if (!batch.empty()) {
    lock.unlock();
    status = flush_(as_view(batch), batch_records);
    lock.lock();
    stats_.batches += 1;
    stats_.records += batch_records;
    stats_.max_batch_records =
        std::max(stats_.max_batch_records, batch_records);
  }
  flushed_seq_ = batch_seq;
  if (!status.ok() && sticky_.ok()) sticky_ = status;
  flushing_ = false;
  cv_.notify_all();
  return sticky_;
}

GroupCommitter::Stats GroupCommitter::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace tiera
