// Leader/follower group commit for append-only journals.
//
// Writers stage() encoded records (cheap: one buffer append under the lock)
// and then commit() their sequence number. The first committer to find
// unflushed records becomes the batch leader: it lingers up to max_wait for
// concurrent writers to stage into the batch (or until max_batch_bytes
// accumulate), swaps the staging buffer out, and calls the flush function
// once for the whole batch — one write and, when the owner syncs, one fsync
// for every record in it. Followers sleep on the condition variable and wake
// when the leader advances the flushed sequence past theirs.
//
// A failed flush is sticky: the journal is broken from that point on, and
// every subsequent commit returns the original error (callers treat the
// store as read-only, same as a failed raw append before this existed).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"

namespace tiera {

class GroupCommitter {
 public:
  struct Options {
    // Flush without waiting once this many bytes are staged.
    std::uint64_t max_batch_bytes = 256 << 10;
    // How long the batch leader lingers for followers. Zero means flush
    // immediately (batches still form while a flush is in flight).
    Duration max_wait = std::chrono::microseconds(200);
  };

  struct Stats {
    std::uint64_t batches = 0;
    std::uint64_t records = 0;
    std::uint64_t max_batch_records = 0;
  };

  // Writes one coalesced batch to stable storage. Called with the internal
  // lock released; never called concurrently with itself.
  using FlushFn = std::function<Status(ByteView batch, std::uint64_t records)>;

  GroupCommitter(FlushFn flush, Options options);

  // Appends a record to the staging buffer; returns its sequence number.
  // The caller serializes stage() calls against its own index update (so
  // journal order matches index order) — typically under the owner's lock.
  std::uint64_t stage(ByteView record);

  // Blocks until every record up to `seq` is flushed. Returns the sticky
  // journal error if any batch has ever failed to flush.
  Status commit(std::uint64_t seq);

  // Flush everything staged so far without lingering (used before
  // compaction swaps the journal fd, and by explicit sync()).
  Status drain();

  Stats stats() const;

 private:
  Status commit_locked(std::unique_lock<std::mutex>& lock, std::uint64_t seq,
                       bool linger);

  const FlushFn flush_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Bytes staged_;
  std::uint64_t staged_records_ = 0;
  std::uint64_t staged_seq_ = 0;
  std::uint64_t flushed_seq_ = 0;
  bool flushing_ = false;
  Status sticky_ = Status::Ok();
  Stats stats_;
};

}  // namespace tiera
