// Token-bucket rate limiter.
//
// Implements the bandwidth caps that Tiera's copy/move responses accept
// ("bandwidth: 40KB/s" in the paper's specs). Callers acquire permission for
// a byte count and are blocked until the bucket can cover it, throttling
// background replication so foreground I/O keeps uniform latency (Fig. 14).
#pragma once

#include <cstdint>
#include <mutex>

#include "common/clock.h"

namespace tiera {

class RateLimiter {
 public:
  // bytes_per_second <= 0 means unlimited. The bucket allows short bursts of
  // up to `burst_seconds` worth of tokens.
  explicit RateLimiter(double bytes_per_second, double burst_seconds = 0.25);

  // Block until `bytes` tokens are available, then consume them. Sleeps are
  // subject to the global time scale so scaled benches throttle consistently
  // with their scaled tier latencies.
  void acquire(std::uint64_t bytes);

  // Non-blocking variant: consume if available, otherwise return false.
  // (Bucket-bound: requests larger than the burst capacity always fail.)
  bool try_acquire(std::uint64_t bytes);

  bool unlimited() const { return rate_ <= 0; }
  double bytes_per_second() const { return rate_; }

 private:
  void refill_locked();

  const double rate_;
  const double capacity_;
  double tokens_;
  TimePoint last_refill_;
  std::mutex mu_;
};

}  // namespace tiera
