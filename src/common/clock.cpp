#include "common/clock.h"

#include <sys/prctl.h>

#include <atomic>
#include <thread>

namespace tiera {
namespace {

std::atomic<double> g_time_scale{1.0};

// Linux pads sleeps by the thread's timer slack (50us default), which is
// fatal for sub-millisecond modelled latencies. Request 1us slack once per
// thread so sleep_for wakes close to the deadline and threads stay *blocked*
// while they wait (a busy spin would serialise everything on small hosts —
// this repo's benches must run faithfully even on one core).
void ensure_tight_timer_slack() {
  thread_local bool done = [] {
#ifdef PR_SET_TIMERSLACK
    ::prctl(PR_SET_TIMERSLACK, 1000UL, 0, 0, 0);
#endif
    return true;
  }();
  (void)done;
}

}  // namespace

void precise_sleep(Duration d) {
  if (d <= Duration::zero()) return;
  ensure_tight_timer_slack();
  const TimePoint deadline = now() + d;
  // Block for the bulk; spin only the last sliver.
  constexpr Duration kSpinWindow = std::chrono::microseconds(15);
  if (d > kSpinWindow) {
    std::this_thread::sleep_for(d - kSpinWindow);
  }
  while (now() < deadline) {
    std::this_thread::yield();
  }
}

void set_time_scale(double scale) {
  g_time_scale.store(scale > 0 ? scale : 0.0, std::memory_order_relaxed);
}

double time_scale() { return g_time_scale.load(std::memory_order_relaxed); }

void apply_model_delay(Duration modelled) {
  if (modelled <= Duration::zero()) return;
  const double scale = time_scale();
  if (scale <= 0) return;
  precise_sleep(std::chrono::duration_cast<Duration>(modelled * scale));
}

}  // namespace tiera
