// Status and Result<T>: error propagation without exceptions on hot paths.
//
// Tiera tier operations can fail for reasons that are expected at runtime
// (tier full, object missing, injected service outage), so the storage and
// control layers return Status/Result values rather than throwing. Exceptions
// remain in use for programming errors and unrecoverable setup failures.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace tiera {

enum class StatusCode {
  kOk = 0,
  kNotFound,        // object/key does not exist in the addressed tier
  kAlreadyExists,   // create-only semantics violated
  kCapacityExceeded,// tier cannot hold the object
  kUnavailable,     // tier failed or timed out (e.g. injected outage)
  kTimedOut,        // operation exceeded its deadline
  kInvalidArgument, // malformed request / spec
  kCorruption,      // checksum mismatch, bad file, failed decrypt/inflate
  kInternal,        // bug or unexpected condition
  kOverloaded,      // admission control shed the request; retry with backoff
};

std::string_view to_string(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m = "not found") {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m = "already exists") {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status CapacityExceeded(std::string m = "capacity exceeded") {
    return {StatusCode::kCapacityExceeded, std::move(m)};
  }
  static Status Unavailable(std::string m = "unavailable") {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status TimedOut(std::string m = "timed out") {
    return {StatusCode::kTimedOut, std::move(m)};
  }
  static Status InvalidArgument(std::string m = "invalid argument") {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status Corruption(std::string m = "corruption") {
    return {StatusCode::kCorruption, std::move(m)};
  }
  static Status Internal(std::string m = "internal error") {
    return {StatusCode::kInternal, std::move(m)};
  }
  static Status Overloaded(std::string m = "overloaded") {
    return {StatusCode::kOverloaded, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool is_not_found() const { return code_ == StatusCode::kNotFound; }
  bool is_unavailable() const { return code_ == StatusCode::kUnavailable; }
  bool is_timed_out() const { return code_ == StatusCode::kTimedOut; }
  bool is_capacity_exceeded() const {
    return code_ == StatusCode::kCapacityExceeded;
  }
  bool is_overloaded() const { return code_ == StatusCode::kOverloaded; }

  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(value_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> value_;
};

// Propagate a non-OK status from an expression, like absl's RETURN_IF_ERROR.
#define TIERA_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::tiera::Status tiera_status_ = (expr);          \
    if (!tiera_status_.ok()) return tiera_status_;   \
  } while (false)

}  // namespace tiera
