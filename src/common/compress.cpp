#include "common/compress.h"

#include <cstring>

#include "common/hash.h"

namespace tiera {

namespace {

constexpr std::uint8_t kMagic[4] = {'T', 'L', 'Z', '1'};
constexpr std::size_t kHeaderSize = 4 /*magic*/ + 8 /*raw len*/ + 4 /*crc*/;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 255 + kMinMatch;
constexpr std::size_t kWindow = 1 << 16;
constexpr std::size_t kHashBits = 15;

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

// Token format:
//   literal run : 0x00, varint len, bytes
//   match       : 0x01, u8 (len - kMinMatch), u16 LE distance
void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(std::uint8_t(v) | 0x80);
    v >>= 7;
  }
  out.push_back(std::uint8_t(v));
}

bool get_varint(const std::uint8_t*& p, const std::uint8_t* end,
                std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (p < end && shift < 64) {
    const std::uint8_t byte = *p++;
    v |= std::uint64_t(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return true;
    shift += 7;
  }
  return false;
}

void flush_literals(Bytes& out, const std::uint8_t* base, std::size_t start,
                    std::size_t end_pos) {
  if (end_pos <= start) return;
  out.push_back(0x00);
  put_varint(out, end_pos - start);
  out.insert(out.end(), base + start, base + end_pos);
}

}  // namespace

Bytes lz_compress(ByteView input) {
  Bytes out;
  out.reserve(kHeaderSize + input.size() / 2 + 64);
  append(out, ByteView(kMagic, 4));
  put_u64(out, input.size());
  put_u32(out, crc32c(input));

  const std::uint8_t* src = input.data();
  const std::size_t n = input.size();
  std::vector<std::int64_t> head(std::size_t{1} << kHashBits, -1);

  std::size_t i = 0;
  std::size_t literal_start = 0;
  while (i + kMinMatch <= n) {
    const std::uint32_t h = hash4(src + i);
    const std::int64_t cand = head[h];
    head[h] = static_cast<std::int64_t>(i);
    if (cand >= 0 && i - static_cast<std::size_t>(cand) <= kWindow - 1 &&
        std::memcmp(src + cand, src + i, kMinMatch) == 0) {
      // Extend the match.
      std::size_t len = kMinMatch;
      const std::size_t max_len = std::min(kMaxMatch, n - i);
      while (len < max_len && src[cand + len] == src[i + len]) ++len;
      flush_literals(out, src, literal_start, i);
      out.push_back(0x01);
      out.push_back(std::uint8_t(len - kMinMatch));
      const auto dist = static_cast<std::uint16_t>(i - cand);
      out.push_back(std::uint8_t(dist & 0xFF));
      out.push_back(std::uint8_t(dist >> 8));
      // Insert hash entries inside the match region (sparsely, every 2nd
      // position, a common speed/ratio tradeoff).
      for (std::size_t j = i + 1; j + kMinMatch <= n && j < i + len; j += 2) {
        head[hash4(src + j)] = static_cast<std::int64_t>(j);
      }
      i += len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(out, src, literal_start, n);
  return out;
}

bool lz_is_compressed(ByteView input) {
  return input.size() >= kHeaderSize &&
         std::memcmp(input.data(), kMagic, 4) == 0;
}

Result<Bytes> lz_decompress(ByteView input) {
  if (!lz_is_compressed(input)) {
    return Status::Corruption("lz: bad magic");
  }
  const std::uint64_t raw_len = get_u64(input.data() + 4);
  const std::uint32_t expect_crc = get_u32(input.data() + 12);
  // Guard against absurd lengths from corrupt headers (1 GiB cap).
  if (raw_len > (1ull << 30)) return Status::Corruption("lz: bad length");

  Bytes out;
  out.reserve(raw_len);
  const std::uint8_t* p = input.data() + kHeaderSize;
  const std::uint8_t* end = input.data() + input.size();
  while (p < end) {
    const std::uint8_t tag = *p++;
    if (tag == 0x00) {
      std::uint64_t len = 0;
      if (!get_varint(p, end, len) ||
          len > static_cast<std::uint64_t>(end - p)) {
        return Status::Corruption("lz: truncated literal run");
      }
      out.insert(out.end(), p, p + len);
      p += len;
    } else if (tag == 0x01) {
      if (end - p < 3) return Status::Corruption("lz: truncated match");
      const std::size_t len = std::size_t(*p++) + kMinMatch;
      const std::size_t dist = std::size_t(p[0]) | (std::size_t(p[1]) << 8);
      p += 2;
      if (dist == 0 || dist > out.size()) {
        return Status::Corruption("lz: bad match distance");
      }
      // Byte-by-byte copy: overlapping matches are legal (RLE-style).
      std::size_t from = out.size() - dist;
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[from + k]);
      }
    } else {
      return Status::Corruption("lz: bad token tag");
    }
    if (out.size() > raw_len) return Status::Corruption("lz: output overrun");
  }
  if (out.size() != raw_len) return Status::Corruption("lz: length mismatch");
  if (crc32c(as_view(out)) != expect_crc) {
    return Status::Corruption("lz: crc mismatch");
  }
  return out;
}

}  // namespace tiera
