#include "common/rate_limiter.h"

#include <algorithm>

namespace tiera {

RateLimiter::RateLimiter(double bytes_per_second, double burst_seconds)
    : rate_(bytes_per_second),
      capacity_(std::max(1.0, bytes_per_second * burst_seconds)),
      tokens_(capacity_),
      last_refill_(now()) {}

void RateLimiter::refill_locked() {
  const TimePoint t = now();
  // Scale elapsed wall time up by 1/time_scale so that a benchmark running at
  // scale 0.1 sees the cap bind at the same *modelled* bandwidth.
  const double scale = time_scale();
  double elapsed = to_seconds(t - last_refill_);
  if (scale > 0 && scale != 1.0) elapsed /= scale;
  last_refill_ = t;
  tokens_ = std::min(capacity_, tokens_ + elapsed * rate_);
}

void RateLimiter::acquire(std::uint64_t bytes) {
  if (unlimited()) return;
  // Debt model: consume immediately (tokens may go negative) and sleep the
  // debt off. Converges to the configured rate and, unlike a pure bucket,
  // admits requests larger than the burst capacity.
  Duration wait{};
  {
    std::lock_guard lock(mu_);
    refill_locked();
    tokens_ -= static_cast<double>(bytes);
    if (tokens_ < 0) {
      wait = std::chrono::duration_cast<Duration>(
          std::chrono::duration<double>(-tokens_ / rate_));
    }
  }
  apply_model_delay(wait);
}

bool RateLimiter::try_acquire(std::uint64_t bytes) {
  if (unlimited()) return true;
  std::lock_guard lock(mu_);
  refill_locked();
  if (tokens_ < static_cast<double>(bytes)) return false;
  tokens_ -= static_cast<double>(bytes);
  return true;
}

}  // namespace tiera
