#include "common/status.h"

namespace tiera {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kCapacityExceeded: return "CAPACITY_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTimedOut: return "TIMED_OUT";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kOverloaded: return "OVERLOADED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{tiera::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tiera
