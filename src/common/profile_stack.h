// ProfileStack: the per-thread annotation stack behind the sampling
// profiler in src/obs.
//
// Instead of unwinding native frames (fragile under optimization, and the
// mangled symbols would not name Tiera's logical stages), every
// instrumented thread maintains a small stack of string-literal frame
// names — "pool:tiera-responses", "put", "journal.append" — that the
// sampler thread snapshots periodically to build perf-style folded stacks.
//
// This header lives in common (not obs) for the same reason trace_context.h
// does: ThreadPool and the RPC reader threads install their root frames and
// thread names here without the common layer depending on the profiler.
//
// Concurrency: the owner thread is the only writer; the sampler reads
// concurrently. Every slot is an atomic pointer to a string with static (or
// owner-outliving) storage, and the depth is published with release order,
// so a racing sample sees a prefix of valid frame pointers — occasionally a
// frame from the neighbouring op, which is noise a sampling profiler
// tolerates by construction. Frame pushes are gated on a process-wide flag
// so the idle cost of an instrumented scope is one relaxed load.
#pragma once

#include <atomic>
#include <functional>

namespace tiera {

// True while a profiler capture wants frames recorded. Scopes that pushed
// while enabled always pop (they remember), so toggling mid-scope never
// unbalances a stack.
bool profile_frames_enabled();
void set_profile_frames_enabled(bool enabled);

class ProfileStack {
 public:
  static constexpr int kMaxDepth = 48;

  // Owner-thread side. `frame` must outlive the thread's registration
  // (string literals and names owned by longer-lived objects qualify).
  void push(const char* frame) {
    const int d = depth_.load(std::memory_order_relaxed);
    if (d >= kMaxDepth) {
      ++overflow_;  // owner-only counter keeps pops balanced
      return;
    }
    frames_[d].store(frame, std::memory_order_relaxed);
    depth_.store(d + 1, std::memory_order_release);
  }
  void pop() {
    if (overflow_ > 0) {
      --overflow_;
      return;
    }
    const int d = depth_.load(std::memory_order_relaxed);
    if (d > 0) depth_.store(d - 1, std::memory_order_release);
  }

  void set_name(const char* name) {
    name_.store(name, std::memory_order_release);
  }

  // Sampler side: copies up to `max` frames into `out`, returns the count.
  int snapshot(const char* out[], int max) const {
    int d = depth_.load(std::memory_order_acquire);
    if (d > max) d = max;
    for (int i = 0; i < d; ++i) {
      out[i] = frames_[i].load(std::memory_order_relaxed);
    }
    return d;
  }
  const char* name() const { return name_.load(std::memory_order_acquire); }

 private:
  std::atomic<const char*> frames_[kMaxDepth] = {};
  std::atomic<int> depth_{0};
  std::atomic<const char*> name_{nullptr};
  int overflow_ = 0;
};

// The calling thread's stack; registers it with the process registry on
// first use and unregisters at thread exit (under the registry lock, so the
// sampler never reads a dead thread's stack).
ProfileStack& this_thread_profile_stack();

// Names the calling thread in folded output ("rpc-reader", "pool:hedge").
// `name` must outlive the thread.
void profile_set_thread_name(const char* name);

// Runs `fn` for every live registered stack, under the registry lock.
void for_each_profile_stack(const std::function<void(const ProfileStack&)>& fn);

// RAII frame. Pushes only while profiling is enabled; remembers whether it
// pushed so enable/disable races never unbalance the stack.
class ProfScope {
 public:
  explicit ProfScope(const char* frame) {
    if (profile_frames_enabled()) {
      this_thread_profile_stack().push(frame);
      pushed_ = true;
    }
  }
  ~ProfScope() {
    if (pushed_) this_thread_profile_stack().pop();
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace tiera
