// Symmetric encryption backing Tiera's encrypt/decrypt responses.
//
// ChaCha20 (RFC 8439 block function) implemented locally since no crypto
// library is available offline. Objects are framed with a magic, a random
// nonce, and a keyed integrity tag so decrypt-with-wrong-key is detected —
// matching the response contract (encrypt(objects, key) / decrypt(objects,
// key)) in Table 1 of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace tiera {

using ChaChaKey = std::array<std::uint8_t, 32>;

// Derive a 256-bit key from a passphrase (SHA-256 of the phrase).
ChaChaKey derive_key(std::string_view passphrase);

// Encrypts `plain` with a fresh nonce; output is framed and self-describing.
Bytes chacha_encrypt(ByteView plain, const ChaChaKey& key,
                     std::uint64_t nonce_seed);

// Decrypts a frame produced by chacha_encrypt. Fails with kCorruption when
// the frame is malformed or the key is wrong.
Result<Bytes> chacha_decrypt(ByteView framed, const ChaChaKey& key);

bool chacha_is_encrypted(ByteView data);

}  // namespace tiera
