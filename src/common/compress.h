// Byte-oriented LZ compressor backing Tiera's compress/uncompress responses.
//
// The paper uses ZLIB; offline we implement an LZ77-family codec (greedy
// hash-chain matcher, byte-aligned token stream) with the same contract:
// lossless, framed with the original length, and able to reject corrupt
// input. Compression ratio on redundant data is what the responses exploit;
// exact ratios versus DEFLATE are immaterial to the reproduction.
#pragma once

#include "common/bytes.h"
#include "common/status.h"

namespace tiera {

// Compresses `input`. Output is self-describing (header + token stream) and
// is never more than input.size() + input.size()/255 + 16 bytes.
Bytes lz_compress(ByteView input);

// Decompresses a buffer produced by lz_compress. Fails with kCorruption on
// malformed input.
Result<Bytes> lz_decompress(ByteView input);

// True if `input` carries the lz frame magic (used to detect double
// compression and accidental decompression of plain data).
bool lz_is_compressed(ByteView input);

}  // namespace tiera
