// Random number generation and the key-popularity distributions used by the
// paper's workload generators:
//   * Uniform           — YCSB uniform
//   * Zipfian           — YCSB zipfian (theta 0.99 default, 1.2 in Fig. 12)
//   * Special           — sysbench "special": a hot fraction of the keyspace
//                         receives 80% of accesses (the x-axis of Figs. 7/8)
#pragma once

#include <cstdint>
#include <string>

namespace tiera {

// splitmix64-seeded xoshiro256**; fast, decent quality, reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next();
  // Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound);
  // Uniform double in [0, 1).
  double next_double();
  // Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

 private:
  std::uint64_t s_[4];
};

// Interface for key-index generators over [0, n).
class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;
  virtual std::uint64_t next(Rng& rng) = 0;
  virtual std::uint64_t key_count() const = 0;
};

class UniformDistribution final : public KeyDistribution {
 public:
  explicit UniformDistribution(std::uint64_t n) : n_(n) {}
  std::uint64_t next(Rng& rng) override { return rng.next_below(n_); }
  std::uint64_t key_count() const override { return n_; }

 private:
  std::uint64_t n_;
};

// YCSB-style Zipfian generator (Gray et al. rejection-free method), with the
// YCSB scrambled variant available so hot keys spread over the keyspace.
class ZipfianDistribution final : public KeyDistribution {
 public:
  ZipfianDistribution(std::uint64_t n, double theta = 0.99,
                      bool scrambled = true);
  std::uint64_t next(Rng& rng) override;
  std::uint64_t key_count() const override { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  bool scrambled_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2theta_;
};

// sysbench-like "special" distribution: `hot_fraction` of the keyspace is
// accessed with probability `hot_probability` (0.80 in the paper), the rest
// uniformly.
class SpecialDistribution final : public KeyDistribution {
 public:
  SpecialDistribution(std::uint64_t n, double hot_fraction,
                      double hot_probability = 0.80);
  std::uint64_t next(Rng& rng) override;
  std::uint64_t key_count() const override { return n_; }
  std::uint64_t hot_count() const { return hot_n_; }

 private:
  std::uint64_t n_;
  std::uint64_t hot_n_;
  double hot_probability_;
};

// Latest-skewed distribution (YCSB "latest"): favors recently inserted keys.
class LatestDistribution final : public KeyDistribution {
 public:
  explicit LatestDistribution(std::uint64_t n, double theta = 0.99);
  std::uint64_t next(Rng& rng) override;
  std::uint64_t key_count() const override;
  void set_max(std::uint64_t n);

 private:
  std::uint64_t n_;
  double theta_;
  ZipfianDistribution zipf_;
};

// 64-bit avalanche hash (used for key scrambling and payload seeding).
std::uint64_t mix64(std::uint64_t x);

}  // namespace tiera
