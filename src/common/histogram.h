// Latency histogram and throughput recorder used by all benches and the
// instance statistics endpoint. Log-bucketed so tail percentiles (p95/p99,
// which the paper reports) stay accurate across microseconds..seconds.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace tiera {

class LatencyHistogram {
 public:
  LatencyHistogram();
  // Copyable (snapshot semantics) so result structs can be returned by
  // value; the mutex itself is not copied.
  LatencyHistogram(const LatencyHistogram& other);
  LatencyHistogram& operator=(const LatencyHistogram& other);

  void record(Duration latency);
  void record_ms(double ms);

  std::uint64_t count() const;
  double mean_ms() const;
  double min_ms() const;
  double max_ms() const;
  // q in [0,1]; returns 0 when empty.
  double percentile_ms(double q) const;

  void merge(const LatencyHistogram& other);
  void reset();

  std::string summary() const;

 private:
  // Buckets span 1us..~110s with ~4.6% relative width.
  static constexpr int kBuckets = 512;
  static int bucket_for(double us);
  static double bucket_upper_us(int bucket);

  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_us_ = 0;
  double min_us_ = 0;
  double max_us_ = 0;
};

// Counts operations over a wall-clock window; reports ops/sec.
class ThroughputMeter {
 public:
  ThroughputMeter() : start_(now()) {}

  void add(std::uint64_t n = 1) {
    std::lock_guard lock(mu_);
    ops_ += n;
  }
  std::uint64_t total() const {
    std::lock_guard lock(mu_);
    return ops_;
  }
  double ops_per_sec() const {
    const double secs = to_seconds(now() - start_);
    return secs > 0 ? static_cast<double>(total()) / secs : 0.0;
  }
  void reset() {
    std::lock_guard lock(mu_);
    ops_ = 0;
    start_ = now();
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t ops_ = 0;
  TimePoint start_;
};

}  // namespace tiera
