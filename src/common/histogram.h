// Latency histogram and throughput recorder used by all benches and the
// instance statistics endpoint. Log-bucketed so tail percentiles (p95/p99,
// which the paper reports) stay accurate across microseconds..seconds.
//
// Lock-free: `record` sits on the data path of every tier and instance
// operation, so buckets and aggregates are relaxed atomics. Readers see a
// slightly stale but internally consistent-enough view (a reader racing a
// writer can observe a bucket increment before the matching count bump);
// that is fine for statistics and avoids a mutex on every op.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/clock.h"

namespace tiera {

class LatencyHistogram {
 public:
  LatencyHistogram();
  // Copyable (snapshot semantics) so result structs can be returned by
  // value.
  LatencyHistogram(const LatencyHistogram& other);
  LatencyHistogram& operator=(const LatencyHistogram& other);

  void record(Duration latency);
  void record_ms(double ms);

  std::uint64_t count() const;
  double mean_ms() const;
  double sum_ms() const;
  double min_ms() const;
  double max_ms() const;
  // q in [0,1]; returns 0 when empty.
  double percentile_ms(double q) const;

  void merge(const LatencyHistogram& other);
  // Merges everything `source` has recorded since `cursor` last saw it, then
  // advances `cursor` to match `source`. Lets a metrics collector mirror a
  // live histogram into an accumulating one without double counting (and
  // without pausing writers: concurrent records are picked up next sync).
  void merge_new_since(const LatencyHistogram& source, LatencyHistogram& cursor);
  void reset();

  std::string summary() const;

 private:
  // Buckets span 1us..~110s with ~4.6% relative width.
  static constexpr int kBuckets = 512;
  static int bucket_for(double us);
  static double bucket_upper_us(int bucket);

  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_us_{0};
  std::atomic<double> min_us_;  // +inf when empty
  std::atomic<double> max_us_;  // -inf when empty
};

// Counts operations over a wall-clock window; reports ops/sec. Lock-free:
// `add` sits on the data path of every bench, so the count is a relaxed
// atomic and the window start is stored as a tick count.
class ThroughputMeter {
 public:
  ThroughputMeter() { reset(); }

  void add(std::uint64_t n = 1) {
    ops_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t total() const { return ops_.load(std::memory_order_relaxed); }
  double ops_per_sec() const {
    const TimePoint start{
        Clock::duration(start_ticks_.load(std::memory_order_relaxed))};
    const double secs = to_seconds(now() - start);
    return secs > 0 ? static_cast<double>(total()) / secs : 0.0;
  }
  void reset() {
    ops_.store(0, std::memory_order_relaxed);
    start_ticks_.store(now().time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<Clock::rep> start_ticks_{0};
};

}  // namespace tiera
