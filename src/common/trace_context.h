// TraceContext: the causal identity a request carries through the system.
//
// A context is (trace id, span id). The trace id groups every span that a
// single application-interface request (or a timer/threshold firing)
// ultimately causes; the span id names the currently-open span, so spans
// opened underneath it become its children. The context lives in a
// thread-local and hops threads explicitly: ThreadPool captures the
// submitter's context with each task and reinstates it in the worker, which
// is how a background `move` fired by a PUT stays causally linked to that
// PUT.
//
// This header lives in common (not obs) so ThreadPool can carry contexts
// without the common layer depending on the metrics/tracing library; the
// tracer in src/obs consumes these ids when it records spans.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace tiera {

struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = no active trace
  std::uint64_t span_id = 0;   // span that spans opened now become children of
  bool valid() const { return trace_id != 0; }
};

// The calling thread's ambient context ({0,0} when none is installed).
TraceContext current_trace_context();

// Fresh process-unique ids (sequential, never 0). Sequential keeps them
// small enough to round-trip through JSON numbers in the trace exporter.
std::uint64_t next_trace_id();
std::uint64_t next_span_id();

// RAII: installs `ctx` as the thread's ambient context, restoring the
// previous one on destruction. Used by ThreadPool workers to adopt the
// submitter's context for the duration of a task.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

// RAII span: opens a new span under the ambient context (minting a fresh
// trace when there is none — i.e. this is a root span), installs itself as
// the ambient context, and remembers its start time. The tracer records the
// span via `RequestTracer::record(scope, ...)` before the scope dies.
class TraceScope {
 public:
  TraceScope();
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  std::uint64_t trace_id() const { return self_.trace_id; }
  std::uint64_t span_id() const { return self_.span_id; }
  std::uint64_t parent_span_id() const { return parent_; }
  TimePoint start() const { return start_; }
  Duration elapsed() const { return now() - start_; }

 private:
  TraceContext saved_;
  std::uint64_t parent_;
  TraceContext self_;
  TimePoint start_;
};

}  // namespace tiera
