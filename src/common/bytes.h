// Byte-buffer aliases and helpers shared across the storage stack.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tiera {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline ByteView as_view(const Bytes& b) { return ByteView(b.data(), b.size()); }

inline ByteView as_view(std::string_view s) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

// Append helpers used by the serializers.
inline void append(Bytes& out, ByteView data) {
  out.insert(out.end(), data.begin(), data.end());
}

inline void append(Bytes& out, std::string_view data) {
  append(out, as_view(data));
}

// Deterministic pseudo-random payload of a given size; `seed` selects the
// content so tests and dedup experiments can create equal or distinct blobs.
Bytes make_payload(std::size_t size, std::uint64_t seed);

}  // namespace tiera
