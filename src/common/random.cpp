#include "common/random.h"

#include <cassert>
#include <cmath>

namespace tiera {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

double zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    s = z ^ (z >> 31);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

ZipfianDistribution::ZipfianDistribution(std::uint64_t n, double theta,
                                         bool scrambled)
    : n_(n), theta_(theta), scrambled_(scrambled) {
  assert(n_ > 0);
  zetan_ = zeta(n_, theta_);
  zeta2theta_ = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianDistribution::next(Rng& rng) {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  std::uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 1;
  } else {
    rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n_) rank = n_ - 1;
  }
  if (!scrambled_) return rank;
  return mix64(rank) % n_;
}

SpecialDistribution::SpecialDistribution(std::uint64_t n, double hot_fraction,
                                         double hot_probability)
    : n_(n),
      hot_n_(static_cast<std::uint64_t>(
          static_cast<double>(n) * hot_fraction)),
      hot_probability_(hot_probability) {
  if (hot_n_ == 0) hot_n_ = 1;
  if (hot_n_ > n_) hot_n_ = n_;
}

std::uint64_t SpecialDistribution::next(Rng& rng) {
  if (rng.next_double() < hot_probability_) {
    return rng.next_below(hot_n_);
  }
  return rng.next_below(n_);
}

LatestDistribution::LatestDistribution(std::uint64_t n, double theta)
    : n_(n ? n : 1), theta_(theta), zipf_(n_, theta_, /*scrambled=*/false) {}

std::uint64_t LatestDistribution::next(Rng& rng) {
  const std::uint64_t rank = zipf_.next(rng);
  return n_ - 1 - (rank % n_);
}

std::uint64_t LatestDistribution::key_count() const { return n_; }

void LatestDistribution::set_max(std::uint64_t n) {
  if (n == 0) n = 1;
  if (n == n_) return;
  n_ = n;
  zipf_ = ZipfianDistribution(n_, theta_, /*scrambled=*/false);
}

}  // namespace tiera
