// Minimal leveled logger. Thread-safe, printf-free, stderr sink. Lines carry
// a wall-clock timestamp and a dense per-thread id so daemon logs support
// post-hoc debugging. The TIERA_LOG_LEVEL environment variable
// (debug|info|warn|error|off) overrides any level passed to set_log_level.
#pragma once

#include <mutex>
#include <sstream>
#include <string_view>

namespace tiera {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogMessage() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace internal

// Usage: TIERA_LOG(kInfo, "core") << "instance started, tiers=" << n;
#define TIERA_LOG(level, component)                              \
  if (::tiera::LogLevel::level >= ::tiera::log_level())          \
  ::tiera::internal::LogMessage(::tiera::LogLevel::level, (component))

}  // namespace tiera
