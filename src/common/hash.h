// Hashing: FNV-1a (fast fingerprints, shard selection), CRC32C (record
// checksums in metadb and the WAL), and SHA-256 (content addressing for the
// storeOnce dedup response).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace tiera {

std::uint64_t fnv1a64(ByteView data);
inline std::uint64_t fnv1a64(std::string_view s) { return fnv1a64(as_view(s)); }

std::uint32_t crc32c(ByteView data, std::uint32_t seed = 0);

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();
  void update(ByteView data);
  Sha256Digest finish();

  static Sha256Digest digest(ByteView data);
  static std::string hex_digest(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
};

std::string to_hex(ByteView data);

}  // namespace tiera
