#include "common/profile_stack.h"

#include <mutex>
#include <unordered_set>

namespace tiera {

namespace {

std::atomic<bool> g_frames_enabled{false};

struct StackRegistry {
  std::mutex mu;
  std::unordered_set<ProfileStack*> stacks;
};

// Leaked on purpose: thread-local destructors (which unregister) can run
// during process teardown after function-local statics are destroyed.
StackRegistry& registry() {
  static StackRegistry* r = new StackRegistry;
  return *r;
}

struct ThreadStackHolder {
  ProfileStack stack;
  ThreadStackHolder() {
    StackRegistry& r = registry();
    std::lock_guard lock(r.mu);
    r.stacks.insert(&stack);
  }
  ~ThreadStackHolder() {
    StackRegistry& r = registry();
    std::lock_guard lock(r.mu);
    r.stacks.erase(&stack);
  }
};

}  // namespace

bool profile_frames_enabled() {
  return g_frames_enabled.load(std::memory_order_relaxed);
}

void set_profile_frames_enabled(bool enabled) {
  g_frames_enabled.store(enabled, std::memory_order_relaxed);
}

ProfileStack& this_thread_profile_stack() {
  thread_local ThreadStackHolder holder;
  return holder.stack;
}

void profile_set_thread_name(const char* name) {
  this_thread_profile_stack().set_name(name);
}

void for_each_profile_stack(
    const std::function<void(const ProfileStack&)>& fn) {
  StackRegistry& r = registry();
  std::lock_guard lock(r.mu);
  for (const ProfileStack* stack : r.stacks) fn(*stack);
}

}  // namespace tiera
