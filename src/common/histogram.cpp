#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tiera {

namespace {
// Geometric bucket growth factor: 512 buckets covering 1us to ~1.1e8us.
constexpr double kGrowth = 1.0368;
const double kLogGrowth = std::log(kGrowth);
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

LatencyHistogram::LatencyHistogram(const LatencyHistogram& other)
    : buckets_(kBuckets, 0) {
  merge(other);
}

LatencyHistogram& LatencyHistogram::operator=(const LatencyHistogram& other) {
  if (this == &other) return *this;
  reset();
  merge(other);
  return *this;
}

int LatencyHistogram::bucket_for(double us) {
  if (us <= 1.0) return 0;
  const int b = static_cast<int>(std::log(us) / kLogGrowth) + 1;
  return std::min(b, kBuckets - 1);
}

double LatencyHistogram::bucket_upper_us(int bucket) {
  return std::pow(kGrowth, bucket);
}

void LatencyHistogram::record(Duration latency) {
  record_ms(to_ms(latency));
}

void LatencyHistogram::record_ms(double ms) {
  const double us = std::max(0.0, ms * 1000.0);
  std::lock_guard lock(mu_);
  buckets_[bucket_for(us)]++;
  if (count_ == 0 || us < min_us_) min_us_ = us;
  if (count_ == 0 || us > max_us_) max_us_ = us;
  sum_us_ += us;
  ++count_;
}

std::uint64_t LatencyHistogram::count() const {
  std::lock_guard lock(mu_);
  return count_;
}

double LatencyHistogram::mean_ms() const {
  std::lock_guard lock(mu_);
  return count_ ? sum_us_ / static_cast<double>(count_) / 1000.0 : 0.0;
}

double LatencyHistogram::min_ms() const {
  std::lock_guard lock(mu_);
  return min_us_ / 1000.0;
}

double LatencyHistogram::max_ms() const {
  std::lock_guard lock(mu_);
  return max_us_ / 1000.0;
}

double LatencyHistogram::percentile_ms(double q) const {
  std::lock_guard lock(mu_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= target && buckets_[b] > 0) {
      return std::min(bucket_upper_us(b), max_us_) / 1000.0;
    }
  }
  return max_us_ / 1000.0;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  // Copy out under other's lock first to avoid lock-order issues.
  std::vector<std::uint64_t> other_buckets;
  std::uint64_t other_count;
  double other_sum, other_min, other_max;
  {
    std::lock_guard lock(other.mu_);
    other_buckets = other.buckets_;
    other_count = other.count_;
    other_sum = other.sum_us_;
    other_min = other.min_us_;
    other_max = other.max_us_;
  }
  if (other_count == 0) return;
  std::lock_guard lock(mu_);
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other_buckets[b];
  if (count_ == 0) {
    min_us_ = other_min;
    max_us_ = other_max;
  } else {
    min_us_ = std::min(min_us_, other_min);
    max_us_ = std::max(max_us_, other_max);
  }
  count_ += other_count;
  sum_us_ += other_sum;
}

void LatencyHistogram::reset() {
  std::lock_guard lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_us_ = min_us_ = max_us_ = 0;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms "
                "max=%.3fms",
                static_cast<unsigned long long>(count()), mean_ms(),
                percentile_ms(0.50), percentile_ms(0.95), percentile_ms(0.99),
                max_ms());
  return buf;
}

}  // namespace tiera
