#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace tiera {

namespace {
// Geometric bucket growth factor: 512 buckets covering 1us to ~1.1e8us.
constexpr double kGrowth = 1.0368;
const double kLogGrowth = std::log(kGrowth);
constexpr double kInf = std::numeric_limits<double>::infinity();

// Relaxed CAS-min/max: the fast path is one load when the value does not
// extend the current range.
void atomic_min(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}
}  // namespace

LatencyHistogram::LatencyHistogram()
    : buckets_(new std::atomic<std::uint64_t>[kBuckets]),
      min_us_(kInf),
      max_us_(-kInf) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
}

LatencyHistogram::LatencyHistogram(const LatencyHistogram& other)
    : LatencyHistogram() {
  merge(other);
}

LatencyHistogram& LatencyHistogram::operator=(const LatencyHistogram& other) {
  if (this == &other) return *this;
  reset();
  merge(other);
  return *this;
}

int LatencyHistogram::bucket_for(double us) {
  if (us <= 1.0) return 0;
  const int b = static_cast<int>(std::log(us) / kLogGrowth) + 1;
  return std::min(b, kBuckets - 1);
}

double LatencyHistogram::bucket_upper_us(int bucket) {
  return std::pow(kGrowth, bucket);
}

void LatencyHistogram::record(Duration latency) {
  record_ms(to_ms(latency));
}

void LatencyHistogram::record_ms(double ms) {
  const double us = std::max(0.0, ms * 1000.0);
  buckets_[bucket_for(us)].fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  atomic_min(min_us_, us);
  atomic_max(max_us_, us);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::mean_ms() const {
  const std::uint64_t n = count();
  return n ? sum_us_.load(std::memory_order_relaxed) /
                 static_cast<double>(n) / 1000.0
           : 0.0;
}

double LatencyHistogram::sum_ms() const {
  return sum_us_.load(std::memory_order_relaxed) / 1000.0;
}

double LatencyHistogram::min_ms() const {
  if (count() == 0) return 0.0;
  return min_us_.load(std::memory_order_relaxed) / 1000.0;
}

double LatencyHistogram::max_ms() const {
  if (count() == 0) return 0.0;
  return max_us_.load(std::memory_order_relaxed) / 1000.0;
}

double LatencyHistogram::percentile_ms(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double max_us = max_us_.load(std::memory_order_relaxed);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    seen += in_bucket;
    if (seen >= target && in_bucket > 0) {
      return std::min(bucket_upper_us(b), max_us) / 1000.0;
    }
  }
  return max_us / 1000.0;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count() == 0) return;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  atomic_min(min_us_, other.min_us_.load(std::memory_order_relaxed));
  atomic_max(max_us_, other.max_us_.load(std::memory_order_relaxed));
  sum_us_.fetch_add(other.sum_us_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  count_.fetch_add(other.count(), std::memory_order_relaxed);
}

void LatencyHistogram::merge_new_since(const LatencyHistogram& source,
                                       LatencyHistogram& cursor) {
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t seen =
        source.buckets_[b].load(std::memory_order_relaxed);
    const std::uint64_t prev =
        cursor.buckets_[b].load(std::memory_order_relaxed);
    if (seen > prev) {
      buckets_[b].fetch_add(seen - prev, std::memory_order_relaxed);
      cursor.buckets_[b].store(seen, std::memory_order_relaxed);
    }
  }
  const double sum = source.sum_us_.load(std::memory_order_relaxed);
  const double prev_sum = cursor.sum_us_.load(std::memory_order_relaxed);
  if (sum > prev_sum) {
    sum_us_.fetch_add(sum - prev_sum, std::memory_order_relaxed);
    cursor.sum_us_.store(sum, std::memory_order_relaxed);
  }
  const std::uint64_t n = source.count();
  const std::uint64_t prev_n = cursor.count();
  if (n > prev_n) {
    count_.fetch_add(n - prev_n, std::memory_order_relaxed);
    cursor.count_.store(n, std::memory_order_relaxed);
  }
  if (source.count() > 0) {
    atomic_min(min_us_, source.min_us_.load(std::memory_order_relaxed));
    atomic_max(max_us_, source.max_us_.load(std::memory_order_relaxed));
  }
}

void LatencyHistogram::reset() {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  min_us_.store(kInf, std::memory_order_relaxed);
  max_us_.store(-kInf, std::memory_order_relaxed);
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms "
                "max=%.3fms",
                static_cast<unsigned long long>(count()), mean_ms(),
                percentile_ms(0.50), percentile_ms(0.95), percentile_ms(0.99),
                max_ms());
  return buf;
}

}  // namespace tiera
