#include "common/crypto.h"

#include <cstring>

#include "common/hash.h"
#include "common/random.h"

namespace tiera {

namespace {

constexpr std::uint8_t kMagic[4] = {'T', 'E', 'N', '1'};
constexpr std::size_t kNonceSize = 12;
constexpr std::size_t kTagSize = 16;
constexpr std::size_t kHeaderSize = 4 + kNonceSize;

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

void chacha_block(const ChaChaKey& key, const std::uint8_t nonce[kNonceSize],
                  std::uint32_t counter, std::uint8_t out[64]) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    std::memcpy(&state[4 + i], key.data() + i * 4, 4);
  }
  state[12] = counter;
  std::memcpy(&state[13], nonce, 4);
  std::memcpy(&state[14], nonce + 4, 4);
  std::memcpy(&state[15], nonce + 8, 4);

  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    x[i] += state[i];
    std::memcpy(out + i * 4, &x[i], 4);
  }
}

void xor_stream(std::uint8_t* data, std::size_t len, const ChaChaKey& key,
                const std::uint8_t nonce[kNonceSize]) {
  std::uint8_t block[64];
  std::uint32_t counter = 1;  // counter 0 reserved for the tag key
  for (std::size_t off = 0; off < len; off += 64, ++counter) {
    chacha_block(key, nonce, counter, block);
    const std::size_t chunk = std::min<std::size_t>(64, len - off);
    for (std::size_t i = 0; i < chunk; ++i) data[off + i] ^= block[i];
  }
}

// Keyed tag: SHA-256(block0-key || nonce || ciphertext), truncated. Not a
// formal MAC construction, but sufficient integrity for a storage middleware
// reproduction (detects wrong key and bit rot).
std::array<std::uint8_t, kTagSize> compute_tag(const ChaChaKey& key,
                                               const std::uint8_t* nonce,
                                               ByteView cipher) {
  std::uint8_t block0[64];
  chacha_block(key, nonce, 0, block0);
  Sha256 h;
  h.update(ByteView(block0, 32));
  h.update(ByteView(nonce, kNonceSize));
  h.update(cipher);
  const Sha256Digest d = h.finish();
  std::array<std::uint8_t, kTagSize> tag;
  std::memcpy(tag.data(), d.data(), kTagSize);
  return tag;
}

}  // namespace

ChaChaKey derive_key(std::string_view passphrase) {
  const Sha256Digest d = Sha256::digest(as_view(passphrase));
  ChaChaKey key;
  std::memcpy(key.data(), d.data(), key.size());
  return key;
}

bool chacha_is_encrypted(ByteView data) {
  return data.size() >= kHeaderSize + kTagSize &&
         std::memcmp(data.data(), kMagic, 4) == 0;
}

Bytes chacha_encrypt(ByteView plain, const ChaChaKey& key,
                     std::uint64_t nonce_seed) {
  std::uint8_t nonce[kNonceSize];
  const std::uint64_t a = mix64(nonce_seed);
  const std::uint64_t b = mix64(a ^ 0xA5A5A5A5A5A5A5A5ull);
  std::memcpy(nonce, &a, 8);
  std::memcpy(nonce + 8, &b, 4);

  Bytes out;
  out.reserve(kHeaderSize + plain.size() + kTagSize);
  append(out, ByteView(kMagic, 4));
  append(out, ByteView(nonce, kNonceSize));
  const std::size_t cipher_off = out.size();
  append(out, plain);
  xor_stream(out.data() + cipher_off, plain.size(), key, nonce);
  const auto tag = compute_tag(
      key, nonce, ByteView(out.data() + cipher_off, plain.size()));
  append(out, ByteView(tag.data(), tag.size()));
  return out;
}

Result<Bytes> chacha_decrypt(ByteView framed, const ChaChaKey& key) {
  if (!chacha_is_encrypted(framed)) {
    return Status::Corruption("encrypt: bad frame");
  }
  const std::uint8_t* nonce = framed.data() + 4;
  const std::size_t cipher_len = framed.size() - kHeaderSize - kTagSize;
  ByteView cipher(framed.data() + kHeaderSize, cipher_len);
  const auto tag = compute_tag(key, nonce, cipher);
  if (std::memcmp(tag.data(), framed.data() + kHeaderSize + cipher_len,
                  kTagSize) != 0) {
    return Status::Corruption("encrypt: tag mismatch (wrong key?)");
  }
  Bytes plain(cipher.begin(), cipher.end());
  xor_stream(plain.data(), plain.size(), key, nonce);
  return plain;
}

}  // namespace tiera
