// Wall-clock utilities and the global latency time scale.
//
// Every simulated tier charges its modelled service time through
// apply_model_delay(), which multiplies by the process-wide time scale. A
// scale of 1.0 emulates AWS-era latencies in real time; benches use smaller
// scales so all figures regenerate in seconds while preserving latency ratios.
#pragma once

#include <chrono>
#include <cstdint>

namespace tiera {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = std::chrono::nanoseconds;

inline TimePoint now() { return Clock::now(); }

inline double to_ms(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

inline Duration from_ms(double ms) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(ms));
}

inline double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

// Sleep that stays accurate below the scheduler quantum: coarse sleep for the
// bulk, then spin for the remainder. Used to emulate tier service times.
void precise_sleep(Duration d);

// Process-wide multiplier applied to modelled tier latencies (default 1.0).
void set_time_scale(double scale);
double time_scale();

// Sleeps `modelled * time_scale()`. No-op for non-positive durations.
void apply_model_delay(Duration modelled);

// Stopwatch for latency measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(now()) {}
  void reset() { start_ = now(); }
  Duration elapsed() const { return now() - start_; }
  double elapsed_ms() const { return to_ms(elapsed()); }

 private:
  TimePoint start_;
};

}  // namespace tiera
