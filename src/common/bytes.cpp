#include "common/bytes.h"

#include "common/random.h"

namespace tiera {

Bytes make_payload(std::size_t size, std::uint64_t seed) {
  Bytes out(size);
  std::uint64_t x = mix64(seed);
  std::size_t i = 0;
  while (i + 8 <= size) {
    std::memcpy(out.data() + i, &x, 8);
    x = mix64(x);
    i += 8;
  }
  for (; i < size; ++i) {
    out[i] = static_cast<std::uint8_t>(x >> ((i % 8) * 8));
  }
  return out;
}

}  // namespace tiera
