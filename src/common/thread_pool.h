// Fixed-size worker pool.
//
// The Tiera server owns two of these, mirroring the prototype in the paper:
// one pool services client requests (behind the RPC layer) and one services
// background events and responses (control layer).
//
// Every task carries the submitter's TraceContext: submit() captures the
// ambient context and the worker reinstates it around the task, so spans
// recorded by background responses stay causally linked to the request (or
// timer/threshold firing) that queued them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/trace_context.h"

namespace tiera {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Returns false if the pool is shutting down.
  bool submit(std::function<void()> task);

  // Invoked (outside the pool lock) whenever queue depth or the number of
  // active workers changes. Owners use this to export gauges without the
  // common layer depending on the metrics registry. Install before the pool
  // receives work.
  using Observer = std::function<void(std::size_t queue_depth,
                                      std::size_t active_workers)>;
  void set_observer(Observer observer);

  // Enqueue a task and get a future for its completion.
  template <typename F>
  auto submit_with_result(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    if (!submit([task] { (*task)(); })) {
      // Run inline on shutdown so the future is never abandoned.
      (*task)();
    }
    return future;
  }

  // Block until the queue is empty and all workers are idle.
  void wait_idle();

  // Stop accepting work, drain the queue, join workers. Idempotent.
  void shutdown();

  std::size_t size() const { return workers_.size(); }
  std::size_t queue_depth() const;
  std::size_t active() const;
  const std::string& name() const { return name_; }

  // Queue-wait (sojourn) time of every task, from submit() to the moment a
  // worker dequeues it. Read by obs::PoolMetrics for the
  // `tiera_pool_sojourn_ms` series; safe to read concurrently.
  const LatencyHistogram& sojourn() const { return sojourn_; }

 private:
  void worker_loop();

  // A queued task plus the trace context it was submitted under and the
  // enqueue time for sojourn accounting.
  struct Task {
    std::function<void()> fn;
    TraceContext trace;
    TimePoint enqueued;
  };

  mutable std::mutex mu_;
  std::shared_ptr<const Observer> observer_;  // read under mu_, run outside
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::string name_;
  LatencyHistogram sojourn_;
};

}  // namespace tiera
