#include "workload/kv_workload.h"

#include <thread>

namespace tiera {

KvBackend KvBackend::for_instance(TieraInstance& instance) {
  KvBackend backend;
  backend.put = [&instance](const std::string& id, ByteView data) {
    return instance.put(id, data);
  };
  backend.get = [&instance](const std::string& id) {
    return instance.get(id);
  };
  return backend;
}

KvBackend KvBackend::for_tiers(std::vector<TierPtr> tiers) {
  KvBackend backend;
  auto shared = std::make_shared<std::vector<TierPtr>>(std::move(tiers));
  backend.put = [shared](const std::string& id, ByteView data) {
    Status last = Status::Ok();
    for (const auto& tier : *shared) {
      const Status s = tier->put(id, data);
      if (!s.ok()) last = s;
    }
    return last;
  };
  backend.get = [shared](const std::string& id) -> Result<Bytes> {
    Status last = Status::NotFound("empty backend");
    for (const auto& tier : *shared) {
      Result<Bytes> got = tier->get(id);
      if (got.ok()) return got;
      last = got.status();
    }
    return last;
  };
  return backend;
}

namespace {

std::unique_ptr<KeyDistribution> make_distribution(
    const KvWorkloadOptions& options) {
  switch (options.distribution) {
    case KeyDist::kUniform:
      return std::make_unique<UniformDistribution>(options.record_count);
    case KeyDist::kZipfian:
      return std::make_unique<ZipfianDistribution>(options.record_count,
                                                   options.zipf_theta);
  }
  return std::make_unique<UniformDistribution>(options.record_count);
}

std::string key_for(const KvWorkloadOptions& options, std::uint64_t index) {
  return options.key_prefix + std::to_string(index);
}

}  // namespace

Status load_kv_records(const KvBackend& backend,
                       const KvWorkloadOptions& options) {
  for (std::uint64_t i = 0; i < options.record_count; ++i) {
    TIERA_RETURN_IF_ERROR(backend.put(
        key_for(options, i),
        as_view(make_payload(options.value_size, options.seed ^ i))));
  }
  return Status::Ok();
}

KvWorkloadResult run_kv_workload(const KvBackend& backend,
                                 const KvWorkloadOptions& options) {
  KvWorkloadResult result;
  if (options.preload) {
    const Status s = load_kv_records(backend, options);
    if (!s.ok() && !options.continue_on_error) return result;
  }

  const double scale = time_scale() > 0 ? time_scale() : 1.0;
  const auto wall_duration =
      std::chrono::duration_cast<Duration>(options.duration * scale);
  const TimePoint deadline = now() + wall_duration;

  std::vector<std::thread> threads;
  std::vector<KvWorkloadResult> partials(options.threads);
  for (std::size_t t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t] {
      KvWorkloadResult& local = partials[t];
      Rng rng(options.seed * 7919 + t);
      auto dist = make_distribution(options);
      std::uint64_t op = 0;
      while (now() < deadline) {
        if (options.stop && options.stop()) break;
        if (options.op_delay > Duration::zero()) {
          apply_model_delay(options.op_delay);
        }
        const std::uint64_t index = dist->next(rng);
        const std::string key = key_for(options, index);
        const bool is_read = rng.next_double() < options.read_fraction;
        Stopwatch watch;
        if (is_read) {
          Result<Bytes> got = backend.get(key);
          // Record in modelled time so results are scale-invariant.
          local.read_latency.record_ms(watch.elapsed_ms() / scale);
          if (got.ok()) {
            ++local.reads;
            if (options.timeline) options.timeline->add();
          } else {
            ++local.errors;
            if (!options.continue_on_error) break;
          }
        } else {
          const Status s = backend.put(
              key, as_view(make_payload(options.value_size,
                                        options.seed ^ index ^ ++op)));
          local.write_latency.record_ms(watch.elapsed_ms() / scale);
          if (s.ok()) {
            ++local.writes;
            if (options.timeline) options.timeline->add();
          } else {
            ++local.errors;
            if (!options.continue_on_error) break;
          }
        }
      }
    });
  }
  Stopwatch run_watch;
  for (auto& thread : threads) thread.join();

  for (const auto& partial : partials) {
    result.read_latency.merge(partial.read_latency);
    result.write_latency.merge(partial.write_latency);
    result.reads += partial.reads;
    result.writes += partial.writes;
    result.errors += partial.errors;
  }
  result.elapsed_modelled_seconds = to_seconds(wall_duration) / scale;
  return result;
}

}  // namespace tiera
