// Composable open-loop traffic model for the soak harness.
//
// kv_workload.h drives closed-loop clients (each thread issues the next op
// when the previous one returns), which is right for latency figures but
// cannot overload a server: a slow server slows the clients down. The soak
// harness needs *offered* load that keeps arriving regardless of how the
// server is doing — that is what exposes the admission controller
// (core/admission.h) to real pressure. This module generates that load as
// an open-loop arrival schedule in modelled time:
//
//   * key popularity    — YCSB scrambled-zipfian over a simulated user
//                         population (millions of keys; hot head, long tail)
//   * op mix            — YCSB-A/B/C read/write fractions
//   * load curve        — diurnal sine over a time-compressed "day", with
//                         flash-crowd spikes multiplying the offered rate
//   * failure storms    — windows in which a tier has a failure injected
//                         (layered on Tier::inject_failure by the runner)
//
// Arrivals are Poisson at the curve's instantaneous rate (thinning method),
// so bursts and lulls look like production traffic rather than a metronome.
// The schedule is deterministic for a given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "store/tier.h"

namespace tiera {

// YCSB-style read/write mix. The standard workloads the paper benchmarks
// with: A = 50/50 update-heavy, B = 95/5 read-mostly, C = read-only.
struct OpMix {
  double read_fraction = 0.95;

  static OpMix ycsb_a() { return {0.5}; }
  static OpMix ycsb_b() { return {0.95}; }
  static OpMix ycsb_c() { return {1.0}; }
  // "a" | "b" | "c" | a literal read fraction ("0.9").
  static Result<OpMix> parse(std::string_view text);
};

// A flash crowd: offered load multiplied by `multiplier` for the window
// [start_s, start_s + duration_s) of modelled time.
struct FlashCrowd {
  double start_s = 0;
  double duration_s = 0;
  double multiplier = 1.0;
};

// A failure storm: `tier_label` has `mode` injected for the window. The
// schedule only carries the windows; whoever owns the tiers applies them
// (bench/soak_runner calls Tier::inject_failure / heal at the boundaries).
struct FailureStorm {
  std::string tier_label;
  double start_s = 0;
  double duration_s = 0;
  FailureMode mode = FailureMode::kFailStop;

  bool active_at(double t_s) const {
    return t_s >= start_s && t_s < start_s + duration_s;
  }
};

// Offered load (requests per modelled second) over time: a base rate, an
// optional diurnal sine, and flash crowds stacked multiplicatively.
struct LoadCurve {
  double base_qps = 1000;
  // Diurnal swing as a fraction of base (0 = flat, 0.3 = +-30%).
  double diurnal_amplitude = 0;
  // Length of the compressed "day" the sine completes one cycle over.
  double diurnal_period_s = 120;
  std::vector<FlashCrowd> crowds;

  double qps_at(double t_s) const;
  // Upper bound of qps_at over all t (the thinning envelope).
  double peak_qps() const;
};

enum class TrafficOpKind : std::uint8_t { kGet, kPut };

// One scheduled arrival.
struct TrafficOp {
  double at_s = 0;          // modelled offset from schedule start
  TrafficOpKind kind = TrafficOpKind::kGet;
  std::uint64_t user = 0;   // key index in [0, users)
  std::uint32_t tenant = 0; // round-robin tenant attribution
};

struct TrafficOptions {
  std::uint64_t users = 1'000'000;  // simulated population = keyspace
  double zipf_theta = 0.99;
  OpMix mix = OpMix::ycsb_b();
  LoadCurve curve;
  std::vector<FailureStorm> storms;
  double duration_s = 60;           // modelled schedule length
  std::uint32_t tenants = 1;
  std::uint64_t seed = 42;
  std::string key_prefix = "u";
};

// Streaming generator of the arrival schedule (a million-user soak emits
// too many ops to materialize). next() fills `op` and returns false once
// the schedule is exhausted.
class TrafficSchedule {
 public:
  explicit TrafficSchedule(const TrafficOptions& options);

  bool next(TrafficOp* op);
  const TrafficOptions& options() const { return options_; }
  std::string key_name(std::uint64_t user) const;

 private:
  TrafficOptions options_;
  Rng rng_;
  ZipfianDistribution keys_;
  double t_ = 0;
  double peak_qps_ = 0;
  std::uint32_t next_tenant_ = 0;
};

}  // namespace tiera
