#include "workload/file_workload.h"

#include <thread>

#include "common/random.h"

namespace tiera {

FileWorkloadResult run_file_reads(FileAdapter& files,
                                  const FileWorkloadOptions& options) {
  FileWorkloadResult result;
  if (options.paths.empty()) return result;

  // Precompute per-file chunk counts for offset selection.
  std::vector<std::uint64_t> chunk_counts;
  std::uint64_t total_chunks = 0;
  for (const auto& path : options.paths) {
    auto size = files.size(path);
    const std::uint64_t chunks =
        size.ok() ? (*size + options.io_size - 1) / options.io_size : 0;
    chunk_counts.push_back(chunks);
    total_chunks += chunks;
  }
  if (total_chunks == 0) return result;

  const double scale = time_scale() > 0 ? time_scale() : 1.0;
  const TimePoint deadline =
      now() + std::chrono::duration_cast<Duration>(options.duration * scale);

  std::vector<std::thread> threads;
  std::vector<FileWorkloadResult> partials(options.threads);
  for (std::size_t t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t] {
      FileWorkloadResult& local = partials[t];
      Rng rng(options.seed * 6151 + t);
      ZipfianDistribution dist(total_chunks, options.zipf_theta);
      while (now() < deadline) {
        // Map a global chunk index to (file, offset).
        std::uint64_t index = dist.next(rng);
        std::size_t file_index = 0;
        while (file_index < chunk_counts.size() &&
               index >= chunk_counts[file_index]) {
          index -= chunk_counts[file_index];
          ++file_index;
        }
        if (file_index >= options.paths.size()) continue;
        Stopwatch watch;
        auto data = files.read(options.paths[file_index],
                               index * options.io_size, options.io_size);
        local.read_latency.record_ms(watch.elapsed_ms() / scale);
        if (data.ok()) {
          ++local.reads;
        } else {
          ++local.errors;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& partial : partials) {
    result.read_latency.merge(partial.read_latency);
    result.reads += partial.reads;
    result.errors += partial.errors;
  }
  return result;
}

}  // namespace tiera
