// YCSB-style key-value workload driver (the paper uses YCSB for the
// latency/durability/failover experiments: uniform and zipfian request
// streams of 4 KB objects with configurable read/write mixes).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/histogram.h"
#include "common/random.h"
#include "core/instance.h"
#include "workload/timeseries.h"

namespace tiera {

// Abstract KV surface so the driver runs against an in-process instance, a
// remote client, or raw tiers (the Fig. 18 no-control-layer baseline).
struct KvBackend {
  std::function<Status(const std::string&, ByteView)> put;
  std::function<Result<Bytes>(const std::string&)> get;

  static KvBackend for_instance(TieraInstance& instance);
  // Direct tier access without the control layer: writes go synchronously
  // to every tier, reads try tiers in order.
  static KvBackend for_tiers(std::vector<TierPtr> tiers);
};

enum class KeyDist { kUniform, kZipfian };

struct KvWorkloadOptions {
  std::uint64_t record_count = 1000;
  std::size_t value_size = 4096;
  double read_fraction = 0.5;    // 1.0 = read-only, 0.0 = write-only
  KeyDist distribution = KeyDist::kUniform;
  double zipf_theta = 0.99;
  std::size_t threads = 1;
  // Pause between operations per client (modelled). Zero = closed loop at
  // full speed; non-zero paces the offered load like a think time.
  Duration op_delay = Duration::zero();
  // Run length in *modelled* time.
  Duration duration = std::chrono::seconds(10);
  std::uint64_t seed = 42;
  bool preload = true;           // load all records before measuring
  std::string key_prefix = "user";
  // Optional live throughput recorder (Figs. 16/17).
  ThroughputTimeline* timeline = nullptr;
  // Optional stop signal checked between operations.
  std::function<bool()> stop = nullptr;
  // Count failed operations (during injected outages ops fail; the
  // timeline then shows the throughput hole).
  bool continue_on_error = true;
};

struct KvWorkloadResult {
  LatencyHistogram read_latency;
  LatencyHistogram write_latency;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t errors = 0;
  double elapsed_modelled_seconds = 0;

  double ops_per_sec() const {
    return elapsed_modelled_seconds > 0
               ? static_cast<double>(reads + writes) /
                     elapsed_modelled_seconds
               : 0;
  }
};

// Loads `record_count` records (if preload) then drives the mix for
// `duration` across `threads` client threads.
KvWorkloadResult run_kv_workload(const KvBackend& backend,
                                 const KvWorkloadOptions& options);

// Load phase only.
Status load_kv_records(const KvBackend& backend,
                       const KvWorkloadOptions& options);

}  // namespace tiera
