// sysbench-style OLTP driver over minidb.
//
// Reproduces the workload of §4.1.1: transactions against one table whose
// row popularity follows the sysbench *special* distribution — a hot
// fraction of the rows (the x-axis of Figs. 7/8, 1%..30%) receives 80% of
// accesses. A read-only transaction issues point selects plus a range scan;
// a read-write transaction adds updates, a delete and an insert, and pays a
// journal commit.
#pragma once

#include "common/histogram.h"
#include "sql/minidb.h"

namespace tiera {

struct OltpOptions {
  std::string table = "sbtest";
  std::uint64_t table_rows = 10'000;
  std::uint32_t record_size = 192;  // sysbench-like row width

  double hot_fraction = 0.10;       // "% data fetched 80% of the time"
  double hot_probability = 0.80;

  bool read_only = true;
  std::size_t point_selects = 10;
  std::size_t range_size = 20;
  std::size_t updates = 2;          // read-write mix only
  // MySQL persists journal writes even for read-only transactional load
  // (§4.1.1); enable to reproduce that with a small journal note per
  // read-only commit.
  bool journal_readonly = false;

  std::size_t threads = 8;
  Duration duration = std::chrono::seconds(10);  // modelled
  std::uint64_t seed = 1;
};

struct OltpResult {
  LatencyHistogram txn_latency;
  std::uint64_t transactions = 0;
  std::uint64_t errors = 0;
  double elapsed_modelled_seconds = 0;

  double tps() const {
    return elapsed_modelled_seconds > 0
               ? static_cast<double>(transactions) / elapsed_modelled_seconds
               : 0;
  }
  // Latencies are recorded in modelled time (scale-invariant).
  double p95_ms() const { return txn_latency.percentile_ms(0.95); }
  double mean_ms() const { return txn_latency.mean_ms(); }
};

// Creates (if needed) and populates the table.
Status load_oltp_table(MiniDb& db, const OltpOptions& options);

// Drives the transaction mix for `duration` across `threads` clients.
OltpResult run_oltp(MiniDb& db, const OltpOptions& options);

}  // namespace tiera
