#include "workload/traffic.h"

#include <cmath>
#include <cstdlib>

namespace tiera {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

Result<OpMix> OpMix::parse(std::string_view text) {
  if (text == "a" || text == "A") return ycsb_a();
  if (text == "b" || text == "B") return ycsb_b();
  if (text == "c" || text == "C") return ycsb_c();
  char* end = nullptr;
  const std::string owned(text);
  const double fraction = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || *end != '\0' || fraction < 0 || fraction > 1) {
    return Status::InvalidArgument("op mix: expected a|b|c or a read "
                                   "fraction in [0,1], got '" +
                                   owned + "'");
  }
  return OpMix{fraction};
}

double LoadCurve::qps_at(double t_s) const {
  double qps = base_qps;
  if (diurnal_amplitude > 0 && diurnal_period_s > 0) {
    qps *= 1.0 + diurnal_amplitude * std::sin(kTwoPi * t_s / diurnal_period_s);
  }
  for (const FlashCrowd& crowd : crowds) {
    if (t_s >= crowd.start_s && t_s < crowd.start_s + crowd.duration_s) {
      qps *= crowd.multiplier;
    }
  }
  return qps < 0 ? 0 : qps;
}

double LoadCurve::peak_qps() const {
  // Overlapping crowds stack multiplicatively in qps_at, so the thinning
  // envelope must too: the combined factor is piecewise-constant and only
  // changes at window boundaries, so its max sits at one of them.
  double crowd_peak = 1.0;
  auto factor_at = [this](double t_s) {
    double factor = 1.0;
    for (const FlashCrowd& crowd : crowds) {
      if (t_s >= crowd.start_s && t_s < crowd.start_s + crowd.duration_s) {
        factor *= crowd.multiplier;
      }
    }
    return factor;
  };
  for (const FlashCrowd& crowd : crowds) {
    crowd_peak = std::max(crowd_peak, factor_at(crowd.start_s));
    crowd_peak = std::max(crowd_peak, factor_at(crowd.start_s +
                                                crowd.duration_s));
  }
  return base_qps * (1.0 + std::max(diurnal_amplitude, 0.0)) * crowd_peak;
}

TrafficSchedule::TrafficSchedule(const TrafficOptions& options)
    : options_(options),
      rng_(options.seed),
      keys_(options.users ? options.users : 1, options.zipf_theta,
            /*scrambled=*/true),
      peak_qps_(options.curve.peak_qps()) {}

std::string TrafficSchedule::key_name(std::uint64_t user) const {
  return options_.key_prefix + std::to_string(user);
}

bool TrafficSchedule::next(TrafficOp* op) {
  if (peak_qps_ <= 0) return false;
  // Non-homogeneous Poisson arrivals by thinning: draw candidate arrivals
  // at the peak rate, keep each with probability rate(t)/peak.
  while (true) {
    t_ += -std::log(1.0 - rng_.next_double()) / peak_qps_;
    if (t_ >= options_.duration_s) return false;
    const double accept = options_.curve.qps_at(t_) / peak_qps_;
    if (rng_.next_double() >= accept) continue;
    op->at_s = t_;
    op->kind = rng_.next_double() < options_.mix.read_fraction
                   ? TrafficOpKind::kGet
                   : TrafficOpKind::kPut;
    op->user = keys_.next(rng_);
    op->tenant = options_.tenants > 1 ? next_tenant_++ % options_.tenants : 0;
    return true;
  }
}

}  // namespace tiera
