#include "workload/oltp_workload.h"

#include <thread>

#include "common/random.h"

namespace tiera {

namespace {

Bytes make_row(const OltpOptions& options, std::uint64_t row,
               std::uint64_t version) {
  return make_payload(options.record_size, row * 2654435761ull + version);
}

}  // namespace

Status load_oltp_table(MiniDb& db, const OltpOptions& options) {
  if (!db.has_table(options.table)) {
    TIERA_RETURN_IF_ERROR(db.create_table(options.table, options.record_size));
  }
  // Bulk load in batches so the journal does not dominate load time.
  const std::uint64_t batch = 64;
  for (std::uint64_t first = 0; first < options.table_rows; first += batch) {
    MiniDb::Transaction txn = db.begin();
    const std::uint64_t last =
        std::min(options.table_rows, first + batch);
    for (std::uint64_t row = first; row < last; ++row) {
      TIERA_RETURN_IF_ERROR(
          txn.write(options.table, row, as_view(make_row(options, row, 0))));
    }
    TIERA_RETURN_IF_ERROR(db.commit(txn));
  }
  return db.checkpoint();
}

OltpResult run_oltp(MiniDb& db, const OltpOptions& options) {
  OltpResult result;
  const double scale = time_scale() > 0 ? time_scale() : 1.0;
  const auto wall_duration =
      std::chrono::duration_cast<Duration>(options.duration * scale);
  const TimePoint deadline = now() + wall_duration;

  std::vector<std::thread> threads;
  std::vector<OltpResult> partials(options.threads);
  for (std::size_t t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t] {
      OltpResult& local = partials[t];
      Rng rng(options.seed * 104729 + t);
      SpecialDistribution dist(options.table_rows, options.hot_fraction,
                               options.hot_probability);
      std::uint64_t version = 1;
      while (now() < deadline) {
        Stopwatch watch;
        MiniDb::Transaction txn = db.begin();
        bool failed = false;

        for (std::size_t i = 0; i < options.point_selects && !failed; ++i) {
          Result<Bytes> row = txn.read(options.table, dist.next(rng));
          if (!row.ok() && !row.status().is_not_found()) failed = true;
        }
        {
          const std::uint64_t first = dist.next(rng);
          auto range = txn.range_read(options.table, first,
                                      options.range_size);
          if (!range.ok()) failed = true;
        }
        if (!options.read_only && !failed) {
          for (std::size_t i = 0; i < options.updates && !failed; ++i) {
            const std::uint64_t row = dist.next(rng);
            if (!txn.write(options.table, row,
                           as_view(make_row(options, row, version)))
                     .ok()) {
              failed = true;
            }
          }
          // Delete one row and re-insert it (sysbench's delete+insert pair
          // keeps the table size stable).
          const std::uint64_t churn_row = dist.next(rng);
          if (!failed) failed = !txn.remove(options.table, churn_row).ok();
          if (!failed) {
            failed = !txn.write(options.table, churn_row,
                                as_view(make_row(options, churn_row, version)))
                          .ok();
          }
          ++version;
        }

        if (failed) {
          db.abort(txn);
          ++local.errors;
          continue;
        }
        Status commit_status = db.commit(txn);
        if (commit_status.ok() && options.read_only &&
            options.journal_readonly) {
          commit_status =
              db.journal_note(as_view(make_payload(64, version)));
        }
        local.txn_latency.record_ms(watch.elapsed_ms() / scale);
        if (commit_status.ok()) {
          ++local.transactions;
        } else {
          ++local.errors;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (const auto& partial : partials) {
    result.txn_latency.merge(partial.txn_latency);
    result.transactions += partial.transactions;
    result.errors += partial.errors;
  }
  result.elapsed_modelled_seconds = to_seconds(wall_duration) / scale;
  return result;
}

}  // namespace tiera
