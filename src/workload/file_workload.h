// fio-style file reader: zipfian offsets over files stored through the
// FileAdapter (the Fig. 12 dedup experiment drives reads this way, fio with
// zipf theta = 1.2).
#pragma once

#include "common/histogram.h"
#include "posix/file_adapter.h"

namespace tiera {

struct FileWorkloadOptions {
  std::vector<std::string> paths;  // files to read from
  std::size_t io_size = 4096;
  double zipf_theta = 1.2;
  std::size_t threads = 4;
  Duration duration = std::chrono::seconds(5);  // modelled
  std::uint64_t seed = 11;
};

struct FileWorkloadResult {
  LatencyHistogram read_latency;  // modelled time
  std::uint64_t reads = 0;
  std::uint64_t errors = 0;
};

FileWorkloadResult run_file_reads(FileAdapter& files,
                                  const FileWorkloadOptions& options);

}  // namespace tiera
