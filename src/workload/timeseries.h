// Per-interval operation counter for throughput-over-time plots
// (Figs. 16 and 17 report ops/sec across a multi-minute window).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"

namespace tiera {

class ThroughputTimeline {
 public:
  // `interval` is in modelled time; buckets are indexed from start().
  ThroughputTimeline(Duration interval, std::size_t max_buckets)
      : interval_(interval), buckets_(max_buckets) {
    for (auto& b : buckets_) b = std::make_unique<std::atomic<uint64_t>>(0);
    start_ = now();
  }

  void start() { start_ = now(); }

  void add(std::uint64_t n = 1) {
    const double scale = time_scale() > 0 ? time_scale() : 1.0;
    const double modelled_elapsed = to_seconds(now() - start_) / scale;
    const auto index = static_cast<std::size_t>(
        modelled_elapsed / to_seconds(interval_));
    if (index < buckets_.size()) {
      buckets_[index]->fetch_add(n, std::memory_order_relaxed);
    }
  }

  // Ops per modelled second in bucket `i`.
  double rate(std::size_t i) const {
    if (i >= buckets_.size()) return 0;
    return static_cast<double>(buckets_[i]->load()) / to_seconds(interval_);
  }

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  Duration interval_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> buckets_;
  TimePoint start_;
};

}  // namespace tiera
