// metadb: embedded durable key-value store.
//
// Plays the role BerkeleyDB plays in the Tiera prototype: the control layer
// persists all object metadata here so an instance can restart without losing
// track of where objects live. Design: append-only log with CRC-framed
// records, full in-memory index, log replay on open, and explicit compaction
// that rewrites the live set. Single-process, thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/group_commit.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace tiera {

struct MetaDbOptions {
  // fsync after every acknowledged append. Off by default: the paper's
  // durability story for metadata is periodic persistence, and tests
  // exercise both modes. With group commit, "every write" means every
  // acknowledged batch — no put/erase returns before its record is synced,
  // but concurrent writers share one fsync.
  bool sync_every_write = false;
  // Compact automatically when dead bytes exceed this fraction of the log.
  double auto_compact_ratio = 0.5;
  // Minimum log size before auto-compaction triggers.
  std::uint64_t auto_compact_min_bytes = 1 << 20;
  // Group commit: flush once this many bytes are staged...
  std::uint64_t journal_batch_bytes = 256 << 10;
  // ...or after the batch leader has lingered this long for followers.
  // Only applies when sync_every_write is on; unsynced appends go straight
  // to the OS page cache so a process crash loses nothing it would not
  // have lost before.
  Duration journal_batch_wait = std::chrono::microseconds(200);
};

class MetaDb {
 public:
  ~MetaDb();

  MetaDb(const MetaDb&) = delete;
  MetaDb& operator=(const MetaDb&) = delete;

  // Opens (creating if needed) the database at `path`. Replays the log;
  // torn/corrupt tail records are discarded (crash recovery).
  static Result<std::unique_ptr<MetaDb>> open(std::string path,
                                              MetaDbOptions options = {});

  Status put(std::string_view key, ByteView value);
  Status put(std::string_view key, std::string_view value) {
    return put(key, as_view(value));
  }
  Result<Bytes> get(std::string_view key) const;
  Status erase(std::string_view key);
  bool contains(std::string_view key) const;

  // Visit every live (key, value); `fn` returning false stops the scan.
  void scan(const std::function<bool(std::string_view, ByteView)>& fn) const;
  void scan_prefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, ByteView)>& fn) const;

  std::size_t size() const;
  std::uint64_t log_bytes() const;
  std::uint64_t dead_bytes() const;

  // Rewrite the log with only live records.
  Status compact();
  // Flush + fsync the log.
  Status sync();

  const std::string& path() const { return path_; }

  // Group-commit telemetry (also exported as the
  // tiera_metadb_group_commit_{batches,records,fsyncs}_total counters).
  struct JournalStats {
    std::uint64_t batches = 0;
    std::uint64_t records = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t max_batch_records = 0;
  };
  JournalStats journal_stats() const;

 private:
  explicit MetaDb(std::string path, MetaDbOptions options);

  Status open_log();
  Status replay();
  // Encodes and stages a record; requires mu_ held (journal order must
  // match index-update order). Returns the sequence to commit().
  std::uint64_t stage_record(std::uint8_t type, std::string_view key,
                             ByteView value);
  Status flush_batch(ByteView batch, std::uint64_t records);
  Status compact_locked();  // requires mu_ held

  const std::string path_;
  const MetaDbOptions options_;

  // Registry series (`tiera_metadb_*`), looked up once at open.
  struct Metrics {
    Counter* puts;
    Counter* gets;
    Counter* erases;
    Counter* compactions;
    Counter* gc_batches;
    Counter* gc_records;
    Counter* gc_fsyncs;
    Gauge* log_bytes;
    Gauge* live_keys;
  };
  Metrics metrics_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Bytes> index_;
  int fd_ = -1;
  std::uint64_t log_bytes_ = 0;
  std::uint64_t live_bytes_ = 0;
  std::atomic<std::uint64_t> fsyncs_{0};
  // Declared last: the flush function touches fd_ and the counters above.
  // Writers stage under mu_ and commit outside it; compaction drains the
  // journal (under mu_, which excludes new stagers) before swapping fd_,
  // so no flush can be in flight while the fd changes.
  GroupCommitter journal_;
};

}  // namespace tiera
