// metadb: embedded durable key-value store.
//
// Plays the role BerkeleyDB plays in the Tiera prototype: the control layer
// persists all object metadata here so an instance can restart without losing
// track of where objects live. Design: append-only log with CRC-framed
// records, full in-memory index, log replay on open, and explicit compaction
// that rewrites the live set. Single-process, thread-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace tiera {

struct MetaDbOptions {
  // fsync after every append. Off by default: the paper's durability story
  // for metadata is periodic persistence, and tests exercise both modes.
  bool sync_every_write = false;
  // Compact automatically when dead bytes exceed this fraction of the log.
  double auto_compact_ratio = 0.5;
  // Minimum log size before auto-compaction triggers.
  std::uint64_t auto_compact_min_bytes = 1 << 20;
};

class MetaDb {
 public:
  ~MetaDb();

  MetaDb(const MetaDb&) = delete;
  MetaDb& operator=(const MetaDb&) = delete;

  // Opens (creating if needed) the database at `path`. Replays the log;
  // torn/corrupt tail records are discarded (crash recovery).
  static Result<std::unique_ptr<MetaDb>> open(std::string path,
                                              MetaDbOptions options = {});

  Status put(std::string_view key, ByteView value);
  Status put(std::string_view key, std::string_view value) {
    return put(key, as_view(value));
  }
  Result<Bytes> get(std::string_view key) const;
  Status erase(std::string_view key);
  bool contains(std::string_view key) const;

  // Visit every live (key, value); `fn` returning false stops the scan.
  void scan(const std::function<bool(std::string_view, ByteView)>& fn) const;
  void scan_prefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, ByteView)>& fn) const;

  std::size_t size() const;
  std::uint64_t log_bytes() const;
  std::uint64_t dead_bytes() const;

  // Rewrite the log with only live records.
  Status compact();
  // Flush + fsync the log.
  Status sync();

  const std::string& path() const { return path_; }

 private:
  explicit MetaDb(std::string path, MetaDbOptions options);

  Status open_log();
  Status replay();
  Status append_record(std::uint8_t type, std::string_view key,
                       ByteView value);
  Status compact_locked();  // requires mu_ held

  const std::string path_;
  const MetaDbOptions options_;

  // Registry series (`tiera_metadb_*`), looked up once at open.
  struct Metrics {
    Counter* puts;
    Counter* gets;
    Counter* erases;
    Counter* compactions;
    Gauge* log_bytes;
    Gauge* live_keys;
  };
  Metrics metrics_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Bytes> index_;
  int fd_ = -1;
  std::uint64_t log_bytes_ = 0;
  std::uint64_t live_bytes_ = 0;
};

}  // namespace tiera
