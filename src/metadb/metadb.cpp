#include "metadb/metadb.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/stage.h"

namespace tiera {

namespace {

// Record layout (little endian):
//   u32 crc (over type..value)
//   u8  type (1 = put, 2 = erase)
//   u32 key_len
//   u32 value_len
//   key bytes, value bytes
constexpr std::uint8_t kTypePut = 1;
constexpr std::uint8_t kTypeErase = 2;
constexpr std::size_t kRecordHeader = 4 + 1 + 4 + 4;

std::uint64_t record_size(std::size_t key_len, std::size_t value_len) {
  return kRecordHeader + key_len + value_len;
}

Status errno_status(const char* op) {
  return Status::Internal(std::string("metadb ") + op + ": " +
                          std::strerror(errno));
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

MetaDb::MetaDb(std::string path, MetaDbOptions options)
    : path_(std::move(path)),
      options_(options),
      journal_(
          [this](ByteView batch, std::uint64_t records) {
            return flush_batch(batch, records);
          },
          GroupCommitter::Options{
              .max_batch_bytes = options.journal_batch_bytes,
              // Lingering only buys anything when each batch pays an fsync;
              // unsynced appends flush to the page cache immediately so a
              // process crash loses nothing it would not have lost before.
              .max_wait = options.sync_every_write
                              ? options.journal_batch_wait
                              : Duration::zero()}) {
  MetricsRegistry& reg = MetricsRegistry::global();
  metrics_.puts = &reg.counter("tiera_metadb_puts_total");
  metrics_.gets = &reg.counter("tiera_metadb_gets_total");
  metrics_.erases = &reg.counter("tiera_metadb_erases_total");
  metrics_.compactions = &reg.counter("tiera_metadb_compactions_total");
  metrics_.gc_batches = &reg.counter("tiera_metadb_group_commit_batches_total");
  metrics_.gc_records = &reg.counter("tiera_metadb_group_commit_records_total");
  metrics_.gc_fsyncs = &reg.counter("tiera_metadb_group_commit_fsyncs_total");
  metrics_.log_bytes = &reg.gauge("tiera_metadb_log_bytes");
  metrics_.live_keys = &reg.gauge("tiera_metadb_live_keys");
}

MetaDb::~MetaDb() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

Result<std::unique_ptr<MetaDb>> MetaDb::open(std::string path,
                                             MetaDbOptions options) {
  std::unique_ptr<MetaDb> db(new MetaDb(std::move(path), options));
  TIERA_RETURN_IF_ERROR(db->replay());
  TIERA_RETURN_IF_ERROR(db->open_log());
  return db;
}

Status MetaDb::open_log() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return errno_status("open");
  return Status::Ok();
}

Status MetaDb::replay() {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::Ok();  // fresh database
    return errno_status("open for replay");
  }
  Bytes log;
  {
    std::uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return errno_status("read");
      }
      if (n == 0) break;
      log.insert(log.end(), buf, buf + n);
    }
  }
  ::close(fd);

  std::size_t pos = 0;
  std::size_t valid_end = 0;
  while (pos + kRecordHeader <= log.size()) {
    std::uint32_t crc, key_len, value_len;
    std::memcpy(&crc, log.data() + pos, 4);
    const std::uint8_t type = log[pos + 4];
    std::memcpy(&key_len, log.data() + pos + 5, 4);
    std::memcpy(&value_len, log.data() + pos + 9, 4);
    const std::uint64_t body = std::uint64_t(key_len) + value_len;
    if (pos + kRecordHeader + body > log.size()) break;  // torn tail
    const ByteView payload(log.data() + pos + 4, 1 + 8 + body);
    if (crc32c(payload) != crc) break;  // corrupt tail: stop replay here
    const std::string key(
        reinterpret_cast<const char*>(log.data() + pos + kRecordHeader),
        key_len);
    if (type == kTypePut) {
      Bytes value(log.begin() + static_cast<long>(pos + kRecordHeader +
                                                  key_len),
                  log.begin() + static_cast<long>(pos + kRecordHeader +
                                                  key_len + value_len));
      auto it = index_.find(key);
      if (it != index_.end()) {
        live_bytes_ -= record_size(key.size(), it->second.size());
        it->second = std::move(value);
      } else {
        index_.emplace(key, std::move(value));
      }
      live_bytes_ += record_size(key_len, value_len);
    } else if (type == kTypeErase) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        live_bytes_ -= record_size(key.size(), it->second.size());
        index_.erase(it);
      }
    } else {
      break;  // unknown record type: treat as corruption boundary
    }
    pos += kRecordHeader + body;
    valid_end = pos;
  }
  log_bytes_ = valid_end;
  if (valid_end < log.size()) {
    TIERA_LOG(kWarn, "metadb")
        << "discarding " << (log.size() - valid_end)
        << " torn/corrupt bytes at tail of " << path_;
    if (::truncate(path_.c_str(), static_cast<off_t>(valid_end)) != 0) {
      return errno_status("truncate");
    }
  }
  return Status::Ok();
}

std::uint64_t MetaDb::stage_record(std::uint8_t type, std::string_view key,
                                   ByteView value) {
  Bytes rec;
  rec.reserve(kRecordHeader + key.size() + value.size());
  rec.resize(4);  // crc placeholder
  rec.push_back(type);
  const auto key_len = static_cast<std::uint32_t>(key.size());
  const auto value_len = static_cast<std::uint32_t>(value.size());
  rec.insert(rec.end(), reinterpret_cast<const std::uint8_t*>(&key_len),
             reinterpret_cast<const std::uint8_t*>(&key_len) + 4);
  rec.insert(rec.end(), reinterpret_cast<const std::uint8_t*>(&value_len),
             reinterpret_cast<const std::uint8_t*>(&value_len) + 4);
  append(rec, key);
  append(rec, value);
  const std::uint32_t crc = crc32c(ByteView(rec.data() + 4, rec.size() - 4));
  std::memcpy(rec.data(), &crc, 4);

  log_bytes_ += rec.size();
  return journal_.stage(as_view(rec));
}

// The group-commit flush: one write (and one fsync when configured) for a
// whole batch of staged records. Runs outside mu_, but never concurrently
// with an fd_ swap — compaction drains the journal under mu_ first.
Status MetaDb::flush_batch(ByteView batch, std::uint64_t records) {
  metrics_.gc_batches->inc();
  metrics_.gc_records->inc(records);
  if (!write_all(fd_, batch.data(), batch.size())) {
    return errno_status("write");
  }
  if (options_.sync_every_write) {
    if (::fsync(fd_) != 0) return errno_status("fsync");
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    metrics_.gc_fsyncs->inc();
  }
  return Status::Ok();
}

Status MetaDb::put(std::string_view key, ByteView value) {
  // Journal cost attribution: encode + stage + group-commit wait all count
  // as journal.append in the per-op stage breakdown.
  StageTimer stage(Stage::kJournalAppend);
  std::uint64_t seq = 0;
  bool compact_needed = false;
  {
    std::lock_guard lock(mu_);
    metrics_.puts->inc();
    seq = stage_record(kTypePut, key, value);
    auto it = index_.find(std::string(key));
    if (it != index_.end()) {
      live_bytes_ -= record_size(key.size(), it->second.size());
      it->second.assign(value.begin(), value.end());
    } else {
      index_.emplace(std::string(key), Bytes(value.begin(), value.end()));
    }
    live_bytes_ += record_size(key.size(), value.size());
    metrics_.log_bytes->set(static_cast<double>(log_bytes_));
    metrics_.live_keys->set(static_cast<double>(index_.size()));
    compact_needed =
        log_bytes_ >= options_.auto_compact_min_bytes && log_bytes_ > 0 &&
        static_cast<double>(log_bytes_ - live_bytes_) >
            options_.auto_compact_ratio * static_cast<double>(log_bytes_);
  }
  TIERA_RETURN_IF_ERROR(journal_.commit(seq));
  if (compact_needed) return compact();
  return Status::Ok();
}

Result<Bytes> MetaDb::get(std::string_view key) const {
  std::lock_guard lock(mu_);
  metrics_.gets->inc();
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::NotFound("metadb key");
  return it->second;
}

bool MetaDb::contains(std::string_view key) const {
  std::lock_guard lock(mu_);
  return index_.count(std::string(key)) > 0;
}

Status MetaDb::erase(std::string_view key) {
  StageTimer stage(Stage::kJournalAppend);
  std::uint64_t seq = 0;
  {
    std::lock_guard lock(mu_);
    metrics_.erases->inc();
    auto it = index_.find(std::string(key));
    if (it == index_.end()) return Status::NotFound("metadb key");
    seq = stage_record(kTypeErase, key, {});
    live_bytes_ -= record_size(key.size(), it->second.size());
    index_.erase(it);
    metrics_.log_bytes->set(static_cast<double>(log_bytes_));
    metrics_.live_keys->set(static_cast<double>(index_.size()));
  }
  return journal_.commit(seq);
}

void MetaDb::scan(
    const std::function<bool(std::string_view, ByteView)>& fn) const {
  std::lock_guard lock(mu_);
  for (const auto& [key, value] : index_) {
    if (!fn(key, as_view(value))) return;
  }
}

void MetaDb::scan_prefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, ByteView)>& fn) const {
  std::lock_guard lock(mu_);
  for (const auto& [key, value] : index_) {
    if (key.size() >= prefix.size() &&
        std::string_view(key).substr(0, prefix.size()) == prefix) {
      if (!fn(key, as_view(value))) return;
    }
  }
}

std::size_t MetaDb::size() const {
  std::lock_guard lock(mu_);
  return index_.size();
}

std::uint64_t MetaDb::log_bytes() const {
  std::lock_guard lock(mu_);
  return log_bytes_;
}

std::uint64_t MetaDb::dead_bytes() const {
  std::lock_guard lock(mu_);
  return log_bytes_ - live_bytes_;
}

Status MetaDb::compact() {
  std::lock_guard lock(mu_);
  return compact_locked();
}

Status MetaDb::sync() {
  // Flush anything still staged in the group-commit buffer, then fsync.
  TIERA_RETURN_IF_ERROR(journal_.drain());
  std::lock_guard lock(mu_);
  if (fd_ >= 0 && ::fsync(fd_) != 0) return errno_status("fsync");
  return Status::Ok();
}

MetaDb::JournalStats MetaDb::journal_stats() const {
  const GroupCommitter::Stats s = journal_.stats();
  JournalStats out;
  out.batches = s.batches;
  out.records = s.records;
  out.max_batch_records = s.max_batch_records;
  out.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  return out;
}

Status MetaDb::compact_locked() {
  // Drain staged records to the old fd before swapping it; mu_ is held, so
  // no new records can stage while the swap happens and no flush can be in
  // flight once drain returns.
  TIERA_RETURN_IF_ERROR(journal_.drain());
  metrics_.compactions->inc();
  const std::string tmp_path = path_ + ".compact";
  const int tmp_fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) return errno_status("open compact temp");

  std::uint64_t new_bytes = 0;
  for (const auto& [key, value] : index_) {
    Bytes rec;
    rec.resize(4);
    rec.push_back(kTypePut);
    const auto key_len = static_cast<std::uint32_t>(key.size());
    const auto value_len = static_cast<std::uint32_t>(value.size());
    rec.insert(rec.end(), reinterpret_cast<const std::uint8_t*>(&key_len),
               reinterpret_cast<const std::uint8_t*>(&key_len) + 4);
    rec.insert(rec.end(), reinterpret_cast<const std::uint8_t*>(&value_len),
               reinterpret_cast<const std::uint8_t*>(&value_len) + 4);
    append(rec, std::string_view(key));
    append(rec, as_view(value));
    const std::uint32_t crc = crc32c(ByteView(rec.data() + 4, rec.size() - 4));
    std::memcpy(rec.data(), &crc, 4);
    if (!write_all(tmp_fd, rec.data(), rec.size())) {
      ::close(tmp_fd);
      ::unlink(tmp_path.c_str());
      return errno_status("write compact temp");
    }
    new_bytes += rec.size();
  }
  if (::fsync(tmp_fd) != 0) {
    ::close(tmp_fd);
    ::unlink(tmp_path.c_str());
    return errno_status("fsync compact temp");
  }
  ::close(tmp_fd);
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return errno_status("rename compacted log");
  }
  if (fd_ >= 0) ::close(fd_);
  TIERA_RETURN_IF_ERROR(open_log());
  log_bytes_ = new_bytes;
  live_bytes_ = new_bytes;
  TIERA_LOG(kInfo, "metadb") << "compacted " << path_ << " to " << new_bytes
                             << " bytes (" << index_.size() << " records)";
  return Status::Ok();
}

}  // namespace tiera
