#include "core/templates.h"

namespace tiera {

namespace {

Result<InstancePtr> create_instance(const TemplateOptions& opts,
                                    std::string name,
                                    std::vector<TierSpec> tiers) {
  InstanceConfig config;
  config.name = std::move(name);
  config.data_dir = opts.data_dir;
  config.response_threads = opts.response_threads;
  config.persist_metadata = opts.persist_metadata;
  config.journal_sync = opts.journal_sync;
  config.journal_batch_bytes = opts.journal_batch_bytes;
  config.journal_batch_wait = opts.journal_batch_wait;
  config.track_heat = opts.track_heat;
  config.tiers = std::move(tiers);
  return TieraInstance::create(std::move(config));
}

Rule placement_rule(std::vector<std::string> to) {
  Rule rule;
  rule.name = "placement";
  rule.event = EventDef::on_insert();
  rule.responses.push_back(make_store(Selector::action_object(),
                                      std::move(to)));
  return rule;
}

// Background promotion: reads served by `from` move the object into `to`
// (evicting LRU victims into `from`'s overflow first).
Rule promote_rule(const std::string& from, const std::string& to,
                  const std::string& overflow_for_to) {
  Rule rule;
  rule.name = "promote-" + from;
  rule.event = EventDef::on_action(ActionType::kGet, from).in_background();
  rule.responses.push_back(make_evict_lru(to, overflow_for_to));
  rule.responses.push_back(make_move(Selector::action_object(), {to}));
  return rule;
}

}  // namespace

Result<InstancePtr> make_low_latency_instance(const TemplateOptions& opts,
                                              std::uint64_t mem_bytes,
                                              std::uint64_t ebs_bytes,
                                              Duration writeback_period) {
  auto instance = create_instance(
      opts, "LowLatencyInstance",
      {{"Memcached", "tier1", mem_bytes}, {"EBS", "tier2", ebs_bytes}});
  if (!instance.ok()) return instance;

  Rule place;
  place.name = "store-into-memcached";
  place.event = EventDef::on_insert();
  place.responses.push_back(
      std::make_unique<SetDirtyResponse>(Selector::action_object(), true));
  place.responses.push_back(make_store(Selector::action_object(), {"tier1"}));
  if (writeback_period <= Duration::zero()) {
    // Degenerate write-back interval: write through synchronously.
    place.responses.push_back(
        make_copy(Selector::action_object(), {"tier2"}));
  }
  (*instance)->add_rule(std::move(place));

  if (writeback_period > Duration::zero()) {
    Rule writeback;
    writeback.name = "write-back";
    writeback.event = EventDef::on_timer(writeback_period);
    writeback.responses.push_back(
        make_copy(Selector::in_tier("tier1", /*dirty=*/true), {"tier2"}));
    (*instance)->add_rule(std::move(writeback));
  }
  return instance;
}

Result<InstancePtr> make_slo_autoscale_instance(const TemplateOptions& opts,
                                                std::uint64_t mem_bytes,
                                                std::uint64_t ebs_bytes,
                                                Duration writeback_period,
                                                double target_ms) {
  auto instance = create_instance(
      opts, "SloAutoscaleInstance",
      {{"Memcached", "tier1", mem_bytes}, {"EBS", "tier2", ebs_bytes}});
  if (!instance.ok()) return instance;

  SloSpec slo;
  slo.name = "get_p99";
  slo.signal = SloSignal::kGetP99;
  slo.target_ms = target_ms;
  TIERA_RETURN_IF_ERROR((*instance)->add_slo(slo));

  (*instance)->add_rule(placement_rule({"tier1"}));

  Rule writeback;
  writeback.name = "write-back";
  writeback.event = EventDef::on_timer(writeback_period);
  writeback.responses.push_back(
      make_copy(Selector::in_tier("tier1", /*dirty=*/true), {"tier2"}));
  (*instance)->add_rule(std::move(writeback));

  // While get_p99 is out of budget: make room in the fast tier and pull the
  // working set up out of EBS. Fires once per violation edge (re-arms on
  // recovery), so a persistent breach keeps escalating capacity.
  Rule autoscale;
  autoscale.name = "slo-autoscale";
  autoscale.event = EventDef::on_slo("get_p99").in_background();
  autoscale.responses.push_back(make_grow("tier1", 100.0));
  autoscale.responses.push_back(make_copy(Selector::in_tier("tier2"),
                                          {"tier1"}));
  (*instance)->add_rule(std::move(autoscale));
  return instance;
}

Result<InstancePtr> make_persistent_instance(const TemplateOptions& opts,
                                             std::uint64_t mem_bytes,
                                             std::uint64_t ebs_bytes,
                                             std::uint64_t s3_bytes) {
  auto instance = create_instance(opts, "PersistentInstance",
                                  {{"Memcached", "tier1", mem_bytes},
                                   {"EBS", "tier2", ebs_bytes},
                                   {"S3", "tier3", s3_bytes}});
  if (!instance.ok()) return instance;

  (*instance)->add_rule(placement_rule({"tier1"}));

  Rule write_through;
  write_through.name = "write-through";
  write_through.event = EventDef::on_insert("tier1");
  write_through.responses.push_back(
      make_copy(Selector::action_object(), {"tier2"}));
  (*instance)->add_rule(std::move(write_through));

  Rule backup;
  backup.name = "backup-to-s3";
  backup.event =
      EventDef::on_threshold("tier2", TierAttribute::kFillFraction, 0.5)
          .in_background();
  backup.responses.push_back(
      make_copy(Selector::in_tier("tier2"), {"tier3"}, 40.0 * 1024));
  (*instance)->add_rule(std::move(backup));
  return instance;
}

Result<InstancePtr> make_growing_instance(const TemplateOptions& opts,
                                          std::uint64_t mem_bytes,
                                          std::uint64_t ebs_bytes,
                                          Duration writeback_period,
                                          Duration provisioning_delay,
                                          double remap_fraction) {
  auto instance = create_instance(
      opts, "GrowingInstance",
      {{"Memcached", "tier1", mem_bytes}, {"EBS", "tier2", ebs_bytes}});
  if (!instance.ok()) return instance;

  (*instance)->add_rule(placement_rule({"tier1"}));

  Rule writeback;
  writeback.name = "write-back";
  writeback.event = EventDef::on_timer(writeback_period);
  writeback.responses.push_back(
      make_copy(Selector::in_tier("tier1", /*dirty=*/true), {"tier2"}));
  (*instance)->add_rule(std::move(writeback));

  (*instance)->add_rule(promote_rule("tier2", "tier1", "tier2"));

  Rule grow;
  grow.name = "grow-at-75";
  grow.event =
      EventDef::on_threshold("tier1", TierAttribute::kFillFraction, 0.75)
          .in_background();
  grow.responses.push_back(
      make_grow("tier1", 100.0, provisioning_delay, remap_fraction));
  (*instance)->add_rule(std::move(grow));
  return instance;
}

Result<InstancePtr> make_memcached_replicated_instance(
    const TemplateOptions& opts, std::uint64_t mem_bytes_per_az) {
  auto instance =
      create_instance(opts, "MemcachedReplicated",
                      {{"Memcached", "tier1", mem_bytes_per_az},
                       {"Memcached_Remote", "tier2", mem_bytes_per_az}});
  if (!instance.ok()) return instance;
  // Written to both tiers before being acknowledged; reads prefer tier1
  // (the same-AZ replica) by tier order.
  (*instance)->add_rule(placement_rule({"tier1", "tier2"}));
  return instance;
}

Result<InstancePtr> make_memcached_ebs_instance(const TemplateOptions& opts,
                                                std::uint64_t mem_bytes,
                                                std::uint64_t ebs_bytes) {
  auto instance = create_instance(
      opts, "MemcachedEBS",
      {{"Memcached", "tier1", mem_bytes}, {"EBS", "tier2", ebs_bytes}});
  if (!instance.ok()) return instance;
  (*instance)->add_rule(placement_rule({"tier1", "tier2"}));
  return instance;
}

Result<InstancePtr> make_memcached_s3_instance(const TemplateOptions& opts,
                                               std::uint64_t mem_bytes,
                                               std::uint64_t s3_bytes,
                                               bool dedup) {
  auto instance = create_instance(
      opts, "MemcachedS3",
      {{"Memcached", "tier1", mem_bytes}, {"S3", "tier2", s3_bytes}});
  if (!instance.ok()) return instance;

  Rule place;
  place.name = dedup ? "placement-dedup-lru" : "placement-lru";
  place.event = EventDef::on_insert();
  place.responses.push_back(make_evict_lru("tier1", "tier2"));
  if (dedup) {
    place.responses.push_back(
        make_store_once(Selector::action_object(), {"tier1"}));
  } else {
    place.responses.push_back(
        make_store(Selector::action_object(), {"tier1"}));
  }
  (*instance)->add_rule(std::move(place));

  // Durability: everything also lands in S3 before the PUT acknowledges
  // (the Memcached cache is volatile, so S3 is the instance's only durable
  // copy — this synchronous write is what the cost instance trades
  // performance for, Fig. 9).
  Rule persist;
  persist.name = "persist-to-s3";
  persist.event = EventDef::on_insert("tier1");
  if (dedup) {
    persist.responses.push_back(
        make_store_once(Selector::action_object(), {"tier2"}));
  } else {
    persist.responses.push_back(
        make_copy(Selector::action_object(), {"tier2"}));
  }
  (*instance)->add_rule(std::move(persist));

  // Reads that had to go to S3 warm the Memcached cache.
  Rule promote;
  promote.name = "promote-from-s3";
  promote.event =
      EventDef::on_action(ActionType::kGet, "tier2").in_background();
  promote.responses.push_back(make_evict_lru("tier1", "tier2"));
  promote.responses.push_back(make_copy(Selector::action_object(), {"tier1"}));
  (*instance)->add_rule(std::move(promote));
  return instance;
}

Result<InstancePtr> make_tiered_lru_instance(const TemplateOptions& opts,
                                             std::uint64_t dataset_bytes,
                                             double mem_fraction,
                                             double ebs_fraction,
                                             double s3_fraction) {
  const auto size_of = [&](double fraction) {
    return static_cast<std::uint64_t>(static_cast<double>(dataset_bytes) *
                                      fraction);
  };
  auto instance = create_instance(opts, "TieredLRU",
                                  {{"Memcached", "tier1", size_of(mem_fraction)},
                                   {"EBS", "tier2", size_of(ebs_fraction)},
                                   // Headroom: S3 is the overflow of last
                                   // resort and must absorb shifts.
                                   {"S3", "tier3", size_of(s3_fraction * 4)}});
  if (!instance.ok()) return instance;

  // Exclusive chain: insert into Memcached, demote LRU victims down the
  // chain (making room at each level first).
  Rule place;
  place.name = "placement-lru-chain";
  place.event = EventDef::on_insert();
  {
    ResponseList demote_mem_body;
    demote_mem_body.push_back(make_evict_lru("tier2", "tier3"));
    demote_mem_body.push_back(
        make_move(Selector::oldest_in("tier1"), {"tier2"}));
    place.responses.push_back(std::make_unique<ConditionalResponse>(
        Condition::tier_cannot_fit("tier1"), std::move(demote_mem_body)));
  }
  place.responses.push_back(make_store(Selector::action_object(), {"tier1"}));
  (*instance)->add_rule(std::move(place));

  // Promote on read from the colder tiers (exclusive: move, not copy).
  for (const std::string from : {"tier2", "tier3"}) {
    Rule promote;
    promote.name = "promote-" + from;
    promote.event =
        EventDef::on_action(ActionType::kGet, from).in_background();
    ResponseList demote_body;
    demote_body.push_back(make_evict_lru("tier2", "tier3"));
    demote_body.push_back(make_move(Selector::oldest_in("tier1"), {"tier2"}));
    promote.responses.push_back(std::make_unique<ConditionalResponse>(
        Condition::tier_cannot_fit("tier1"), std::move(demote_body)));
    promote.responses.push_back(
        make_move(Selector::action_object(), {"tier1"}));
    (*instance)->add_rule(std::move(promote));
  }
  return instance;
}

Result<InstancePtr> make_high_durability_instance(const TemplateOptions& opts,
                                                  std::uint64_t bytes_per_tier,
                                                  Duration s3_push_period) {
  auto instance = create_instance(opts, "HighDurability",
                                  {{"Memcached", "tier1", bytes_per_tier},
                                   {"EBS", "tier2", bytes_per_tier},
                                   {"S3", "tier3", bytes_per_tier}});
  if (!instance.ok()) return instance;

  // Immediately back up to EBS: both writes gate the acknowledgement.
  Rule place;
  place.name = "store-and-backup";
  place.event = EventDef::on_insert();
  place.responses.push_back(
      make_store(Selector::action_object(), {"tier1", "tier2"}));
  (*instance)->add_rule(std::move(place));

  Rule push;
  push.name = "push-to-s3";
  push.event = EventDef::on_timer(s3_push_period);
  push.responses.push_back(make_copy(Selector::in_tier("tier2"), {"tier3"}));
  (*instance)->add_rule(std::move(push));
  return instance;
}

Result<InstancePtr> make_low_durability_instance(const TemplateOptions& opts,
                                                 std::uint64_t mem_bytes,
                                                 std::uint64_t s3_bytes,
                                                 Duration s3_push_period) {
  auto instance = create_instance(
      opts, "LowDurability",
      {{"Memcached", "tier1", mem_bytes}, {"S3", "tier2", s3_bytes}});
  if (!instance.ok()) return instance;

  Rule place;
  place.name = "store-memcached-only";
  place.event = EventDef::on_insert();
  place.responses.push_back(
      std::make_unique<SetDirtyResponse>(Selector::action_object(), true));
  place.responses.push_back(make_store(Selector::action_object(), {"tier1"}));
  (*instance)->add_rule(std::move(place));

  Rule push;
  push.name = "backup-to-s3";
  push.event = EventDef::on_timer(s3_push_period);
  push.responses.push_back(
      make_copy(Selector::in_tier("tier1", /*dirty=*/true), {"tier2"}));
  (*instance)->add_rule(std::move(push));
  return instance;
}

Result<InstancePtr> make_replicated_ebs_instance(
    const TemplateOptions& opts, std::uint64_t bytes_per_volume,
    bool replicate, std::uint64_t bytes_between_syncs, double bandwidth_bps) {
  auto instance = create_instance(
      opts, "ReplicatedEBS",
      {{"EBS", "tier1", bytes_per_volume}, {"EBS", "tier2", bytes_per_volume}});
  if (!instance.ok()) return instance;

  (*instance)->add_rule(placement_rule({"tier1"}));

  if (replicate) {
    Rule sync;
    sync.name = "replicate-volume";
    sync.event =
        EventDef::on_threshold("tier1", TierAttribute::kUsedBytes,
                               static_cast<double>(bytes_between_syncs),
                               /*sliding=*/true)
            .in_background();
    sync.responses.push_back(
        make_copy(Selector::in_tier("tier1"), {"tier2"}, bandwidth_bps));
    (*instance)->add_rule(std::move(sync));
  }
  return instance;
}

Status reconfigure_for_ebs_failure(TieraInstance& instance,
                                   std::uint64_t ephemeral_bytes,
                                   std::uint64_t s3_bytes,
                                   Duration s3_backup_period) {
  // New tiers first, then swap the policy, then drop the failed tier — the
  // instance keeps serving throughout.
  TIERA_RETURN_IF_ERROR(
      instance.add_tier({"Ephemeral", "tier3", ephemeral_bytes}));
  TIERA_RETURN_IF_ERROR(instance.add_tier({"S3", "tier4", s3_bytes}));

  instance.clear_rules();

  Rule place;
  place.name = "store-memcached-ephemeral";
  place.event = EventDef::on_insert();
  place.responses.push_back(
      make_store(Selector::action_object(), {"tier1", "tier3"}));
  instance.add_rule(std::move(place));

  Rule backup;
  backup.name = "ephemeral-to-s3";
  backup.event = EventDef::on_timer(s3_backup_period);
  backup.responses.push_back(
      make_copy(Selector::in_tier("tier3", /*dirty=*/true), {"tier4"}));
  instance.add_rule(std::move(backup));

  return instance.remove_tier("tier2");
}

}  // namespace tiera
