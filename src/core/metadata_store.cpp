#include "core/metadata_store.h"

#include <array>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/stage.h"

namespace tiera {

namespace {
constexpr std::string_view kDbPrefix = "obj/";
}

MetadataStore::MetadataStore(std::unique_ptr<MetaDb> db)
    : db_(std::move(db)) {}

MetadataStore::Shard& MetadataStore::shard_for(std::string_view id) {
  return shards_[fnv1a64(id) % kShards];
}

const MetadataStore::Shard& MetadataStore::shard_for(
    std::string_view id) const {
  return shards_[fnv1a64(id) % kShards];
}

Status MetadataStore::recover() {
  if (!db_) return Status::Ok();
  Status status = Status::Ok();
  db_->scan_prefix(kDbPrefix, [&](std::string_view key, ByteView value) {
    (void)key;
    Result<ObjectMeta> meta = ObjectMeta::decode(value);
    if (!meta.ok()) {
      status = meta.status();
      return false;
    }
    Shard& shard = shard_for(meta->id);
    {
      std::lock_guard lock(shard.mu);
      shard.map[meta->id] = *meta;
    }
    // Rebuild recency and content indexes (ordering by last_access is
    // approximated by insertion order of the scan; good enough after a
    // restart, the lists re-sort themselves with use).
    for (const auto& tier : meta->locations) {
      touch_in_tier(tier, meta->id);
    }
    if (!meta->content_hash.empty()) {
      add_content_ref(meta->content_hash, meta->id);
    }
    return true;
  });
  return status;
}

Status MetadataStore::persist(const ObjectMeta& meta) {
  if (!db_) return Status::Ok();
  return db_->put(std::string(kDbPrefix) + meta.id, as_view(meta.encode()));
}

Status MetadataStore::unpersist(std::string_view id) {
  if (!db_) return Status::Ok();
  Status s = db_->erase(std::string(kDbPrefix) + std::string(id));
  return s.is_not_found() ? Status::Ok() : s;
}

std::optional<ObjectMeta> MetadataStore::get(std::string_view id) const {
  StageTimer stage(Stage::kMetadataLookup);
  const Shard& shard = shard_for(id);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(std::string(id));
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

bool MetadataStore::contains(std::string_view id) const {
  StageTimer stage(Stage::kMetadataLookup);
  const Shard& shard = shard_for(id);
  std::lock_guard lock(shard.mu);
  return shard.map.count(std::string(id)) > 0;
}

Status MetadataStore::put(const ObjectMeta& meta) {
  StageTimer stage(Stage::kMetadataLookup);
  Shard& shard = shard_for(meta.id);
  {
    std::lock_guard lock(shard.mu);
    shard.map[meta.id] = meta;
  }
  return persist(meta);
}

Status MetadataStore::update(std::string_view id,
                             const std::function<bool(ObjectMeta&)>& fn) {
  StageTimer stage(Stage::kMetadataLookup);
  Shard& shard = shard_for(id);
  ObjectMeta snapshot;
  {
    std::lock_guard lock(shard.mu);
    auto it = shard.map.find(std::string(id));
    if (it == shard.map.end()) return Status::NotFound("object metadata");
    if (!fn(it->second)) return Status::Ok();
    snapshot = it->second;
  }
  return persist(snapshot);
}

Status MetadataStore::erase(std::string_view id) {
  StageTimer stage(Stage::kMetadataLookup);
  Shard& shard = shard_for(id);
  {
    std::lock_guard lock(shard.mu);
    if (shard.map.erase(std::string(id)) == 0) {
      return Status::NotFound("object metadata");
    }
  }
  return unpersist(id);
}

std::size_t MetadataStore::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

void MetadataStore::for_each(
    const std::function<void(const ObjectMeta&)>& fn) const {
  StageTimer stage(Stage::kMetadataLookup);
  for (const auto& shard : shards_) {
    std::vector<ObjectMeta> snapshot;
    {
      std::lock_guard lock(shard.mu);
      snapshot.reserve(shard.map.size());
      for (const auto& [id, meta] : shard.map) snapshot.push_back(meta);
    }
    for (const auto& meta : snapshot) fn(meta);
  }
}

std::vector<std::string> MetadataStore::select(
    const std::function<bool(const ObjectMeta&)>& pred) const {
  std::vector<std::string> ids;
  for_each([&](const ObjectMeta& meta) {
    if (pred(meta)) ids.push_back(meta.id);
  });
  return ids;
}

void MetadataStore::touch_in_tier(std::string_view tier, std::string_view id) {
  StageTimer stage(Stage::kMetadataLookup);
  std::lock_guard lock(lru_mu_);
  TierLru& lru = tier_lru_[std::string(tier)];
  auto it = lru.pos.find(std::string(id));
  if (it != lru.pos.end()) {
    lru.order.splice(lru.order.begin(), lru.order, it->second);
  } else {
    lru.order.emplace_front(id);
    lru.pos[std::string(id)] = lru.order.begin();
  }
}

void MetadataStore::remove_from_tier(std::string_view tier,
                                     std::string_view id) {
  StageTimer stage(Stage::kMetadataLookup);
  std::lock_guard lock(lru_mu_);
  auto lit = tier_lru_.find(std::string(tier));
  if (lit == tier_lru_.end()) return;
  auto it = lit->second.pos.find(std::string(id));
  if (it == lit->second.pos.end()) return;
  lit->second.order.erase(it->second);
  lit->second.pos.erase(it);
}

void MetadataStore::drop_tier(std::string_view tier) {
  std::lock_guard lock(lru_mu_);
  tier_lru_.erase(std::string(tier));
}

std::optional<std::string> MetadataStore::oldest_in_tier(
    std::string_view tier, std::string_view excluding) const {
  std::lock_guard lock(lru_mu_);
  auto it = tier_lru_.find(std::string(tier));
  if (it == tier_lru_.end()) return std::nullopt;
  for (auto rit = it->second.order.rbegin(); rit != it->second.order.rend();
       ++rit) {
    if (*rit != excluding) return *rit;
  }
  return std::nullopt;
}

std::optional<std::string> MetadataStore::newest_in_tier(
    std::string_view tier, std::string_view excluding) const {
  std::lock_guard lock(lru_mu_);
  auto it = tier_lru_.find(std::string(tier));
  if (it == tier_lru_.end()) return std::nullopt;
  for (const auto& id : it->second.order) {
    if (id != excluding) return id;
  }
  return std::nullopt;
}

std::size_t MetadataStore::count_in_tier(std::string_view tier) const {
  std::lock_guard lock(lru_mu_);
  auto it = tier_lru_.find(std::string(tier));
  return it == tier_lru_.end() ? 0 : it->second.order.size();
}

bool MetadataStore::add_content_ref(std::string_view hash,
                                    std::string_view id) {
  std::lock_guard lock(content_mu_);
  auto& refs = content_refs_[std::string(hash)];
  const bool first = refs.empty();
  refs.insert(std::string(id));
  return first;
}

bool MetadataStore::drop_content_ref(std::string_view hash,
                                     std::string_view id) {
  std::lock_guard lock(content_mu_);
  auto it = content_refs_.find(std::string(hash));
  if (it == content_refs_.end()) return false;
  it->second.erase(std::string(id));
  if (it->second.empty()) {
    content_refs_.erase(it);
    return true;
  }
  return false;
}

std::size_t MetadataStore::content_ref_count(std::string_view hash) const {
  std::lock_guard lock(content_mu_);
  auto it = content_refs_.find(std::string(hash));
  return it == content_refs_.end() ? 0 : it->second.size();
}

std::vector<std::string> MetadataStore::content_ref_ids(
    std::string_view hash) const {
  std::lock_guard lock(content_mu_);
  auto it = content_refs_.find(std::string(hash));
  if (it == content_refs_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

}  // namespace tiera
