#include "core/admission.h"

#include <algorithm>
#include <cstdio>

#include "common/hash.h"
#include "obs/metrics.h"

namespace tiera {

std::string_view to_string(RequestPriority p) {
  switch (p) {
    case RequestPriority::kAdmin: return "admin";
    case RequestPriority::kGet: return "get";
    case RequestPriority::kPut: return "put";
    case RequestPriority::kBackground: return "background";
  }
  return "unknown";
}

namespace {
// Shared bucket for tenants beyond max_tenants; keeps the map bounded when
// a client floods distinct tenant ids.
constexpr std::string_view kOverflowTenant = "~overflow";
}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config,
                                         MetricsRegistry& registry)
    : config_(config),
      wall_per_model_(time_scale() > 0.0 ? time_scale() : 1.0),
      registry_(registry) {
  // Materialize the families up front so scrapes see zeros, not absence.
  registry_.counter("tiera_admission_admitted_total");
  registry_.counter("tiera_admission_shed_total");
  registry_.counter("tiera_admission_throttled_total");
  registry_.gauge("tiera_admission_shed_level").set(kShedNone);
}

AdmissionController::Stripe& AdmissionController::stripe_for(
    std::string_view tenant) {
  return stripes_[fnv1a64(tenant) % kStripes];
}

int AdmissionController::target_level(double pressure) {
  if (pressure >= 2.0) return kShedReads;
  if (pressure >= 1.0) return kShedWrites;
  if (pressure >= 0.75) return kShedBackground;
  return kShedNone;
}

void AdmissionController::update_signals(double burn_short,
                                         double inflight_fraction) {
  update_signals(burn_short, inflight_fraction, now());
}

void AdmissionController::update_signals(double burn_short,
                                         double inflight_fraction,
                                         TimePoint now_tp) {
  burn_short_.store(burn_short, std::memory_order_relaxed);
  inflight_fraction_.store(inflight_fraction, std::memory_order_relaxed);

  const double pressure =
      std::max(config_.shed_burn > 0 ? burn_short / config_.shed_burn : 0.0,
               config_.shed_inflight > 0
                   ? inflight_fraction / config_.shed_inflight
                   : 0.0);
  const int target = target_level(pressure);

  std::lock_guard<std::mutex> lock(signal_mu_);
  int level = shed_level_.load(std::memory_order_relaxed);
  if (target < level) {
    // Escalate immediately: overload is now, hysteresis only delays relief.
    level = target;
    calm_valid_ = false;
  } else if (level < kShedNone) {
    // De-escalation path: require both signals calm for resume_hold before
    // relaxing, one rung at a time, so a spiky burn signal cannot flap the
    // shedder between levels.
    const bool calm = burn_short <= config_.resume_burn &&
                      inflight_fraction <= config_.resume_inflight;
    if (!calm) {
      calm_valid_ = false;
    } else if (!calm_valid_) {
      calm_since_ = now_tp;
      calm_valid_ = true;
    } else {
      const auto hold = std::chrono::duration_cast<Duration>(
          std::chrono::duration<double>(to_seconds(config_.resume_hold) *
                                        wall_per_model_));
      if (now_tp - calm_since_ >= hold) {
        level += 1;
        calm_since_ = now_tp;  // next rung needs its own hold period
      }
    }
  }
  shed_level_.store(level, std::memory_order_relaxed);
  registry_.gauge("tiera_admission_shed_level").set(level);
}

std::string_view AdmissionController::resolve_tenant(std::string_view tenant) {
  if (tenant.empty()) tenant = "default";
  {
    Stripe& stripe = stripe_for(tenant);
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.tenants.count(std::string(tenant)) != 0) return tenant;
    if (tenant_count_.load(std::memory_order_relaxed) < config_.max_tenants) {
      stripe.tenants.emplace(std::string(tenant), TenantState{});
      tenant_count_.fetch_add(1, std::memory_order_relaxed);
      return tenant;
    }
  }
  // Map is full: this tenant shares the overflow bucket (and its metric
  // series), so a tenant-id flood cannot grow memory unboundedly. Created
  // lazily; the two stripe locks are never held together.
  Stripe& stripe = stripe_for(kOverflowTenant);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.tenants.count(std::string(kOverflowTenant)) == 0) {
    stripe.tenants.emplace(std::string(kOverflowTenant), TenantState{});
    tenant_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return kOverflowTenant;
}

bool AdmissionController::take_token(std::string_view tenant,
                                     TimePoint now_tp) {
  Stripe& stripe = stripe_for(tenant);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.tenants.find(std::string(tenant));
  if (it == stripe.tenants.end()) return true;  // resolve_tenant creates it
  TenantState& st = it->second;
  const double burst = config_.tenant_rate * config_.tenant_burst_s;
  if (!st.primed) {
    st.tokens = burst;
    st.last_refill = now_tp;
    st.primed = true;
  } else {
    // Refill in modelled time: wall elapsed / wall_per_model_ modelled
    // seconds have passed, each worth tenant_rate tokens.
    const double wall_s = to_seconds(now_tp - st.last_refill);
    if (wall_s > 0) {
      st.tokens = std::min(
          burst, st.tokens + config_.tenant_rate * (wall_s / wall_per_model_));
      st.last_refill = now_tp;
    }
  }
  if (st.tokens < 1.0) return false;
  st.tokens -= 1.0;
  return true;
}

void AdmissionController::count(std::string_view tenant, AdmitResult result) {
  const char* name = nullptr;
  switch (result) {
    case AdmitResult::kAdmitted:
      admitted_total_.fetch_add(1, std::memory_order_relaxed);
      name = "tiera_admission_admitted_total";
      break;
    case AdmitResult::kShed:
      shed_total_.fetch_add(1, std::memory_order_relaxed);
      name = "tiera_admission_shed_total";
      break;
    case AdmitResult::kThrottled:
      throttled_total_.fetch_add(1, std::memory_order_relaxed);
      name = "tiera_admission_throttled_total";
      break;
  }
  registry_.counter(name).inc();
  registry_.counter(name, {{"tenant", std::string(tenant)}}).inc();

  Stripe& stripe = stripe_for(tenant);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.tenants.find(std::string(tenant));
  if (it == stripe.tenants.end()) return;  // resolve_tenant creates it
  switch (result) {
    case AdmitResult::kAdmitted: it->second.admitted++; break;
    case AdmitResult::kShed: it->second.shed++; break;
    case AdmitResult::kThrottled: it->second.throttled++; break;
  }
}

Status AdmissionController::admit(std::string_view tenant,
                                  RequestPriority priority) {
  return admit(tenant, priority, now());
}

Status AdmissionController::admit(std::string_view tenant,
                                  RequestPriority priority,
                                  TimePoint now_tp) {
  if (!config_.enabled) return Status::Ok();
  tenant = resolve_tenant(tenant);

  // Admin bypasses both the ladder and the buckets: when the server is
  // shedding, `top`/stats are exactly the requests that must still work.
  if (priority == RequestPriority::kAdmin) {
    count(tenant, AdmitResult::kAdmitted);
    return Status::Ok();
  }

  const int level = shed_level_.load(std::memory_order_relaxed);
  if (static_cast<int>(priority) >= level) {
    count(tenant, AdmitResult::kShed);
    char msg[96];
    std::snprintf(msg, sizeof(msg), "shedding %s traffic (shed level %d)",
                  std::string(to_string(priority)).c_str(), level);
    return Status::Overloaded(msg);
  }

  if (config_.tenant_rate > 0 && !take_token(tenant, now_tp)) {
    count(tenant, AdmitResult::kThrottled);
    return Status::Overloaded("tenant '" + std::string(tenant) +
                              "' over rate limit");
  }

  count(tenant, AdmitResult::kAdmitted);
  return Status::Ok();
}

AdmissionController::Snapshot AdmissionController::snapshot() const {
  Snapshot snap;
  snap.enabled = config_.enabled;
  snap.shed_level = shed_level_.load(std::memory_order_relaxed);
  snap.burn_short = burn_short_.load(std::memory_order_relaxed);
  snap.inflight_fraction = inflight_fraction_.load(std::memory_order_relaxed);
  snap.admitted = admitted_total_.load(std::memory_order_relaxed);
  snap.shed = shed_total_.load(std::memory_order_relaxed);
  snap.throttled = throttled_total_.load(std::memory_order_relaxed);
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [tenant, st] : stripe.tenants) {
      TenantRow row;
      row.tenant = tenant;
      row.admitted = st.admitted;
      row.shed = st.shed;
      row.throttled = st.throttled;
      snap.tenants.push_back(std::move(row));
    }
  }
  std::sort(snap.tenants.begin(), snap.tenants.end(),
            [](const TenantRow& a, const TenantRow& b) {
              return a.tenant < b.tenant;
            });
  return snap;
}

}  // namespace tiera
