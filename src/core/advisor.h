// Instance advisor: from abstract application requirements to an instance
// configuration.
//
// The paper's §6: "we plan to explore techniques for generating appropriate
// instance configuration and data management policies using abstract
// application requirements and workload characteristics, e.g. 99 percentile
// read latency < 10 ms with read requests following a uniform distribution".
//
// The advisor searches tier mixes (Memcached / EBS / S3 capacity fractions
// of the working set) against an analytic model of the tier latency and
// pricing tables, and returns the cheapest mix that meets the latency
// requirement — together with a ready-to-run InstanceConfig and the LRU
// policy that realises it (the Table 2 template).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/templates.h"

namespace tiera {

struct Requirements {
  // Upper bound on the requested read-latency percentile, in modelled ms.
  double read_latency_ms = 10.0;
  // Which percentile the bound applies to (0.5, 0.95, 0.99, or 1.0 ≈ mean
  // of the miss path; the paper's example uses p99).
  double percentile = 0.99;
  // Workload characteristics.
  std::uint64_t working_set_bytes = 1 << 30;
  std::size_t object_bytes = 4096;
  enum class Distribution { kUniform, kZipfian };
  Distribution distribution = Distribution::kUniform;
  double zipf_theta = 0.99;
  // Optional monthly budget; plans above it are rejected.
  std::optional<double> budget_dollars;
};

struct TierPlanEntry {
  std::string service;   // "Memcached", "EBS", "S3"
  double fraction;       // of the working set provisioned in this tier
  double hit_fraction;   // predicted share of reads served here
  double latency_ms;     // modelled per-read latency of this tier
};

struct InstancePlan {
  std::vector<TierPlanEntry> tiers;
  double predicted_latency_ms = 0;   // at the requested percentile
  double predicted_mean_ms = 0;
  double monthly_cost = 0;
  std::string summary() const;

  // Materialise the plan as a running instance (exclusive LRU chain with
  // promote-on-read, sized by the plan's fractions).
  Result<InstancePtr> instantiate(const TemplateOptions& opts,
                                  std::uint64_t working_set_bytes) const;
};

// Returns the cheapest plan meeting the requirements, or kInvalidArgument
// when no mix of the known services can (e.g. sub-millisecond p99 with a
// budget below the required Memcached capacity).
Result<InstancePlan> advise(const Requirements& requirements);

// Predicted fraction of reads that land in the hottest `capacity_fraction`
// of a `key_count`-key keyspace (the cache-hit model the advisor uses;
// exposed for tests). For zipf this is the generalized-harmonic mass ratio
// H_theta(x*N) / H_theta(N).
double predicted_hit_fraction(Requirements::Distribution distribution,
                              double zipf_theta, double capacity_fraction,
                              double key_count = 1e6);

}  // namespace tiera
