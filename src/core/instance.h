// TieraInstance: an encapsulated multi-tiered storage instance.
//
// This is the paper's central abstraction: a set of storage tiers plus a
// policy (event : response rules) behind a simple PUT/GET application
// interface (§2). The class also exposes the "engine" operations that
// responses are built from (store, storeOnce, copy, move, delete, encrypt,
// compress, grow, ...), so applications and policies share one data path and
// metadata stays consistent with tier contents.
//
// Tiers and rules can be added, removed, or replaced while the instance is
// serving requests — the dynamic reconfiguration the paper demonstrates in
// the failover experiment (Fig. 17).
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/crypto.h"
#include "common/histogram.h"
#include "common/rate_limiter.h"
#include "common/thread_pool.h"
#include "core/control.h"
#include "obs/pool_metrics.h"
#include "core/metadata_store.h"
#include "core/policy.h"
#include "obs/cost_meter.h"
#include "obs/heat.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "store/cost_model.h"
#include "store/tier_factory.h"

namespace tiera {

class AdmissionController;

struct InstanceConfig {
  std::string name = "tiera";
  // Root for file-backed tiers and (optionally) persisted metadata.
  std::string data_dir = "/tmp/tiera-instance";
  std::vector<TierSpec> tiers;
  // Control-layer pool servicing background events and responses (§3).
  std::size_t response_threads = 4;
  // Persist object metadata through metadb (BerkeleyDB's role in the paper).
  bool persist_metadata = false;
  // fsync the metadata journal on every acknowledged write. With group
  // commit, concurrent writers staging into the same batch share one fsync.
  bool journal_sync = false;
  // Group-commit batch bound: flush once this many bytes are staged...
  std::uint64_t journal_batch_bytes = 256 << 10;
  // ...or once the batch leader has lingered this long for followers
  // (only meaningful when journal_sync is on).
  Duration journal_batch_wait = std::chrono::microseconds(200);
  // When no placement rule stores an inserted object, fall back to the first
  // tier (the paper's specs always include a placement rule; this keeps
  // partially configured instances usable).
  bool default_placement = true;
  // Granularity of the timer-event thread, in modelled time. The paper's
  // prototype supports seconds granularity; we default finer so scaled
  // benches stay accurate.
  Duration timer_tick = from_ms(50);
  // Request tracing: keep a ring of the last `trace_capacity` PUT/GET/DELETE
  // spans (op, object, tier, duration, outcome). Opt-in: recording costs a
  // slot mutex and two copies per request, which embedded benches don't want
  // to pay. tierad enables it for every served instance.
  bool trace_requests = false;
  // Ring size; the TIERA_TRACE_CAPACITY environment variable overrides it
  // (overflow shows up in `tiera_trace_dropped_total`).
  std::size_t trace_capacity = 512;
  // Heat & spend telemetry: per-object access-frequency sketches
  // (tiera_heat_*) and the live cost meter (tiera_cost_*,
  // tiera_tier_{read,write}_bytes_total). On by default — the combined
  // hot-path cost is a sketch add plus a few relaxed counter bumps; benches
  // that want the bare data path set this false.
  bool track_heat = true;
  // Heat decay half-life in modelled time (counts halve this often).
  Duration heat_half_life = std::chrono::seconds(60);
  // Sketch/top-K geometry; defaults suit ~100k+ distinct keys per tier.
  HeatOptions heat_options;
};

struct InstanceStats {
  LatencyHistogram put_latency;
  LatencyHistogram get_latency;
  ThroughputMeter ops;
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> removes{0};
  std::atomic<std::uint64_t> get_misses{0};
  std::atomic<std::uint64_t> failures{0};
  // Policy/engine data movement (placement, migration, write-back,
  // eviction): bytes written into tiers and objects mutated while a
  // response ran. Background responses update these through the same engine
  // accounting as foreground ones, so instance totals reconcile with
  // per-tier sums.
  std::atomic<std::uint64_t> policy_bytes{0};
  std::atomic<std::uint64_t> policy_objects{0};
};

class TieraInstance;
using InstancePtr = std::unique_ptr<TieraInstance>;

class TieraInstance {
 public:
  static Result<std::unique_ptr<TieraInstance>> create(InstanceConfig config);
  ~TieraInstance();

  TieraInstance(const TieraInstance&) = delete;
  TieraInstance& operator=(const TieraInstance&) = delete;

  const std::string& name() const { return config_.name; }

  // --- Application interface layer (PUT/GET API) ---------------------------
  Status put(std::string_view id, ByteView data,
             const std::vector<std::string>& tags = {});
  Result<Bytes> get(std::string_view id);
  Status remove(std::string_view id);

  bool contains(std::string_view id) const;
  Result<ObjectMeta> stat(std::string_view id) const;
  Status add_tags(std::string_view id, const std::vector<std::string>& tags);
  std::size_t object_count() const { return meta_.size(); }

  // --- Tier management -------------------------------------------------------
  Status add_tier(const TierSpec& spec);
  // Detach a tier; object metadata forgets it (bytes in other tiers remain).
  Status remove_tier(std::string_view label);
  TierPtr tier(std::string_view label) const;
  std::vector<TierPtr> tiers() const;
  std::vector<std::string> tier_labels() const;

  // --- Policy management -----------------------------------------------------
  std::uint64_t add_rule(Rule rule) { return control_->add_rule(std::move(rule)); }
  Status remove_rule(std::uint64_t rule_id) {
    return control_->remove_rule(rule_id);
  }
  void clear_rules() { control_->clear_rules(); }
  ControlLayer& control() { return *control_; }

  // --- Service-level objectives ----------------------------------------------
  // Declared via `slo get_p99 < 2ms ...` in specs or directly here. The
  // engine measures PUT/GET latency and error rate over sliding windows;
  // the control layer evaluates objectives on its timer tick and fires
  // `slo.<name> == violated` threshold rules on compliance flips.
  Status add_slo(const SloSpec& spec) { return slo_.add(spec); }
  SloEngine& slo() { return slo_; }
  const SloEngine& slo() const { return slo_; }

  // --- Heat & spend telemetry ------------------------------------------------
  // Null when config.track_heat is false. The heat tracker sees every
  // client-facing access (GETs against the serving tier, PUT payloads
  // against every tier they land in); the cost meter accrues storage /
  // request / egress dollars on the control tick and attributes policy
  // movement per rule.
  HeatTracker* heat() { return heat_.get(); }
  const HeatTracker* heat() const { return heat_.get(); }
  CostMeter* cost_meter() { return cost_.get(); }
  const CostMeter* cost_meter() const { return cost_.get(); }
  // Control-tick hook (modelled elapsed time): advances heat decay and
  // accrues spend from current tier occupancy and op-count deltas.
  void tick_observability(Duration modelled_elapsed);

  // --- Engine operations (the verbs of Table 1) ------------------------------
  // These keep metadata and tier contents consistent; responses are thin
  // wrappers over them and applications may call them directly.
  Status engine_store(std::string_view id,
                      std::shared_ptr<const Bytes> payload,
                      const std::vector<std::string>& tier_labels,
                      bool dedup, EventContext* ctx = nullptr);
  Status engine_copy(const std::vector<std::string>& ids,
                     const std::vector<std::string>& dest_tiers,
                     RateLimiter* limiter = nullptr,
                     EventContext* ctx = nullptr);
  Status engine_move(const std::vector<std::string>& ids,
                     const std::vector<std::string>& dest_tiers,
                     const std::vector<std::string>& from_tiers,
                     RateLimiter* limiter = nullptr,
                     EventContext* ctx = nullptr);
  Status engine_delete(const std::vector<std::string>& ids,
                       const std::vector<std::string>& tier_labels,
                       EventContext* ctx = nullptr);
  Status engine_retrieve(const std::vector<std::string>& ids);
  Status engine_encrypt(const std::vector<std::string>& ids,
                        const ChaChaKey& key);
  Status engine_decrypt(const std::vector<std::string>& ids,
                        const ChaChaKey& key);
  Status engine_compress(const std::vector<std::string>& ids);
  Status engine_uncompress(const std::vector<std::string>& ids);
  Status engine_grow(std::string_view tier_label, double percent,
                     Duration provisioning_delay = Duration::zero());
  Status engine_shrink(std::string_view tier_label, double percent);
  Status engine_set_dirty(const std::vector<std::string>& ids, bool dirty);

  // Snapshotting (one of the responses the paper plans beyond Table 1).
  // A snapshot is an immutable copy stored as `<id>@snap/<name>`, tagged
  // "snapshot", placed in `dest_tiers` (or the object's current locations
  // when empty). Snapshots survive overwrites and deletes of the original.
  Status engine_snapshot(const std::vector<std::string>& ids,
                         std::string_view name,
                         const std::vector<std::string>& dest_tiers = {});
  // Overwrites `id` with the content of its snapshot (normal PUT path, so
  // the placement policy runs).
  Status restore_snapshot(std::string_view id, std::string_view name);
  std::vector<std::string> list_snapshots(std::string_view id) const;

  // Key used to transparently decrypt at-rest-encrypted objects on GET.
  void set_encryption_key(const ChaChaKey& key);

  // Consistent-hash remap after a memory-tier resize: a `fraction` of the
  // objects in `tier_label` that also live elsewhere are dropped from that
  // tier (they re-warm via subsequent policy/promotion). Returns the number
  // of invalidated objects. Drives the cache-miss spike of Fig. 16.
  std::size_t remap_invalidate(std::string_view tier_label, double fraction,
                               std::uint64_t seed = 42);

  // --- Introspection ----------------------------------------------------------
  MetadataStore& metadata() { return meta_; }
  const MetadataStore& metadata() const { return meta_; }
  InstanceStats& stats() { return stats_; }
  RequestTracer& tracer() { return tracer_; }
  const RequestTracer& tracer() const { return tracer_; }
  // Live per-tier / per-rule activity tables (the `tiera_cli top` view).
  // `sections` filters which tables print: a comma-separated subset of
  // {header,tiers,slo,rules,pool,heat,cost,admission}; empty renders
  // everything. Unknown section names are ignored.
  std::string render_top(std::string_view sections = {}) const;

  // Lets `top` render the ADMISSION table when a server-side admission
  // controller fronts this instance (net/tiera_service.cpp wires it). The
  // controller must outlive the instance or be cleared with nullptr first.
  void set_admission_view(const AdmissionController* admission) {
    admission_view_.store(admission, std::memory_order_release);
  }
  double monthly_cost(double observed_seconds = 0) const;
  std::vector<TierCost> cost_breakdown(double observed_seconds = 0) const;

 private:
  explicit TieraInstance(InstanceConfig config);
  Status init();

  struct TierEntry {
    std::string label;
    TierPtr tier;
  };

  // Tier lookup helpers (shared lock).
  Result<TierPtr> find_tier(std::string_view label) const;
  std::vector<TierEntry> tier_snapshot() const;

  // Shared implementation of copy/move for one object, under its stripe.
  Status replicate_locked(const std::string& id,
                          const std::vector<std::string>& dest_tiers,
                          const std::vector<std::string>& from_tiers,
                          bool remove_sources, EventContext* ctx);

  // True when another object still references this (dedup'd) content in the
  // given tier, so the bytes must stay although `meta.id` is leaving.
  bool content_needed_in_tier(const ObjectMeta& meta,
                              const std::string& label);

  // Per-tier GET-hit counter (`tiera_instance_tier_hits_total{tier=..}`),
  // cached so the GET path avoids a registry lookup per request.
  Counter& tier_hit_counter(const std::string& tier_label);

  // Reads the at-rest bytes of `meta` from the fastest live location.
  Result<Bytes> read_at_rest(const ObjectMeta& meta, std::string* served_tier);
  // Races `primary` against `secondary` for `key`: the hedge launches after
  // `delay` if the primary has not answered. Returns the winning result, or
  // nullopt when no raced location succeeded; `*next_location` is the index
  // into the location list where a sequential fallback should resume.
  std::optional<Result<Bytes>> read_hedged(const TierEntry& primary,
                                           const TierEntry& secondary,
                                           const std::string& object_id,
                                           const std::string& key,
                                           Duration delay,
                                           std::string* served_tier,
                                           std::size_t* next_location);
  // Rewrites at-rest bytes in every location tier (used by the transform
  // engine ops).
  Status rewrite_at_rest(const ObjectMeta& meta, ByteView bytes);

  // Per-object mutation lock: every engine operation that reads an
  // object's bytes and rewrites tier contents/metadata holds the object's
  // stripe for its whole read-modify-write, so a background migration
  // (promotion, eviction, write-back copy) can never interleave with a
  // foreground overwrite and resurrect stale bytes. Exactly one stripe is
  // ever held at a time (engine ops do not nest under a lock), so the
  // scheme is deadlock-free.
  static constexpr std::size_t kObjectStripes = 256;
  std::mutex& object_lock(std::string_view id) const;

  // Each stripe gets its own cache line: with requests sharded per-core by
  // object id, neighbouring stripes are owned by different cores, and
  // packed mutexes (40 bytes on glibc) would false-share.
  struct alignas(64) PaddedStripe {
    std::mutex mu;
  };

  InstanceConfig config_;
  TierFactory factory_;
  mutable std::array<PaddedStripe, kObjectStripes> object_stripes_;

  mutable std::shared_mutex tiers_mu_;
  std::vector<TierEntry> tiers_;

  MetadataStore meta_;
  std::unique_ptr<ControlLayer> control_;
  InstanceStats stats_;
  SloEngine slo_{config_.name};
  // Server-owned admission controller, observed (not owned) for `top`.
  std::atomic<const AdmissionController*> admission_view_{nullptr};
  RequestTracer tracer_;
  // Heat & spend telemetry (null when config_.track_heat is false).
  std::unique_ptr<HeatTracker> heat_;
  std::unique_ptr<CostMeter> cost_;

  // Hedged reads race two tier GETs on this small reusable pool instead of
  // creating a thread per hedge-eligible read; a losing read occupies a
  // worker only until the inner tier returns. Tasks capture the race state
  // and the tier by shared_ptr, never the instance.
  ThreadPool hedge_pool_{4, "hedge"};
  // Declared after the pool it watches so it is destroyed first.
  PoolMetrics hedge_pool_metrics_{hedge_pool_};

  // End-to-end series in the global registry (`tiera_instance_*`).
  // Pull-model: a registered collector delta-syncs counters from `stats_`
  // and mirrors the per-instance latency histograms at render time, so the
  // request path pays only for `stats_` (which it updated already in the
  // seed). Only delete_latency is pushed directly (stats_ has no source
  // for it).
  struct Metrics {
    Counter* puts;
    Counter* gets;
    Counter* removes;
    Counter* get_misses;
    Counter* failures;
    Counter* policy_bytes;
    Counter* policy_objects;
    LatencyHistogram* put_latency;
    LatencyHistogram* get_latency;
    LatencyHistogram* delete_latency;
  };
  Metrics metrics_;
  // Collector state: last stats_ values already pushed into the registry,
  // plus merge cursors for the histogram mirrors. Only the collector touches
  // these (serialized by the registry's collector lock).
  struct SyncedStats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t removes = 0;
    std::uint64_t get_misses = 0;
    std::uint64_t failures = 0;
    std::uint64_t policy_bytes = 0;
    std::uint64_t policy_objects = 0;
  };
  SyncedStats synced_;
  LatencyHistogram put_latency_cursor_;
  LatencyHistogram get_latency_cursor_;
  std::uint64_t collector_id_ = 0;
  void collect_metrics();
  // Per-served-tier GET hit counters. The read path does a lock-free scan of
  // an immutable snapshot (a handful of tiers at most); a miss swaps in a
  // bigger snapshot under the mutex. Retired snapshots are kept until the
  // instance dies so readers never chase a freed pointer.
  struct HitCounters {
    std::vector<std::pair<std::string, Counter*>> entries;
  };
  std::atomic<const HitCounters*> hit_counters_{nullptr};
  mutable std::mutex hit_counters_mu_;
  std::vector<std::unique_ptr<const HitCounters>> hit_counter_snapshots_;

  mutable std::mutex key_mu_;
  std::optional<ChaChaKey> encryption_key_;
};

}  // namespace tiera
