#include "core/monitor.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace tiera {

StorageMonitor::StorageMonitor(TieraInstance& instance, Options options,
                               std::function<void(TieraInstance&)> on_failure)
    : instance_(instance),
      options_(std::move(options)),
      on_failure_(std::move(on_failure)) {}

StorageMonitor::~StorageMonitor() { stop(); }

void StorageMonitor::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { loop(); });
}

void StorageMonitor::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

bool StorageMonitor::probe() {
  MetricsRegistry::global().counter("tiera_monitor_probes_total").inc();
  const Bytes canary = to_bytes("tiera-monitor-probe");
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    if (instance_.put(options_.canary_id, as_view(canary)).ok()) {
      outage_latched_ = false;
      return true;
    }
  }
  if (!outage_latched_) {
    outage_latched_ = true;
    failures_detected_.fetch_add(1);
    MetricsRegistry::global()
        .counter("tiera_monitor_failures_detected_total")
        .inc();
    TIERA_LOG(kWarn, "monitor") << "storage failure detected on instance '"
                                << instance_.name() << "', reconfiguring";
    if (on_failure_) on_failure_(instance_);
  }
  return false;
}

void StorageMonitor::loop() {
  // Probe on the modelled schedule; poll the running flag at a finer grain
  // so stop() stays responsive under large periods.
  while (running_.load(std::memory_order_relaxed)) {
    const double scale = time_scale();
    const auto wall_period = std::chrono::duration_cast<Duration>(
        options_.probe_period * (scale > 0 ? scale : 1.0));
    const TimePoint deadline = now() + wall_period;
    while (running_.load(std::memory_order_relaxed) && now() < deadline) {
      precise_sleep(std::min<Duration>(from_ms(5), deadline - now()));
    }
    if (!running_.load(std::memory_order_relaxed)) break;
    probe();
  }
}

}  // namespace tiera
