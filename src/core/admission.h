// AdmissionController: the overload front door for the request path.
//
// The paper's instances promise SLOs per workload; nothing in the original
// system defends those SLOs when offered load exceeds capacity — requests
// queue until the reactor's in-flight cap pauses reads and latency
// collapses for everyone. This controller sheds load *before* that happens,
// using two signals that already exist in the tree:
//
//   - the SLO engine's short-window burn rate (obs/slo.h), i.e. "how fast
//     are we consuming error budget right now", and
//   - the reactor's in-flight fraction (in-flight requests over the
//     aggregate per-loop cap), i.e. "how close are we to queue collapse".
//
// Policy, in evaluation order per request:
//
//   1. Priority ladder. Every request carries a RequestPriority
//      (admin > GET > PUT > background). A shed level derived from the
//      pressure signals drops the lowest rungs first: level 3 sheds
//      background work, level 2 additionally sheds PUTs, level 1
//      additionally sheds GETs. Admin traffic (stats/top/spec) is never
//      shed, so operators can always see *why* the server is shedding.
//   2. Per-tenant token buckets. Each tenant (a request-header string,
//      defaulting to "default") refills at `tenant_rate` requests per
//      modelled second with `tenant_burst_s` seconds of burst capacity.
//      A dry bucket throttles that tenant without touching the others.
//      Admin traffic bypasses the buckets too.
//
// Hysteresis: the shed level escalates immediately when pressure rises but
// de-escalates one step at a time, and only after the signals have stayed
// calm for `resume_hold` modelled seconds — so a burn-rate spike cannot
// make the shedder flap open/closed across evaluation ticks.
//
// Concurrency: admit() runs on reactor loop threads; the tenant map is
// striped (16 mutexes) and all signal state is atomic. update_signals()
// runs on one poller thread (net/tiera_service.cpp) or directly in tests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace tiera {

class MetricsRegistry;

// Ordered most- to least-important; the shed ladder drops from the bottom.
enum class RequestPriority : std::uint8_t {
  kAdmin = 0,       // stats/top/spec/admin verbs — never shed
  kGet = 1,         // reads (GET/STAT)
  kPut = 2,         // writes (PUT/REMOVE/tag edits)
  kBackground = 3,  // client-declared background work (scans, backfills)
};

std::string_view to_string(RequestPriority p);

struct AdmissionConfig {
  bool enabled = true;
  // Per-tenant refill rate in requests per *modelled* second; 0 disables
  // the buckets (shedding still applies). Scaled by the global time scale
  // frozen at construction, matching the SLO engine's convention.
  double tenant_rate = 0.0;
  // Bucket capacity expressed as seconds of refill (burst absorbed before
  // throttling kicks in).
  double tenant_burst_s = 2.0;
  // Bound on distinct tenant buckets; beyond it, unknown tenants share one
  // overflow bucket so a tenant-id flood cannot grow memory unboundedly.
  std::size_t max_tenants = 1024;

  // Shedding thresholds. Pressure is
  //   max(burn_short / shed_burn, inflight_fraction / shed_inflight)
  // and maps to a shed level: >= 2.0 sheds GET+PUT+background, >= 1.0
  // sheds PUT+background, >= 0.75 sheds background only.
  double shed_burn = 2.0;       // burn_short that counts as pressure 1.0
  double shed_inflight = 0.75;  // in-flight fraction that counts as 1.0
  // De-escalation: both signals must sit below these for resume_hold
  // modelled seconds before the shed level relaxes by one step.
  double resume_burn = 1.0;
  double resume_inflight = 0.5;
  Duration resume_hold = std::chrono::seconds(2);
};

// Outcome of one admission decision.
enum class AdmitResult : std::uint8_t {
  kAdmitted = 0,
  kShed,       // dropped by the shed ladder (overload)
  kThrottled,  // dropped by the tenant's token bucket
};

class AdmissionController {
 public:
  // Shed levels, stored most-permissive-first: kNone admits everything;
  // each step down sheds one more priority rung. Numeric values double as
  // "lowest priority still admitted" + 1.
  static constexpr int kShedNone = 4;        // admit all
  static constexpr int kShedBackground = 3;  // shed background
  static constexpr int kShedWrites = 2;      // shed background + PUT
  static constexpr int kShedReads = 1;       // shed all but admin

  AdmissionController(AdmissionConfig config, MetricsRegistry& registry);

  // One decision on the request path. Returns OK when admitted; a
  // kOverloaded status (with a message naming the cause) otherwise.
  Status admit(std::string_view tenant, RequestPriority priority);
  Status admit(std::string_view tenant, RequestPriority priority,
               TimePoint now_tp);

  // Feeds the pressure signals. burn_short is the max short-window burn
  // rate over latency SLOs; inflight_fraction is reactor in-flight over
  // capacity. Called periodically by the signal poller, directly by tests.
  void update_signals(double burn_short, double inflight_fraction);
  void update_signals(double burn_short, double inflight_fraction,
                      TimePoint now_tp);

  int shed_level() const {
    return shed_level_.load(std::memory_order_relaxed);
  }

  struct TenantRow {
    std::string tenant;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t throttled = 0;
  };
  struct Snapshot {
    bool enabled = false;
    int shed_level = kShedNone;
    double burn_short = 0.0;
    double inflight_fraction = 0.0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t throttled = 0;
    std::vector<TenantRow> tenants;  // sorted by tenant name
  };
  Snapshot snapshot() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  struct TenantState {
    double tokens = 0.0;
    TimePoint last_refill{};
    bool primed = false;  // first touch fills the bucket
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t throttled = 0;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, TenantState> tenants;
  };
  static constexpr std::size_t kStripes = 16;

  Stripe& stripe_for(std::string_view tenant);
  // Maps "" to "default" and, once max_tenants buckets exist, unknown
  // tenants to the shared overflow bucket; creates the bucket on first use.
  std::string_view resolve_tenant(std::string_view tenant);
  // Takes one token from `tenant`'s bucket; false when the bucket is dry.
  bool take_token(std::string_view tenant, TimePoint now_tp);
  void count(std::string_view tenant, AdmitResult result);
  static int target_level(double pressure);

  const AdmissionConfig config_;
  // Wall seconds per modelled second, frozen at construction like the SLO
  // engine (guards against set_time_scale(0) used by unscaled benches).
  const double wall_per_model_;
  MetricsRegistry& registry_;

  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::size_t> tenant_count_{0};

  std::atomic<int> shed_level_{kShedNone};
  std::atomic<double> burn_short_{0.0};
  std::atomic<double> inflight_fraction_{0.0};
  // Signal-evaluation state; update_signals is single-caller so a plain
  // mutex keeps the hold-timer logic simple.
  std::mutex signal_mu_;
  TimePoint calm_since_{};
  bool calm_valid_ = false;

  // Global outcome counters (per-tenant live in the stripes; per-tenant
  // metric series are created lazily in count()).
  std::atomic<std::uint64_t> admitted_total_{0};
  std::atomic<std::uint64_t> shed_total_{0};
  std::atomic<std::uint64_t> throttled_total_{0};
};

}  // namespace tiera
