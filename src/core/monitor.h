// External monitoring application (§4.2.3, Fig. 17).
//
// Writes a canary object to the instance on a schedule; when a write fails
// after `max_retries` successive attempts, declares the storage service
// failed and invokes the reconfiguration callback (which typically swaps
// tiers/policies via the instance's dynamic-reconfiguration API).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "core/instance.h"

namespace tiera {

class StorageMonitor {
 public:
  struct Options {
    Duration probe_period = std::chrono::minutes(2);  // modelled time
    int max_retries = 3;
    std::string canary_id = "__tiera_monitor_canary";
  };

  // `on_failure` runs once per detected outage (re-armed after a subsequent
  // successful probe).
  StorageMonitor(TieraInstance& instance, Options options,
                 std::function<void(TieraInstance&)> on_failure);
  ~StorageMonitor();

  StorageMonitor(const StorageMonitor&) = delete;
  StorageMonitor& operator=(const StorageMonitor&) = delete;

  void start();
  void stop();

  // One probe cycle (also used directly by tests): returns true if the
  // write eventually succeeded.
  bool probe();

  int failures_detected() const { return failures_detected_.load(); }

 private:
  void loop();

  TieraInstance& instance_;
  Options options_;
  std::function<void(TieraInstance&)> on_failure_;

  std::atomic<bool> running_{false};
  std::atomic<int> failures_detected_{0};
  bool outage_latched_ = false;
  std::thread thread_;
};

}  // namespace tiera
