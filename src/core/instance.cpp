#include "core/instance.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/compress.h"
#include "common/hash.h"
#include "core/admission.h"
#include "common/logging.h"
#include "common/random.h"
#include "obs/pool_metrics.h"
#include "obs/stage.h"

namespace tiera {

TieraInstance::TieraInstance(InstanceConfig config)
    : config_(std::move(config)),
      factory_(config_.data_dir),
      tracer_(RequestTracer::capacity_from_env(config_.trace_capacity)) {
  tracer_.set_enabled(config_.trace_requests);
  MetricsRegistry& reg = MetricsRegistry::global();
  metrics_.puts = &reg.counter("tiera_instance_puts_total");
  metrics_.gets = &reg.counter("tiera_instance_gets_total");
  metrics_.removes = &reg.counter("tiera_instance_removes_total");
  metrics_.get_misses = &reg.counter("tiera_instance_get_misses_total");
  metrics_.failures = &reg.counter("tiera_instance_failures_total");
  metrics_.policy_bytes = &reg.counter("tiera_instance_policy_bytes_total");
  metrics_.policy_objects =
      &reg.counter("tiera_instance_policy_objects_total");
  metrics_.put_latency = &reg.histogram("tiera_instance_put_latency_ms");
  metrics_.get_latency = &reg.histogram("tiera_instance_get_latency_ms");
  metrics_.delete_latency = &reg.histogram("tiera_instance_delete_latency_ms");
  collector_id_ = reg.add_collector([this] { collect_metrics(); });
}

void TieraInstance::collect_metrics() {
  const auto sync = [](Counter* counter,
                       const std::atomic<std::uint64_t>& source,
                       std::uint64_t& seen) {
    const std::uint64_t v = source.load(std::memory_order_relaxed);
    if (v > seen) {
      counter->inc(v - seen);
      seen = v;
    }
  };
  sync(metrics_.puts, stats_.puts, synced_.puts);
  sync(metrics_.gets, stats_.gets, synced_.gets);
  sync(metrics_.removes, stats_.removes, synced_.removes);
  sync(metrics_.get_misses, stats_.get_misses, synced_.get_misses);
  sync(metrics_.failures, stats_.failures, synced_.failures);
  sync(metrics_.policy_bytes, stats_.policy_bytes, synced_.policy_bytes);
  sync(metrics_.policy_objects, stats_.policy_objects,
       synced_.policy_objects);
  metrics_.put_latency->merge_new_since(stats_.put_latency,
                                        put_latency_cursor_);
  metrics_.get_latency->merge_new_since(stats_.get_latency,
                                        get_latency_cursor_);
}

Counter& TieraInstance::tier_hit_counter(const std::string& tier_label) {
  const HitCounters* snapshot =
      hit_counters_.load(std::memory_order_acquire);
  if (snapshot) {
    for (const auto& [label, counter] : snapshot->entries) {
      if (label == tier_label) return *counter;
    }
  }
  // First GET served by this tier: publish a snapshot that includes it.
  std::lock_guard lock(hit_counters_mu_);
  snapshot = hit_counters_.load(std::memory_order_acquire);
  if (snapshot) {
    for (const auto& [label, counter] : snapshot->entries) {
      if (label == tier_label) return *counter;
    }
  }
  auto next = std::make_unique<HitCounters>();
  if (snapshot) next->entries = snapshot->entries;
  Counter& counter = MetricsRegistry::global().counter(
      "tiera_instance_tier_hits_total", {{"tier", tier_label}});
  next->entries.emplace_back(tier_label, &counter);
  hit_counters_.store(next.get(), std::memory_order_release);
  hit_counter_snapshots_.push_back(std::move(next));
  return counter;
}

TieraInstance::~TieraInstance() {
  MetricsRegistry::global().remove_collector(collector_id_);
  if (control_) control_->stop();
}

Result<std::unique_ptr<TieraInstance>> TieraInstance::create(
    InstanceConfig config) {
  std::unique_ptr<TieraInstance> instance(new TieraInstance(std::move(config)));
  TIERA_RETURN_IF_ERROR(instance->init());
  return instance;
}

Status TieraInstance::init() {
  std::error_code ec;
  std::filesystem::create_directories(config_.data_dir, ec);
  if (config_.track_heat) {
    // Created before the tiers so every add_tier (initial and dynamic)
    // registers its cost account.
    HeatOptions heat_options = config_.heat_options;
    heat_options.half_life = config_.heat_half_life;
    heat_ = std::make_unique<HeatTracker>(config_.name, heat_options);
    cost_ = std::make_unique<CostMeter>(config_.name);
  }
  for (const auto& spec : config_.tiers) {
    TIERA_RETURN_IF_ERROR(add_tier(spec));
  }
  if (config_.persist_metadata) {
    MetaDbOptions db_options;
    db_options.sync_every_write = config_.journal_sync;
    db_options.journal_batch_bytes = config_.journal_batch_bytes;
    db_options.journal_batch_wait = config_.journal_batch_wait;
    auto db = MetaDb::open(config_.data_dir + "/metadata.db", db_options);
    if (!db.ok()) return db.status();
    meta_.attach_db(std::move(db).value());
    TIERA_RETURN_IF_ERROR(meta_.recover());
  }
  control_ = std::make_unique<ControlLayer>(*this, config_.response_threads,
                                            config_.timer_tick);
  control_->start();
  TIERA_LOG(kInfo, "core") << "instance '" << config_.name << "' up with "
                           << tiers_.size() << " tiers";
  return Status::Ok();
}

// --- Tier management ---------------------------------------------------------

Status TieraInstance::add_tier(const TierSpec& spec) {
  if (spec.label.empty()) {
    return Status::InvalidArgument("tier label required");
  }
  Result<TierPtr> tier = factory_.create(spec);
  if (!tier.ok()) return tier.status();
  if (auto* resilient = dynamic_cast<ResilientTier*>(tier->get())) {
    // Retry spans join the request's causal trace, and breaker transitions
    // schedule a threshold pass so failover rules (`tierX.breaker == open`)
    // fire without waiting for the next mutation. The evaluation runs on
    // the control layer's timer thread: a breaker can flip inside a tier op
    // that a response is running under an object stripe, where firing rules
    // inline could deadlock.
    resilient->set_tracer(&tracer_);
    resilient->set_breaker_listener([this](BreakerState) {
      if (control_) control_->request_threshold_evaluation();
    });
  }
  TierPtr created = std::move(tier).value();
  {
    std::unique_lock lock(tiers_mu_);
    for (const auto& entry : tiers_) {
      if (entry.label == spec.label) {
        return Status::AlreadyExists("tier " + spec.label);
      }
    }
    tiers_.push_back({spec.label, created});
  }
  if (cost_) {
    const TierPricing& p = created->pricing();
    cost_->add_tier(spec.label, {.dollars_per_gb_month = p.dollars_per_gb_month,
                                 .dollars_per_put = p.dollars_per_put,
                                 .dollars_per_get = p.dollars_per_get,
                                 .dollars_per_io = p.dollars_per_io,
                                 .dollars_per_gb_egress = p.dollars_per_gb_egress,
                                 .bill_by_capacity = p.bill_by_capacity});
  }
  return Status::Ok();
}

Status TieraInstance::remove_tier(std::string_view label) {
  {
    std::unique_lock lock(tiers_mu_);
    auto it = std::find_if(
        tiers_.begin(), tiers_.end(),
        [&](const TierEntry& entry) { return entry.label == label; });
    if (it == tiers_.end()) return Status::NotFound("no such tier");
    tiers_.erase(it);
  }
  // Metadata forgets the tier; objects whose only copy lived there become
  // unreachable (exactly what a real service outage looks like).
  const std::string tier_name(label);
  meta_.for_each([&](const ObjectMeta& m) {
    if (m.in_tier(tier_name)) {
      (void)meta_.update(m.id, [&](ObjectMeta& cur) {
        cur.locations.erase(tier_name);
        return true;
      });
    }
  });
  meta_.drop_tier(tier_name);
  return Status::Ok();
}

TierPtr TieraInstance::tier(std::string_view label) const {
  std::shared_lock lock(tiers_mu_);
  for (const auto& entry : tiers_) {
    if (entry.label == label) return entry.tier;
  }
  return nullptr;
}

Result<TierPtr> TieraInstance::find_tier(std::string_view label) const {
  TierPtr t = tier(label);
  if (!t) return Status::NotFound("no tier " + std::string(label));
  return t;
}

std::vector<TieraInstance::TierEntry> TieraInstance::tier_snapshot() const {
  std::shared_lock lock(tiers_mu_);
  return tiers_;
}

std::vector<TierPtr> TieraInstance::tiers() const {
  std::shared_lock lock(tiers_mu_);
  std::vector<TierPtr> out;
  out.reserve(tiers_.size());
  for (const auto& entry : tiers_) out.push_back(entry.tier);
  return out;
}

std::vector<std::string> TieraInstance::tier_labels() const {
  std::shared_lock lock(tiers_mu_);
  std::vector<std::string> out;
  out.reserve(tiers_.size());
  for (const auto& entry : tiers_) out.push_back(entry.label);
  return out;
}

// --- Application interface ---------------------------------------------------

Status TieraInstance::put(std::string_view id, ByteView data,
                          const std::vector<std::string>& tags) {
  // Root span for this request: every rule the PUT fires — including
  // background responses queued on the control pool — records child spans
  // under this context.
  TraceScope span;
  OpStageScope stage_scope(StageOp::kPut);
  Stopwatch watch;
  const std::string object_id(id);

  // Objects are immutable but may be overwritten. Overwrite happens in
  // place: the new bytes land under the same storage key, so concurrent
  // readers always observe either the old or the new version (never a
  // missing object). Content-addressed (storeOnce) objects cannot be
  // overwritten in place — their storage key derives from the content —
  // so those drop the old incarnation first (no delete event: this is a
  // replacement, not an application delete).
  std::set<std::string> stale_locations;
  auto old = meta_.get(object_id);
  if (old && !old->content_hash.empty()) {
    (void)engine_delete({object_id}, {}, nullptr);
    old.reset();
  }
  if (old) {
    stale_locations = old->locations;
    TIERA_RETURN_IF_ERROR(meta_.update(object_id, [&](ObjectMeta& cur) {
      cur.size = data.size();
      cur.dirty = true;
      cur.last_access = now();
      cur.compressed = false;
      cur.encrypted = false;
      cur.tags.insert(tags.begin(), tags.end());
      return true;
    }));
  } else {
    ObjectMeta meta;
    meta.id = object_id;
    meta.size = data.size();
    meta.dirty = true;
    meta.created = meta.last_access = now();
    meta.tags.insert(tags.begin(), tags.end());
    TIERA_RETURN_IF_ERROR(meta_.put(meta));
  }

  EventContext ctx;
  ctx.instance = this;
  ctx.object_id = object_id;
  ctx.payload = std::make_shared<const Bytes>(data.begin(), data.end());

  {
    // Both rule passes plus the threshold sweep are "policy" time; the
    // engine_store they trigger re-charges its tier writes to tier.io.
    StageTimer policy_stage(Stage::kPolicyEval);
    // Pass 1: placement logic (`event(insert.into)` rules).
    control_->on_action(ActionType::kInsert, ctx, {},
                        ControlLayer::MatchScope::kUnfilteredOnly);
    if (!ctx.stored && config_.default_placement) {
      const auto snapshot = tier_snapshot();
      if (!snapshot.empty()) {
        (void)engine_store(object_id, ctx.payload, {snapshot.front().label},
                           /*dedup=*/false, &ctx);
      }
    }
    // Pass 2: reactions to where it landed (`insert.into == tierX`).
    control_->on_action(ActionType::kInsert, ctx, ctx.stored_tiers,
                        ControlLayer::MatchScope::kFilteredOnly);

    control_->evaluate_thresholds();
  }

  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.ops.add();
  stats_.put_latency.record(watch.elapsed());

  if (!ctx.stored) {
    stats_.failures.fetch_add(1, std::memory_order_relaxed);
    slo_.record_put(watch.elapsed(), "", false);
    tracer_.record(span, TraceOp::kPut, "", object_id, "", false);
    if (stale_locations.empty()) (void)meta_.erase(object_id);
    return Status::Unavailable("no tier accepted object " + object_id);
  }
  // Drop stale copies left in tiers the new placement did not touch (the
  // overwrite landed elsewhere); same storage key, so tiers that were
  // re-stored already hold the new bytes.
  {
    std::lock_guard object_guard(object_lock(object_id));
    for (const auto& label : stale_locations) {
      if (std::find(ctx.stored_tiers.begin(), ctx.stored_tiers.end(),
                    label) != ctx.stored_tiers.end()) {
        continue;
      }
      (void)meta_.update(object_id, [&](ObjectMeta& cur) {
        cur.locations.erase(label);
        return true;
      });
      meta_.remove_from_tier(label, object_id);
      if (TierPtr stale_tier = tier(label)) {
        (void)stale_tier->remove(object_id);
      }
    }
  }
  if (!ctx.placement_error.ok()) {
    // Part of the synchronous policy (a replica or write-through copy)
    // failed: the write is not acknowledged, though any bytes that did land
    // stay readable.
    stats_.failures.fetch_add(1, std::memory_order_relaxed);
    slo_.record_put(watch.elapsed(),
                    ctx.stored_tiers.empty() ? "" : ctx.stored_tiers.front(),
                    false);
    tracer_.record(span, TraceOp::kPut, "", object_id,
                   ctx.stored_tiers.empty() ? "" : ctx.stored_tiers.front(),
                   false);
    return ctx.placement_error;
  }
  slo_.record_put(watch.elapsed(),
                  ctx.stored_tiers.empty() ? "" : ctx.stored_tiers.front(),
                  true);
  tracer_.record(span, TraceOp::kPut, "", object_id,
                 ctx.stored_tiers.empty() ? "" : ctx.stored_tiers.front(),
                 true);
  return Status::Ok();
}

Result<Bytes> TieraInstance::get(std::string_view id) {
  TraceScope span;
  OpStageScope stage_scope(StageOp::kGet);
  Stopwatch watch;
  const std::string object_id(id);
  const auto meta = meta_.get(object_id);
  if (!meta) {
    stats_.get_misses.fetch_add(1, std::memory_order_relaxed);
    tracer_.record(span, TraceOp::kGet, "", object_id, "", false);
    return Status::NotFound("no object " + object_id);
  }

  std::string served_tier;
  Result<Bytes> at_rest = read_at_rest(*meta, &served_tier);
  if (!at_rest.ok()) {
    stats_.failures.fetch_add(1, std::memory_order_relaxed);
    slo_.record_get(watch.elapsed(), served_tier, false);
    tracer_.record(span, TraceOp::kGet, "", object_id, served_tier, false);
    return at_rest.status();
  }

  // Undo at-rest transforms (applied compress-first, so undo decrypt-first).
  Bytes bytes = std::move(at_rest).value();
  // What left the tier (at-rest size), for heat and egress accounting.
  const std::uint64_t served_bytes = bytes.size();
  {
    StageTimer build_stage(Stage::kResponseBuild);
    if (meta->encrypted) {
      std::optional<ChaChaKey> key;
      {
        std::lock_guard lock(key_mu_);
        key = encryption_key_;
      }
      if (!key) {
        return Status::Corruption("object encrypted, no key registered");
      }
      Result<Bytes> plain = chacha_decrypt(as_view(bytes), *key);
      if (!plain.ok()) return plain.status();
      bytes = std::move(plain).value();
    }
    if (meta->compressed) {
      Result<Bytes> inflated = lz_decompress(as_view(bytes));
      if (!inflated.ok()) return inflated.status();
      bytes = std::move(inflated).value();
    }
  }

  (void)meta_.update(object_id, [&](ObjectMeta& cur) {
    cur.access_count += 1;
    cur.last_access = now();
    return true;
  });
  meta_.touch_in_tier(served_tier, object_id);

  EventContext ctx;
  ctx.instance = this;
  ctx.object_id = object_id;
  ctx.action_tier = served_tier;
  {
    StageTimer policy_stage(Stage::kPolicyEval);
    control_->on_action(ActionType::kGet, ctx, {served_tier});
  }

  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  stats_.ops.add();
  stats_.get_latency.record(watch.elapsed());
  slo_.record_get(watch.elapsed(), served_tier, true);
  tier_hit_counter(served_tier).inc();
  if (heat_) heat_->record(served_tier, object_id, served_bytes);
  if (cost_) cost_->record_client_read(served_tier, served_bytes);
  tracer_.record(span, TraceOp::kGet, "", object_id, served_tier, true);
  return bytes;
}

Status TieraInstance::remove(std::string_view id) {
  TraceScope span;
  OpStageScope stage_scope(StageOp::kDelete);
  Stopwatch watch;
  const std::string object_id(id);
  if (!meta_.contains(object_id)) return Status::NotFound("no such object");

  EventContext ctx;
  ctx.instance = this;
  ctx.object_id = object_id;
  // Delete events fire before the object disappears so responses can still
  // act on it (archive-on-delete policies).
  {
    StageTimer policy_stage(Stage::kPolicyEval);
    control_->on_action(ActionType::kDelete, ctx, {});
  }

  TIERA_RETURN_IF_ERROR(engine_delete({object_id}, {}, &ctx));
  {
    StageTimer policy_stage(Stage::kPolicyEval);
    control_->evaluate_thresholds();
  }
  stats_.removes.fetch_add(1, std::memory_order_relaxed);
  stats_.ops.add();
  metrics_.delete_latency->record(watch.elapsed());
  tracer_.record(span, TraceOp::kDelete, "", object_id, "", true);
  return Status::Ok();
}

bool TieraInstance::contains(std::string_view id) const {
  return meta_.contains(id);
}

Result<ObjectMeta> TieraInstance::stat(std::string_view id) const {
  const auto meta = meta_.get(id);
  if (!meta) return Status::NotFound("no such object");
  return *meta;
}

Status TieraInstance::add_tags(std::string_view id,
                               const std::vector<std::string>& tags) {
  return meta_.update(id, [&](ObjectMeta& meta) {
    meta.tags.insert(tags.begin(), tags.end());
    return true;
  });
}

// --- Data-path helpers -------------------------------------------------------

Result<Bytes> TieraInstance::read_at_rest(const ObjectMeta& meta,
                                          std::string* served_tier) {
  // Whole-body tier.io: covers fallback chains and hedge waits alike.
  StageTimer io_stage(Stage::kTierIo);
  const std::string key = meta.storage_key();
  std::vector<TierEntry> locations;
  for (const auto& entry : tier_snapshot()) {
    if (meta.in_tier(entry.label)) locations.push_back(entry);
  }

  Status last = Status::NotFound("object has no live location");
  std::size_t next = 0;
  // Hedged path: when the first location advertises a hedge delay (a
  // ResilientTier tracking its GET latency quantile) and the object has a
  // second copy, race the two instead of waiting out a slow primary.
  if (locations.size() >= 2) {
    const Duration delay = locations[0].tier->hedge_delay();
    if (delay > Duration::zero()) {
      std::optional<Result<Bytes>> raced = read_hedged(
          locations[0], locations[1], meta.id, key, delay, served_tier, &next);
      if (raced) return *std::move(raced);
      last = Status::Unavailable("hedged locations failed");
    }
  }
  for (std::size_t i = next; i < locations.size(); ++i) {
    Result<Bytes> bytes = locations[i].tier->get(key);
    if (bytes.ok()) {
      if (served_tier) *served_tier = locations[i].label;
      return bytes;
    }
    last = bytes.status();
  }
  return last;
}

std::optional<Result<Bytes>> TieraInstance::read_hedged(
    const TierEntry& primary, const TierEntry& secondary,
    const std::string& object_id, const std::string& key, Duration delay,
    std::string* served_tier, std::size_t* next_location) {
  struct Race {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Result<Bytes>> results[2];
  };
  auto race = std::make_shared<Race>();
  const auto launch = [this, &race, &key](int slot, TierPtr tier) {
    // Pool task: the losing read may outlive this call, holding its worker
    // only until the inner tier returns. The task touches only the race
    // state and the tier, both kept alive by the captured shared_ptrs —
    // never the instance.
    return hedge_pool_.submit([race, slot, tier, k = key] {
      Result<Bytes> r = tier->get(k);
      {
        std::lock_guard lock(race->mu);
        race->results[slot].emplace(std::move(r));
      }
      race->cv.notify_all();
    });
  };

  if (!launch(0, primary.tier)) {
    // Pool shutting down (instance teardown): degrade to a plain read.
    Result<Bytes> r = primary.tier->get(key);
    if (r.ok()) {
      if (served_tier) *served_tier = primary.label;
      return r;
    }
    *next_location = 1;
    return std::nullopt;
  }
  std::unique_lock lock(race->mu);
  if (!race->cv.wait_for(lock, delay,
                         [&] { return race->results[0].has_value(); })) {
    // Primary exceeded its latency quantile: issue the hedge and take
    // whichever location answers first.
    auto* resilient = dynamic_cast<ResilientTier*>(primary.tier.get());
    std::optional<TraceScope> span;
    const bool hedged = launch(1, secondary.tier);
    if (hedged) {
      if (resilient) resilient->note_hedge_issued();
      if (tracer_.enabled()) span.emplace();
    }
    race->cv.wait(lock, [&] {
      if (!hedged) return race->results[0].has_value();
      return (race->results[0] && race->results[1]) ||
             (race->results[0] && race->results[0]->ok()) ||
             (race->results[1] && race->results[1]->ok());
    });
    const bool hedge_won =
        !(race->results[0] && race->results[0]->ok()) &&
        race->results[1] && race->results[1]->ok();
    if (span) {
      tracer_.record(*span, TraceOp::kHedge, "hedge", object_id,
                     secondary.label, hedge_won);
    }
    if (race->results[0] && race->results[0]->ok()) {
      if (served_tier) *served_tier = primary.label;
      return *std::move(race->results[0]);
    }
    if (hedge_won) {
      if (resilient) resilient->note_hedge_win();
      if (served_tier) *served_tier = secondary.label;
      return *std::move(race->results[1]);
    }
    // Resume the sequential fallback past every location actually raced.
    *next_location = hedged ? 2 : 1;
    return std::nullopt;
  }
  if (race->results[0]->ok()) {
    if (served_tier) *served_tier = primary.label;
    return *std::move(race->results[0]);
  }
  *next_location = 1;  // primary failed fast; the fallback starts at the hedge
  return std::nullopt;
}

Status TieraInstance::rewrite_at_rest(const ObjectMeta& meta, ByteView bytes) {
  const std::string key = meta.storage_key();
  Status last = Status::Ok();
  for (const auto& entry : tier_snapshot()) {
    if (!meta.in_tier(entry.label)) continue;
    const Status s = entry.tier->put(key, bytes);
    if (!s.ok()) last = s;
  }
  return last;
}

std::mutex& TieraInstance::object_lock(std::string_view id) const {
  return object_stripes_[fnv1a64(id) % kObjectStripes].mu;
}

bool TieraInstance::content_needed_in_tier(const ObjectMeta& meta,
                                           const std::string& label) {
  if (meta.content_hash.empty()) return false;
  for (const auto& id : meta_.content_ref_ids(meta.content_hash)) {
    if (id == meta.id) continue;
    const auto other = meta_.get(id);
    if (other && other->in_tier(label)) return true;
  }
  return false;
}

// --- Engine operations -------------------------------------------------------

Status TieraInstance::engine_store(std::string_view id,
                                   std::shared_ptr<const Bytes> payload,
                                   const std::vector<std::string>& tier_labels,
                                   bool dedup, EventContext* ctx) {
  const std::string object_id(id);
  std::lock_guard object_guard(object_lock(object_id));
  auto meta = meta_.get(object_id);
  if (!meta) {
    if (!payload) return Status::NotFound("no metadata and no payload");
    ObjectMeta fresh;
    fresh.id = object_id;
    fresh.size = payload->size();
    fresh.dirty = true;
    fresh.created = fresh.last_access = now();
    TIERA_RETURN_IF_ERROR(meta_.put(fresh));
    meta = fresh;
  }

  // Bytes to place: the insert payload, or the current at-rest bytes.
  Bytes at_rest_storage;
  ByteView at_rest;
  // Tier the bytes were read out of (empty for insert payloads) — the
  // egress source for per-rule cost attribution.
  std::string source_tier;
  if (payload) {
    at_rest = as_view(*payload);
  } else {
    Result<Bytes> current = read_at_rest(*meta, &source_tier);
    if (!current.ok()) return current.status();
    at_rest_storage = std::move(current).value();
    at_rest = as_view(at_rest_storage);
  }

  bool maybe_resident = false;
  std::string storage_key = meta->storage_key();
  if (dedup) {
    if (meta->content_hash.empty()) {
      const std::string hash = Sha256::hex_digest(at_rest);
      maybe_resident = !meta_.add_content_ref(hash, object_id);
      TIERA_RETURN_IF_ERROR(meta_.update(object_id, [&](ObjectMeta& cur) {
        cur.content_hash = hash;
        return true;
      }));
      storage_key = "cas:" + hash;
    } else {
      // Hash already assigned (e.g. an earlier storeOnce on another tier):
      // the content-addressed bytes may already be where we're headed.
      maybe_resident = true;
    }
  }

  Status last = Status::Ok();
  bool durable_dest = false;
  std::uint64_t bytes_written = 0;
  bool touched = false;
  for (const auto& label : tier_labels) {
    Result<TierPtr> t = find_tier(label);
    if (!t.ok()) {
      last = t.status();
      continue;
    }
    // storeOnce: when the content is already resident in this tier (another
    // object carries it), only metadata changes — no billable tier request.
    const bool bytes_present = maybe_resident && (*t)->contains(storage_key);
    if (!bytes_present) {
      StageTimer io_stage(Stage::kTierIo);
      const Status s = (*t)->put(storage_key, at_rest);
      if (!s.ok()) {
        last = s;
        continue;
      }
      bytes_written += at_rest.size();
      if (cost_) {
        // Rule attribution mirrors the policy_bytes accounting below, so
        // per-rule byte totals reconcile with tiera_instance_policy_bytes.
        cost_->record_rule_move(ctx ? ctx->rule_id : 0,
                                ctx ? ctx->rule_name : std::string_view{},
                                source_tier, label, at_rest.size());
        // Client-facing ingress: only bytes that arrived with the request.
        if (payload) cost_->record_client_write(label, at_rest.size());
      }
      if (heat_ && payload) heat_->record(label, object_id, at_rest.size());
    }
    touched = true;
    durable_dest = durable_dest || (*t)->durable();
    (void)meta_.update(object_id, [&](ObjectMeta& cur) {
      cur.locations.insert(label);
      return true;
    });
    meta_.touch_in_tier(label, object_id);
    if (ctx) {
      ctx->stored = true;
      ctx->stored_tiers.push_back(label);
      ++ctx->mutations;
    }
  }
  // Attribution: foreground and background stores alike feed the instance
  // policy counters, so `tiera_instance_policy_*` reconciles with per-tier
  // sums no matter which thread ran the response.
  if (bytes_written) {
    stats_.policy_bytes.fetch_add(bytes_written, std::memory_order_relaxed);
    if (ctx) ctx->bytes_moved += bytes_written;
  }
  if (touched) {
    stats_.policy_objects.fetch_add(1, std::memory_order_relaxed);
    if (ctx) ++ctx->objects_touched;
  }
  if (durable_dest) {
    (void)meta_.update(object_id, [&](ObjectMeta& cur) {
      cur.dirty = false;
      return true;
    });
  }
  return last;
}

// Copies one object into `dest_tiers`; when `remove_sources` is set, also
// drops it from `from_tiers` (or every non-destination location when that is
// empty). Runs entirely under the object's stripe so concurrent overwrites,
// evictions and promotions of the same object serialize.
Status TieraInstance::replicate_locked(const std::string& id,
                                       const std::vector<std::string>& dest_tiers,
                                       const std::vector<std::string>& from_tiers,
                                       bool remove_sources,
                                       EventContext* ctx) {
  std::lock_guard object_guard(object_lock(id));
  const auto meta = meta_.get(id);
  if (!meta) return Status::Ok();  // deleted since selection

  Status last = Status::Ok();
  std::uint64_t bytes_written = 0;
  bool touched = false;
  bool all_present = true;
  for (const auto& label : dest_tiers) {
    if (!meta->in_tier(label)) {
      all_present = false;
      break;
    }
  }
  if (!all_present) {
    std::string source_tier;
    Result<Bytes> bytes = read_at_rest(*meta, &source_tier);
    if (!bytes.ok()) return bytes.status();
    const std::string storage_key = meta->storage_key();
    for (const auto& label : dest_tiers) {
      if (meta->in_tier(label)) continue;
      Result<TierPtr> t = find_tier(label);
      if (!t.ok()) {
        last = t.status();
        continue;
      }
      const Status s = (*t)->put(storage_key, as_view(*bytes));
      if (!s.ok()) {
        last = s;
        continue;
      }
      bytes_written += bytes->size();
      touched = true;
      if (cost_) {
        cost_->record_rule_move(ctx ? ctx->rule_id : 0,
                                ctx ? ctx->rule_name : std::string_view{},
                                source_tier, label, bytes->size());
      }
      const bool durable_dest = (*t)->durable();
      (void)meta_.update(id, [&](ObjectMeta& cur) {
        cur.locations.insert(label);
        if (durable_dest) cur.dirty = false;
        return true;
      });
      meta_.touch_in_tier(label, id);
      if (ctx) ++ctx->mutations;
    }
  }
  const auto account = [&] {
    if (bytes_written) {
      stats_.policy_bytes.fetch_add(bytes_written, std::memory_order_relaxed);
      if (ctx) ctx->bytes_moved += bytes_written;
    }
    if (touched) {
      stats_.policy_objects.fetch_add(1, std::memory_order_relaxed);
      if (ctx) ++ctx->objects_touched;
    }
  };
  if (!remove_sources) {
    account();
    return last;
  }

  const auto fresh = meta_.get(id);
  if (!fresh) {
    account();
    return last;
  }
  // A move only gives up its sources once the object actually resides in a
  // destination — a failed copy (e.g. the destination was full) must never
  // drop the last remaining replica.
  bool in_dest = false;
  for (const auto& label : dest_tiers) {
    in_dest = in_dest || fresh->in_tier(label);
  }
  if (!in_dest) {
    account();
    return last.ok() ? Status::CapacityExceeded(
                           "move aborted: no destination holds " + id)
                     : last;
  }
  std::vector<std::string> sources;
  if (from_tiers.empty()) {
    for (const auto& loc : fresh->locations) {
      if (std::find(dest_tiers.begin(), dest_tiers.end(), loc) ==
          dest_tiers.end()) {
        sources.push_back(loc);
      }
    }
  } else {
    sources = from_tiers;
  }
  for (const auto& label : sources) {
    if (std::find(dest_tiers.begin(), dest_tiers.end(), label) !=
        dest_tiers.end()) {
      continue;  // never remove from a destination
    }
    if (!fresh->in_tier(label)) continue;
    Result<TierPtr> t = find_tier(label);
    if (t.ok()) {
      // Shared (dedup'd) bytes stay physically present while another
      // object in this tier still references the content.
      if (!content_needed_in_tier(*fresh, label)) {
        const Status s = (*t)->remove(fresh->storage_key());
        if (!s.ok() && !s.is_not_found()) last = s;
      }
    }
    (void)meta_.update(id, [&](ObjectMeta& cur) {
      cur.locations.erase(label);
      return true;
    });
    meta_.remove_from_tier(label, id);
    touched = true;
    if (ctx) ++ctx->mutations;
  }
  account();
  return last;
}

Status TieraInstance::engine_copy(const std::vector<std::string>& ids,
                                  const std::vector<std::string>& dest_tiers,
                                  RateLimiter* limiter, EventContext* ctx) {
  Status last = Status::Ok();
  for (const auto& id : ids) {
    // The bandwidth cap throttles the whole replication stream (source
    // reads included), and paces outside the object lock so foreground
    // operations on a colliding stripe never wait behind the throttle.
    if (limiter) {
      const auto meta = meta_.get(id);
      if (!meta) continue;
      bool all_present = true;
      for (const auto& label : dest_tiers) {
        all_present = all_present && meta->in_tier(label);
      }
      if (all_present) continue;
      limiter->acquire(meta->size);
    }
    const Status s = replicate_locked(id, dest_tiers, {},
                                      /*remove_sources=*/false, ctx);
    if (!s.ok()) last = s;
  }
  return last;
}

Status TieraInstance::engine_move(const std::vector<std::string>& ids,
                                  const std::vector<std::string>& dest_tiers,
                                  const std::vector<std::string>& from_tiers,
                                  RateLimiter* limiter, EventContext* ctx) {
  Status last = Status::Ok();
  for (const auto& id : ids) {
    if (limiter) {
      const auto meta = meta_.get(id);
      if (!meta) continue;
      limiter->acquire(meta->size);
    }
    const Status s = replicate_locked(id, dest_tiers, from_tiers,
                                      /*remove_sources=*/true, ctx);
    if (!s.ok()) last = s;
  }
  return last;
}

Status TieraInstance::engine_delete(const std::vector<std::string>& ids,
                                    const std::vector<std::string>& tier_labels,
                                    EventContext* ctx) {
  Status last = Status::Ok();
  for (const auto& id : ids) {
    std::lock_guard object_guard(object_lock(id));
    const auto meta = meta_.get(id);
    if (!meta) {
      last = Status::NotFound("no object " + id);
      continue;
    }
    bool touched = false;
    const std::vector<std::string> targets =
        tier_labels.empty()
            ? std::vector<std::string>(meta->locations.begin(),
                                       meta->locations.end())
            : tier_labels;
    for (const auto& label : targets) {
      if (!meta->in_tier(label)) continue;
      Result<TierPtr> t = find_tier(label);
      if (t.ok() && !content_needed_in_tier(*meta, label)) {
        StageTimer io_stage(Stage::kTierIo);
        const Status s = (*t)->remove(meta->storage_key());
        if (!s.ok() && !s.is_not_found()) last = s;
      }
      (void)meta_.update(id, [&](ObjectMeta& cur) {
        cur.locations.erase(label);
        return true;
      });
      meta_.remove_from_tier(label, id);
      touched = true;
      if (ctx) ++ctx->mutations;
    }
    if (touched) {
      stats_.policy_objects.fetch_add(1, std::memory_order_relaxed);
      if (ctx) ++ctx->objects_touched;
    }
    const auto after = meta_.get(id);
    if (after && after->locations.empty()) {
      if (!after->content_hash.empty()) {
        meta_.drop_content_ref(after->content_hash, id);
      }
      (void)meta_.erase(id);
    }
  }
  return last;
}

Status TieraInstance::engine_retrieve(const std::vector<std::string>& ids) {
  Status last = Status::Ok();
  for (const auto& id : ids) {
    const auto meta = meta_.get(id);
    if (!meta) continue;
    std::string served;
    Result<Bytes> bytes = read_at_rest(*meta, &served);
    if (!bytes.ok()) {
      last = bytes.status();
      continue;
    }
    (void)meta_.update(id, [&](ObjectMeta& cur) {
      cur.access_count += 1;
      cur.last_access = now();
      return true;
    });
    meta_.touch_in_tier(served, id);
  }
  return last;
}

Status TieraInstance::engine_encrypt(const std::vector<std::string>& ids,
                                     const ChaChaKey& key) {
  set_encryption_key(key);
  Status last = Status::Ok();
  for (const auto& id : ids) {
    std::lock_guard object_guard(object_lock(id));
    const auto meta = meta_.get(id);
    if (!meta || meta->encrypted) continue;
    if (!meta->content_hash.empty()) {
      // Content-addressed bytes are shared; transforming them would corrupt
      // other objects' views.
      last = Status::InvalidArgument("cannot encrypt dedup'd object " + id);
      continue;
    }
    Result<Bytes> bytes = read_at_rest(*meta, nullptr);
    if (!bytes.ok()) {
      last = bytes.status();
      continue;
    }
    const Bytes cipher =
        chacha_encrypt(as_view(*bytes), key, fnv1a64(id) ^ bytes->size());
    const Status s = rewrite_at_rest(*meta, as_view(cipher));
    if (!s.ok()) {
      last = s;
      continue;
    }
    (void)meta_.update(id, [&](ObjectMeta& cur) {
      cur.encrypted = true;
      return true;
    });
  }
  return last;
}

Status TieraInstance::engine_decrypt(const std::vector<std::string>& ids,
                                     const ChaChaKey& key) {
  Status last = Status::Ok();
  for (const auto& id : ids) {
    std::lock_guard object_guard(object_lock(id));
    const auto meta = meta_.get(id);
    if (!meta || !meta->encrypted) continue;
    Result<Bytes> bytes = read_at_rest(*meta, nullptr);
    if (!bytes.ok()) {
      last = bytes.status();
      continue;
    }
    Result<Bytes> plain = chacha_decrypt(as_view(*bytes), key);
    if (!plain.ok()) {
      last = plain.status();
      continue;
    }
    const Status s = rewrite_at_rest(*meta, as_view(*plain));
    if (!s.ok()) {
      last = s;
      continue;
    }
    (void)meta_.update(id, [&](ObjectMeta& cur) {
      cur.encrypted = false;
      return true;
    });
  }
  return last;
}

Status TieraInstance::engine_compress(const std::vector<std::string>& ids) {
  Status last = Status::Ok();
  for (const auto& id : ids) {
    std::lock_guard object_guard(object_lock(id));
    const auto meta = meta_.get(id);
    if (!meta || meta->compressed) continue;
    if (meta->encrypted) {
      last = Status::InvalidArgument(
          "compress before encrypt (object already encrypted): " + id);
      continue;
    }
    if (!meta->content_hash.empty()) {
      last = Status::InvalidArgument("cannot compress dedup'd object " + id);
      continue;
    }
    Result<Bytes> bytes = read_at_rest(*meta, nullptr);
    if (!bytes.ok()) {
      last = bytes.status();
      continue;
    }
    const Bytes packed = lz_compress(as_view(*bytes));
    const Status s = rewrite_at_rest(*meta, as_view(packed));
    if (!s.ok()) {
      last = s;
      continue;
    }
    (void)meta_.update(id, [&](ObjectMeta& cur) {
      cur.compressed = true;
      return true;
    });
  }
  return last;
}

Status TieraInstance::engine_uncompress(const std::vector<std::string>& ids) {
  Status last = Status::Ok();
  for (const auto& id : ids) {
    std::lock_guard object_guard(object_lock(id));
    const auto meta = meta_.get(id);
    if (!meta || !meta->compressed) continue;
    if (meta->encrypted) {
      last = Status::InvalidArgument("decrypt before uncompress: " + id);
      continue;
    }
    Result<Bytes> bytes = read_at_rest(*meta, nullptr);
    if (!bytes.ok()) {
      last = bytes.status();
      continue;
    }
    Result<Bytes> inflated = lz_decompress(as_view(*bytes));
    if (!inflated.ok()) {
      last = inflated.status();
      continue;
    }
    const Status s = rewrite_at_rest(*meta, as_view(*inflated));
    if (!s.ok()) {
      last = s;
      continue;
    }
    (void)meta_.update(id, [&](ObjectMeta& cur) {
      cur.compressed = false;
      return true;
    });
  }
  return last;
}

Status TieraInstance::engine_grow(std::string_view tier_label, double percent,
                                  Duration provisioning_delay) {
  Result<TierPtr> t = find_tier(tier_label);
  if (!t.ok()) return t.status();
  // Provisioning a bigger backing node takes real time (≈1 min in Fig. 16).
  apply_model_delay(provisioning_delay);
  return (*t)->grow(percent);
}

Status TieraInstance::engine_shrink(std::string_view tier_label,
                                    double percent) {
  Result<TierPtr> t = find_tier(tier_label);
  if (!t.ok()) return t.status();
  return (*t)->shrink(percent);
}

Status TieraInstance::engine_set_dirty(const std::vector<std::string>& ids,
                                       bool dirty) {
  Status last = Status::Ok();
  for (const auto& id : ids) {
    const Status s = meta_.update(id, [&](ObjectMeta& cur) {
      cur.dirty = dirty;
      return true;
    });
    if (!s.ok()) last = s;
  }
  return last;
}

Status TieraInstance::engine_snapshot(const std::vector<std::string>& ids,
                                      std::string_view name,
                                      const std::vector<std::string>& dest) {
  if (name.empty() || name.find('/') != std::string_view::npos) {
    return Status::InvalidArgument("bad snapshot name");
  }
  Status last = Status::Ok();
  for (const auto& id : ids) {
    if (id.find("@snap/") != std::string::npos) continue;  // no snap-of-snap
    std::lock_guard object_guard(object_lock(id));
    const auto meta = meta_.get(id);
    if (!meta) continue;
    Result<Bytes> at_rest = read_at_rest(*meta, nullptr);
    if (!at_rest.ok()) {
      last = at_rest.status();
      continue;
    }
    const std::string snap_id = id + "@snap/" + std::string(name);
    ObjectMeta snap;
    snap.id = snap_id;
    snap.size = meta->size;
    snap.created = snap.last_access = now();
    snap.tags = meta->tags;
    snap.tags.insert("snapshot");
    snap.compressed = meta->compressed;
    snap.encrypted = meta->encrypted;
    const std::vector<std::string> targets =
        dest.empty() ? std::vector<std::string>(meta->locations.begin(),
                                                meta->locations.end())
                     : dest;
    bool stored = false;
    for (const auto& label : targets) {
      Result<TierPtr> t = find_tier(label);
      if (!t.ok()) {
        last = t.status();
        continue;
      }
      const Status s = (*t)->put(snap_id, as_view(*at_rest));
      if (!s.ok()) {
        last = s;
        continue;
      }
      snap.locations.insert(label);
      stored = true;
    }
    if (!stored) {
      last = Status::Unavailable("no tier accepted snapshot " + snap_id);
      continue;
    }
    const Status s = meta_.put(snap);
    if (!s.ok()) last = s;
    for (const auto& label : snap.locations) {
      meta_.touch_in_tier(label, snap_id);
    }
  }
  return last;
}

Status TieraInstance::restore_snapshot(std::string_view id,
                                       std::string_view name) {
  const std::string snap_id =
      std::string(id) + "@snap/" + std::string(name);
  Result<Bytes> bytes = get(snap_id);
  if (!bytes.ok()) return bytes.status();
  return put(id, as_view(*bytes));
}

std::vector<std::string> TieraInstance::list_snapshots(
    std::string_view id) const {
  const std::string prefix = std::string(id) + "@snap/";
  std::vector<std::string> names;
  meta_.for_each([&](const ObjectMeta& meta) {
    if (meta.id.size() > prefix.size() &&
        meta.id.compare(0, prefix.size(), prefix) == 0) {
      names.push_back(meta.id.substr(prefix.size()));
    }
  });
  std::sort(names.begin(), names.end());
  return names;
}

void TieraInstance::set_encryption_key(const ChaChaKey& key) {
  std::lock_guard lock(key_mu_);
  encryption_key_ = key;
}

std::size_t TieraInstance::remap_invalidate(std::string_view tier_label,
                                            double fraction,
                                            std::uint64_t seed) {
  Result<TierPtr> t = find_tier(tier_label);
  if (!t.ok()) return 0;
  Rng rng(seed);
  const std::string label(tier_label);
  const auto candidates = meta_.select([&](const ObjectMeta& m) {
    return m.in_tier(label) && m.locations.size() > 1;
  });
  std::size_t invalidated = 0;
  for (const auto& id : candidates) {
    if (rng.next_double() >= fraction) continue;
    std::lock_guard object_guard(object_lock(id));
    const auto meta = meta_.get(id);
    if (!meta || meta->locations.size() < 2 || !meta->in_tier(label)) {
      continue;
    }
    if (!content_needed_in_tier(*meta, label)) {
      (void)(*t)->remove(meta->storage_key());
    }
    (void)meta_.update(id, [&](ObjectMeta& cur) {
      cur.locations.erase(label);
      return true;
    });
    meta_.remove_from_tier(label, id);
    ++invalidated;
  }
  TIERA_LOG(kInfo, "core") << "remap invalidated " << invalidated
                           << " objects in " << tier_label;
  return invalidated;
}

namespace {

// Human-readable byte counts for the `top` tables ("1.5MiB", "640B").
std::string human_bytes(std::uint64_t n) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(n);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < std::size(kUnits)) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(n), kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, kUnits[unit]);
  }
  return buf;
}

// True when `name` appears in the comma-separated `sections` list (empty
// list = every section).
bool top_section_wanted(std::string_view sections, std::string_view name) {
  if (sections.empty()) return true;
  std::size_t pos = 0;
  while (pos <= sections.size()) {
    std::size_t comma = sections.find(',', pos);
    if (comma == std::string_view::npos) comma = sections.size();
    std::string_view token = sections.substr(pos, comma - pos);
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (token == name) return true;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

std::string TieraInstance::render_top(std::string_view sections) const {
  std::string out;
  char line[256];
  const auto want = [&](std::string_view name) {
    return top_section_wanted(sections, name);
  };

  if (want("header")) {
    std::snprintf(line, sizeof(line),
                  "instance %-16s objects=%zu ops/s=%.1f\n",
                  config_.name.c_str(), meta_.size(),
                  stats_.ops.ops_per_sec());
    out += line;
    std::snprintf(
        line, sizeof(line),
        "puts=%llu gets=%llu removes=%llu misses=%llu failures=%llu "
        "policy_bytes=%s policy_objects=%llu trace_dropped=%llu\n\n",
        static_cast<unsigned long long>(stats_.puts.load()),
        static_cast<unsigned long long>(stats_.gets.load()),
        static_cast<unsigned long long>(stats_.removes.load()),
        static_cast<unsigned long long>(stats_.get_misses.load()),
        static_cast<unsigned long long>(stats_.failures.load()),
        human_bytes(stats_.policy_bytes.load()).c_str(),
        static_cast<unsigned long long>(stats_.policy_objects.load()),
        static_cast<unsigned long long>(tracer_.dropped()));
    out += line;
  }

  if (want("tiers")) {
    std::snprintf(line, sizeof(line), "%-14s %10s %10s %7s %8s %9s\n", "TIER",
                  "USED", "CAP", "FILL", "OBJECTS", "BREAKER");
    out += line;
    for (const auto& entry : tier_snapshot()) {
      // Plain tiers have no breaker to report; "n/a" keeps the column honest
      // (and aligned) instead of claiming a permanently closed breaker.
      const std::string breaker =
          entry.tier->has_breaker()
              ? std::string(to_string(entry.tier->breaker_state()))
              : "n/a";
      std::snprintf(line, sizeof(line), "%-14s %10s %10s %6.1f%% %8zu %9s\n",
                    entry.label.c_str(),
                    human_bytes(entry.tier->used()).c_str(),
                    human_bytes(entry.tier->capacity()).c_str(),
                    entry.tier->fill_fraction() * 100.0,
                    entry.tier->object_count(), breaker.c_str());
      out += line;
    }
  }

  const std::vector<SloStatus> slos =
      want("slo") ? slo_.status() : std::vector<SloStatus>{};
  if (!slos.empty()) {
    out += '\n';
    std::snprintf(line, sizeof(line),
                  "%-18s %-10s %10s %10s %8s %8s %8s %9s %5s\n", "SLO", "TIER",
                  "TARGET", "CURRENT", "WINDOW", "BURN-S", "BURN-L", "STATE",
                  "VIOL");
    out += line;
    for (const auto& s : slos) {
      char target_buf[32];
      char current_buf[32];
      if (s.is_latency) {
        std::snprintf(target_buf, sizeof(target_buf), "%.2fms", s.target);
        std::snprintf(current_buf, sizeof(current_buf), "%.2fms", s.current);
      } else {
        std::snprintf(target_buf, sizeof(target_buf), "%.2f%%",
                      s.target * 100.0);
        std::snprintf(current_buf, sizeof(current_buf), "%.2f%%",
                      s.current * 100.0);
      }
      std::snprintf(line, sizeof(line),
                    "%-18s %-10s %10s %10s %7.0fs %8.2f %8.2f %9s %5llu\n",
                    s.name.c_str(), s.tier.empty() ? "-" : s.tier.c_str(),
                    target_buf, current_buf, s.window_s, s.burn_short,
                    s.burn_long, s.violated ? "VIOLATED" : "ok",
                    static_cast<unsigned long long>(s.violations));
      out += line;
    }
  }

  if (want("rules")) {
    out += '\n';
    std::snprintf(line, sizeof(line),
                  "%4s %-16s %8s %5s %8s %8s %10s %8s  %s\n", "RULE", "NAME",
                  "FIRES", "ERR", "P50ms", "P99ms", "BYTES", "OBJ", "EVENT");
    out += line;
    for (const auto& r : control_->rule_activity()) {
      std::snprintf(line, sizeof(line),
                    "%4llu %-16s %8llu %5llu %8.2f %8.2f %10s %8llu  %s\n",
                    static_cast<unsigned long long>(r.id),
                    (r.name.empty() ? "-" : r.name).c_str(),
                    static_cast<unsigned long long>(r.fires),
                    static_cast<unsigned long long>(r.errors), r.p50_ms,
                    r.p99_ms, human_bytes(r.bytes_moved).c_str(),
                    static_cast<unsigned long long>(r.objects_touched),
                    r.event.c_str());
      out += line;
      if (!r.last_error.empty()) {
        std::snprintf(line, sizeof(line), "     last error: %s\n",
                      r.last_error.c_str());
        out += line;
      }
    }
  }

  if (want("heat") && heat_) {
    const HeatSnapshot snap = heat_->snapshot(/*top_n=*/10);
    out += '\n';
    std::snprintf(line, sizeof(line),
                  "HEAT  half-life=%.0fs epochs=%llu mem=%s\n",
                  snap.half_life_s,
                  static_cast<unsigned long long>(snap.decay_epochs),
                  human_bytes(snap.memory_bytes).c_str());
    out += line;
    std::snprintf(line, sizeof(line), "%-14s %-28s %10s %10s\n", "TIER", "KEY",
                  "EST", "RATE/S");
    out += line;
    for (const auto& tier : snap.tiers) {
      for (const auto& hot : tier.top) {
        std::snprintf(line, sizeof(line), "%-14s %-28s %10llu %10.2f\n",
                      tier.tier.c_str(), hot.key.c_str(),
                      static_cast<unsigned long long>(hot.estimate),
                      hot.rate_per_s);
        out += line;
      }
      std::snprintf(
          line, sizeof(line),
          "%-14s tracked=%llu records=%llu bytes=%s evictions=%llu\n",
          tier.tier.c_str(), static_cast<unsigned long long>(tier.tracked_keys),
          static_cast<unsigned long long>(tier.records),
          human_bytes(tier.bytes).c_str(),
          static_cast<unsigned long long>(tier.evictions));
      out += line;
    }
  }

  if (want("cost") && cost_) {
    const CostSnapshot snap = cost_->snapshot();
    out += '\n';
    std::snprintf(line, sizeof(line),
                  "COST  total=$%.4f burn=$%.2f/mo modelled=%.0fs\n",
                  snap.total_dollars, snap.monthly_burn_dollars,
                  snap.modelled_seconds);
    out += line;
    std::snprintf(line, sizeof(line), "%-14s %10s %10s %10s %10s %10s %10s\n",
                  "TIER", "STORAGE$", "REQUEST$", "EGRESS$", "BURN$/MO",
                  "READ", "WRITE");
    out += line;
    for (const auto& tier : snap.tiers) {
      std::snprintf(line, sizeof(line),
                    "%-14s %10.4f %10.4f %10.4f %10.2f %10s %10s\n",
                    tier.tier.c_str(), tier.storage_dollars,
                    tier.request_dollars, tier.egress_dollars,
                    tier.monthly_burn_dollars,
                    human_bytes(tier.client_read_bytes).c_str(),
                    human_bytes(tier.client_write_bytes).c_str());
      out += line;
    }
    if (!snap.rules.empty()) {
      std::snprintf(line, sizeof(line), "%4s %-16s %10s %8s %10s\n", "RULE",
                    "NAME", "BYTES", "OBJ", "$");
      out += line;
      for (const auto& rule : snap.rules) {
        std::snprintf(line, sizeof(line), "%4llu %-16s %10s %8llu %10.6f\n",
                      static_cast<unsigned long long>(rule.rule_id),
                      (rule.rule_name.empty() ? "-" : rule.rule_name).c_str(),
                      human_bytes(rule.bytes_moved).c_str(),
                      static_cast<unsigned long long>(rule.objects_moved),
                      rule.dollars);
        out += line;
      }
    }
  }

  // Pool saturation (every PoolMetrics-bound pool in the process).
  if (want("pool")) {
    const std::string pools = render_pool_table();
    if (!pools.empty()) {
      out += '\n';
      out += pools;
    }
  }

  // Overload front door: shed level, pressure signals and per-tenant
  // admitted/shed/throttled counts (only when a server wired a controller).
  const AdmissionController* admission =
      admission_view_.load(std::memory_order_acquire);
  if (want("admission") && admission != nullptr) {
    const AdmissionController::Snapshot snap = admission->snapshot();
    static constexpr const char* kLevelNames[] = {
        "?", "shed-reads", "shed-writes", "shed-background", "none"};
    const int level =
        snap.shed_level >= 1 && snap.shed_level <= 4 ? snap.shed_level : 0;
    out += '\n';
    std::snprintf(line, sizeof(line),
                  "ADMISSION  %s shedding=%s burn=%.2f inflight=%.0f%% "
                  "admitted=%llu shed=%llu throttled=%llu\n",
                  snap.enabled ? "enabled" : "disabled", kLevelNames[level],
                  snap.burn_short, snap.inflight_fraction * 100.0,
                  static_cast<unsigned long long>(snap.admitted),
                  static_cast<unsigned long long>(snap.shed),
                  static_cast<unsigned long long>(snap.throttled));
    out += line;
    if (!snap.tenants.empty()) {
      std::snprintf(line, sizeof(line), "%-20s %10s %10s %10s\n", "TENANT",
                    "ADMITTED", "SHED", "THROTTLED");
      out += line;
      for (const auto& tenant : snap.tenants) {
        std::snprintf(line, sizeof(line), "%-20s %10llu %10llu %10llu\n",
                      tenant.tenant.c_str(),
                      static_cast<unsigned long long>(tenant.admitted),
                      static_cast<unsigned long long>(tenant.shed),
                      static_cast<unsigned long long>(tenant.throttled));
        out += line;
      }
    }
  }
  return out;
}

void TieraInstance::tick_observability(Duration modelled_elapsed) {
  if (heat_) heat_->on_tick(modelled_elapsed);
  if (cost_) {
    std::vector<TierUsage> usage;
    const auto snapshot = tier_snapshot();
    usage.reserve(snapshot.size());
    for (const auto& entry : snapshot) {
      const TierStats& s = entry.tier->stats();
      usage.push_back({entry.label, entry.tier->used(),
                       entry.tier->capacity(),
                       s.puts.load(std::memory_order_relaxed),
                       s.gets.load(std::memory_order_relaxed),
                       s.removes.load(std::memory_order_relaxed)});
    }
    cost_->accrue(usage, modelled_elapsed);
  }
}

double TieraInstance::monthly_cost(double observed_seconds) const {
  return CostModel::total_monthly_cost(tiers(), observed_seconds);
}

std::vector<TierCost> TieraInstance::cost_breakdown(
    double observed_seconds) const {
  return CostModel::cost_breakdown(tiers(), observed_seconds);
}

}  // namespace tiera
