#include "core/control.h"

#include <algorithm>

#include "common/logging.h"
#include "common/profile_stack.h"
#include "common/trace_context.h"
#include "core/instance.h"
#include "obs/stage.h"
#include "obs/trace.h"

namespace tiera {

ControlLayer::ControlLayer(TieraInstance& instance,
                           std::size_t response_threads, Duration timer_tick)
    : instance_(instance),
      response_pool_(response_threads, "tiera-responses"),
      timer_tick_(timer_tick) {
  MetricsRegistry& reg = MetricsRegistry::global();
  metrics_.events_fired = &reg.counter("tiera_control_events_fired_total");
  metrics_.responses_failed =
      &reg.counter("tiera_control_responses_failed_total");
  metrics_.rules_evaluated = &reg.counter("tiera_control_rules_evaluated_total");
  metrics_.queue_depth = &reg.gauge("tiera_control_queue_depth");
  metrics_.pool_active_workers = &reg.gauge("tiera_control_pool_active_workers");
  metrics_.active_responses = &reg.gauge("tiera_control_active_responses");
  metrics_.rules = &reg.gauge("tiera_control_rules");
  metrics_.response_latency =
      &reg.histogram("tiera_control_response_latency_ms");
  // The observer outlives the pool (gauges live in the process-wide
  // registry), so capture the gauges, not `this`.
  Gauge* queue_depth = metrics_.queue_depth;
  Gauge* workers = metrics_.pool_active_workers;
  response_pool_.set_observer(
      [queue_depth, workers](std::size_t depth, std::size_t running) {
        queue_depth->set(static_cast<double>(depth));
        workers->set(static_cast<double>(running));
      });
}

ControlLayer::~ControlLayer() { stop(); }

void ControlLayer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  timer_thread_ = std::thread([this] { timer_loop(); });
}

void ControlLayer::stop() {
  if (!running_.exchange(false)) return;
  if (timer_thread_.joinable()) timer_thread_.join();
  response_pool_.shutdown();
}

std::uint64_t ControlLayer::add_rule(Rule rule) {
  rule.id = next_rule_id_.fetch_add(1);
  // Per-rule attribution series. The id labels every series so rules with
  // the same (or no) name stay distinguishable; the name label keeps the
  // exposition human-readable.
  {
    const MetricsRegistry::Labels labels = {
        {"rule", std::to_string(rule.id)}, {"name", rule.name}};
    MetricsRegistry& reg = MetricsRegistry::global();
    auto stats = std::make_shared<RuleStats>();
    stats->fires = &reg.counter("tiera_rule_fires_total", labels);
    stats->errors = &reg.counter("tiera_rule_errors_total", labels);
    stats->bytes_moved = &reg.counter("tiera_rule_bytes_moved_total", labels);
    stats->objects_touched =
        &reg.counter("tiera_rule_objects_touched_total", labels);
    stats->latency = &reg.histogram("tiera_rule_response_latency_ms", labels);
    rule.stats = std::move(stats);
  }
  if (rule.event.kind == EventKind::kTimer) {
    const auto scaled = std::chrono::duration_cast<Duration>(
        rule.event.timer.period * time_scale());
    rule.next_deadline_ns->store((now() + scaled).time_since_epoch().count());
  }
  if (rule.event.kind == EventKind::kThreshold) {
    rule.threshold_state->store(rule.event.threshold.threshold);
  }
  auto shared = std::make_shared<Rule>(std::move(rule));
  std::unique_lock lock(rules_mu_);
  rules_.push_back(shared);
  metrics_.rules->set(static_cast<double>(rules_.size()));
  return shared->id;
}

Status ControlLayer::remove_rule(std::uint64_t rule_id) {
  std::unique_lock lock(rules_mu_);
  auto it = std::find_if(
      rules_.begin(), rules_.end(),
      [rule_id](const auto& rule) { return rule->id == rule_id; });
  if (it == rules_.end()) return Status::NotFound("no such rule");
  rules_.erase(it);
  metrics_.rules->set(static_cast<double>(rules_.size()));
  return Status::Ok();
}

void ControlLayer::clear_rules() {
  std::unique_lock lock(rules_mu_);
  rules_.clear();
  metrics_.rules->set(0);
}

std::size_t ControlLayer::rule_count() const {
  std::shared_lock lock(rules_mu_);
  return rules_.size();
}

std::vector<ControlLayer::RuleActivity> ControlLayer::rule_activity() const {
  std::vector<std::shared_ptr<Rule>> rules;
  {
    std::shared_lock lock(rules_mu_);
    rules = rules_;
  }
  std::vector<RuleActivity> out;
  out.reserve(rules.size());
  for (const auto& rule : rules) {
    RuleActivity activity;
    activity.id = rule->id;
    activity.name = rule->name;
    activity.event = rule->event.describe();
    if (rule->stats) {
      activity.fires = rule->stats->fires->value();
      activity.errors = rule->stats->errors->value();
      activity.bytes_moved = rule->stats->bytes_moved->value();
      activity.objects_touched = rule->stats->objects_touched->value();
      activity.p50_ms = rule->stats->latency->percentile_ms(0.5);
      activity.p99_ms = rule->stats->latency->percentile_ms(0.99);
      activity.last_error = rule->stats->last_error();
    }
    out.push_back(std::move(activity));
  }
  return out;
}

void ControlLayer::run_responses(const std::shared_ptr<Rule>& rule,
                                 EventContext& ctx) {
  // The rule firing is a span: a child of the triggering request when the
  // ambient context carries one (foreground rules and pool tasks inherit it
  // via ThreadPool), a new root for timer/threshold firings off the timer
  // thread.
  TraceScope event_span;
  RequestTracer& tracer = instance_.tracer();
  events_fired_.fetch_add(1, std::memory_order_relaxed);
  metrics_.events_fired->inc();
  metrics_.active_responses->add(1);
  if (rule->stats) rule->stats->fires->inc();
  // Engine ops attribute data-movement spend to the firing rule (CostMeter).
  // Saved/restored around the loop: a response may re-enter the control
  // layer (dynamic policy change) with its own rule context.
  const std::uint64_t saved_rule_id = ctx.rule_id;
  std::string saved_rule_name = std::move(ctx.rule_name);
  ctx.rule_id = rule->id;
  ctx.rule_name = rule->name;
  const std::uint64_t bytes_before = ctx.bytes_moved;
  const std::uint64_t objects_before = ctx.objects_touched;
  bool all_ok = true;
  Stopwatch watch;
  for (const auto& response : rule->responses) {
    TraceScope response_span;
    const Status s = response->execute(ctx);
    tracer.record(response_span, TraceOp::kResponse, response->describe(),
                  ctx.object_id, "", s.ok(), rule->id);
    if (!s.ok()) {
      all_ok = false;
      responses_failed_.fetch_add(1, std::memory_order_relaxed);
      metrics_.responses_failed->inc();
      if (rule->stats) {
        rule->stats->errors->inc();
        rule->stats->record_error(s.to_string());
      }
      TIERA_LOG(kDebug, "control")
          << "response failed: " << response->describe() << " -> "
          << s.to_string();
    }
  }
  const Duration elapsed = watch.elapsed();
  metrics_.response_latency->record(elapsed);
  if (rule->stats) {
    rule->stats->latency->record(elapsed);
    rule->stats->bytes_moved->inc(ctx.bytes_moved - bytes_before);
    rule->stats->objects_touched->inc(ctx.objects_touched - objects_before);
  }
  tracer.record(event_span, TraceOp::kEvent,
                rule->name.empty() ? "rule:" + std::to_string(rule->id)
                                   : "rule:" + rule->name,
                ctx.object_id, "", all_ok, rule->id);
  ctx.rule_id = saved_rule_id;
  ctx.rule_name = std::move(saved_rule_name);
  metrics_.active_responses->add(-1);
}

void ControlLayer::execute_rule(const std::shared_ptr<Rule>& rule,
                                EventContext ctx) {
  // Single entry point for pool-dispatched and timer-fired rules: give the
  // whole execution a "background" op breakdown (its engine calls re-charge
  // to tier.io / metadata.lookup / journal.append as usual).
  OpStageScope stage_scope(StageOp::kBackground);
  StageTimer policy_stage(Stage::kPolicyEval);
  run_responses(rule, ctx);
}

bool ControlLayer::action_rule_matches(const Rule& rule, ActionType action,
                                       const EventContext& ctx,
                                       std::string_view tier) const {
  if (rule.event.kind != EventKind::kAction) return false;
  if (rule.event.action.action != action) return false;
  if (rule.event.action.tier_filter != tier) return false;
  if (!rule.event.action.tag_filter.empty()) {
    const auto meta = instance_.metadata().get(ctx.object_id);
    if (!meta || !meta->has_tag(rule.event.action.tag_filter)) return false;
  }
  return true;
}

void ControlLayer::on_action(ActionType action, EventContext& ctx,
                             const std::vector<std::string>& tiers_touched,
                             MatchScope scope) {
  // Snapshot matching rules under the shared lock, run them outside it (a
  // response may itself add/remove rules — dynamic policy change).
  std::vector<std::shared_ptr<Rule>> foreground;
  std::vector<std::shared_ptr<Rule>> background;
  {
    std::shared_lock lock(rules_mu_);
    metrics_.rules_evaluated->inc(rules_.size());
    for (const auto& rule : rules_) {
      bool matches = false;
      if (scope != MatchScope::kFilteredOnly) {
        matches = action_rule_matches(*rule, action, ctx, "");
      }
      if (!matches && scope != MatchScope::kUnfilteredOnly) {
        for (const auto& tier : tiers_touched) {
          if (action_rule_matches(*rule, action, ctx, tier)) {
            matches = true;
            break;
          }
        }
      }
      if (!matches) continue;
      (rule->event.background ? background : foreground).push_back(rule);
    }
  }
  for (const auto& rule : foreground) {
    run_responses(rule, ctx);
  }
  for (const auto& rule : background) {
    // Background responses get their own context copy; the payload is shared
    // (immutable) so inserts can still be stored asynchronously.
    response_pool_.submit(
        [this, rule, ctx_copy = ctx]() mutable { execute_rule(rule, ctx_copy); });
  }
}

void ControlLayer::evaluate_thresholds() {
  std::vector<std::shared_ptr<Rule>> to_fire_fg;
  std::vector<std::shared_ptr<Rule>> to_fire_bg;
  {
    std::shared_lock lock(rules_mu_);
    metrics_.rules_evaluated->inc(rules_.size());
    for (const auto& rule : rules_) {
      if (rule->event.kind != EventKind::kThreshold) continue;
      const ThresholdEventDef& def = rule->event.threshold;
      double value = 0;
      if (def.attribute == TierAttribute::kSloViolated) {
        // SLO events carry the SLO name in `tier`; their value comes from
        // the engine, not a tier lookup.
        value = instance_.slo().violated_value(def.tier);
      } else {
        const TierPtr tier = instance_.tier(def.tier);
        if (!tier) continue;
        switch (def.attribute) {
          case TierAttribute::kFillFraction:
            value = tier->fill_fraction();
            break;
          case TierAttribute::kUsedBytes:
            value = static_cast<double>(tier->used());
            break;
          case TierAttribute::kObjectCount:
            value = static_cast<double>(tier->object_count());
            break;
          case TierAttribute::kBreakerState:
            value = static_cast<double>(
                static_cast<int>(tier->breaker_state()));
            break;
          case TierAttribute::kSloViolated:
            break;  // handled above
        }
      }
      const double current = rule->threshold_state->load();
      const bool over = value >= current;
      if (over) {
        if (def.sliding) {
          // Advance to the next multiple beyond the observed value so a burst
          // fires once, then fire.
          double next = current;
          while (next <= value) next += def.threshold;
          double expected_thr = current;
          if (rule->threshold_state->compare_exchange_strong(expected_thr,
                                                             next)) {
            (rule->event.background ? to_fire_bg : to_fire_fg).push_back(rule);
          }
        } else {
          bool expected = true;
          if (rule->armed->compare_exchange_strong(expected, false)) {
            (rule->event.background ? to_fire_bg : to_fire_fg).push_back(rule);
          }
        }
      } else if (!def.sliding) {
        rule->armed->store(true);  // re-arm once back below the threshold
      }
    }
  }
  EventContext ctx;
  ctx.instance = &instance_;
  for (const auto& rule : to_fire_fg) run_responses(rule, ctx);
  for (const auto& rule : to_fire_bg) {
    response_pool_.submit([this, rule] {
      EventContext bg_ctx;
      bg_ctx.instance = &instance_;
      execute_rule(rule, bg_ctx);
    });
  }
}

void ControlLayer::request_threshold_evaluation() {
  thresholds_requested_.store(true, std::memory_order_release);
}

void ControlLayer::timer_loop() {
  profile_set_thread_name("tiera-timer");
  while (running_.load(std::memory_order_relaxed)) {
    // Tick in scaled wall time so modelled timer periods stay proportional.
    const double scale = time_scale();
    const auto wall_tick = std::chrono::duration_cast<Duration>(
        timer_tick_ * (scale > 0 ? scale : 1.0));
    precise_sleep(std::max<Duration>(wall_tick, from_ms(1)));

    // Heat decay and cost accrual advance in modelled time, one tick per
    // pass (mirroring how timer periods scale).
    instance_.tick_observability(timer_tick_);

    // SLO objectives are re-measured every tick; a compliance flip makes
    // `slo.* == violated` rules fire (or re-arm) on this same pass.
    bool thresholds_due =
        thresholds_requested_.exchange(false, std::memory_order_acq_rel);
    if (instance_.slo().evaluate()) thresholds_due = true;
    if (thresholds_due) {
      OpStageScope stage_scope(StageOp::kBackground);
      StageTimer policy_stage(Stage::kPolicyEval);
      evaluate_thresholds();
    }

    std::vector<std::shared_ptr<Rule>> due;
    {
      std::shared_lock lock(rules_mu_);
      const auto t = now().time_since_epoch().count();
      for (const auto& rule : rules_) {
        if (rule->event.kind != EventKind::kTimer) continue;
        if (rule->next_deadline_ns->load() <= t) {
          const auto period_scaled = std::chrono::duration_cast<Duration>(
              rule->event.timer.period * (scale > 0 ? scale : 1.0));
          rule->next_deadline_ns->store(
              (now() + period_scaled).time_since_epoch().count());
          due.push_back(rule);
        }
      }
    }
    for (const auto& rule : due) {
      // Paper: the timer thread signals a free pool thread to service the
      // response and keeps checking other timer events.
      response_pool_.submit([this, rule] {
        EventContext ctx;
        ctx.instance = &instance_;
        execute_rule(rule, ctx);
      });
    }
  }
}

void ControlLayer::drain() { response_pool_.wait_idle(); }

}  // namespace tiera
