// The response catalogue of Table 1, plus the conditional wrapper used by
// eviction policies (Fig. 5) and small utility responses.
//
// Responses are thin, thread-safe wrappers over TieraInstance engine
// operations; each corresponds one-to-one with a verb in the specification
// language.
#pragma once

#include <functional>
#include <optional>

#include "common/crypto.h"
#include "common/rate_limiter.h"
#include "core/policy.h"

namespace tiera {

// store(what: S, to: tiers) / storeOnce(...): places object bytes. storeOnce
// only stores bytes whose content is unique (dedup via content hashing).
class StoreResponse final : public Response {
 public:
  StoreResponse(Selector what, std::vector<std::string> to, bool once = false)
      : what_(std::move(what)), to_(std::move(to)), once_(once) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
  std::vector<std::string> to_;
  bool once_;
};

// retrieve(what: S): touches/prefetches objects from their tiers.
class RetrieveResponse final : public Response {
 public:
  explicit RetrieveResponse(Selector what) : what_(std::move(what)) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
};

// copy(what: S, to: tiers, bandwidth: B/s): replicates objects, optionally
// throttled (the Fig. 14 knob).
class CopyResponse final : public Response {
 public:
  CopyResponse(Selector what, std::vector<std::string> to,
               double bandwidth_bytes_per_sec = 0)
      : what_(std::move(what)),
        to_(std::move(to)),
        limiter_(bandwidth_bytes_per_sec) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
  std::vector<std::string> to_;
  RateLimiter limiter_;
};

// move(what: S, to: tiers, bandwidth: B/s): copy + remove from the selector's
// source tier (or from every other tier when the selector names none).
class MoveResponse final : public Response {
 public:
  MoveResponse(Selector what, std::vector<std::string> to,
               double bandwidth_bytes_per_sec = 0)
      : what_(std::move(what)),
        to_(std::move(to)),
        limiter_(bandwidth_bytes_per_sec) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
  std::vector<std::string> to_;
  RateLimiter limiter_;
};

// delete(what: S, from: tiers): drops bytes from the named tiers (all tiers
// when empty); an object with no remaining location disappears entirely.
class DeleteResponse final : public Response {
 public:
  DeleteResponse(Selector what, std::vector<std::string> from = {})
      : what_(std::move(what)), from_(std::move(from)) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
  std::vector<std::string> from_;
};

class EncryptResponse final : public Response {
 public:
  EncryptResponse(Selector what, std::string_view passphrase)
      : what_(std::move(what)), key_(derive_key(passphrase)) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
  ChaChaKey key_;
};

class DecryptResponse final : public Response {
 public:
  DecryptResponse(Selector what, std::string_view passphrase)
      : what_(std::move(what)), key_(derive_key(passphrase)) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
  ChaChaKey key_;
};

class CompressResponse final : public Response {
 public:
  explicit CompressResponse(Selector what) : what_(std::move(what)) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
};

class UncompressResponse final : public Response {
 public:
  explicit UncompressResponse(Selector what) : what_(std::move(what)) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
};

// grow(what: tier, increment: P%): expands a tier. `provisioning_delay`
// models the time to spawn the backing node (≈1 min in the paper's Fig. 16);
// `remap_fraction` of the tier's replicated objects are invalidated after the
// resize (consistent-hash remapping → the paper's cache-miss spike).
class GrowResponse final : public Response {
 public:
  GrowResponse(std::string tier, double percent,
               Duration provisioning_delay = Duration::zero(),
               double remap_fraction = 0.0)
      : tier_(std::move(tier)),
        percent_(percent),
        provisioning_delay_(provisioning_delay),
        remap_fraction_(remap_fraction) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  std::string tier_;
  double percent_;
  Duration provisioning_delay_;
  double remap_fraction_;
};

class ShrinkResponse final : public Response {
 public:
  ShrinkResponse(std::string tier, double percent)
      : tier_(std::move(tier)), percent_(percent) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  std::string tier_;
  double percent_;
};

// prefetch(what: get.object, lookahead: K, to: tiers) — predictive data
// migration (the paper's §6: "predictive data and migration/prefetching").
// When the accessed object is a chunk in FileAdapter naming
// (`<file>#<index>`), the next K chunks are copied toward the fast tier in
// the background, so sequential file scans stay ahead of the reader.
class PrefetchResponse final : public Response {
 public:
  PrefetchResponse(std::size_t lookahead, std::vector<std::string> to)
      : lookahead_(lookahead), to_(std::move(to)) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  std::size_t lookahead_;
  std::vector<std::string> to_;
};

// snapshot(what: S, name: "label"[, to: tiers]) — immutable point-in-time
// copies (`<id>@snap/<label>`); one of the responses the paper plans to add
// beyond Table 1 ("data snapshotting, and object versioning").
class SnapshotResponse final : public Response {
 public:
  SnapshotResponse(Selector what, std::string name,
                   std::vector<std::string> to = {})
      : what_(std::move(what)), name_(std::move(name)), to_(std::move(to)) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
  std::string name_;
  std::vector<std::string> to_;
};

// `insert.object.dirty = true;` style assignments inside responses.
class SetDirtyResponse final : public Response {
 public:
  SetDirtyResponse(Selector what, bool dirty)
      : what_(std::move(what)), dirty_(dirty) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Selector what_;
  bool dirty_;
};

// if (condition) { responses } — executed while the condition holds (bounded;
// stops when an iteration makes no progress), which gives the paper's
// eviction idiom its intended make-room semantics.
class ConditionalResponse final : public Response {
 public:
  ConditionalResponse(Condition condition, ResponseList body,
                      std::size_t max_iterations = 100000)
      : condition_(std::move(condition)),
        body_(std::move(body)),
        max_iterations_(max_iterations) {}
  Status execute(EventContext& ctx) override;
  std::string describe() const override;

 private:
  Condition condition_;
  ResponseList body_;
  std::size_t max_iterations_;
};

// Arbitrary code response: the extension point for applications (and the
// failover monitor); also handy in tests.
class CallbackResponse final : public Response {
 public:
  CallbackResponse(std::string label,
                   std::function<Status(EventContext&)> fn)
      : label_(std::move(label)), fn_(std::move(fn)) {}
  Status execute(EventContext& ctx) override { return fn_(ctx); }
  std::string describe() const override { return "callback(" + label_ + ")"; }

 private:
  std::string label_;
  std::function<Status(EventContext&)> fn_;
};

// Convenience builders keep instance definitions terse.
ResponsePtr make_store(Selector what, std::vector<std::string> to);
ResponsePtr make_store_once(Selector what, std::vector<std::string> to);
ResponsePtr make_copy(Selector what, std::vector<std::string> to,
                      double bandwidth_bps = 0);
ResponsePtr make_move(Selector what, std::vector<std::string> to,
                      double bandwidth_bps = 0);
ResponsePtr make_delete(Selector what, std::vector<std::string> from = {});
ResponsePtr make_evict_lru(std::string from_tier, std::string to_tier);
ResponsePtr make_evict_mru(std::string from_tier, std::string to_tier);
ResponsePtr make_grow(std::string tier, double percent,
                      Duration provisioning_delay = Duration::zero(),
                      double remap_fraction = 0.0);

}  // namespace tiera
