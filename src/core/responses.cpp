#include "core/responses.h"

#include <sstream>

#include "common/logging.h"
#include "core/instance.h"

namespace tiera {

namespace {
std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}
}  // namespace

// --- StoreResponse -----------------------------------------------------------

Status StoreResponse::execute(EventContext& ctx) {
  const std::vector<std::string> ids = what_.resolve(ctx);
  Status last = Status::Ok();
  for (const auto& id : ids) {
    std::shared_ptr<const Bytes> payload;
    if (id == ctx.object_id && ctx.payload) {
      payload = ctx.payload;
    }
    const Status s =
        ctx.instance->engine_store(id, payload, to_, once_, &ctx);
    if (!s.ok()) {
      last = s;
      if (ctx.placement_error.ok()) ctx.placement_error = s;
    }
  }
  return last;
}

std::string StoreResponse::describe() const {
  return std::string(once_ ? "storeOnce" : "store") + "(what: " +
         what_.describe() + ", to: " + join(to_) + ")";
}

// --- RetrieveResponse --------------------------------------------------------

Status RetrieveResponse::execute(EventContext& ctx) {
  return ctx.instance->engine_retrieve(what_.resolve(ctx));
}

std::string RetrieveResponse::describe() const {
  return "retrieve(what: " + what_.describe() + ")";
}

// --- CopyResponse ------------------------------------------------------------

Status CopyResponse::execute(EventContext& ctx) {
  const Status s = ctx.instance->engine_copy(
      what_.resolve(ctx), to_, limiter_.unlimited() ? nullptr : &limiter_,
      &ctx);
  if (!s.ok() && ctx.placement_error.ok()) ctx.placement_error = s;
  return s;
}

std::string CopyResponse::describe() const {
  std::ostringstream out;
  out << "copy(what: " << what_.describe() << ", to: " << join(to_);
  if (!limiter_.unlimited()) {
    out << ", bandwidth: " << limiter_.bytes_per_second() << "B/s";
  }
  out << ")";
  return out.str();
}

// --- MoveResponse ------------------------------------------------------------

Status MoveResponse::execute(EventContext& ctx) {
  // The source tier is implied by the selector (move what is *in tier X* to
  // Y removes it from X); selectors without a tier move from everywhere.
  std::vector<std::string> from;
  if (!what_.tier.empty()) from.push_back(what_.tier);
  return ctx.instance->engine_move(what_.resolve(ctx), to_, from,
                                   limiter_.unlimited() ? nullptr : &limiter_,
                                   &ctx);
}

std::string MoveResponse::describe() const {
  std::ostringstream out;
  out << "move(what: " << what_.describe() << ", to: " << join(to_);
  if (!limiter_.unlimited()) {
    out << ", bandwidth: " << limiter_.bytes_per_second() << "B/s";
  }
  out << ")";
  return out.str();
}

// --- DeleteResponse ----------------------------------------------------------

Status DeleteResponse::execute(EventContext& ctx) {
  return ctx.instance->engine_delete(what_.resolve(ctx), from_, &ctx);
}

std::string DeleteResponse::describe() const {
  std::string out = "delete(what: " + what_.describe();
  if (!from_.empty()) out += ", from: " + join(from_);
  return out + ")";
}

// --- Encrypt / Decrypt -------------------------------------------------------

Status EncryptResponse::execute(EventContext& ctx) {
  return ctx.instance->engine_encrypt(what_.resolve(ctx), key_);
}

std::string EncryptResponse::describe() const {
  return "encrypt(what: " + what_.describe() + ", key: ***)";
}

Status DecryptResponse::execute(EventContext& ctx) {
  return ctx.instance->engine_decrypt(what_.resolve(ctx), key_);
}

std::string DecryptResponse::describe() const {
  return "decrypt(what: " + what_.describe() + ", key: ***)";
}

// --- Compress / Uncompress ---------------------------------------------------

Status CompressResponse::execute(EventContext& ctx) {
  return ctx.instance->engine_compress(what_.resolve(ctx));
}

std::string CompressResponse::describe() const {
  return "compress(what: " + what_.describe() + ")";
}

Status UncompressResponse::execute(EventContext& ctx) {
  return ctx.instance->engine_uncompress(what_.resolve(ctx));
}

std::string UncompressResponse::describe() const {
  return "uncompress(what: " + what_.describe() + ")";
}

// --- Grow / Shrink -----------------------------------------------------------

Status GrowResponse::execute(EventContext& ctx) {
  TIERA_RETURN_IF_ERROR(
      ctx.instance->engine_grow(tier_, percent_, provisioning_delay_));
  if (remap_fraction_ > 0) {
    ctx.instance->remap_invalidate(tier_, remap_fraction_);
  }
  ++ctx.mutations;
  return Status::Ok();
}

std::string GrowResponse::describe() const {
  std::ostringstream out;
  out << "grow(what: " << tier_ << ", increment: " << percent_ << "%)";
  return out.str();
}

Status ShrinkResponse::execute(EventContext& ctx) {
  ++ctx.mutations;
  return ctx.instance->engine_shrink(tier_, percent_);
}

std::string ShrinkResponse::describe() const {
  std::ostringstream out;
  out << "shrink(what: " << tier_ << ", decrement: " << percent_ << "%)";
  return out.str();
}

// --- Prefetch ----------------------------------------------------------------

Status PrefetchResponse::execute(EventContext& ctx) {
  // Chunk naming from the POSIX layer: "<file>#<index>". Non-chunk objects
  // have no successor to prefetch.
  const std::string& id = ctx.object_id;
  const auto hash_at = id.rfind('#');
  if (hash_at == std::string::npos || hash_at + 1 >= id.size()) {
    return Status::Ok();
  }
  const std::string base = id.substr(0, hash_at + 1);
  std::uint64_t index = 0;
  for (std::size_t i = hash_at + 1; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return Status::Ok();  // not a chunk
    index = index * 10 + static_cast<std::uint64_t>(id[i] - '0');
  }
  std::vector<std::string> ahead;
  ahead.reserve(lookahead_);
  for (std::size_t k = 1; k <= lookahead_; ++k) {
    const std::string next = base + std::to_string(index + k);
    if (ctx.instance->contains(next)) ahead.push_back(next);
  }
  if (ahead.empty()) return Status::Ok();
  return ctx.instance->engine_copy(ahead, to_, nullptr, &ctx);
}

std::string PrefetchResponse::describe() const {
  std::ostringstream out;
  out << "prefetch(what: get.object, lookahead: " << lookahead_
      << ", to: " << join(to_) << ")";
  return out.str();
}

// --- Snapshot ----------------------------------------------------------------

Status SnapshotResponse::execute(EventContext& ctx) {
  const Status s =
      ctx.instance->engine_snapshot(what_.resolve(ctx), name_, to_);
  if (s.ok()) ++ctx.mutations;
  return s;
}

std::string SnapshotResponse::describe() const {
  std::string out =
      "snapshot(what: " + what_.describe() + ", name: \"" + name_ + "\"";
  if (!to_.empty()) out += ", to: " + join(to_);
  return out + ")";
}

// --- SetDirty ----------------------------------------------------------------

Status SetDirtyResponse::execute(EventContext& ctx) {
  return ctx.instance->engine_set_dirty(what_.resolve(ctx), dirty_);
}

std::string SetDirtyResponse::describe() const {
  return what_.describe() + ".dirty = " + (dirty_ ? "true" : "false");
}

// --- ConditionalResponse -----------------------------------------------------

Status ConditionalResponse::execute(EventContext& ctx) {
  Status last = Status::Ok();
  for (std::size_t iteration = 0; iteration < max_iterations_; ++iteration) {
    if (!condition_.evaluate(ctx)) return last;
    const std::uint64_t mutations_before = ctx.mutations;
    for (const auto& response : body_) {
      const Status s = response->execute(ctx);
      if (!s.ok()) last = s;
    }
    // No progress: a plain one-shot `if` body, or eviction that cannot free
    // space. Either way, repeating would loop forever.
    if (ctx.mutations == mutations_before) return last;
  }
  return last;
}

std::string ConditionalResponse::describe() const {
  std::string out = "if (" + condition_.describe() + ") { ";
  for (const auto& response : body_) out += response->describe() + "; ";
  return out + "}";
}

// --- Builders ----------------------------------------------------------------

ResponsePtr make_store(Selector what, std::vector<std::string> to) {
  return std::make_unique<StoreResponse>(std::move(what), std::move(to));
}

ResponsePtr make_store_once(Selector what, std::vector<std::string> to) {
  return std::make_unique<StoreResponse>(std::move(what), std::move(to),
                                         /*once=*/true);
}

ResponsePtr make_copy(Selector what, std::vector<std::string> to,
                      double bandwidth_bps) {
  return std::make_unique<CopyResponse>(std::move(what), std::move(to),
                                        bandwidth_bps);
}

ResponsePtr make_move(Selector what, std::vector<std::string> to,
                      double bandwidth_bps) {
  return std::make_unique<MoveResponse>(std::move(what), std::move(to),
                                        bandwidth_bps);
}

ResponsePtr make_delete(Selector what, std::vector<std::string> from) {
  return std::make_unique<DeleteResponse>(std::move(what), std::move(from));
}

ResponsePtr make_evict_lru(std::string from_tier, std::string to_tier) {
  ResponseList body;
  body.push_back(std::make_unique<MoveResponse>(
      Selector::oldest_in(from_tier), std::vector<std::string>{to_tier}));
  return std::make_unique<ConditionalResponse>(
      Condition::tier_cannot_fit(from_tier), std::move(body));
}

ResponsePtr make_evict_mru(std::string from_tier, std::string to_tier) {
  ResponseList body;
  body.push_back(std::make_unique<MoveResponse>(
      Selector::newest_in(from_tier), std::vector<std::string>{to_tier}));
  return std::make_unique<ConditionalResponse>(
      Condition::tier_cannot_fit(from_tier), std::move(body));
}

ResponsePtr make_grow(std::string tier, double percent,
                      Duration provisioning_delay, double remap_fraction) {
  return std::make_unique<GrowResponse>(std::move(tier), percent,
                                        provisioning_delay, remap_fraction);
}

}  // namespace tiera
