#include "core/policy.h"

#include <sstream>

#include "core/instance.h"

namespace tiera {

std::string_view to_string(ActionType a) {
  switch (a) {
    case ActionType::kInsert: return "insert";
    case ActionType::kGet: return "get";
    case ActionType::kDelete: return "delete";
  }
  return "?";
}

std::string EventDef::describe() const {
  std::ostringstream out;
  if (background) out << "background ";
  switch (kind) {
    case EventKind::kAction:
      out << "event(" << to_string(action.action);
      if (!action.tier_filter.empty()) out << ".into == " << action.tier_filter;
      if (!action.tag_filter.empty()) out << " && tag == " << action.tag_filter;
      out << ")";
      break;
    case EventKind::kTimer:
      out << "event(time=" << to_seconds(timer.period) << "s)";
      break;
    case EventKind::kThreshold: {
      if (threshold.attribute == TierAttribute::kSloViolated) {
        // `tier` carries the SLO name for SLO events.
        out << "event(slo." << threshold.tier << " == violated)";
        break;
      }
      out << "event(" << threshold.tier;
      switch (threshold.attribute) {
        case TierAttribute::kFillFraction:
          out << ".filled == " << threshold.threshold * 100 << "%";
          break;
        case TierAttribute::kUsedBytes:
          out << ".used == " << threshold.threshold << "B";
          break;
        case TierAttribute::kObjectCount:
          out << ".objects == " << threshold.threshold;
          break;
        case TierAttribute::kBreakerState:
          out << ".breaker == "
              << (threshold.threshold >= 2   ? "open"
                  : threshold.threshold >= 1 ? "half-open"
                                             : "closed");
          break;
        case TierAttribute::kSloViolated:
          break;  // handled above
      }
      out << ")";
      break;
    }
  }
  return out.str();
}

std::vector<std::string> Selector::resolve(EventContext& ctx) const {
  switch (pick) {
    case Pick::kActionObject:
      if (ctx.object_id.empty()) return {};
      return {ctx.object_id};
    case Pick::kById:
      return {id};
    case Pick::kOldest: {
      // Never pick the object of the triggering action: an overwrite's
      // stale copy may top the LRU list, and evicting it would smuggle old
      // bytes past the overwrite.
      auto oldest =
          ctx.instance->metadata().oldest_in_tier(tier, ctx.object_id);
      if (!oldest) return {};
      return {*oldest};
    }
    case Pick::kNewest: {
      auto newest =
          ctx.instance->metadata().newest_in_tier(tier, ctx.object_id);
      if (!newest) return {};
      return {*newest};
    }
    case Pick::kFilter: {
      return ctx.instance->metadata().select([&](const ObjectMeta& m) {
        if (!tier.empty() && !m.in_tier(tier)) return false;
        if (dirty.has_value() && m.dirty != *dirty) return false;
        if (tag.has_value() && !m.has_tag(*tag)) return false;
        return true;
      });
    }
  }
  return {};
}

std::string Selector::describe() const {
  switch (pick) {
    case Pick::kActionObject: return "insert.object";
    case Pick::kById: return "\"" + id + "\"";
    case Pick::kOldest: return tier + ".oldest";
    case Pick::kNewest: return tier + ".newest";
    case Pick::kFilter: {
      std::string out;
      if (!tier.empty()) out += "object.location == " + tier;
      if (dirty.has_value()) {
        if (!out.empty()) out += " && ";
        out += std::string("object.dirty == ") + (*dirty ? "true" : "false");
      }
      if (tag.has_value()) {
        if (!out.empty()) out += " && ";
        out += "object.tag == \"" + *tag + "\"";
      }
      return out.empty() ? "all objects" : out;
    }
  }
  return "?";
}

bool Condition::evaluate(const EventContext& ctx) const {
  switch (kind) {
    case Kind::kAlways:
      return true;
    case Kind::kTierCannotFit: {
      TierPtr t = ctx.instance->tier(tier);
      if (!t) return false;
      const std::uint64_t cap = t->capacity();
      if (cap == 0) return false;  // unbounded tier always fits
      std::uint64_t need = 0;
      if (ctx.payload) {
        need = ctx.payload->size();
      } else if (!ctx.object_id.empty()) {
        // Promotion/move events carry the object but not its bytes.
        const auto meta = ctx.instance->metadata().get(ctx.object_id);
        if (meta) need = meta->size;
      }
      if (need == 0) return t->used() >= cap;
      return t->used() + need > cap;
    }
    case Kind::kTierFillAtLeast: {
      TierPtr t = ctx.instance->tier(tier);
      if (!t) return false;
      return t->fill_fraction() >= threshold;
    }
    case Kind::kTierUsedAtLeast: {
      TierPtr t = ctx.instance->tier(tier);
      if (!t) return false;
      return static_cast<double>(t->used()) >= threshold;
    }
  }
  return false;
}

std::string Condition::describe() const {
  switch (kind) {
    case Kind::kAlways: return "always";
    case Kind::kTierCannotFit: return tier + ".filled";
    case Kind::kTierFillAtLeast: {
      std::ostringstream out;
      out << tier << ".filled >= " << threshold * 100 << "%";
      return out.str();
    }
    case Kind::kTierUsedAtLeast: {
      std::ostringstream out;
      out << tier << ".used >= " << threshold << "B";
      return out.str();
    }
  }
  return "?";
}

}  // namespace tiera
