// ControlLayer: evaluates events and dispatches responses (§2.2, §3).
//
// Implementation mirrors the paper's prototype: a dedicated thread examines
// timer events; threshold events are evaluated when mutations touch the
// attributes they watch; action events fire in the thread servicing the
// client request. Foreground responses run inline (they gate the request);
// background responses are handed to the response thread pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "obs/pool_metrics.h"

namespace tiera {

class TieraInstance;

class ControlLayer {
 public:
  ControlLayer(TieraInstance& instance, std::size_t response_threads,
               Duration timer_tick);
  ~ControlLayer();

  ControlLayer(const ControlLayer&) = delete;
  ControlLayer& operator=(const ControlLayer&) = delete;

  void start();
  void stop();

  // --- Rule management (dynamic: usable while serving) ----------------------
  std::uint64_t add_rule(Rule rule);
  Status remove_rule(std::uint64_t rule_id);
  void clear_rules();
  std::size_t rule_count() const;

  // --- Event entry points ----------------------------------------------------
  // Which action rules a dispatch pass considers. PUT runs two passes:
  // unfiltered rules first (placement logic), then tier-filtered rules for
  // the tiers the object actually landed in.
  enum class MatchScope { kUnfilteredOnly, kFilteredOnly, kBoth };

  void on_action(ActionType action, EventContext& ctx,
                 const std::vector<std::string>& tiers_touched,
                 MatchScope scope = MatchScope::kBoth);

  // Re-evaluate all threshold rules (call after any mutation).
  void evaluate_thresholds();

  // Ask the timer thread to run evaluate_thresholds() on its next tick.
  // Safe from any context — in particular from a circuit breaker changing
  // state inside a tier op that a response is running while holding an
  // object stripe, where evaluating (and firing rules) inline could
  // deadlock.
  void request_threshold_evaluation();

  // Wait until queued background responses have drained (tests/benches).
  void drain();

  std::uint64_t events_fired() const { return events_fired_.load(); }
  std::uint64_t responses_failed() const { return responses_failed_.load(); }

  // Point-in-time per-rule attribution, for the `top` view and kStats.
  struct RuleActivity {
    std::uint64_t id = 0;
    std::string name;
    std::string event;  // EventDef::describe()
    std::uint64_t fires = 0;
    std::uint64_t errors = 0;
    std::uint64_t bytes_moved = 0;
    std::uint64_t objects_touched = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    std::string last_error;
  };
  std::vector<RuleActivity> rule_activity() const;

 private:
  void execute_rule(const std::shared_ptr<Rule>& rule, EventContext ctx);
  void run_responses(const std::shared_ptr<Rule>& rule, EventContext& ctx);
  void timer_loop();
  bool action_rule_matches(const Rule& rule, ActionType action,
                           const EventContext& ctx,
                           std::string_view tier) const;

  TieraInstance& instance_;
  ThreadPool response_pool_;
  // Declared after the pool it watches so it is destroyed first.
  PoolMetrics response_pool_metrics_{response_pool_};
  const Duration timer_tick_;

  mutable std::shared_mutex rules_mu_;
  std::vector<std::shared_ptr<Rule>> rules_;
  std::atomic<std::uint64_t> next_rule_id_{1};

  std::atomic<bool> running_{false};
  std::atomic<bool> thresholds_requested_{false};
  std::thread timer_thread_;

  std::atomic<std::uint64_t> events_fired_{0};
  std::atomic<std::uint64_t> responses_failed_{0};

  // Registry series (`tiera_control_*`): queue depth / in-flight responses
  // gauges, event + failure counters, response execution latency.
  struct Metrics {
    Counter* events_fired;
    Counter* responses_failed;
    Counter* rules_evaluated;
    Gauge* queue_depth;
    Gauge* pool_active_workers;
    Gauge* active_responses;
    Gauge* rules;
    LatencyHistogram* response_latency;
  };
  Metrics metrics_;
};

}  // namespace tiera
