// Built-in instance templates: programmatic equivalents of every instance
// specification appearing in the paper.
//
//   LowLatencyInstance        Fig. 3  (Memcached + EBS, write-back on timer)
//   PersistentInstance        Fig. 4  (write-through + throttled S3 backup)
//   GrowingInstance           Fig. 6  (grow Memcached at 75% fill)
//   MemcachedReplicated       §4.1.1  (two AZ-separated Memcached tiers)
//   MemcachedEBS              §4.1.1  (write-through Memcached + EBS)
//   MemcachedS3               §4.1.1  (LRU Memcached cache over S3)
//   TI:1 / TI:2 / TI:3        Table 2 (exclusive LRU chain Mem->EBS->S3)
//   HighDurability            Table 3 (immediate EBS backup, S3 every 2 min)
//   LowDurability             Table 3 (Memcached only, S3 every 2 min)
//   ReplicatedEBS             §4.2.2  (two EBS volumes, copy per 50 MB)
//
// Each builder returns a running instance with its policy installed; the
// corresponding textual spec files live under examples/specs/ and parse to
// the same configuration (tests assert the equivalence).
#pragma once

#include <memory>

#include "core/instance.h"
#include "core/responses.h"

namespace tiera {

struct TemplateOptions {
  std::string data_dir = "/tmp/tiera-instance";
  std::size_t response_threads = 4;
  bool persist_metadata = false;
  // Metadata-journal durability (InstanceConfig::journal_*): fsync every
  // acknowledged write, with group commit amortizing the fsyncs across
  // concurrent writers (tierad's --journal-sync/--journal-batch flags).
  bool journal_sync = false;
  std::uint64_t journal_batch_bytes = 256 << 10;
  Duration journal_batch_wait = std::chrono::microseconds(200);
  // Heat & spend telemetry (InstanceConfig::track_heat). Benches that want
  // the bare data path turn it off.
  bool track_heat = true;
  // Applied to spec-file tiers that declare no resilience knobs of their own
  // (tierad's --retries/--deadline/--breaker/--hedge flags land here).
  ResiliencePolicy default_resilience = {};
};

// Fig. 3: store into Memcached on insert; every `writeback_period`, copy
// dirty Memcached objects to EBS. A zero period means write-through.
Result<InstancePtr> make_low_latency_instance(
    const TemplateOptions& opts, std::uint64_t mem_bytes,
    std::uint64_t ebs_bytes, Duration writeback_period);

// Fig. 4: write-through Memcached -> EBS; back EBS up to S3 (40 KB/s) when
// the EBS tier reaches half full.
Result<InstancePtr> make_persistent_instance(const TemplateOptions& opts,
                                             std::uint64_t mem_bytes,
                                             std::uint64_t ebs_bytes,
                                             std::uint64_t s3_bytes);

// Fig. 6 / Fig. 16: placement into Memcached, write-back to EBS on a timer,
// promote on EBS reads, and grow Memcached by 100% when 75% full
// (provisioning takes `provisioning_delay`; `remap_fraction` of replicated
// cached objects are invalidated by the resize).
Result<InstancePtr> make_growing_instance(
    const TemplateOptions& opts, std::uint64_t mem_bytes,
    std::uint64_t ebs_bytes, Duration writeback_period,
    Duration provisioning_delay, double remap_fraction);

// §4.1.1 MemcachedReplicated: PUT replicates across two availability zones
// before acknowledging; GET served from the local AZ.
Result<InstancePtr> make_memcached_replicated_instance(
    const TemplateOptions& opts, std::uint64_t mem_bytes_per_az);

// §4.1.1 MemcachedEBS: PUT written through to Memcached and EBS; GET from
// Memcached.
Result<InstancePtr> make_memcached_ebs_instance(const TemplateOptions& opts,
                                                std::uint64_t mem_bytes,
                                                std::uint64_t ebs_bytes);

// §4.1.1 cost instance MemcachedS3: small LRU Memcached cache in front of
// S3; evicted and missed objects live in S3, reads promote. `dedup` turns on
// storeOnce placement (the Fig. 12 S3FS configuration).
Result<InstancePtr> make_memcached_s3_instance(const TemplateOptions& opts,
                                               std::uint64_t mem_bytes,
                                               std::uint64_t s3_bytes,
                                               bool dedup = false);

// Table 2: exclusive tiering Mem -> EBS -> S3 with LRU demotion and
// promote-on-read, sized by fractions of `dataset_bytes`.
Result<InstancePtr> make_tiered_lru_instance(const TemplateOptions& opts,
                                             std::uint64_t dataset_bytes,
                                             double mem_fraction,
                                             double ebs_fraction,
                                             double s3_fraction);

// Table 3 High Durability: Memcached + immediate EBS copy + S3 push timer.
Result<InstancePtr> make_high_durability_instance(const TemplateOptions& opts,
                                                  std::uint64_t bytes_per_tier,
                                                  Duration s3_push_period);

// Table 3 Low Durability: Memcached only + S3 backup timer.
Result<InstancePtr> make_low_durability_instance(const TemplateOptions& opts,
                                                 std::uint64_t mem_bytes,
                                                 std::uint64_t s3_bytes,
                                                 Duration s3_push_period);

// §4.2.2 replication experiment: two EBS volumes; after every
// `bytes_between_syncs` of new data in volume 1, copy it to volume 2 at
// `bandwidth_bps` (0 = unthrottled). `replicate` false gives the baseline.
Result<InstancePtr> make_replicated_ebs_instance(
    const TemplateOptions& opts, std::uint64_t bytes_per_volume,
    bool replicate, std::uint64_t bytes_between_syncs, double bandwidth_bps);

// SLO-driven autoscaling (examples/specs/slo_autoscale.tiera): Memcached +
// EBS write-back instance with a `get_p99 < target_ms` objective over a
// 60 s window; while the objective is violated, a background rule grows the
// Memcached tier by 100% and promotes everything from EBS into it.
Result<InstancePtr> make_slo_autoscale_instance(const TemplateOptions& opts,
                                                std::uint64_t mem_bytes,
                                                std::uint64_t ebs_bytes,
                                                Duration writeback_period,
                                                double target_ms = 2.0);

// §4.2.3 failover target configuration: reconfigure `instance` from
// (Memcached, EBS write-through) to (Memcached, Ephemeral + S3 backup timer).
// Used by the monitoring application after it detects the EBS outage.
Status reconfigure_for_ebs_failure(TieraInstance& instance,
                                   std::uint64_t ephemeral_bytes,
                                   std::uint64_t s3_bytes,
                                   Duration s3_backup_period);

}  // namespace tiera
